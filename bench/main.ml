(* Benchmark harness.  Modes (first argv word):

   (default) — Part 1: Bechamel micro-benchmarks, one [Test.make] per
   paper table/figure, each timing the measurement kernel of that
   experiment on a small workload (wall-clock of the reproduction
   machinery itself).  Part 2: the full reproduction — regenerates every
   table and figure of the paper, prints them (the output recorded in
   bench_output.txt and compared in EXPERIMENTS.md), checks every
   reproduced table against its recorded EXPERIMENTS.md shape
   (Harness.Shapes) and EXITS NON-ZERO if any diverged, then runs the
   ablation studies.

   interp — wall-clock engine-vs-engine benchmark (reference interpreter
   vs closure-compiled engine) over all ten workloads; writes
   BENCH_interp.json.

   smoke — the interp benchmark at the smallest scale plus validation of
   the JSON it wrote; the `make bench-smoke` CI target.

   profiles — wall-clock recording-path benchmark (legacy event-by-event
   collector vs flat-slot recording) per profile kind on both engines;
   writes BENCH_profiles.json.

   profiles-smoke — the profiles benchmark at the smallest scale into
   BENCH_profiles.smoke.json plus validation, warning (not failing) on a
   >10% geomean regression against the committed BENCH_profiles.json;
   the `make bench-profiles` CI target.

   harness — scheduler/run-cache benchmark: dedup ratio of the global
   cell scheduler plus cold-vs-warm persistent-cache wall-clock over the
   full experiment sweep; writes BENCH_harness.json.

   harness-smoke — the harness benchmark at the smallest scale into
   BENCH_harness.smoke.json plus validation; the `make bench-harness`
   CI target.

   serve — serve-mode daemon benchmark: sustained jobs/sec and latency
   percentiles, shed rate under a burst at small capacity, and journal
   recovery time; writes BENCH_serve.json.

   serve-smoke — the serve benchmark on a small fleet into
   BENCH_serve.smoke.json plus validation, warning (not failing) on a
   >10% throughput regression against the committed BENCH_serve.json;
   the `make bench-serve` CI target. *)

open Bechamel
open Toolkit
module M = Harness.Measure

let mtrt () = M.prepare (Workloads.Suite.find "mtrt")
let javac () = M.prepare (Workloads.Suite.find "javac")

let both = Harness.Common.both_specs

let table_tests () =
  (* warm the build caches so the staged bodies measure only the
     experiment kernels *)
  let b_mtrt = mtrt () and b_javac = javac () in
  ignore (M.run_baseline b_mtrt);
  ignore (M.run_baseline b_javac);
  let t name body = Test.make ~name (Staged.stage body) in
  Test.make_grouped ~name:"isf"
    [
      t "table1:exhaustive-instrumentation" (fun () ->
          ignore
            (M.run_transformed ~transform:(Core.Transform.exhaustive both)
               b_mtrt));
      t "table2:full-dup-framework" (fun () ->
          ignore
            (M.run_transformed ~transform:(Core.Transform.full_dup both) b_mtrt));
      t "table3:no-dup-checking" (fun () ->
          ignore
            (M.run_transformed ~transform:(Core.Transform.no_dup both) b_mtrt));
      t "table4:sampled-interval-1000" (fun () ->
          ignore
            (M.run_transformed
               ~trigger:(Core.Sampler.Counter { interval = 1_000; jitter = 0 })
               ~transform:(Core.Transform.full_dup both) b_mtrt));
      t "table5:timer-trigger" (fun () ->
          ignore
            (M.run_transformed ~trigger:Core.Sampler.Timer_bit
               ~transform:(Core.Transform.full_dup Core.Spec.field_access)
               b_mtrt));
      t "figure7:javac-call-edges" (fun () ->
          ignore
            (M.run_transformed
               ~trigger:(Core.Sampler.Counter { interval = 100; jitter = 0 })
               ~transform:(Core.Transform.full_dup both) b_javac));
      t "figure8:yieldpoint-opt" (fun () ->
          ignore
            (M.run_transformed
               ~trigger:(Core.Sampler.Counter { interval = 1_000; jitter = 0 })
               ~transform:(Core.Transform.full_dup_yieldpoint_opt both) b_mtrt));
      t "transform:full-dup-only" (fun () ->
          List.iter
            (fun f -> ignore (Core.Transform.full_dup both f))
            b_javac.M.base_funcs);
      t "transform:partial-dup-only" (fun () ->
          List.iter
            (fun f -> ignore (Core.Transform.partial_dup both f))
            b_javac.M.base_funcs);
    ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (table_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  print_endline "Bechamel micro-benchmarks (per-run wall time):";
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with
        | Some (e :: _) -> Printf.sprintf "%10.3f ms" (e /. 1e6)
        | _ -> "n/a"
      in
      Printf.printf "  %-40s %s\n" name est)
    (List.sort compare rows);
  print_newline ()

let run_full () =
  run_bechamel ();
  print_endline
    "================================================================";
  print_endline
    "Full reproduction of every table and figure (Arnold-Ryder 2001)";
  print_endline
    "================================================================";
  print_newline ();
  let shapes_ok = Harness.Experiments.run_gated ~measure_compile:true () in
  print_newline ();
  print_endline
    "================================================================";
  print_endline "Ablation studies (design choices discussed in the paper)";
  print_endline
    "================================================================";
  print_newline ();
  Harness.Ablation.run_all ();
  (* exit non-zero on shape divergence so this binary works as a CI gate *)
  if not shapes_ok then begin
    prerr_endline "bench: reproduced tables diverged from EXPERIMENTS.md shapes";
    exit 1
  end

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "full" with
  | "full" -> run_full ()
  | "interp" -> Interp_bench.run ()
  | "smoke" -> Interp_bench.smoke ()
  | "profiles" -> Profile_bench.run ()
  | "profiles-smoke" -> Profile_bench.smoke ()
  | "harness" -> Harness_bench.run ()
  | "harness-smoke" -> Harness_bench.smoke ()
  | "adaptive" -> Adaptive_bench.run ()
  | "adaptive-smoke" -> Adaptive_bench.smoke ()
  | "serve" -> Serve_bench.run ()
  | "serve-smoke" -> Serve_bench.smoke ()
  | m ->
      Printf.eprintf
        "usage: %s \
         [full|interp|smoke|profiles|profiles-smoke|harness|harness-smoke|\
         adaptive|adaptive-smoke|serve|serve-smoke] (unknown mode %S)\n"
        Sys.argv.(0) m;
      exit 2
