(* Engine-vs-engine wall-clock benchmark.

   For every workload, links the baseline (uninstrumented) program once
   and runs it to completion under both VM engines — the reference
   interpreter and the closure-compiled engine — timing wall-clock per
   run and normalizing to nanoseconds per simulated instruction.  Before
   timing, the two engines' results are asserted identical (return
   value, output, cycles, instructions, event counters): the benchmark
   refuses to compare engines that disagree.

   Results go to BENCH_interp.json (hand-written JSON; the repo has no
   JSON dependency).  [smoke] reruns the same thing at scale 1 with a
   tiny time budget into BENCH_interp.smoke.json and then validates the
   JSON: it must parse, must contain both engines' numbers for all ten
   workloads, and a geomean speedup more than 10% below the committed
   BENCH_interp.json produces a WARNING (not a failure — scale-1 smoke
   timings are noisy; the committed full-scale file is the reference). *)

module M = Harness.Measure

let out_file = "BENCH_interp.json"
let smoke_file = "BENCH_interp.smoke.json"

type row = {
  name : string;
  scale : int;
  cycles : int;
  instructions : int;
  ref_ns : float; (* ns per simulated instruction *)
  fast_ns : float;
}

let speedup r = r.ref_ns /. r.fast_ns

(* ---- measurement ---- *)

let assert_identical name (a : Vm.Interp.result) (b : Vm.Interp.result) =
  let fail what = failwith (Printf.sprintf "%s: engines disagree on %s" name what) in
  if a.Vm.Interp.return_value <> b.Vm.Interp.return_value then fail "return value";
  if not (String.equal a.Vm.Interp.output b.Vm.Interp.output) then fail "output";
  if a.Vm.Interp.cycles <> b.Vm.Interp.cycles then fail "cycles";
  if a.Vm.Interp.instructions <> b.Vm.Interp.instructions then fail "instructions";
  if a.Vm.Interp.counters <> b.Vm.Interp.counters then fail "event counters"

let probe run =
  let t0 = Unix.gettimeofday () in
  ignore (run ());
  Unix.gettimeofday () -. t0

(* Interleaved batches, best batch wins: the minimum is robust against
   the scheduling noise a single long average soaks up, and alternating
   the engines keeps slow drift from biasing either side. *)
let batches = 5

let time_pair ~budget run_a run_b =
  let per_batch = budget /. float_of_int batches in
  let reps run =
    max 1 (int_of_float (per_batch /. Float.max 1e-6 (probe run)))
  in
  let reps_a = reps run_a and reps_b = reps run_b in
  let batch run n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (run ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let best_a = ref infinity and best_b = ref infinity in
  for _ = 1 to batches do
    best_a := Float.min !best_a (batch run_a reps_a);
    best_b := Float.min !best_b (batch run_b reps_b)
  done;
  (!best_a, !best_b)

let bench_workload ~scale ~budget (b : Workloads.Suite.benchmark) =
  let build = M.prepare ?scale b in
  let prog = Vm.Program.link build.M.classes ~funcs:build.M.base_funcs in
  let args = [ build.M.scale ] in
  let run engine () =
    Vm.Interp.run ~engine prog ~entry:Workloads.Suite.entry ~args
      Vm.Interp.null_hooks
  in
  (* warm runs: differential check, plus the Fast warm run compiles the
     program so compilation cost stays out of the timed loop (it is
     cached on the linked program afterwards) *)
  let r_ref = run `Ref () and r_fast = run `Fast () in
  assert_identical b.Workloads.Suite.bname r_ref r_fast;
  let instr = float_of_int r_ref.Vm.Interp.instructions in
  let per_ref, per_fast = time_pair ~budget (run `Ref) (run `Fast) in
  let row =
    {
      name = b.Workloads.Suite.bname;
      scale = build.M.scale;
      cycles = r_ref.Vm.Interp.cycles;
      instructions = r_ref.Vm.Interp.instructions;
      ref_ns = per_ref *. 1e9 /. instr;
      fast_ns = per_fast *. 1e9 /. instr;
    }
  in
  Printf.printf "  %-14s ref %7.2f ns/instr   fast %7.2f ns/instr   %4.2fx\n%!"
    row.name row.ref_ns row.fast_ns (speedup row);
  row

(* ---- JSON out ---- *)

let geomean f rows =
  exp
    (List.fold_left (fun a r -> a +. log (f r)) 0.0 rows
    /. float_of_int (List.length rows))

let json_of_rows rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"scale\": %d, \"cycles\": %d, \
            \"instructions\": %d, \"ref_ns_per_instr\": %.3f, \
            \"fast_ns_per_instr\": %.3f, \"speedup\": %.3f }%s\n"
           r.name r.scale r.cycles r.instructions r.ref_ns r.fast_ns
           (speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"geomean_speedup\": %.3f\n}\n"
       (geomean speedup rows));
  Buffer.contents buf

(* ---- JSON in (validation only; no JSON library in the repo) ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              advance ();
              Buffer.add_char b
                (match c with 'n' -> '\n' | 't' -> '\t' | c -> c)
          | None -> raise (Bad "eof in escape"));
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
      | None -> raise (Bad "eof in string")
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad number at %d" start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> raise (Bad "eof")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad (Printf.sprintf "trailing input at %d" !pos));
  v

let validate_json ~file text =
  let v = try parse_json text with Bad m -> failwith (file ^ ": " ^ m) in
  let rows, gm =
    match v with
    | Obj [ ("benchmarks", Arr rows); ("geomean_speedup", Num gm) ] ->
        (rows, gm)
    | _ ->
        failwith
          (file
         ^ ": expected { \"benchmarks\": [...], \"geomean_speedup\": n }")
  in
  let num obj k =
    match List.assoc_opt k obj with
    | Some (Num f) -> f
    | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
  in
  let names =
    List.map
      (fun r ->
        match r with
        | Obj o ->
            let rn = num o "ref_ns_per_instr" and fn = num o "fast_ns_per_instr" in
            if not (rn > 0.0 && fn > 0.0) then
              failwith (file ^ ": non-positive ns/instr");
            (match List.assoc_opt "name" o with
            | Some (Str s) -> s
            | _ -> failwith (file ^ ": row without a name"))
        | _ -> failwith (file ^ ": non-object row"))
      rows
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      if not (List.mem b.Workloads.Suite.bname names) then
        failwith
          (Printf.sprintf "%s: missing workload %S" file
             b.Workloads.Suite.bname))
    Workloads.Suite.all;
  (List.length names, gm)

let committed_geomean () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text -> Some (snd (validate_json ~file:out_file text))

(* ---- entry points ---- *)

let run_rows ~file ~scale ~budget =
  Printf.printf
    "Engine benchmark: reference interpreter vs closure-compiled engine\n";
  let rows = List.map (bench_workload ~scale ~budget) Workloads.Suite.all in
  let oc = open_out file in
  output_string oc (json_of_rows rows);
  close_out oc;
  let n = List.length rows in
  let twice = List.length (List.filter (fun r -> speedup r >= 2.0) rows) in
  Printf.printf "  geometric-mean speedup %.2fx; >= 2x on %d/%d workloads\n"
    (geomean speedup rows) twice n;
  Printf.printf "  wrote %s\n" file;
  rows

let run () = ignore (run_rows ~file:out_file ~scale:None ~budget:0.3)

let smoke () =
  let rows = run_rows ~file:smoke_file ~scale:(Some 1) ~budget:0.02 in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let n, gm = validate_json ~file:smoke_file text in
  if n <> List.length rows then
    failwith (smoke_file ^ ": row count does not match the suite");
  (match committed_geomean () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      if gm < 0.9 *. committed then
        Printf.printf
          "WARNING: smoke geomean %.2fx is >10%% below committed %.2fx (%s)\n"
          gm committed out_file
      else
        Printf.printf "  smoke geomean %.2fx vs committed %.2fx: OK\n" gm
          committed);
  Printf.printf
    "bench-smoke OK: %s parses, both engines present for all %d workloads\n"
    smoke_file n
