(* Engine-vs-engine wall-clock benchmark.

   For every workload, links the baseline (uninstrumented) program once
   and runs it to completion under three configurations — the reference
   interpreter, the closure-compiled engine, and the closure-compiled
   engine with the trace-recording tier armed (threshold 256) — timing
   wall-clock per run and normalizing to nanoseconds per simulated
   instruction.  Before timing, the three results are asserted identical
   (return value, output, cycles, instructions, event counters, cache
   misses): the benchmark refuses to compare configurations that
   disagree.

   Timing is median-of-5 interleaved batches: each configuration's
   per-run time is measured five times, round-robin so slow machine
   drift cannot bias any one side, and the JSON reports min/median/max
   per configuration — this container shows ±20-40% per-run wall-clock
   variance, so a single-run (or best-run-only) number is
   untrustworthy.  Speedups are computed from medians.

   Results go to BENCH_interp.json (hand-written JSON; the repo has no
   JSON dependency).  [smoke] reruns the same thing at scale 1 with a
   tiny time budget into BENCH_interp.smoke.json — one writer and one
   validator for both files, so smoke and full can never drift apart
   schema-wise — and then validates the JSON: it must parse, must
   contain all three configurations' numbers for all ten workloads, and
   a geomean speedup more than 10% below the committed BENCH_interp.json
   produces a WARNING (not a failure — scale-1 smoke timings are noisy;
   the committed full-scale file is the reference). *)

module M = Harness.Measure

let out_file = "BENCH_interp.json"
let smoke_file = "BENCH_interp.smoke.json"

(* backedge hotness threshold for the trace-tier column; matches the
   CLI's `--traces on` default *)
let trace_threshold = 256

type timing = { t_min : float; t_med : float; t_max : float }
(* ns per simulated instruction, over the interleaved batches *)

type row = {
  name : string;
  scale : int;
  cycles : int;
  instructions : int;
  ref_t : timing;
  fast_t : timing;
  trace_t : timing; (* Fast engine + trace tier *)
}

let speedup r = r.ref_t.t_med /. r.fast_t.t_med
let trace_speedup r = r.ref_t.t_med /. r.trace_t.t_med

(* ---- measurement ---- *)

let assert_identical name what (a : Vm.Interp.result) (b : Vm.Interp.result) =
  let fail field =
    failwith (Printf.sprintf "%s: %s disagree on %s" name what field)
  in
  if a.Vm.Interp.return_value <> b.Vm.Interp.return_value then fail "return value";
  if not (String.equal a.Vm.Interp.output b.Vm.Interp.output) then fail "output";
  if a.Vm.Interp.cycles <> b.Vm.Interp.cycles then fail "cycles";
  if a.Vm.Interp.instructions <> b.Vm.Interp.instructions then fail "instructions";
  if a.Vm.Interp.counters <> b.Vm.Interp.counters then fail "event counters";
  if a.Vm.Interp.icache_misses <> b.Vm.Interp.icache_misses then
    fail "icache misses";
  if a.Vm.Interp.dcache_misses <> b.Vm.Interp.dcache_misses then
    fail "dcache misses"

let probe run =
  let t0 = Unix.gettimeofday () in
  ignore (run ());
  Unix.gettimeofday () -. t0

(* Median-of-5 interleaved batches: every configuration is timed
   [batches] times, round-robin, and summarized as min/median/max of
   the per-batch means.  The median is what speedups are computed from
   — robust against one outlier batch in either direction, where a
   minimum can flatter a config that got one lucky batch and a single
   long average soaks up scheduling noise.  Interleaving keeps slow
   machine drift from biasing whichever side ran later. *)
let batches = 5

let summarize samples =
  let s = List.sort compare samples in
  {
    t_min = List.nth s 0;
    t_med = List.nth s (List.length s / 2);
    t_max = List.nth s (List.length s - 1);
  }

let time_all ~budget runs =
  let per_batch = budget /. float_of_int batches in
  let calibrated =
    List.map
      (fun run ->
        (run, max 1 (int_of_float (per_batch /. Float.max 1e-6 (probe run)))))
      runs
  in
  let batch run n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (run ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let samples = List.map (fun _ -> ref []) runs in
  for _ = 1 to batches do
    List.iter2
      (fun (run, n) acc -> acc := batch run n :: !acc)
      calibrated samples
  done;
  List.map (fun acc -> summarize !acc) samples

let bench_workload ~scale ~budget (b : Workloads.Suite.benchmark) =
  let build = M.prepare ?scale b in
  let prog = Vm.Program.link build.M.classes ~funcs:build.M.base_funcs in
  let args = [ build.M.scale ] in
  let run engine () =
    Vm.Interp.run ~engine prog ~entry:Workloads.Suite.entry ~args
      Vm.Interp.null_hooks
  in
  let run_traced () =
    Vm.Interp.run ~engine:`Fast ~trace_threshold prog
      ~entry:Workloads.Suite.entry ~args Vm.Interp.null_hooks
  in
  (* warm runs: differential check, plus the Fast warm run compiles the
     program so compilation cost stays out of the timed loop (it is
     cached on the linked program afterwards) *)
  let r_ref = run `Ref () and r_fast = run `Fast () in
  let r_trace = run_traced () in
  let name = b.Workloads.Suite.bname in
  assert_identical name "engines" r_ref r_fast;
  assert_identical name "trace tier on/off" r_fast r_trace;
  let instr = float_of_int r_ref.Vm.Interp.instructions in
  let norm t =
    {
      t_min = t.t_min *. 1e9 /. instr;
      t_med = t.t_med *. 1e9 /. instr;
      t_max = t.t_max *. 1e9 /. instr;
    }
  in
  let ref_t, fast_t, trace_t =
    match time_all ~budget [ run `Ref; run `Fast; run_traced ] with
    | [ a; b; c ] -> (norm a, norm b, norm c)
    | _ -> assert false
  in
  let row =
    {
      name;
      scale = build.M.scale;
      cycles = r_ref.Vm.Interp.cycles;
      instructions = r_ref.Vm.Interp.instructions;
      ref_t;
      fast_t;
      trace_t;
    }
  in
  Printf.printf
    "  %-14s ref %7.2f ns/instr   fast %7.2f ns/instr (%4.2fx)   traced \
     %7.2f ns/instr (%4.2fx)\n\
     %!"
    row.name row.ref_t.t_med row.fast_t.t_med (speedup row) row.trace_t.t_med
    (trace_speedup row);
  row

(* ---- JSON out ---- *)

let geomean f rows =
  exp
    (List.fold_left (fun a r -> a +. log (f r)) 0.0 rows
    /. float_of_int (List.length rows))

(* The one writer both the full bench and the smoke share: identical
   schema (including [geomean_speedup] — the smoke file used to drift
   from the full one), with per-configuration min/median/max.  The
   bare *_ns_per_instr fields carry the median. *)
let json_of_rows rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"benchmarks\": [\n";
  let timing k (t : timing) =
    Printf.sprintf
      "\"%s_ns_per_instr\": %.3f, \"%s_ns_min\": %.3f, \"%s_ns_max\": %.3f" k
      t.t_med k t.t_min k t.t_max
  in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"scale\": %d, \"cycles\": %d, \
            \"instructions\": %d, %s, %s, %s, \"speedup\": %.3f, \
            \"trace_speedup\": %.3f }%s\n"
           r.name r.scale r.cycles r.instructions
           (timing "ref" r.ref_t) (timing "fast" r.fast_t)
           (timing "traced" r.trace_t) (speedup r) (trace_speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"timing\": \"median-of-%d interleaved batches\",\n\
       \  \"geomean_speedup\": %.3f,\n\
       \  \"geomean_trace_speedup\": %.3f\n\
        }\n"
       batches (geomean speedup rows)
       (geomean trace_speedup rows));
  Buffer.contents buf

(* ---- JSON in (validation only; no JSON library in the repo) ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              advance ();
              Buffer.add_char b
                (match c with 'n' -> '\n' | 't' -> '\t' | c -> c)
          | None -> raise (Bad "eof in escape"));
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
      | None -> raise (Bad "eof in string")
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad number at %d" start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> raise (Bad "eof")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad (Printf.sprintf "trailing input at %d" !pos));
  v

let validate_json ~file text =
  let v = try parse_json text with Bad m -> failwith (file ^ ": " ^ m) in
  let top =
    match v with
    | Obj o -> o
    | _ -> failwith (file ^ ": expected a top-level object")
  in
  let top_num k =
    match List.assoc_opt k top with
    | Some (Num f) -> f
    | _ -> failwith (Printf.sprintf "%s: missing top-level number %S" file k)
  in
  let rows =
    match List.assoc_opt "benchmarks" top with
    | Some (Arr rows) -> rows
    | _ -> failwith (file ^ ": missing \"benchmarks\" array")
  in
  (* one schema for smoke and full: both must carry the geomeans *)
  let gm = top_num "geomean_speedup" in
  let gm_trace = top_num "geomean_trace_speedup" in
  let num obj k =
    match List.assoc_opt k obj with
    | Some (Num f) -> f
    | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
  in
  let names =
    List.map
      (fun r ->
        match r with
        | Obj o ->
            List.iter
              (fun cfg ->
                let med = num o (cfg ^ "_ns_per_instr") in
                let mn = num o (cfg ^ "_ns_min") in
                let mx = num o (cfg ^ "_ns_max") in
                if not (med > 0.0 && mn > 0.0 && mx > 0.0) then
                  failwith (file ^ ": non-positive ns/instr for " ^ cfg);
                if mn > med || med > mx then
                  failwith (file ^ ": min/median/max out of order for " ^ cfg))
              [ "ref"; "fast"; "traced" ];
            (match List.assoc_opt "name" o with
            | Some (Str s) -> s
            | _ -> failwith (file ^ ": row without a name"))
        | _ -> failwith (file ^ ": non-object row"))
      rows
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      if not (List.mem b.Workloads.Suite.bname names) then
        failwith
          (Printf.sprintf "%s: missing workload %S" file
             b.Workloads.Suite.bname))
    Workloads.Suite.all;
  (List.length names, gm, gm_trace)

let committed_geomeans () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text ->
      let _, gm, gm_trace = validate_json ~file:out_file text in
      Some (gm, gm_trace)

(* ---- entry points ---- *)

let run_rows ~file ~scale ~budget =
  Printf.printf
    "Engine benchmark: reference interpreter vs closure-compiled engine vs \
     trace tier (threshold %d)\n"
    trace_threshold;
  let rows = List.map (bench_workload ~scale ~budget) Workloads.Suite.all in
  let oc = open_out file in
  output_string oc (json_of_rows rows);
  close_out oc;
  let n = List.length rows in
  let twice = List.length (List.filter (fun r -> speedup r >= 2.0) rows) in
  Printf.printf
    "  geometric-mean speedup %.2fx (traced %.2fx); fast >= 2x on %d/%d \
     workloads\n"
    (geomean speedup rows)
    (geomean trace_speedup rows)
    twice n;
  (* acceptance guard: the trace tier must never lose to plain Fast.
     The container's run-to-run wall-clock variance is well above 5%
     even on medians-of-5 (see the header comment), so a median gap
     inside that band with overlapping min/max ranges is measurement
     noise, not a regression — report it as parity.  A median gap
     beyond 5%, or disjoint ranges, is a real warning. *)
  List.iter
    (fun r ->
      if r.trace_t.t_med > 1.05 *. r.fast_t.t_med then
        Printf.printf
          "WARNING: %s traced median %.2f ns/instr slower than fast %.2f\n"
          r.name r.trace_t.t_med r.fast_t.t_med
      else if r.trace_t.t_med > r.fast_t.t_med then
        Printf.printf
          "  note: %s traced %.2f vs fast %.2f ns/instr — within the 5%% \
           noise band (ranges %.2f-%.2f vs %.2f-%.2f)\n"
          r.name r.trace_t.t_med r.fast_t.t_med r.trace_t.t_min r.trace_t.t_max
          r.fast_t.t_min r.fast_t.t_max)
    rows;
  Printf.printf "  wrote %s\n" file;
  rows

let run () = ignore (run_rows ~file:out_file ~scale:None ~budget:0.3)

let smoke () =
  let rows = run_rows ~file:smoke_file ~scale:(Some 1) ~budget:0.02 in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let n, gm, gm_trace = validate_json ~file:smoke_file text in
  if n <> List.length rows then
    failwith (smoke_file ^ ": row count does not match the suite");
  (match committed_geomeans () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some (committed, committed_trace) ->
      let check what got want =
        if got < 0.9 *. want then
          Printf.printf
            "WARNING: smoke %s geomean %.2fx is >10%% below committed %.2fx \
             (%s)\n"
            what got want out_file
        else
          Printf.printf "  smoke %s geomean %.2fx vs committed %.2fx: OK\n"
            what got want
      in
      check "engine" gm committed;
      check "trace-tier" gm_trace committed_trace);
  Printf.printf
    "bench-smoke OK: %s parses, all three configurations present for all %d \
     workloads\n"
    smoke_file n
