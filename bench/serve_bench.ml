(* Serve-mode benchmark (ISSUE 8): the daemon's operational envelope.

   Three phases, each over a deterministic fleet (Serve.Fleet):

     throughput — run N mixed-scale jobs through the daemon on the
       default worker count and report sustained jobs/sec plus
       submit-to-result latency percentiles (p50/p99);

     burst — flood a deliberately small daemon (2 workers, capacity 4)
       with the whole fleet at once through the non-blocking admission
       path and report the shed rate: the fraction rejected explicitly
       instead of queued unboundedly;

     recovery — forge the journal a daemon killed mid-fleet would have
       left (every job submitted, a prefix completed), restart on it,
       and time recovery-to-completion; the resumed results must be
       byte-identical to the uninterrupted reference run.

   Results go to BENCH_serve.json (hand-written JSON, same conventions
   as the other BENCH files).  [smoke] reruns a small fleet into
   BENCH_serve.smoke.json, validates it, and WARNS (not fails) when its
   throughput is more than 10% below the committed file's — wall-clock
   on a noisy container is advisory, correctness gates are the tests. *)

module Fleet = Serve.Fleet
module Daemon = Serve.Daemon
module Journal = Serve.Journal
module Job = Serve.Job

let out_file = "BENCH_serve.json"
let smoke_file = "BENCH_serve.smoke.json"
let seed = 41

type results = {
  jobs : int;
  workers : int;
  (* throughput *)
  jobs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
  wall_s : float;
  (* burst *)
  burst_submitted : int;
  burst_shed : int;
  (* recovery *)
  recovery_replayed : int;
  recovery_rerun : int;
  recovery_s : float;
}

let shed_rate r =
  float_of_int r.burst_shed /. float_of_int (max 1 r.burst_submitted)

let fresh () = Harness.Runcache.reset_memory ()

let entries ~n =
  Fleet.jobs ~seed ~n ()
  |> List.mapi (fun i j -> (Fleet.client_of ~clients:8 i, j))

let tmp_journal () =
  let p = Filename.temp_file "isf_serve_bench" ".journal" in
  Sys.remove p;
  p

let run_phases ~n =
  let entries = entries ~n in
  let workers = Harness.Pool.default_jobs () in
  (* reference for the recovery phase's byte-identity assertion *)
  fresh ();
  let reference = Fleet.run_sequential entries in

  Printf.printf "Serve benchmark: %d jobs, %d worker(s)\n%!" n workers;
  fresh ();
  let st, results =
    Fleet.run_daemon ~config:{ Daemon.default with workers } entries
  in
  if results <> reference then failwith "throughput run not byte-identical";
  Printf.printf
    "  throughput   %6.1f jobs/s   p50 %6.1f ms   p99 %6.1f ms   (%.2f s)\n%!"
    st.Fleet.jobs_per_sec st.Fleet.p50_ms st.Fleet.p99_ms st.Fleet.wall_seconds;

  (* burst: every job thrown at a tiny daemon in one loop; overflow must
     shed explicitly *)
  fresh ();
  let d =
    Daemon.start ~config:{ Daemon.default with workers = 2; capacity = 4 } ()
  in
  let shed = ref 0 in
  List.iter
    (fun (client, j) ->
      match Daemon.submit d ~client j with
      | `Accepted _ -> ()
      | `Shed -> incr shed
      | `Closed -> failwith "daemon closed during burst")
    entries;
  Daemon.drain d;
  Daemon.stop d;
  Printf.printf "  burst        %d/%d shed (%.0f%%) at capacity 4\n%!" !shed n
    (100.0 *. float_of_int !shed /. float_of_int n);

  (* recovery: journal says every job was submitted and the first third
     completed; restart must replay those and re-run exactly the rest *)
  let jpath = tmp_journal () in
  let completed_prefix = n / 3 in
  let j, _ = Journal.open_ ~meta:"bench" jpath in
  List.iteri
    (fun i (client, job) ->
      Journal.append j
        (Journal.Submitted { id = i + 1; client; line = Job.render job }))
    entries;
  List.iteri
    (fun i (_, result) ->
      if i < completed_prefix then
        Journal.append j (Journal.Completed { id = i + 1; result }))
    reference;
  Journal.close j;
  fresh ();
  let t0 = Unix.gettimeofday () in
  let rst, resumed =
    Fleet.run_daemon
      ~config:{ Daemon.default with workers }
      ~journal:jpath ~meta:"bench" entries
  in
  let recovery_s = Unix.gettimeofday () -. t0 in
  Sys.remove jpath;
  if resumed <> reference then failwith "recovered run not byte-identical";
  if rst.Fleet.replayed <> completed_prefix then
    failwith "recovery re-ran journaled results";
  Printf.printf
    "  recovery     %d replayed + %d re-run in %.2f s, byte-identical\n%!"
    rst.Fleet.replayed
    (n - rst.Fleet.replayed)
    recovery_s;
  {
    jobs = n;
    workers;
    jobs_per_sec = st.Fleet.jobs_per_sec;
    p50_ms = st.Fleet.p50_ms;
    p99_ms = st.Fleet.p99_ms;
    wall_s = st.Fleet.wall_seconds;
    burst_submitted = n;
    burst_shed = !shed;
    recovery_replayed = rst.Fleet.replayed;
    recovery_rerun = n - rst.Fleet.replayed;
    recovery_s;
  }

(* ---- JSON ---- *)

let json_of r =
  Printf.sprintf
    "{\n\
    \  \"jobs\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"throughput\": { \"jobs_per_sec\": %.3f, \"p50_ms\": %.3f, \
     \"p99_ms\": %.3f, \"wall_s\": %.3f },\n\
    \  \"burst\": { \"submitted\": %d, \"shed\": %d, \"shed_rate\": %.3f },\n\
    \  \"recovery\": { \"replayed\": %d, \"rerun\": %d, \"recover_s\": %.3f \
     }\n\
     }\n"
    r.jobs r.workers r.jobs_per_sec r.p50_ms r.p99_ms r.wall_s
    r.burst_submitted r.burst_shed (shed_rate r) r.recovery_replayed
    r.recovery_rerun r.recovery_s

let validate_json ~file text =
  let v =
    try Interp_bench.parse_json text
    with Interp_bench.Bad m -> failwith (file ^ ": " ^ m)
  in
  let obj = function
    | Interp_bench.Obj o -> o
    | _ -> failwith (file ^ ": expected an object")
  in
  let num o k =
    match List.assoc_opt k o with
    | Some (Interp_bench.Num f) -> f
    | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
  in
  let top = obj v in
  let section k =
    match List.assoc_opt k top with
    | Some s -> obj s
    | None -> failwith (Printf.sprintf "%s: missing section %S" file k)
  in
  let thr = section "throughput"
  and burst = section "burst"
  and rec_ = section "recovery" in
  if not (num top "jobs" > 0.0) then failwith (file ^ ": no jobs");
  if not (num thr "jobs_per_sec" > 0.0) then
    failwith (file ^ ": non-positive throughput");
  if not (num thr "p99_ms" >= num thr "p50_ms") then
    failwith (file ^ ": p99 below p50");
  let rate = num burst "shed_rate" in
  if rate < 0.0 || rate > 1.0 then failwith (file ^ ": shed rate not in [0,1]");
  if not (num burst "shed" > 0.0) then
    failwith (file ^ ": burst phase never shed — admission control inactive?");
  if not (num rec_ "recover_s" > 0.0) then
    failwith (file ^ ": non-positive recovery time");
  if not (num rec_ "replayed" > 0.0) then
    failwith (file ^ ": recovery replayed nothing");
  num thr "jobs_per_sec"

let committed_throughput () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text -> Some (validate_json ~file:out_file text)

let write ~file ~n =
  let r = run_phases ~n in
  let oc = open_out file in
  output_string oc (json_of r);
  close_out oc;
  Printf.printf "  wrote %s\n%!" file;
  r

let run () = ignore (write ~file:out_file ~n:64)

let smoke () =
  let _ = write ~file:smoke_file ~n:12 in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let jps = validate_json ~file:smoke_file text in
  (match committed_throughput () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      (* the smoke fleet is smaller than the committed one, so compare
         only order-of-magnitude collapse, and warn rather than fail:
         wall-clock on this container swings +-20-40% run to run *)
      if jps < 0.9 *. committed then
        Printf.printf
          "  WARNING: smoke throughput %.1f jobs/s is >10%% below the \
           committed %.1f jobs/s (noisy container; not failing the build)\n"
          jps committed);
  Printf.printf "  serve bench smoke OK\n%!"
