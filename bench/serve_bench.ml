(* Serve-mode benchmark (ISSUE 8 + 10): the daemon's operational
   envelope plus the cross-shard merge data plane.

   Phases, each over a deterministic fleet (Serve.Fleet):

     throughput — run N mixed-scale jobs through the daemon under a
       closed-loop submission window (2 x workers outstanding) and
       report sustained jobs/sec plus latency percentiles.  The window
       makes p50/p99 true per-job service latency (queue + execute);
       the open-loop variant used before ISSUE 10 stamped all N submit
       times upfront, so its percentiles measured backlog age — an
       artifact of batch start, not of the daemon;

     burst — flood a deliberately small daemon (2 workers, capacity 4)
       with the whole fleet at once through the non-blocking admission
       path and report the shed rate: the fraction rejected explicitly
       instead of queued unboundedly;

     recovery — forge the journal a daemon killed mid-fleet would have
       left (every job submitted, a prefix completed), restart on it,
       and time recovery-to-completion; the resumed results must be
       byte-identical to the uninterrupted reference run;

     merge — parse the fleet's per-job profile payloads, replicate them
       into a few hundred shards, and time the parallel merge tree
       (profiles/sec), sharded re-merges at several shard counts (each
       asserted digest-identical to the unsharded aggregate), and the
       cold-vs-warm merged-aggregate cache.

   Every timed quantity is median-of-5 repetitions (min/med/max in the
   JSON, same convention as BENCH_interp/BENCH_adaptive): this
   container shows +-20-40% per-run wall-clock variance, so a
   single-run number is untrustworthy.  Byte-identity is asserted on
   every repetition, not just once.

   Results go to BENCH_serve.json.  [smoke] reruns a small fleet into
   BENCH_serve.smoke.json, validates it, and WARNS (not fails) when its
   median throughput is more than 10% below the committed file's —
   wall-clock on a noisy container is advisory, correctness gates are
   the tests. *)

module Fleet = Serve.Fleet
module Daemon = Serve.Daemon
module Journal = Serve.Journal
module Job = Serve.Job
module Merge = Profiles.Merge

let out_file = "BENCH_serve.json"
let smoke_file = "BENCH_serve.smoke.json"
let seed = 41
let reps = Interp_bench.batches

type timing = Interp_bench.timing = {
  t_min : float;
  t_med : float;
  t_max : float;
}

let summarize = Interp_bench.summarize

type results = {
  jobs : int;
  workers : int;
  window : int;
  (* throughput (closed loop) *)
  jobs_per_sec : timing;
  p50_ms : timing;
  p99_ms : timing;
  wall_s : timing;
  (* burst *)
  burst_submitted : int;
  burst_shed : int;
  (* recovery *)
  recovery_replayed : int;
  recovery_rerun : int;
  recovery_s : timing;
  (* merge *)
  merge_profiles : int;
  merge_pps : timing; (* profiles merged per second, unsharded *)
  shard_pps : (int * float) list; (* shard count -> median profiles/sec *)
  cache_cold_s : float;
  cache_warm_s : float;
}

let shed_rate r =
  float_of_int r.burst_shed /. float_of_int (max 1 r.burst_submitted)

let fresh () = Harness.Runcache.reset_memory ()

let entries ~n =
  Fleet.jobs ~seed ~n ()
  |> List.mapi (fun i j -> (Fleet.client_of ~clients:8 i, j))

let tmp_journal () =
  let p = Filename.temp_file "isf_serve_bench" ".journal" in
  Sys.remove p;
  p

let median_of f =
  (summarize (List.init reps (fun _ -> f ()))).t_med

(* ---- merge phase ---- *)

(* Replicate the fleet's payloads into [target] shards (multiplicity
   preserved — a job appearing twice keeps double weight), then time
   the unsharded merge, sharded re-merges, and the aggregate cache. *)
let run_merge_phase ~workers ~payloads =
  let base = List.map Merge.parse payloads in
  if base = [] then failwith "merge phase: fleet produced no profiles";
  let target = 512 in
  let repl = max 1 (target / List.length base) in
  let inputs = List.concat (List.init repl (fun _ -> base)) in
  let n_inputs = List.length inputs in
  let reference = Harness.Aggregate.merge_tree ~jobs:workers inputs in
  let ref_digest = Merge.digest reference in
  (* unsharded merge throughput, median-of-reps *)
  let pps =
    summarize
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           let m = Harness.Aggregate.merge_tree ~jobs:workers inputs in
           let dt = Unix.gettimeofday () -. t0 in
           if not (String.equal (Merge.digest m) ref_digest) then
             failwith "merge phase: repetition diverged";
           float_of_int n_inputs /. Float.max 1e-9 dt))
  in
  Printf.printf
    "  merge        %d profiles   %.0f/s med (min %.0f, max %.0f)\n%!"
    n_inputs pps.t_med pps.t_min pps.t_max;
  (* shard-count scaling: merge each shard, then merge the shard
     aggregates — the result must be digest-identical to the unsharded
     aggregate for every shard count *)
  let shard_pps =
    List.filter_map
      (fun k ->
        if k > n_inputs then None
        else begin
          let shards = Array.make k [] in
          List.iteri (fun i m -> shards.(i mod k) <- m :: shards.(i mod k)) inputs;
          let med =
            median_of (fun () ->
                let t0 = Unix.gettimeofday () in
                let partials =
                  Array.to_list
                    (Array.map
                       (fun s -> Harness.Aggregate.merge_tree ~jobs:workers s)
                       shards)
                in
                let m = Harness.Aggregate.merge_tree ~jobs:workers partials in
                let dt = Unix.gettimeofday () -. t0 in
                if not (String.equal (Merge.digest m) ref_digest) then
                  failwith
                    (Printf.sprintf
                       "merge phase: %d-shard merge not digest-identical" k);
                float_of_int n_inputs /. Float.max 1e-9 dt)
          in
          Printf.printf "  merge shards %4d -> %.0f profiles/s med\n%!" k med;
          Some (k, med)
        end)
      [ 1; 2; 4; 8 ]
  in
  (* merged-aggregate cache: cold computes through the tree, warm is a
     content-addressed lookup under the sorted multiset of digests *)
  let digests = List.map Merge.digest inputs in
  fresh ();
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t0, v)
  in
  let cold_s, cold =
    time (fun () ->
        Harness.Aggregate.merge_cached ~jobs:workers ~digests (fun () -> inputs))
  in
  let warm_s, warm =
    time (fun () ->
        Harness.Aggregate.merge_cached ~jobs:workers ~digests (fun () ->
            failwith "merge phase: warm lookup recomputed"))
  in
  if not (String.equal (Merge.render cold) (Merge.render warm)) then
    failwith "merge phase: warm cache hit not byte-identical";
  if not (String.equal (Merge.digest cold) ref_digest) then
    failwith "merge phase: cached aggregate diverged";
  Printf.printf "  merge cache  cold %.4f s, warm %.4f s\n%!" cold_s warm_s;
  (n_inputs, pps, shard_pps, cold_s, warm_s)

(* ---- phases ---- *)

let run_phases ~n =
  let entries = entries ~n in
  let workers = Harness.Pool.default_jobs () in
  let window = 2 * workers in
  (* reference for the byte-identity assertions, and the source of the
     merge phase's profile payloads *)
  fresh ();
  let reference, ref_profiles = Fleet.run_sequential entries in

  Printf.printf
    "Serve benchmark: %d jobs, %d worker(s), window %d, median of %d\n%!" n
    workers window reps;
  let samples =
    List.init reps (fun _ ->
        fresh ();
        let st, results, _profiles =
          Fleet.run_daemon ~config:{ Daemon.default with workers } ~window
            entries
        in
        if results <> reference then
          failwith "throughput run not byte-identical";
        st)
  in
  let field f = summarize (List.map f samples) in
  let jobs_per_sec = field (fun st -> st.Fleet.jobs_per_sec) in
  let p50_ms = field (fun st -> st.Fleet.p50_ms) in
  let p99_ms = field (fun st -> st.Fleet.p99_ms) in
  let wall_s = field (fun st -> st.Fleet.wall_seconds) in
  Printf.printf
    "  throughput   %6.1f jobs/s med (min %.1f, max %.1f)   p50 %6.1f ms   \
     p99 %6.1f ms\n\
     %!"
    jobs_per_sec.t_med jobs_per_sec.t_min jobs_per_sec.t_max p50_ms.t_med
    p99_ms.t_med;

  (* burst: every job thrown at a tiny daemon in one loop; overflow must
     shed explicitly *)
  fresh ();
  let d =
    Daemon.start ~config:{ Daemon.default with workers = 2; capacity = 4 } ()
  in
  let shed = ref 0 in
  List.iter
    (fun (client, j) ->
      match Daemon.submit d ~client j with
      | `Accepted _ -> ()
      | `Shed -> incr shed
      | `Closed -> failwith "daemon closed during burst")
    entries;
  Daemon.drain d;
  Daemon.stop d;
  Printf.printf "  burst        %d/%d shed (%.0f%%) at capacity 4\n%!" !shed n
    (100.0 *. float_of_int !shed /. float_of_int n);

  (* recovery: journal says every job was submitted and the first third
     completed; restart must replay those and re-run exactly the rest *)
  let completed_prefix = n / 3 in
  let replayed = ref 0 in
  let recovery_s =
    summarize
      (List.init reps (fun _ ->
           let jpath = tmp_journal () in
           let j, _ = Journal.open_ ~meta:"bench" jpath in
           List.iteri
             (fun i (client, job) ->
               Journal.append j
                 (Journal.Submitted
                    { id = i + 1; client; line = Job.render job }))
             entries;
           List.iteri
             (fun i (_, result) ->
               if i < completed_prefix then
                 Journal.append j (Journal.Completed { id = i + 1; result }))
             reference;
           Journal.close j;
           fresh ();
           let t0 = Unix.gettimeofday () in
           let rst, resumed, _ =
             Fleet.run_daemon
               ~config:{ Daemon.default with workers }
               ~journal:jpath ~meta:"bench" entries
           in
           let dt = Unix.gettimeofday () -. t0 in
           Sys.remove jpath;
           if resumed <> reference then
             failwith "recovered run not byte-identical";
           if rst.Fleet.replayed <> completed_prefix then
             failwith "recovery re-ran journaled results";
           replayed := rst.Fleet.replayed;
           dt))
  in
  Printf.printf
    "  recovery     %d replayed + %d re-run in %.2f s med, byte-identical\n%!"
    !replayed (n - !replayed) recovery_s.t_med;

  let merge_profiles, merge_pps, shard_pps, cache_cold_s, cache_warm_s =
    run_merge_phase ~workers ~payloads:(List.map snd ref_profiles)
  in
  {
    jobs = n;
    workers;
    window;
    jobs_per_sec;
    p50_ms;
    p99_ms;
    wall_s;
    burst_submitted = n;
    burst_shed = !shed;
    recovery_replayed = !replayed;
    recovery_rerun = n - !replayed;
    recovery_s;
    merge_profiles;
    merge_pps;
    shard_pps;
    cache_cold_s;
    cache_warm_s;
  }

(* ---- JSON ---- *)

let json_timing t =
  Printf.sprintf "{ \"min\": %.3f, \"med\": %.3f, \"max\": %.3f }" t.t_min
    t.t_med t.t_max

let json_of r =
  Printf.sprintf
    "{\n\
    \  \"jobs\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"timing\": \"median-of-%d repetitions\",\n\
    \  \"throughput\": {\n\
    \    \"window\": %d,\n\
    \    \"jobs_per_sec\": %s,\n\
    \    \"p50_ms\": %s,\n\
    \    \"p99_ms\": %s,\n\
    \    \"wall_s\": %s\n\
    \  },\n\
    \  \"burst\": { \"submitted\": %d, \"shed\": %d, \"shed_rate\": %.3f },\n\
    \  \"recovery\": { \"replayed\": %d, \"rerun\": %d, \"recover_s\": %s },\n\
    \  \"merge\": {\n\
    \    \"profiles\": %d,\n\
    \    \"profiles_per_sec\": %s,\n\
    \    \"shards\": [%s],\n\
    \    \"cache_cold_s\": %.4f,\n\
    \    \"cache_warm_s\": %.4f\n\
    \  }\n\
     }\n"
    r.jobs r.workers reps r.window
    (json_timing r.jobs_per_sec)
    (json_timing r.p50_ms) (json_timing r.p99_ms) (json_timing r.wall_s)
    r.burst_submitted r.burst_shed (shed_rate r) r.recovery_replayed
    r.recovery_rerun
    (json_timing r.recovery_s)
    r.merge_profiles
    (json_timing r.merge_pps)
    (String.concat ", "
       (List.map
          (fun (k, pps) ->
            Printf.sprintf "{ \"shards\": %d, \"profiles_per_sec\": %.1f }" k
              pps)
          r.shard_pps))
    r.cache_cold_s r.cache_warm_s

let validate_json ~file text =
  let v =
    try Interp_bench.parse_json text
    with Interp_bench.Bad m -> failwith (file ^ ": " ^ m)
  in
  let obj = function
    | Interp_bench.Obj o -> o
    | _ -> failwith (file ^ ": expected an object")
  in
  let num o k =
    match List.assoc_opt k o with
    | Some (Interp_bench.Num f) -> f
    | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
  in
  let triple o k =
    match List.assoc_opt k o with
    | Some t ->
        let t = obj t in
        let mn = num t "min" and md = num t "med" and mx = num t "max" in
        if not (mn <= md && md <= mx) then
          failwith (Printf.sprintf "%s: %s not min<=med<=max" file k);
        md
    | None -> failwith (Printf.sprintf "%s: missing timing %S" file k)
  in
  let top = obj v in
  let section k =
    match List.assoc_opt k top with
    | Some s -> obj s
    | None -> failwith (Printf.sprintf "%s: missing section %S" file k)
  in
  let thr = section "throughput"
  and burst = section "burst"
  and rec_ = section "recovery"
  and merge = section "merge" in
  if not (num top "jobs" > 0.0) then failwith (file ^ ": no jobs");
  let jps = triple thr "jobs_per_sec" in
  if not (jps > 0.0) then failwith (file ^ ": non-positive throughput");
  if not (triple thr "p99_ms" >= triple thr "p50_ms") then
    failwith (file ^ ": p99 below p50");
  ignore (triple thr "wall_s");
  let rate = num burst "shed_rate" in
  if rate < 0.0 || rate > 1.0 then failwith (file ^ ": shed rate not in [0,1]");
  if not (num burst "shed" > 0.0) then
    failwith (file ^ ": burst phase never shed — admission control inactive?");
  if not (triple rec_ "recover_s" > 0.0) then
    failwith (file ^ ": non-positive recovery time");
  if not (num rec_ "replayed" > 0.0) then
    failwith (file ^ ": recovery replayed nothing");
  if not (num merge "profiles" > 0.0) then
    failwith (file ^ ": merge phase saw no profiles");
  if not (triple merge "profiles_per_sec" > 0.0) then
    failwith (file ^ ": non-positive merge throughput");
  (match List.assoc_opt "shards" merge with
  | Some (Interp_bench.Arr (_ :: _ as shards)) ->
      List.iter
        (fun s ->
          let s = obj s in
          if not (num s "shards" > 0.0 && num s "profiles_per_sec" > 0.0) then
            failwith (file ^ ": bad shard-scaling entry"))
        shards
  | _ -> failwith (file ^ ": missing shard-scaling array"));
  if not (num merge "cache_cold_s" > 0.0 && num merge "cache_warm_s" >= 0.0)
  then failwith (file ^ ": bad merge cache timings");
  jps

let committed_throughput () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text -> Some (validate_json ~file:out_file text)

let write ~file ~n =
  let r = run_phases ~n in
  let oc = open_out file in
  output_string oc (json_of r);
  close_out oc;
  Printf.printf "  wrote %s\n%!" file;
  r

let run () = ignore (write ~file:out_file ~n:64)

let smoke () =
  let _ = write ~file:smoke_file ~n:12 in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let jps = validate_json ~file:smoke_file text in
  (match committed_throughput () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      (* the smoke fleet is smaller than the committed one, so compare
         only order-of-magnitude collapse, and warn rather than fail:
         wall-clock on this container swings +-20-40% run to run *)
      if jps < 0.9 *. committed then
        Printf.printf
          "  WARNING: smoke throughput %.1f jobs/s is >10%% below the \
           committed %.1f jobs/s (noisy container; not failing the build)\n"
          jps committed);
  Printf.printf "  serve bench smoke OK\n%!"
