(* Harness scheduling/caching benchmark: global deduplicating scheduler
   plus the content-addressed run cache (ISSUE 5).

   Two sections, each a full driver sweep: "experiments" (every table
   and figure, via Experiments.run_gated, which is byte-deterministic)
   and "ablation" (Ablation.run_all).  For each section the benchmark
   reports the scheduler's dedup ratio (cells the drivers request vs.
   distinct measurements after Schedule.dedupe) and times two runs
   against a fresh persistent cache directory:

     cold — empty disk cache, every cell computed once;
     warm — same disk cache, in-memory tiers reset (Runcache.reset_memory,
            simulating a new process), every cell loaded from disk.

   Each cold/warm pair is repeated 5 times — every repetition against
   its own fresh cache directory, so every cold run is genuinely cold —
   and summarized as min/median/max (the shared Interp_bench
   median-of-5 convention; this container's wall-clock swings
   +-20-40% run to run).  The two runs' stdout is captured and asserted
   byte-identical on every repetition — the cache must never change
   what an experiment prints — and the warm/cold ratio of medians is
   the cache's speedup.  Results go to BENCH_harness.json
   (hand-written JSON, same conventions as BENCH_interp.json).  [smoke]
   reruns at the smallest scale into BENCH_harness.smoke.json, validates
   it, and WARNS (not fails) when its geomean speedup is more than 10%
   below the committed file's. *)

let out_file = "BENCH_harness.json"
let smoke_file = "BENCH_harness.smoke.json"
let reps = Interp_bench.batches

type timing = Interp_bench.timing = {
  t_min : float;
  t_med : float;
  t_max : float;
}

type section = {
  name : string;
  requested : int; (* cells the drivers will ask Measure for *)
  unique : int; (* after Schedule.dedupe *)
  cold_t : timing;
  warm_t : timing;
}

let dedup_ratio s = float_of_int s.requested /. float_of_int (max 1 s.unique)
let warm_speedup s = s.cold_t.t_med /. Float.max 1e-9 s.warm_t.t_med

let geomean f rows =
  exp
    (List.fold_left (fun a r -> a +. log (f r)) 0.0 rows
    /. float_of_int (List.length rows))

(* ---- plumbing ---- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let with_stdout_to path f =
  flush stdout;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ---- one section ---- *)

let bench_section ~scale (name, requests, body) =
  let reqs = requests ?scale:scale () in
  let unique = List.length (Harness.Schedule.dedupe reqs) in
  (* one cold/warm pair per repetition, each against its own fresh
     cache directory so every cold run really is cold *)
  let pairs =
    List.init reps (fun i ->
        let dir = temp_dir (Printf.sprintf "isf-bench-%s-%d" name i) in
        let cold_out = Filename.concat dir "cold.txt"
        and warm_out = Filename.concat dir "warm.txt" in
        Harness.Runcache.set_dir (Some dir);
        Harness.Runcache.reset_memory ();
        let cold_s =
          time (fun () ->
              with_stdout_to cold_out (fun () -> body ?scale:scale ()))
        in
        Harness.Runcache.reset_memory ();
        let warm_s =
          time (fun () ->
              with_stdout_to warm_out (fun () -> body ?scale:scale ()))
        in
        Harness.Runcache.set_dir None;
        Harness.Runcache.reset_memory ();
        if not (String.equal (read_file cold_out) (read_file warm_out)) then
          failwith
            (Printf.sprintf
               "%s: warm-cache output differs from cold-cache output (%s vs %s)"
               name cold_out warm_out);
        (cold_s, warm_s))
  in
  let row =
    {
      name;
      requested = List.length reqs;
      unique;
      cold_t = Interp_bench.summarize (List.map fst pairs);
      warm_t = Interp_bench.summarize (List.map snd pairs);
    }
  in
  Printf.printf
    "  %-12s %3d cells -> %3d unique (%.2fx dedup)   cold %6.2f s   warm \
     %6.3f s   %5.1fx\n\
     %!"
    row.name row.requested row.unique (dedup_ratio row) row.cold_t.t_med
    row.warm_t.t_med (warm_speedup row);
  row

let sections =
  [
    ( "experiments",
      (fun ?scale () -> Harness.Experiments.requests ?scale ()),
      fun ?scale () -> ignore (Harness.Experiments.run_gated ?scale ()) );
    ( "ablation",
      (fun ?scale () -> Harness.Ablation.requests ?scale ()),
      fun ?scale () -> Harness.Ablation.run_all ?scale () );
  ]

(* ---- JSON out ---- *)

let json_of_rows rows =
  let all_requested = List.fold_left (fun a r -> a + r.requested) 0 rows in
  let all_unique = List.fold_left (fun a r -> a + r.unique) 0 rows in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"timing\": \"median-of-%d cold/warm pairs\",\n  \"sections\": [\n"
       reps);
  let timing k (t : timing) =
    Printf.sprintf "\"%s_s\": %.3f, \"%s_s_min\": %.3f, \"%s_s_max\": %.3f" k
      t.t_med k t.t_min k t.t_max
  in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"cells_requested\": %d, \"cells_unique\": \
            %d, \"dedup_ratio\": %.3f, %s, %s, \"warm_speedup\": %.3f }%s\n"
           r.name r.requested r.unique (dedup_ratio r)
           (timing "cold" r.cold_t) (timing "warm" r.warm_t)
           (warm_speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"cells_total\": %d,\n\
       \  \"cells_unique\": %d,\n\
       \  \"dedup_ratio\": %.3f,\n\
       \  \"geomean_speedup\": %.3f\n\
        }\n"
       all_requested all_unique
       (float_of_int all_requested /. float_of_int (max 1 all_unique))
       (geomean warm_speedup rows));
  Buffer.contents buf

(* ---- validation (reuses Interp_bench's JSON parser) ---- *)

let validate_json ~file text =
  let v =
    try Interp_bench.parse_json text
    with Interp_bench.Bad m -> failwith (file ^ ": " ^ m)
  in
  let rows, gm =
    match v with
    | Interp_bench.Obj
        [
          ("timing", Interp_bench.Str _);
          ("sections", Interp_bench.Arr rows);
          ("cells_total", Interp_bench.Num _);
          ("cells_unique", Interp_bench.Num _);
          ("dedup_ratio", Interp_bench.Num ratio);
          ("geomean_speedup", Interp_bench.Num gm);
        ] ->
        if ratio <= 1.0 then
          failwith (file ^ ": dedup ratio is not > 1.0 — scheduler inactive?");
        (rows, gm)
    | _ ->
        failwith
          (file
         ^ ": expected { \"timing\": s, \"sections\": [...], \"cells_total\": \
            n, \"cells_unique\": n, \"dedup_ratio\": n, \"geomean_speedup\": \
            n }")
  in
  let names =
    List.map
      (fun r ->
        match r with
        | Interp_bench.Obj o ->
            let num k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Num f) -> f
              | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
            in
            List.iter
              (fun cfg ->
                let med = num (cfg ^ "_s") in
                let mn = num (cfg ^ "_s_min") and mx = num (cfg ^ "_s_max") in
                if not (med > 0.0 && mn > 0.0 && mx > 0.0) then
                  failwith (file ^ ": non-positive wall-clock for " ^ cfg);
                if mn > med || med > mx then
                  failwith
                    (file ^ ": min/median/max out of order for " ^ cfg))
              [ "cold"; "warm" ];
            (match List.assoc_opt "name" o with
            | Some (Interp_bench.Str s) -> s
            | _ -> failwith (file ^ ": section without a name"))
        | _ -> failwith (file ^ ": non-object section"))
      rows
  in
  List.iter
    (fun (sname, _, _) ->
      if not (List.mem sname names) then
        failwith (Printf.sprintf "%s: missing section %S" file sname))
    sections;
  gm

let committed_geomean () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text -> Some (validate_json ~file:out_file text)

(* ---- entry points ---- *)

let run_rows ~file ~scale =
  Printf.printf
    "Harness benchmark: deduplicating scheduler + content-addressed run \
     cache\n";
  let rows = List.map (bench_section ~scale) sections in
  let oc = open_out file in
  output_string oc (json_of_rows rows);
  close_out oc;
  Printf.printf "  geometric-mean warm/cold speedup %.1fx; dedup %.2fx over \
                 %d requested cells\n"
    (geomean warm_speedup rows)
    (geomean dedup_ratio rows)
    (List.fold_left (fun a r -> a + r.requested) 0 rows);
  Printf.printf "  wrote %s\n" file;
  rows

let run () = ignore (run_rows ~file:out_file ~scale:None)

let smoke () =
  let rows = run_rows ~file:smoke_file ~scale:(Some 1) in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let gm = validate_json ~file:smoke_file text in
  if List.length rows <> List.length sections then
    failwith (smoke_file ^ ": section count mismatch");
  (match committed_geomean () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      if gm < 0.9 *. committed then
        Printf.printf
          "WARNING: smoke geomean %.1fx is >10%% below committed %.1fx (%s)\n"
          gm committed out_file
      else
        Printf.printf "  smoke geomean %.1fx vs committed %.1fx: OK\n" gm
          committed);
  Printf.printf
    "bench-harness OK: %s parses, cache output byte-identical in all %d \
     sections\n"
    smoke_file (List.length rows)
