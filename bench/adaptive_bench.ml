(* Adaptive-loop benchmark: what closing the FDO loop buys, and what it
   costs, in simulated cycles.

   Runs the Table_adaptive experiment (baseline / exhaustively
   instrumented / adaptive with a 10-point overhead budget, per
   workload) and records per benchmark: the instrumented and adaptive
   overheads over the uninstrumented baseline, the speedup the loop
   bought (instrumented cycles / adaptive cycles), the achieved
   instrumentation overhead (the governor's own metric, to compare
   against the budget) and the number of adaptive decisions taken.

   Everything here is SIMULATED cycles, so results are deterministic —
   no timing methodology needed; the measurements also flow through the
   run cache, so a warm smoke run is cheap.

   Results go to BENCH_adaptive.json.  [smoke] reruns a three-workload
   subset into BENCH_adaptive.smoke.json, validates that it parses,
   covers the subset and still shows the loop winning (geomean speedup
   >= 1), and WARNS (does not fail) when its geomean is more than 10%
   below the committed BENCH_adaptive.json — the committed full-grid
   file stays the reference. *)

module TA = Harness.Table_adaptive

let out_file = "BENCH_adaptive.json"
let smoke_file = "BENCH_adaptive.smoke.json"
let budget = 10.0
let smoke_benches = [ "compress"; "db"; "mtrt" ]

let json_of_rows (rows : TA.row list) =
  let ok r = match r.TA.nums with Ok n -> n | Error _ -> assert false in
  let g, a = TA.summary rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"budget_pts\": %.1f,\n  \"benchmarks\": [\n" budget);
  List.iteri
    (fun i r ->
      let n = ok r in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"instr_overhead_pct\": %.1f, \
            \"adaptive_overhead_pct\": %.1f, \"speedup\": %.3f, \
            \"achieved_pts\": %.2f, \"decisions\": %d }%s\n"
           r.TA.bench n.TA.instr_oh n.TA.adaptive_oh n.TA.speedup n.TA.achieved
           n.TA.ndecisions
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"geomean_speedup\": %.3f,\n\
       \  \"mean_achieved_pts\": %.2f\n\
        }\n"
       g a);
  Buffer.contents buf

(* ---- validation (reuses Interp_bench's JSON parser) ---- *)

let validate_json ~file ~expect text =
  let v =
    try Interp_bench.parse_json text
    with Interp_bench.Bad m -> failwith (file ^ ": " ^ m)
  in
  let rows, gm, achieved =
    match v with
    | Interp_bench.Obj
        [
          ("budget_pts", Interp_bench.Num _);
          ("benchmarks", Interp_bench.Arr rows);
          ("geomean_speedup", Interp_bench.Num gm);
          ("mean_achieved_pts", Interp_bench.Num a);
        ] ->
        (rows, gm, a)
    | _ ->
        failwith
          (file
         ^ ": expected { \"budget_pts\": n, \"benchmarks\": [...], \
            \"geomean_speedup\": n, \"mean_achieved_pts\": n }")
  in
  let speedups =
    List.map
      (fun r ->
        match r with
        | Interp_bench.Obj o ->
            let str k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Str s) -> s
              | _ -> failwith (Printf.sprintf "%s: missing string %S" file k)
            in
            let num k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Num f) -> f
              | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
            in
            if num "speedup" <= 0.0 then failwith (file ^ ": bad speedup");
            if num "achieved_pts" < 0.0 then
              failwith (file ^ ": negative achieved overhead");
            (str "name", num "speedup")
        | _ -> failwith (file ^ ": non-object row"))
      rows
  in
  List.iter
    (fun b ->
      if not (List.mem_assoc b speedups) then
        failwith (Printf.sprintf "%s: missing benchmark %S" file b))
    expect;
  (gm, achieved, speedups)

(* geomean the committed full-grid file predicts for the smoke subset —
   comparing subset-to-subset keeps the regression warning meaningful *)
let committed_geomean () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text ->
      let all =
        List.map
          (fun (b : Workloads.Suite.benchmark) -> b.Workloads.Suite.bname)
          (Harness.Common.benchmarks ())
      in
      let _, _, speedups = validate_json ~file:out_file ~expect:all text in
      let sub = List.map (fun b -> List.assoc b speedups) smoke_benches in
      let n = List.length sub in
      Some
        (exp (List.fold_left (fun a s -> a +. log s) 0.0 sub /. float_of_int n))

(* ---- entry points ---- *)

let run_rows ~file ~benches =
  Printf.printf
    "Adaptive benchmark: FDO loop vs exhaustive instrumentation (budget %.0f \
     pts)\n"
    budget;
  let rows = TA.run ~budget ?benches () in
  (match TA.failures rows with
  | [] -> ()
  | fs ->
      print_string (Harness.Robust.report fs);
      failwith "adaptive bench: cells failed, refusing to write results");
  print_string (TA.to_string rows);
  let oc = open_out file in
  output_string oc (json_of_rows rows);
  close_out oc;
  Printf.printf "  wrote %s\n" file;
  rows

let run () = ignore (run_rows ~file:out_file ~benches:None : TA.row list)

let smoke () =
  let benches = List.map Workloads.Suite.find smoke_benches in
  let rows = run_rows ~file:smoke_file ~benches:(Some benches) in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let gm, achieved, _ =
    validate_json ~file:smoke_file ~expect:smoke_benches text
  in
  if List.length rows <> List.length smoke_benches then
    failwith (smoke_file ^ ": row count does not match the workload subset");
  if gm < 1.0 then
    failwith
      (Printf.sprintf "%s: adaptive loop no longer wins (geomean %.2fx)"
         smoke_file gm);
  Printf.printf "  smoke: geomean %.2fx, achieved %.1f pts against a %.0f-pt \
                 budget\n"
    gm achieved budget;
  match committed_geomean () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      if gm < 0.9 *. committed then
        Printf.printf
          "WARNING: smoke geomean %.2fx is >10%% below committed %.2fx (%s)\n"
          gm committed out_file
      else
        Printf.printf "  smoke geomean %.2fx vs committed %.2fx: OK\n" gm
          committed
