(* Adaptive-loop benchmark: what closing the FDO loop buys, and what it
   costs, in simulated cycles.

   Runs the Table_adaptive experiment (baseline / exhaustively
   instrumented / adaptive with a 10-point overhead budget, per
   workload) and records per benchmark: the instrumented and adaptive
   overheads over the uninstrumented baseline, the speedup the loop
   bought (instrumented cycles / adaptive cycles), the achieved
   instrumentation overhead (the governor's own metric, to compare
   against the budget) and the number of adaptive decisions taken.

   The overheads and speedups are SIMULATED cycles, so those results
   are deterministic — no timing methodology needed; the measurements
   also flow through the run cache, so a warm smoke run is cheap.  On
   top of that, each row carries the WALL-CLOCK cost of one full
   adaptive execution (link + instrumented run + controller polls +
   mid-run recompiles), timed like interp_bench: median-of-5
   interleaved batches with min/median/max in the JSON, because this
   container shows ±20-40% per-run variance.  Timing goes through
   {!Harness.Measure.adaptive_wall} — the cached [run_adaptive] path
   would time the run cache, not the run.

   Results go to BENCH_adaptive.json.  [smoke] reruns a three-workload
   subset into BENCH_adaptive.smoke.json, validates that it parses,
   covers the subset and still shows the loop winning (geomean speedup
   >= 1), and WARNS (does not fail) when its geomean is more than 10%
   below the committed BENCH_adaptive.json — the committed full-grid
   file stays the reference. *)

module TA = Harness.Table_adaptive
module M = Harness.Measure

let out_file = "BENCH_adaptive.json"
let smoke_file = "BENCH_adaptive.smoke.json"
let budget = 10.0
let smoke_benches = [ "compress"; "db"; "mtrt" ]

(* ---- wall-clock timing ---- *)

type wall = { w_min : float; w_med : float; w_max : float } (* milliseconds *)

let batches = 5

let summarize samples =
  let s = List.sort compare samples in
  {
    w_min = List.nth s 0;
    w_med = List.nth s (List.length s / 2);
    w_max = List.nth s (List.length s - 1);
  }

(* One honest uncached adaptive execution per sample, [batches] samples
   per workload, round-robin across workloads so machine drift cannot
   bias any single row; summarized as min/median/max, same methodology
   as interp_bench.  Sequential on purpose — Pool workers timing
   against each other would measure scheduler contention. *)
let wall_times benches =
  let transform = Core.Transform.exhaustive TA.spec in
  let config = TA.config ~budget () in
  let runs =
    List.map
      (fun (b : Workloads.Suite.benchmark) ->
        let build = M.prepare b in
        ( b.Workloads.Suite.bname,
          fun () -> M.adaptive_wall ~config ~transform build ))
      benches
  in
  let samples = List.map (fun _ -> ref []) runs in
  for _ = 1 to batches do
    List.iter2 (fun (_, run) acc -> acc := run () :: !acc) runs samples
  done;
  List.map2
    (fun (name, _) acc ->
      (name, summarize (List.map (fun s -> s *. 1000.0) !acc)))
    runs samples

let json_of_rows (rows : TA.row list) walls =
  let ok r = match r.TA.nums with Ok n -> n | Error _ -> assert false in
  let g, a = TA.summary rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"budget_pts\": %.1f,\n  \"benchmarks\": [\n" budget);
  List.iteri
    (fun i r ->
      let n = ok r in
      let w = List.assoc r.TA.bench walls in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"instr_overhead_pct\": %.1f, \
            \"adaptive_overhead_pct\": %.1f, \"speedup\": %.3f, \
            \"achieved_pts\": %.2f, \"decisions\": %d, \"wall_ms\": %.2f, \
            \"wall_ms_min\": %.2f, \"wall_ms_max\": %.2f }%s\n"
           r.TA.bench n.TA.instr_oh n.TA.adaptive_oh n.TA.speedup n.TA.achieved
           n.TA.ndecisions w.w_med w.w_min w.w_max
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"timing\": \"median-of-%d interleaved batches\",\n\
       \  \"geomean_speedup\": %.3f,\n\
       \  \"mean_achieved_pts\": %.2f\n\
        }\n"
       batches g a);
  Buffer.contents buf

(* ---- validation (reuses Interp_bench's JSON parser) ---- *)

let validate_json ~file ~expect text =
  let v =
    try Interp_bench.parse_json text
    with Interp_bench.Bad m -> failwith (file ^ ": " ^ m)
  in
  let rows, gm, achieved =
    match v with
    | Interp_bench.Obj
        [
          ("budget_pts", Interp_bench.Num _);
          ("benchmarks", Interp_bench.Arr rows);
          ("timing", Interp_bench.Str _);
          ("geomean_speedup", Interp_bench.Num gm);
          ("mean_achieved_pts", Interp_bench.Num a);
        ] ->
        (rows, gm, a)
    | _ ->
        failwith
          (file
         ^ ": expected { \"budget_pts\": n, \"benchmarks\": [...], \
            \"timing\": s, \"geomean_speedup\": n, \"mean_achieved_pts\": n }")
  in
  let speedups =
    List.map
      (fun r ->
        match r with
        | Interp_bench.Obj o ->
            let str k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Str s) -> s
              | _ -> failwith (Printf.sprintf "%s: missing string %S" file k)
            in
            let num k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Num f) -> f
              | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
            in
            if num "speedup" <= 0.0 then failwith (file ^ ": bad speedup");
            if num "achieved_pts" < 0.0 then
              failwith (file ^ ": negative achieved overhead");
            let w = num "wall_ms" in
            let wmn = num "wall_ms_min" and wmx = num "wall_ms_max" in
            if not (w > 0.0 && wmn > 0.0 && wmx > 0.0) then
              failwith (file ^ ": non-positive wall_ms");
            if wmn > w || w > wmx then
              failwith (file ^ ": wall_ms min/median/max out of order");
            (str "name", num "speedup")
        | _ -> failwith (file ^ ": non-object row"))
      rows
  in
  List.iter
    (fun b ->
      if not (List.mem_assoc b speedups) then
        failwith (Printf.sprintf "%s: missing benchmark %S" file b))
    expect;
  (gm, achieved, speedups)

(* geomean the committed full-grid file predicts for the smoke subset —
   comparing subset-to-subset keeps the regression warning meaningful *)
let committed_geomean () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text ->
      let all =
        List.map
          (fun (b : Workloads.Suite.benchmark) -> b.Workloads.Suite.bname)
          (Harness.Common.benchmarks ())
      in
      let _, _, speedups = validate_json ~file:out_file ~expect:all text in
      let sub = List.map (fun b -> List.assoc b speedups) smoke_benches in
      let n = List.length sub in
      Some
        (exp (List.fold_left (fun a s -> a +. log s) 0.0 sub /. float_of_int n))

(* ---- entry points ---- *)

let run_rows ~file ~benches =
  Printf.printf
    "Adaptive benchmark: FDO loop vs exhaustive instrumentation (budget %.0f \
     pts)\n"
    budget;
  let rows = TA.run ~budget ?benches () in
  (match TA.failures rows with
  | [] -> ()
  | fs ->
      print_string (Harness.Robust.report fs);
      failwith "adaptive bench: cells failed, refusing to write results");
  print_string (TA.to_string rows);
  let bench_list =
    match benches with Some l -> l | None -> Harness.Common.benchmarks ()
  in
  Printf.printf "  timing adaptive wall-clock (median-of-%d interleaved)...\n%!"
    batches;
  let walls = wall_times bench_list in
  List.iter
    (fun (name, w) ->
      Printf.printf "  %-14s adaptive %8.2f ms/run (%.2f-%.2f)\n%!" name
        w.w_med w.w_min w.w_max)
    walls;
  let oc = open_out file in
  output_string oc (json_of_rows rows walls);
  close_out oc;
  Printf.printf "  wrote %s\n" file;
  rows

let run () = ignore (run_rows ~file:out_file ~benches:None : TA.row list)

let smoke () =
  let benches = List.map Workloads.Suite.find smoke_benches in
  let rows = run_rows ~file:smoke_file ~benches:(Some benches) in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let gm, achieved, _ =
    validate_json ~file:smoke_file ~expect:smoke_benches text
  in
  if List.length rows <> List.length smoke_benches then
    failwith (smoke_file ^ ": row count does not match the workload subset");
  if gm < 1.0 then
    failwith
      (Printf.sprintf "%s: adaptive loop no longer wins (geomean %.2fx)"
         smoke_file gm);
  Printf.printf "  smoke: geomean %.2fx, achieved %.1f pts against a %.0f-pt \
                 budget\n"
    gm achieved budget;
  match committed_geomean () with
  | None -> Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      if gm < 0.9 *. committed then
        Printf.printf
          "WARNING: smoke geomean %.2fx is >10%% below committed %.2fx (%s)\n"
          gm committed out_file
      else
        Printf.printf "  smoke geomean %.2fx vs committed %.2fx: OK\n" gm
          committed
