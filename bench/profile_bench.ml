(* Recording-path benchmark: flat-slot recording vs the legacy
   event-by-event collector.

   For every profile kind of the paper (call edges, field accesses,
   basic-block edges, value TNV, Ball–Larus paths, receiver classes,
   CCT), instruments a workload exhaustively with just that kind and
   runs it to completion under both recording paths on both engines,
   timing wall-clock per run and normalizing to nanoseconds per
   simulated instruction.  The slot-resolution pre-pass and the
   end-of-run decode are INSIDE the timed region: the speedup reported
   is for the whole recording pipeline at equal decoded output, not
   just the hot loop.

   Before timing, the two paths' results are asserted identical —
   cycles, counters, and every decoded profile table including
   iteration order — so the benchmark refuses to compare paths that
   disagree (the same invariant test/test_slots.ml fuzzes).

   Two speedups are reported per configuration.  The whole-run ratio
   (legacy ns/instr over slots ns/instr) is Amdahl-bounded: most of an
   instrumented run is executing the program, not recording events, so
   even a free recorder could not double it.  The headline metric is
   therefore the RECORDING-PATH speedup — (T_legacy - T_base) /
   (T_slots - T_base) against an uninstrumented baseline run of the
   same workload — which isolates the cost of the event path itself,
   exactly the way every table of the reproduction reports
   instrumentation overhead relative to the uninstrumented baseline.

   Results go to BENCH_profiles.json (hand-written JSON, same format
   conventions as BENCH_interp.json).  [smoke] reruns at the smallest
   scale with a tiny budget into BENCH_profiles.smoke.json, validates
   that it parses and covers every kind on both engines, and WARNS
   (does not fail) when its geomean is more than 10% below the
   committed BENCH_profiles.json — smoke timings at scale 1 are noisy,
   so the committed full-scale file stays the reference. *)

module M = Harness.Measure

let out_file = "BENCH_profiles.json"
let smoke_file = "BENCH_profiles.smoke.json"

let kinds =
  [
    ("call_edge", Core.Spec.call_edge);
    ("field_access", Core.Spec.field_access);
    ("edge", Core.Spec.edge_profile);
    ("value", Core.Spec.value_profile);
    ("path", Profiles.Specs.path_profile);
    ("receiver", Profiles.Specs.receiver_profile);
    ("cct", Profiles.Specs.cct_profile);
  ]

let workload = "mtrt"

type timing = Interp_bench.timing = {
  t_min : float;
  t_med : float;
  t_max : float;
}

type row = {
  kind : string;
  engine : string;
  scale : int;
  instructions : int;
  instrument_ops : int;
  legacy_ns : timing; (* ns per simulated instruction *)
  slots_ns : timing;
  legacy_t : timing; (* seconds per run *)
  slots_t : timing;
  base_t : timing; (* seconds per uninstrumented baseline run *)
}

let speedup r = r.legacy_ns.t_med /. r.slots_ns.t_med

(* recording-path speedup: overhead over the uninstrumented baseline,
   clamped away from zero so a noisy tiny-budget run cannot divide by a
   negative overhead.  Computed from medians, like every speedup in the
   median-of-5 benches. *)
let overhead_speedup r =
  let l = Float.max 1e-9 (r.legacy_t.t_med -. r.base_t.t_med)
  and s = Float.max 1e-9 (r.slots_t.t_med -. r.base_t.t_med) in
  l /. s

(* decoded-profile observation, unsorted: iteration order is part of
   the equality being claimed *)
let observe (res : Vm.Interp.result) (col : Profiles.Collector.t) =
  ( res.Vm.Interp.cycles,
    res.Vm.Interp.instructions,
    res.Vm.Interp.counters,
    res.Vm.Interp.output,
    Profiles.Call_edge.to_alist col.Profiles.Collector.call_edges,
    Profiles.Field_access.to_alist col.Profiles.Collector.fields,
    Profiles.Edge_profile.to_alist col.Profiles.Collector.edges,
    ( Profiles.Value_profile.to_keyed col.Profiles.Collector.values,
      Profiles.Path_profile.to_alist col.Profiles.Collector.paths,
      Profiles.Receiver_profile.to_keyed col.Profiles.Collector.receivers,
      Profiles.Cct.to_keyed col.Profiles.Collector.cct ) )

(* Median-of-5 interleaved batches over THREE runners (baseline,
   legacy, slots) — the shared Interp_bench methodology, extended so
   the baseline subtraction in [overhead_speedup] sees the same
   scheduling drift as the runs it is subtracted from.  Timing the
   baseline in a separate earlier block was measurably biased: a few
   percent of drift on the baseline swamps the small slots-path
   overhead. *)
let batches = Interp_bench.batches

let time_triple ~budget run_a run_b run_c =
  let probe run =
    let t0 = Unix.gettimeofday () in
    ignore (run ());
    Unix.gettimeofday () -. t0
  in
  let per_batch = budget /. float_of_int batches in
  let reps run =
    max 1 (int_of_float (per_batch /. Float.max 1e-6 (probe run)))
  in
  let reps_a = reps run_a and reps_b = reps run_b and reps_c = reps run_c in
  let batch run n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (run ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let acc_a = ref [] and acc_b = ref [] and acc_c = ref [] in
  for _ = 1 to batches do
    acc_a := batch run_a reps_a :: !acc_a;
    acc_b := batch run_b reps_b :: !acc_b;
    acc_c := batch run_c reps_c :: !acc_c
  done;
  ( Interp_bench.summarize !acc_a,
    Interp_bench.summarize !acc_b,
    Interp_bench.summarize !acc_c )

let bench_kind ~scale ~budget ~engine (kname, spec) =
  let build = M.prepare ?scale (Workloads.Suite.find workload) in
  let funcs =
    List.map
      (fun f -> (Core.Transform.exhaustive spec f).Core.Transform.func)
      build.M.base_funcs
  in
  let prog = Vm.Program.link build.M.classes ~funcs in
  let base_prog = Vm.Program.link build.M.classes ~funcs:build.M.base_funcs in
  let args = [ build.M.scale ] in
  let eng = match engine with "ref" -> `Ref | _ -> `Fast in
  let run_base () =
    Vm.Interp.run ~engine:eng ~use_icache:true base_prog
      ~entry:Workloads.Suite.entry ~args Vm.Interp.null_hooks
  in
  (* one full pipeline pass per timed run: fresh recording state,
     execute, decode *)
  let run_legacy () =
    let c = Profiles.Collector.create () in
    let res =
      Vm.Interp.run ~engine:eng ~use_icache:true prog
        ~entry:Workloads.Suite.entry ~args
        (Profiles.Collector.null_sampler_hooks c)
    in
    (res, c)
  in
  let run_slots () =
    let s = Profiles.Slots.create prog in
    let res =
      Vm.Interp.run ~engine:eng ~use_icache:true
        ~recorder:(Profiles.Slots.recorder s) prog
        ~entry:Workloads.Suite.entry ~args
        (Profiles.Slots.null_sampler_hooks s)
    in
    (res, Profiles.Slots.decode s)
  in
  (* warm runs double as the differential check (and compile the
     program under the Fast engine so compilation stays out of the
     timed loop) *)
  let res_l, col_l = run_legacy () in
  let res_s, col_s = run_slots () in
  if observe res_l col_l <> observe res_s col_s then
    failwith
      (Printf.sprintf "%s/%s: recording paths disagree, refusing to time"
         kname engine);
  ignore (run_base ());
  let instr = float_of_int res_l.Vm.Interp.instructions in
  let base_t, legacy_t, slots_t =
    time_triple ~budget
      (fun () -> run_base ())
      (fun () -> run_legacy ())
      (fun () -> run_slots ())
  in
  let per_instr t =
    {
      t_min = t.t_min *. 1e9 /. instr;
      t_med = t.t_med *. 1e9 /. instr;
      t_max = t.t_max *. 1e9 /. instr;
    }
  in
  let row =
    {
      kind = kname;
      engine;
      scale = build.M.scale;
      instructions = res_l.Vm.Interp.instructions;
      instrument_ops =
        res_l.Vm.Interp.counters.Vm.Interp.instrument_ops;
      legacy_ns = per_instr legacy_t;
      slots_ns = per_instr slots_t;
      legacy_t;
      slots_t;
      base_t;
    }
  in
  Printf.printf
    "  %-13s %-4s legacy %7.2f ns/instr   slots %7.2f ns/instr   run %4.2fx   \
     recording %5.2fx\n\
     %!"
    row.kind row.engine row.legacy_ns.t_med row.slots_ns.t_med (speedup row)
    (overhead_speedup row);
  row

let geomean f rows =
  exp
    (List.fold_left (fun a r -> a +. log (f r)) 0.0 rows
    /. float_of_int (List.length rows))

(* JSON convention shared with BENCH_interp: bare *_ns_per_instr
   fields carry the median, with _min/_max siblings, and a top-level
   "timing" marker names the methodology. *)
let json_of_rows rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"timing\": \"median-of-%d interleaved batches\",\n  \"profiles\": [\n"
       batches);
  let timing k (t : timing) =
    Printf.sprintf
      "\"%s_ns_per_instr\": %.3f, \"%s_ns_min\": %.3f, \"%s_ns_max\": %.3f" k
      t.t_med k t.t_min k t.t_max
  in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"kind\": %S, \"engine\": %S, \"scale\": %d, \
            \"instructions\": %d, \"instrument_ops\": %d, %s, %s, \
            \"baseline_s\": %.6f, \"run_speedup\": %.3f, \
            \"recording_speedup\": %.3f }%s\n"
           r.kind r.engine r.scale r.instructions r.instrument_ops
           (timing "legacy" r.legacy_ns)
           (timing "slots" r.slots_ns)
           r.base_t.t_med (speedup r) (overhead_speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n\
       \  \"geomean_run_speedup\": %.3f,\n\
       \  \"geomean_recording_speedup\": %.3f\n\
        }\n"
       (geomean speedup rows)
       (geomean overhead_speedup rows));
  Buffer.contents buf

(* ---- validation (reuses Interp_bench's JSON parser) ---- *)

let validate_json ~file text =
  let v =
    try Interp_bench.parse_json text
    with Interp_bench.Bad m -> failwith (file ^ ": " ^ m)
  in
  let rows, gm =
    match v with
    | Interp_bench.Obj
        [
          ("timing", Interp_bench.Str _);
          ("profiles", Interp_bench.Arr rows);
          ("geomean_run_speedup", Interp_bench.Num _);
          ("geomean_recording_speedup", Interp_bench.Num gm);
        ] ->
        (rows, gm)
    | _ ->
        failwith
          (file
         ^ ": expected { \"timing\": s, \"profiles\": [...], \
            \"geomean_run_speedup\": n, \"geomean_recording_speedup\": n }")
  in
  let keys =
    List.map
      (fun r ->
        match r with
        | Interp_bench.Obj o ->
            let str k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Str s) -> s
              | _ -> failwith (Printf.sprintf "%s: missing string %S" file k)
            in
            let num k =
              match List.assoc_opt k o with
              | Some (Interp_bench.Num f) -> f
              | _ -> failwith (Printf.sprintf "%s: missing number %S" file k)
            in
            List.iter
              (fun cfg ->
                let med = num (cfg ^ "_ns_per_instr") in
                let mn = num (cfg ^ "_ns_min")
                and mx = num (cfg ^ "_ns_max") in
                if not (med > 0.0 && mn > 0.0 && mx > 0.0) then
                  failwith (file ^ ": non-positive ns/instr for " ^ cfg);
                if mn > med || med > mx then
                  failwith
                    (file ^ ": min/median/max out of order for " ^ cfg))
              [ "legacy"; "slots" ];
            (str "kind", str "engine")
        | _ -> failwith (file ^ ": non-object row"))
      rows
  in
  List.iter
    (fun (kname, _) ->
      List.iter
        (fun engine ->
          if not (List.mem (kname, engine) keys) then
            failwith
              (Printf.sprintf "%s: missing kind %S for engine %s" file kname
                 engine))
        [ "ref"; "fast" ])
    kinds;
  gm

let committed_geomean () =
  match
    try Some (In_channel.with_open_text out_file In_channel.input_all)
    with Sys_error _ -> None
  with
  | None -> None
  | Some text -> Some (validate_json ~file:out_file text)

(* ---- entry points ---- *)

let run_rows ~file ~scale ~budget =
  Printf.printf
    "Recording benchmark: legacy event-by-event vs flat-slot (workload %s)\n"
    workload;
  let rows =
    List.concat_map
      (fun engine -> List.map (bench_kind ~scale ~budget ~engine) kinds)
      [ "ref"; "fast" ]
  in
  let oc = open_out file in
  output_string oc (json_of_rows rows);
  close_out oc;
  Printf.printf
    "  geometric-mean: whole-run %.2fx, recording path %.2fx over %d \
     configurations\n"
    (geomean speedup rows)
    (geomean overhead_speedup rows)
    (List.length rows);
  Printf.printf "  wrote %s\n" file;
  rows

let run () = ignore (run_rows ~file:out_file ~scale:None ~budget:0.6)

let smoke () =
  let rows = run_rows ~file:smoke_file ~scale:(Some 1) ~budget:0.02 in
  let text = In_channel.with_open_text smoke_file In_channel.input_all in
  let gm = validate_json ~file:smoke_file text in
  if List.length rows <> 2 * List.length kinds then
    failwith (smoke_file ^ ": row count does not match the kind x engine grid");
  (match committed_geomean () with
  | None ->
      Printf.printf "  (no committed %s to compare against)\n" out_file
  | Some committed ->
      if gm < 0.9 *. committed then
        Printf.printf
          "WARNING: smoke geomean %.2fx is >10%% below committed %.2fx (%s)\n"
          gm committed out_file
      else
        Printf.printf "  smoke geomean %.2fx vs committed %.2fx: OK\n" gm
          committed);
  Printf.printf
    "bench-profiles OK: %s parses, both engines cover all %d profile kinds\n"
    smoke_file (List.length kinds)
