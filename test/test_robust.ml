(* Crash tolerance ([Harness.Robust]): exception classification, transient
   retry, the append-only checkpoint store (including crash-truncated
   tails and configuration mismatches), and cell isolation — one failing
   cell never takes its siblings down. *)

module Lir = Ir.Lir

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* the store is global; every test that arms it must disarm it *)
let with_checkpoint ?meta path f =
  Harness.Robust.set_checkpoint ?meta (Some path);
  Fun.protect ~finally:(fun () -> Harness.Robust.set_checkpoint None) f

let tmp name =
  let path = Filename.temp_file ("isf_" ^ name) ".ckpt" in
  Sys.remove path;
  path

(* ---- classification ---- *)

let test_classify () =
  let cls = Harness.Robust.classify in
  check Alcotest.string "injected fault" "fault"
    (cls (Vm.Interp.Runtime_error "injected fault: trap at cycle 9 (plan seed 1)"));
  check Alcotest.string "fuel" "fuel"
    (cls (Vm.Interp.Runtime_error "out of fuel after 100 cycles"));
  check Alcotest.string "watchdog" "timeout"
    (cls (Vm.Interp.Runtime_error "wall-clock watchdog expired after 5 cycles"));
  check Alcotest.string "other VM error" "bug"
    (cls (Vm.Interp.Runtime_error "division by zero"));
  check Alcotest.string "Transient" "transient"
    (cls (Harness.Robust.Transient "flaky"));
  check Alcotest.string "Sys_error" "transient" (cls (Sys_error "EINTR"));
  check Alcotest.string "anything else" "bug" (cls (Failure "boom"))

(* ---- transient retry ---- *)

let test_transient_retries_then_succeeds () =
  let runs = ref 0 in
  let r =
    Harness.Robust.cell ~key:"t/retry-ok" (fun () ->
        incr runs;
        if !runs < 3 then raise (Harness.Robust.Transient "not yet");
        42)
  in
  check_bool "eventually Ok" true (r = Ok 42);
  check_int "two retries consumed" 3 !runs

let test_transient_exhausts () =
  let runs = ref 0 in
  match
    Harness.Robust.cell ~retries:1 ~key:"t/retry-fail" (fun () ->
        incr runs;
        raise (Harness.Robust.Transient "always"))
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      check_int "initial attempt + 1 retry" 2 !runs;
      check_int "attempts recorded" 2 f.Harness.Robust.attempts;
      check Alcotest.string "still classified transient" "transient"
        f.Harness.Robust.classification

let test_bug_not_retried () =
  let runs = ref 0 in
  match
    Harness.Robust.cell ~key:"t/bug" (fun () ->
        incr runs;
        failwith "deterministic bug")
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      check_int "no retry for a deterministic bug" 1 !runs;
      check Alcotest.string "classified bug" "bug"
        f.Harness.Robust.classification;
      check Alcotest.string "message preserved" "deterministic bug"
        f.Harness.Robust.message

(* ---- cell isolation ---- *)

(* one cell blows the VM watchdog; its siblings complete *)
let test_sibling_cells_survive () =
  let cell_of i =
    Harness.Robust.cell ~key:(Printf.sprintf "t/iso/%d" i) (fun () ->
        if i = 1 then begin
          let classes, funcs = Helpers.build Helpers.loop_src in
          ignore
            (Vm.Interp.run
               ~deadline:(Unix.gettimeofday () -. 1.0)
               ~deadline_poll:1_000
               (Vm.Program.link classes ~funcs)
               ~entry:{ Lir.mclass = "Main"; mname = "main" }
               ~args:[ 1_000_000 ] Vm.Interp.null_hooks)
        end;
        float_of_int i)
  in
  let outcomes = Harness.Pool.map ~jobs:3 cell_of [ 0; 1; 2 ] in
  check
    Alcotest.(list (float 0.0))
    "siblings completed" [ 0.0; 2.0 ]
    (Harness.Robust.oks outcomes);
  match Harness.Robust.errors outcomes with
  | [ f ] ->
      check Alcotest.string "runaway classified timeout" "timeout"
        f.Harness.Robust.classification;
      check Alcotest.string "under its own key" "t/iso/1" f.Harness.Robust.key
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs)

(* ---- checkpoint store ---- *)

let test_checkpoint_roundtrip () =
  let path = tmp "roundtrip" in
  let runs = ref 0 in
  let body () =
    incr runs;
    3.25
  in
  with_checkpoint ~meta:"m" path (fun () ->
      check_bool "computed" true
        (Harness.Robust.cell ~key:"t/ck" body = Ok 3.25);
      check_bool "cached in memory" true
        (Harness.Robust.cell ~key:"t/ck" body = Ok 3.25);
      check_int "body ran once" 1 !runs);
  (* a fresh arm must reload the persisted cell from disk *)
  with_checkpoint ~meta:"m" path (fun () ->
      check_bool "cached on disk" true
        (Harness.Robust.cell ~key:"t/ck" body = Ok 3.25);
      check_int "body still ran once" 1 !runs);
  Sys.remove path

let test_checkpoint_failures_not_persisted () =
  let path = tmp "nofail" in
  let runs = ref 0 in
  with_checkpoint path (fun () ->
      match
        Harness.Robust.cell ~key:"t/fail" (fun () ->
            incr runs;
            failwith "broken")
      with
      | Ok _ -> Alcotest.fail "expected failure"
      | Error _ -> ());
  with_checkpoint path (fun () ->
      check_bool "failed cell is re-attempted on resume" true
        (Harness.Robust.cell ~key:"t/fail" (fun () ->
             incr runs;
             7.0)
        = Ok 7.0));
  check_int "ran once per arm" 2 !runs;
  Sys.remove path

let test_checkpoint_truncated_tail () =
  let path = tmp "trunc" in
  with_checkpoint path (fun () ->
      check_bool "cell 1" true (Harness.Robust.cell ~key:"t/a" (fun () -> 1.0) = Ok 1.0);
      check_bool "cell 2" true (Harness.Robust.cell ~key:"t/b" (fun () -> 2.0) = Ok 2.0));
  (* simulate a kill mid-write: chop bytes off the final record *)
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub bytes 0 (String.length bytes - 5)));
  let runs = ref 0 in
  with_checkpoint path (fun () ->
      check_bool "intact record survives" true
        (Harness.Robust.cell ~key:"t/a" (fun () ->
             incr runs;
             -1.0)
        = Ok 1.0);
      check_bool "truncated record is recomputed" true
        (Harness.Robust.cell ~key:"t/b" (fun () ->
             incr runs;
             2.0)
        = Ok 2.0);
      check_int "only the lost cell re-ran" 1 !runs);
  Sys.remove path

let test_checkpoint_meta_mismatch () =
  let path = tmp "meta" in
  with_checkpoint ~meta:"scale=1 engine=fast" path (fun () ->
      ignore (Harness.Robust.cell ~key:"t/m" (fun () -> 1.0)));
  check_bool "mismatched configuration refuses to resume" true
    (try
       Harness.Robust.set_checkpoint ~meta:"scale=2 engine=fast" (Some path);
       Harness.Robust.set_checkpoint None;
       false
     with Failure _ -> true);
  Sys.remove path

(* resuming a real table from its checkpoint must render byte-identically
   to the uninterrupted run *)
let test_table_resume_byte_identical () =
  let benches = [ Workloads.Suite.find "jess"; Workloads.Suite.find "db" ] in
  let table () =
    Harness.Table1.to_string (Harness.Table1.run ~scale:1 ~benches ())
  in
  let fresh = table () in
  let path = tmp "table" in
  let first = with_checkpoint ~meta:"t1" path table in
  let resumed = with_checkpoint ~meta:"t1" path table in
  check Alcotest.string "checkpointed == plain" fresh first;
  check Alcotest.string "resumed == plain" fresh resumed;
  Sys.remove path

(* ---- rendering ---- *)

let test_report_rendering () =
  let f =
    {
      Harness.Robust.key = "table1/db/call-edge";
      classification = "fault";
      attempts = 1;
      message = "injected fault: trap at cycle 9 (plan seed 1)";
      backtrace = "";
    }
  in
  let r = Harness.Robust.report [ f ] in
  let has sub =
    let n = String.length sub and h = String.length r in
    let rec go i = i + n <= h && (String.sub r i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "header counts failures" true (has "1 cell(s) failed");
  check_bool "names the cell" true (has "ERR table1/db/call-edge");
  check_bool "names the class" true (has "[fault after 1 attempt]");
  check Alcotest.string "ok cells render through" "1.5"
    (Harness.Robust.cell_str (Printf.sprintf "%.1f") (Ok 1.5));
  check Alcotest.string "failed cells render ERR" "ERR"
    (Harness.Robust.cell_str (Printf.sprintf "%.1f") (Error f))

let suite =
  [
    ( "robust",
      [
        Alcotest.test_case "classification" `Quick test_classify;
        Alcotest.test_case "transient retries then succeeds" `Quick
          test_transient_retries_then_succeeds;
        Alcotest.test_case "transient retries exhaust" `Quick
          test_transient_exhausts;
        Alcotest.test_case "bugs are not retried" `Quick test_bug_not_retried;
        Alcotest.test_case "sibling cells survive a runaway" `Quick
          test_sibling_cells_survive;
        Alcotest.test_case "checkpoint roundtrip" `Quick
          test_checkpoint_roundtrip;
        Alcotest.test_case "failures are not persisted" `Quick
          test_checkpoint_failures_not_persisted;
        Alcotest.test_case "truncated tail tolerated" `Quick
          test_checkpoint_truncated_tail;
        Alcotest.test_case "meta mismatch refused" `Quick
          test_checkpoint_meta_mismatch;
        Alcotest.test_case "table resume byte-identical" `Quick
          test_table_resume_byte_identical;
        Alcotest.test_case "report rendering" `Quick test_report_rendering;
      ] );
  ]
