(* Content-addressed run cache ([Harness.Runcache] + [Harness.Digest])
   and the global deduplicating scheduler ([Harness.Schedule]): key
   determinism and distinctness (engine/recording/trigger/faults never
   alias), the two-tier hit path, tolerance of corrupt and truncated
   disk entries, loud refusal of digest collisions and incompatible
   cache versions, compute-once under domain races, byte-identical
   table output cold vs. warm across both engines and both recording
   paths, chaos isolation, checkpoint composition, and full scheduler
   coverage of a driver's cells. *)

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module R = Harness.Runcache
module D = Harness.Digest
module M = Harness.Measure

module C = R.Make (struct
  type t = string
end)

let tmp_dir name =
  let path = Filename.temp_file ("isf_" ^ name) ".cache" in
  Sys.remove path;
  path

(* The cache is global; every test that arms it must disarm it.  Memory
   is reset on entry so a reference run computed before arming cannot
   satisfy the "cold" run from the memo tier (which would leave nothing
   stored on disk). *)
let with_cache dir f =
  R.reset_memory ();
  R.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      R.set_dir None;
      R.reset_memory ())
    f

let mk_key ?(engine = "fast") ?(recording = "slots") ?(trigger = "none")
    ?(faults = "none") ?(bench = "jess") () =
  D.run_config ~kind:"test" ~bench ~scale:1 ~funcs_digest:(D.hex "funcs")
    ~engine ~recording ~trigger ~timer_period:None
    ~costs:(D.costs Vm.Costs.default) ~faults ()

(* ---- digests ---- *)

let test_digest_keys () =
  check_str "same config digests identically" (mk_key ()) (mk_key ());
  let distinct what a b =
    check_bool (what ^ " never alias") false (String.equal a b)
  in
  distinct "engines" (mk_key ~engine:"ref" ()) (mk_key ~engine:"fast" ());
  distinct "recordings"
    (mk_key ~recording:"legacy" ())
    (mk_key ~recording:"slots" ());
  distinct "triggers"
    (mk_key ~trigger:(D.trigger (Core.Sampler.Counter { interval = 1000; jitter = 0 })) ())
    (mk_key ~trigger:(D.trigger Core.Sampler.Always) ());
  distinct "benchmarks" (mk_key ~bench:"jess" ()) (mk_key ~bench:"db" ());
  check_str "empty fault plan is the clean marker" "none"
    (D.fault_plan Fault.none);
  let chaos seed = D.fault_plan (Fault.of_seed ~compile_fail_pct:25 seed) in
  check_str "fault digests are deterministic" (chaos 7) (chaos 7);
  distinct "fault seeds" (chaos 7) (chaos 8);
  distinct "chaos and clean runs" (mk_key ()) (mk_key ~faults:(chaos 7) ());
  (* every trigger form renders distinctly *)
  let triggers =
    List.map D.trigger
      [
        Core.Sampler.Counter { interval = 100; jitter = 0 };
        Core.Sampler.Counter { interval = 100; jitter = 25 };
        Core.Sampler.Counter_per_thread { interval = 100 };
        Core.Sampler.Timer_bit;
        Core.Sampler.Always;
        Core.Sampler.Never;
      ]
  in
  check_int "trigger renderings all distinct" (List.length triggers)
    (List.length (List.sort_uniq compare triggers))

(* ---- two-tier hit path ---- *)

let test_memory_then_disk () =
  let dir = tmp_dir "tiers" in
  let key = mk_key ~bench:"tiers" () in
  let runs = ref 0 in
  let body v () =
    incr runs;
    v
  in
  with_cache dir (fun () ->
      check_str "computed" "v" (C.find ~key (body "v"));
      check_str "memory hit" "v" (C.find ~key (body "other"));
      check_int "computed once" 1 !runs;
      R.reset_memory ();
      check_str "disk hit after memory reset" "v" (C.find ~key (body "other"));
      check_int "disk tier never re-runs the body" 1 !runs;
      let s = R.stats () in
      check_int "disk hit counted" 1 s.R.disk_hits;
      check_int "no misses after reset" 0 s.R.misses)

let test_corrupt_entries_are_misses () =
  let dir = tmp_dir "corrupt" in
  let key = mk_key ~bench:"corrupt" () in
  let path () = Filename.concat dir (D.hex key ^ ".cell") in
  with_cache dir (fun () ->
      check_str "computed" "good" (C.find ~key (fun () -> "good"));
      check_bool "entry on disk" true (Sys.file_exists (path ()));
      (* truncate mid-record, like a torn write from a killed process *)
      let bytes = In_channel.with_open_bin (path ()) In_channel.input_all in
      Out_channel.with_open_bin (path ()) (fun oc ->
          Out_channel.output_string oc
            (String.sub bytes 0 (String.length bytes / 2)));
      R.reset_memory ();
      check_str "truncated entry recomputes" "again"
        (C.find ~key (fun () -> "again"));
      R.reset_memory ();
      check_str "recomputed entry was rewritten" "again"
        (C.find ~key (fun () -> Alcotest.fail "should hit disk"));
      (* a foreign file under the entry's name is a miss, not a crash *)
      Out_channel.with_open_bin (path ()) (fun oc ->
          Out_channel.output_string oc "not a cache entry at all");
      R.reset_memory ();
      check_str "garbage entry recomputes" "fresh"
        (C.find ~key (fun () -> "fresh")))

let test_collision_is_loud () =
  let dir = tmp_dir "collision" in
  let key = mk_key ~bench:"collision" () in
  with_cache dir (fun () ->
      (* forge an entry that parses and verifies but embeds a different
         run key: the one defect that must never be served silently *)
      let payload = Marshal.to_string "forged" [] in
      let entry =
        "ISF-RUNCACHE-ENTRY 1\n"
        ^ Marshal.to_string
            ("some other run key", Stdlib.Digest.string payload, payload)
            []
      in
      Out_channel.with_open_bin
        (Filename.concat dir (D.hex key ^ ".cell"))
        (fun oc -> Out_channel.output_string oc entry);
      check_bool "digest collision raises" true
        (try
           ignore (C.find ~key (fun () -> "x"));
           false
         with Failure _ -> true))

let test_version_mismatch_refused () =
  let dir = tmp_dir "version" in
  Unix.mkdir dir 0o700;
  Out_channel.with_open_text (Filename.concat dir "CACHE_VERSION") (fun oc ->
      Out_channel.output_string oc "isf-runcache 0 ocaml-0.0.0\n");
  check_bool "incompatible cache dir refused" true
    (try
       R.set_dir (Some dir);
       R.set_dir None;
       false
     with Failure _ -> true);
  check_bool "cache stays disarmed after refusal" true (R.dir () = None)

let test_race_computes_once () =
  let key = mk_key ~bench:"race" () in
  let runs = Atomic.make 0 in
  let vals =
    Harness.Pool.map ~jobs:2
      (fun i ->
        C.find ~key (fun () ->
            Atomic.incr runs;
            Unix.sleepf 0.01;
            "r" ^ string_of_int i))
      [ 0; 1 ]
  in
  (match vals with
  | [ a; b ] -> check_str "both domains observe one value" a b
  | _ -> Alcotest.fail "expected two results");
  check_int "racing domains compute once" 1 (Atomic.get runs);
  R.reset_memory ()

(* ---- end-to-end: table output through the cache ---- *)

let benches () = [ Workloads.Suite.find "jess"; Workloads.Suite.find "db" ]

(* Robust.persist fills its in-memory cell store even with no checkpoint
   armed, so an honest re-measurement must clear it first. *)
let fresh_table () =
  Harness.Robust.set_checkpoint None;
  Harness.Table1.to_string (Harness.Table1.run ~scale:1 ~benches:(benches ()) ())

let test_cold_warm_byte_identical () =
  List.iter
    (fun (engine, recording) ->
      M.set_engine engine;
      M.set_recording recording;
      Fun.protect
        ~finally:(fun () ->
          M.set_engine `Fast;
          M.set_recording `Slots)
        (fun () ->
          R.reset_memory ();
          let plain = fresh_table () in
          let dir = tmp_dir "coldwarm" in
          with_cache dir (fun () ->
              let cold = fresh_table () in
              R.reset_memory ();
              let warm = fresh_table () in
              check_str "cold == uncached" plain cold;
              check_str "warm == cold" cold warm;
              let s = R.stats () in
              check_int "warm run misses nothing" 0 s.R.misses;
              check_bool "warm run served from disk" true (s.R.disk_hits > 0))))
    [ (`Ref, `Slots); (`Ref, `Legacy); (`Fast, `Slots); (`Fast, `Legacy) ]

let test_chaos_never_aliases_clean () =
  let dir = tmp_dir "chaos" in
  with_cache dir (fun () ->
      let cold = fresh_table () in
      R.reset_memory ();
      M.set_chaos (Some 11);
      Fun.protect
        ~finally:(fun () -> M.set_chaos None)
        (fun () -> ignore (fresh_table ()));
      let s = R.stats () in
      check_int "no chaos cell served from a clean entry" 0 s.R.disk_hits;
      check_bool "chaos cells were computed" true (s.R.misses > 0);
      M.set_chaos None;
      R.reset_memory ();
      let warm = fresh_table () in
      check_str "clean results undisturbed by the chaos run" cold warm;
      check_int "clean warm run misses nothing" 0 (R.stats ()).R.misses)

let test_checkpoint_and_cache_compose () =
  let plain = fresh_table () in
  let dir = tmp_dir "compose" in
  let ckpt = Filename.temp_file "isf_compose" ".ckpt" in
  Sys.remove ckpt;
  let with_ckpt f =
    Harness.Robust.set_checkpoint ~meta:"rc" (Some ckpt);
    Fun.protect ~finally:(fun () -> Harness.Robust.set_checkpoint None) f
  in
  let table () =
    Harness.Table1.to_string
      (Harness.Table1.run ~scale:1 ~benches:(benches ()) ())
  in
  with_cache dir (fun () ->
      check_str "cold with both armed" plain (with_ckpt table);
      R.reset_memory ();
      check_str "checkpoint resume with cache armed" plain (with_ckpt table);
      (* a fresh checkpoint against the warm cache: cells re-run through
         Measure and every measurement comes from disk *)
      R.reset_memory ();
      let ckpt2 = Filename.temp_file "isf_compose2" ".ckpt" in
      Sys.remove ckpt2;
      Harness.Robust.set_checkpoint ~meta:"rc" (Some ckpt2);
      Fun.protect
        ~finally:(fun () -> Harness.Robust.set_checkpoint None)
        (fun () -> check_str "fresh checkpoint, warm cache" plain (table ()));
      check_int "warm cache fed every cell" 0 (R.stats ()).R.misses;
      Sys.remove ckpt2);
  Sys.remove ckpt

(* ---- shared-directory hygiene (ISSUE 8) ---- *)

let test_stale_tmp_sweep () =
  let dir = tmp_dir "sweep" in
  (* arming once creates the directory and its version stamp *)
  with_cache dir (fun () -> ());
  let stale = Filename.concat dir "isf-dead0.tmp" in
  let fresh = Filename.concat dir "isf-live1.tmp" in
  let foreign = Filename.concat dir "not-ours.tmp" in
  List.iter
    (fun p -> Out_channel.with_open_bin p (fun oc -> output_string oc "x"))
    [ stale; fresh; foreign ];
  (* age the orphan past the threshold; the fresh one could belong to a
     concurrent daemon about to rename it *)
  let old = Unix.gettimeofday () -. R.stale_tmp_age -. 60.0 in
  Unix.utimes stale old old;
  with_cache dir (fun () ->
      check_bool "stale orphan swept on open" false (Sys.file_exists stale);
      check_bool "recent tmp file untouched" true (Sys.file_exists fresh);
      check_bool "foreign files untouched" true (Sys.file_exists foreign))

(* Two daemons sharing one --cache DIR: racing writers of the same keys
   must leave a directory where every entry still verifies.  The second
   writer is a real child process (test/cache_proc.ml) — Unix.fork is
   unavailable once domains have been spawned, and the property under
   test is the cross-process atomicity of temp+rename anyway. *)
let test_two_process_writers_collide_safely () =
  let dir = tmp_dir "twoproc" in
  let n = 8 in
  let keys = List.init n (fun i -> mk_key ~bench:("2p" ^ string_of_int i) ()) in
  let write_all tag =
    List.iter
      (fun key -> ignore (C.find ~key (fun () -> "payload:" ^ tag)))
      keys
  in
  let helper =
    Filename.concat (Filename.dirname Sys.executable_name) "cache_proc.exe"
  in
  check_bool "helper executable present (dune build @all)" true
    (Sys.file_exists helper);
  let pid =
    Unix.create_process helper
      [| helper; dir; "child"; string_of_int n |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  with_cache dir (fun () -> write_all "parent");
  let _, status = Unix.waitpid [] pid in
  check_bool "child wrote its copy cleanly" true (status = Unix.WEXITED 0);
  (* whoever won each rename, every entry must read back verified *)
  with_cache dir (fun () ->
      List.iter
        (fun key ->
          let v = C.find ~key (fun () -> Alcotest.fail "should hit disk") in
          check_bool "entry readable and verified" true
            (v = "payload:parent" || v = "payload:child"))
        keys;
      let s = R.stats () in
      check_int "no corrupt entries after the race" 0 s.R.corrupt;
      check_int "every key served from disk" (List.length keys) s.R.disk_hits)

(* ---- scheduler ---- *)

let test_dedupe () =
  let b = Harness.Schedule.baseline "jess" in
  let i =
    Harness.Schedule.instrumented ~variant:Harness.Schedule.Exhaustive
      ~specs:[ "call-edge" ] "jess"
  in
  check_int "duplicates dropped, order stable" 2
    (List.length (Harness.Schedule.dedupe [ b; i; b; i; b ]));
  check_bool "first occurrence wins" true
    (Harness.Schedule.dedupe [ b; i; b ] = [ b; i ])

let test_prewarm_covers_driver () =
  Harness.Robust.set_checkpoint None;
  R.reset_memory ();
  let plain = fresh_table () in
  R.reset_memory ();
  Harness.Schedule.prewarm
    (Harness.Table1.requests ~scale:1 ~benches:(benches ()) ());
  let before = R.stats () in
  check_bool "prewarm computed cells" true (before.R.misses > 0);
  let out = fresh_table () in
  let after = R.stats () in
  check_str "driver output unchanged by prewarm" plain out;
  check_int "driver found every cell prewarmed" 0
    (after.R.misses - before.R.misses);
  R.reset_memory ()

let suite =
  [
    ( "runcache",
      [
        Alcotest.test_case "run keys: deterministic, never aliasing" `Quick
          test_digest_keys;
        Alcotest.test_case "memory tier then disk tier" `Quick
          test_memory_then_disk;
        Alcotest.test_case "corrupt and truncated entries recompute" `Quick
          test_corrupt_entries_are_misses;
        Alcotest.test_case "digest collision is loud" `Quick
          test_collision_is_loud;
        Alcotest.test_case "incompatible version refused" `Quick
          test_version_mismatch_refused;
        Alcotest.test_case "racing domains compute once" `Quick
          test_race_computes_once;
        Alcotest.test_case "cold == warm, both engines x both recordings"
          `Quick test_cold_warm_byte_identical;
        Alcotest.test_case "chaos never aliases clean entries" `Quick
          test_chaos_never_aliases_clean;
        Alcotest.test_case "checkpoint and cache compose" `Quick
          test_checkpoint_and_cache_compose;
        Alcotest.test_case "stale tmp files swept on open" `Quick
          test_stale_tmp_sweep;
        Alcotest.test_case "two processes share one cache dir safely" `Quick
          test_two_process_writers_collide_safely;
        Alcotest.test_case "scheduler dedupe" `Quick test_dedupe;
        Alcotest.test_case "prewarm covers a driver's cells" `Quick
          test_prewarm_covers_driver;
      ] );
  ]
