(* Core.Validate: the sampling-transform validator must accept every
   transform's output (covered by the transform/property suites) and
   reject corrupted ones. *)

module Lir = Ir.Lir

let check_bool = Alcotest.(check bool)

let spec = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let transformed () =
  let _, funcs = Helpers.build Helpers.loop_src in
  let f = List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "main") funcs in
  (Core.Transform.full_dup spec f).Core.Transform.func

let find_block g p =
  let found = ref None in
  for l = 0 to Lir.num_blocks g - 1 do
    if !found = None && p l (Lir.block g l) then found := Some l
  done;
  Option.get !found

let accepts_valid () =
  let g = transformed () in
  Alcotest.(check (list string))
    "no errors" []
    (List.map
       (fun (e : Core.Validate.error) -> e.Core.Validate.what)
       (Core.Validate.check g))

let rejects_op_in_checking_code () =
  let g = transformed () in
  let l = find_block g (fun _ b -> b.Lir.role = Lir.Orig) in
  Ir.Edit.prepend g l
    [ Lir.Instrument (Lir.mk_op "call_edge" Lir.P_unit) ];
  check_bool "caught" true (Core.Validate.check g <> [])

let rejects_divergent_copy () =
  let g = transformed () in
  (* tamper with a duplicated block's computation *)
  let l =
    find_block g (fun _ b ->
        b.Lir.role = Lir.Dup && Array.length b.Lir.instrs > 0)
  in
  Ir.Edit.prepend g l [ Lir.Move (0, Lir.Imm 4242) ];
  check_bool "caught" true (Core.Validate.check g <> [])

let rejects_dup_cycle () =
  let g = transformed () in
  (* find a dup block and point it at itself *)
  let l = find_block g (fun _ b -> b.Lir.role = Lir.Dup) in
  let b = Lir.block g l in
  Lir.set_block g l { b with Lir.term = Lir.Goto l };
  check_bool "caught" true
    (List.exists
       (fun (e : Core.Validate.error) ->
         e.Core.Validate.what = "cycle within duplicated code")
       (Core.Validate.check g))

let rejects_check_into_checking_code () =
  let g = transformed () in
  let entry = g.Lir.entry in
  let b = Lir.block g entry in
  (match b.Lir.term with
  | Lir.Check { fall; _ } ->
      (* retarget the sample branch into the checking code *)
      Lir.set_block g entry
        { b with Lir.term = Lir.Check { on_sample = fall; fall } }
  | _ -> Alcotest.fail "entry should be a check");
  (* on_sample = fall is the checks-only configuration: allowed *)
  Alcotest.(check (list string))
    "degenerate check allowed" []
    (List.map (fun (e : Core.Validate.error) -> e.Core.Validate.what)
       (Core.Validate.check g))

let report_rendering () =
  let _, collector =
    Helpers.exec_transformed ~transform:(Core.Transform.full_dup spec)
      ~trigger:Core.Sampler.Always Helpers.loop_src [ 25 ]
  in
  let s = Profiles.Report.summary collector in
  check_bool "summary mentions call_edge" true
    (String.length s > 0
    && List.exists
         (fun line -> String.length line > 9 && String.sub line 0 9 = "call_edge")
         (String.split_on_char '\n' s));
  let csvs = Profiles.Report.to_csv collector in
  check_bool "csv for two kinds" true (List.length csvs >= 2);
  List.iter
    (fun (_, text) ->
      check_bool "has header" true
        (String.length text >= 10 && String.sub text 0 10 = "key,count\n"))
    csvs

let suite =
  [
    ( "validate",
      [
        Alcotest.test_case "accepts valid transform" `Quick accepts_valid;
        Alcotest.test_case "rejects op in checking code" `Quick
          rejects_op_in_checking_code;
        Alcotest.test_case "rejects divergent copy" `Quick
          rejects_divergent_copy;
        Alcotest.test_case "rejects dup cycle" `Quick rejects_dup_cycle;
        Alcotest.test_case "allows degenerate check" `Quick
          rejects_check_into_checking_code;
      ] );
    ("report", [ Alcotest.test_case "rendering" `Quick report_rendering ]);
  ]
