(* Tests for the domain pool ([Harness.Pool]) and the domain-safe
   memoization ([Sync.Memo]) behind the shared build cache.

   The load-bearing property is determinism: running an experiment grid
   on N domains must produce byte-identical output to running it
   sequentially, because every cell is an independent pure measurement
   assembled by submission index. *)

let check = Alcotest.check

(* ---- Pool.map semantics ---- *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      check
        (Alcotest.list Alcotest.int)
        (Printf.sprintf "map preserves order at -j %d" jobs)
        (List.map (fun x -> x * x) xs)
        (Harness.Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_map_empty () =
  check (Alcotest.list Alcotest.int) "empty input" []
    (Harness.Pool.map ~jobs:4 (fun x -> x) []);
  check (Alcotest.list Alcotest.int) "more workers than tasks" [ 42 ]
    (Harness.Pool.map ~jobs:8 (fun x -> x) [ 42 ])

let test_sequential_degenerate () =
  (* -j 1 must run every task in the caller's domain, in submission
     order: no spawned domains, no interleaving *)
  let self = Domain.self () in
  let order = ref [] in
  let result =
    Harness.Pool.map ~jobs:1
      (fun x ->
        check Alcotest.bool "runs in caller's domain" true
          (Domain.self () = self);
        order := x :: !order;
        x)
      [ 1; 2; 3; 4; 5 ]
  in
  check (Alcotest.list Alcotest.int) "submission order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order);
  check (Alcotest.list Alcotest.int) "results" [ 1; 2; 3; 4; 5 ] result

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Harness.Pool.map ~jobs
          (fun x -> if x = 13 then failwith "boom" else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.failf "-j %d swallowed the exception" jobs
      | exception Failure msg ->
          check Alcotest.string
            (Printf.sprintf "-j %d re-raises" jobs)
            "boom" msg)
    [ 1; 4 ]

let test_multiple_failures_aggregate () =
  List.iter
    (fun jobs ->
      let ran = Atomic.make 0 in
      match
        Harness.Pool.map ~jobs
          (fun x ->
            Atomic.incr ran;
            if x mod 7 = 3 then failwith (Printf.sprintf "boom %d" x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.failf "-j %d swallowed the failures" jobs
      | exception Harness.Pool.Failures l ->
          check Alcotest.int
            (Printf.sprintf "-j %d ran every task despite failures" jobs)
            20 (Atomic.get ran);
          check
            (Alcotest.list Alcotest.int)
            (Printf.sprintf "-j %d reports every failure, in order" jobs)
            [ 3; 10; 17 ]
            (List.map (fun (i, _, _) -> i) l);
          List.iter
            (fun (i, e, _) ->
              check Alcotest.string "original exception kept"
                (Printf.sprintf "boom %d" i)
                (match e with Failure m -> m | e -> Printexc.to_string e))
            l)
    [ 1; 4 ]

let test_run () =
  let hits = Atomic.make 0 in
  Harness.Pool.run ~jobs:3
    (List.init 10 (fun _ () -> Atomic.incr hits));
  check Alcotest.int "all thunks ran" 10 (Atomic.get hits)

(* ---- Sync.Memo: compute-once under contention ---- *)

let test_memo_compute_once () =
  let memo : (int, int) Sync.Memo.t = Sync.Memo.create () in
  let computes = Atomic.make 0 in
  let results =
    Harness.Pool.map ~jobs:4
      (fun i ->
        Sync.Memo.get memo (i mod 3) (fun () ->
            Atomic.incr computes;
            (* widen the race window so contending domains hit Computing *)
            ignore (Sys.opaque_identity (List.init 1000 Fun.id));
            (i mod 3) * 10))
      (List.init 64 Fun.id)
  in
  check Alcotest.int "each key computed exactly once" 3 (Atomic.get computes);
  List.iteri
    (fun i v -> check Alcotest.int "memoized value" (i mod 3 * 10) v)
    results

let test_memo_retry_after_failure () =
  let memo : (string, int) Sync.Memo.t = Sync.Memo.create () in
  let attempts = ref 0 in
  (try
     ignore
       (Sync.Memo.get memo "k" (fun () ->
            incr attempts;
            failwith "first try fails"))
   with Failure _ -> ());
  check Alcotest.int "failed compute is not cached" 7
    (Sync.Memo.get memo "k" (fun () ->
         incr attempts;
         7));
  check Alcotest.int "computed twice (fail, then success)" 2 !attempts;
  check (Alcotest.option Alcotest.int) "now cached" (Some 7)
    (Sync.Memo.find_opt memo "k")

(* ---- determinism on a real experiment grid ---- *)

let grid_benches () =
  [ Workloads.Suite.find "jess"; Workloads.Suite.find "db" ]

(* Table 1 on a 2-benchmark grid; all columns are simulated cycle
   counts, so parallel and sequential runs must render byte-identically
   (table 2's compile-time column is the one wall-clock — hence
   nondeterministic — measurement, so it is not used here). *)
let test_parallel_matches_sequential () =
  let table jobs =
    Harness.Table1.to_string
      (Harness.Table1.run ~scale:1 ~jobs ~benches:(grid_benches ()) ())
  in
  let seq = table 1 in
  check Alcotest.string "-j 4 byte-identical to -j 1" seq (table 4);
  check Alcotest.string "-j 2 byte-identical to -j 1" seq (table 2)

let test_figure8_parallel_matches_sequential () =
  let fig jobs =
    Harness.Figure8.to_string
      (Harness.Figure8.run ~scale:1 ~jobs ~benches:(grid_benches ()) ())
  in
  check Alcotest.string "figure 8: -j 3 byte-identical to -j 1" (fig 1) (fig 3)

let test_default_jobs () =
  check Alcotest.bool "default_jobs >= 1" true (Harness.Pool.default_jobs () >= 1)

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_map_order;
        Alcotest.test_case "map edge cases" `Quick test_map_empty;
        Alcotest.test_case "-j 1 is sequential" `Quick
          test_sequential_degenerate;
        Alcotest.test_case "exceptions propagate" `Quick
          test_exception_propagates;
        Alcotest.test_case "multiple failures aggregate" `Quick
          test_multiple_failures_aggregate;
        Alcotest.test_case "run executes all thunks" `Quick test_run;
        Alcotest.test_case "memo computes once" `Quick test_memo_compute_once;
        Alcotest.test_case "memo retries after failure" `Quick
          test_memo_retry_after_failure;
        Alcotest.test_case "default jobs sane" `Quick test_default_jobs;
        Alcotest.test_case "table1 parallel == sequential" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "figure8 parallel == sequential" `Slow
          test_figure8_parallel_matches_sequential;
      ] );
  ]
