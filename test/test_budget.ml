(* Property tests for the overhead-budget governor (Adaptive.Budget):
   the pure decision core the adaptive controller drives.

   The governor is exercised two ways:

   - unit properties of a single [step] (band policy, scale bounds,
     action legality — notably that no action sequence can ever ask for
     the paper-mandated checks to be disabled: the action type has no
     arm for it, and every action is reversible);

   - synthetic closed-loop traces: a model system whose overhead
     responds to strips (removing a unit of instrumentation cost) and
     dilation (scaling the sampled part down) is driven by the governor
     from far above and far below the budget, and the distance to the
     budget must shrink monotonically until the trace enters the
     hysteresis band and holds there. *)

module Budget = Adaptive.Budget

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- the overhead metric ---- *)

let overhead_metric () =
  Alcotest.(check (float 1e-9)) "no instrumentation" 0.0
    (Budget.overhead ~cycles:1000 ~icycles:0);
  Alcotest.(check (float 1e-9)) "10 points" 10.0
    (Budget.overhead ~cycles:1100 ~icycles:100);
  Alcotest.(check (float 1e-9)) "100 points" 100.0
    (Budget.overhead ~cycles:2000 ~icycles:1000);
  (* degenerate: all cycles are instrumentation — finite, not a crash *)
  check_bool "all-instrumentation is finite" true
    (Float.is_finite (Budget.overhead ~cycles:100 ~icycles:100))

let create_validates () =
  let raises f = try ignore (f () : Budget.t); false with Invalid_argument _ -> true in
  check_bool "zero budget rejected" true
    (raises (fun () -> Budget.create ~budget_pct:0.0 ()));
  check_bool "negative budget rejected" true
    (raises (fun () -> Budget.create ~budget_pct:(-3.0) ()));
  check_bool "negative hysteresis rejected" true
    (raises (fun () -> Budget.create ~hysteresis:(-1.0) ~budget_pct:10.0 ()));
  check_bool "zero max_scale rejected" true
    (raises (fun () -> Budget.create ~max_scale:0 ~budget_pct:10.0 ()))

(* ---- single-step band policy ---- *)

let band_policy () =
  let g () = Budget.create ~hysteresis:1.0 ~budget_pct:10.0 () in
  let act t oh = Budget.step t ~overhead:oh ~can_strip:true ~can_restore:true in
  (* inside the band (including the edges): hold *)
  List.iter
    (fun oh ->
      check_bool
        (Printf.sprintf "hold at %.1f" oh)
        true
        (act (g ()) oh = Budget.Hold))
    [ 9.0; 9.5; 10.0; 10.5; 11.0 ];
  (* above: strip first *)
  check_bool "strip above band" true (act (g ()) 11.1 = Budget.Strip);
  (* above with nothing to strip: dilate, doubling and bounded *)
  let t = g () in
  let dilations =
    List.init 5 (fun _ ->
        Budget.step t ~overhead:20.0 ~can_strip:false ~can_restore:false)
  in
  Alcotest.(check (list bool))
    "dilate doubles then holds at max"
    [ true; true; true; false; false ]
    (List.map (function Budget.Dilate _ -> true | _ -> false) dilations);
  check_int "scale capped at max_scale" 8 (Budget.scale t);
  (* below: narrow back to 1 first, then restore, then hold *)
  let rec undo acc =
    match Budget.step t ~overhead:5.0 ~can_strip:false ~can_restore:false with
    | Budget.Narrow s -> undo (s :: acc)
    | a -> (List.rev acc, a)
  in
  let narrows, final = undo [] in
  Alcotest.(check (list int)) "narrow halves back down" [ 4; 2; 1 ] narrows;
  check_bool "hold when nothing to restore" true (final = Budget.Hold);
  check_int "scale back to 1" 1 (Budget.scale t);
  check_bool "restore when possible" true
    (Budget.step t ~overhead:5.0 ~can_strip:false ~can_restore:true
    = Budget.Restore)

(* ---- scale legality under arbitrary step sequences ---- *)

let scale_always_legal =
  QCheck.Test.make ~count:500 ~name:"budget: scale stays in [1, max_scale]"
    QCheck.(list (pair (float_range 0.0 60.0) (pair bool bool)))
    (fun steps ->
      let t = Budget.create ~budget_pct:10.0 () in
      List.for_all
        (fun (oh, (cs, cr)) ->
          (match Budget.step t ~overhead:oh ~can_strip:cs ~can_restore:cr with
          | Budget.Dilate s | Budget.Narrow s ->
              if s <> Budget.scale t then
                QCheck.Test.fail_reportf "action scale %d <> state scale" s
          | _ -> ());
          Budget.scale t >= 1 && Budget.scale t <= 8)
        steps)

(* ---- synthetic closed-loop convergence ---- *)

(* Model: K strippable units each contributing [unit_oh] points while
   active, plus a small guarded floor that dilation divides (sampling
   checks cannot be stripped, only sampled less often).  The governor
   sees the model's overhead, the model applies the governor's action:
   a discrete, monotone plant — exactly the shape the real controller
   presents (strip lowers overhead, restore raises it, dilation scales
   the check floor). *)
let drive ~budget ~units ~unit_oh ~floor_oh =
  let t = Budget.create ~budget_pct:budget () in
  let active = ref units in
  let stripped = ref 0 in
  let oh () =
    (float_of_int !active *. unit_oh)
    +. (floor_oh /. float_of_int (Budget.scale t))
  in
  let trace = ref [ oh () ] in
  let steps = ref 0 in
  let rec loop () =
    incr steps;
    if !steps > 100 then Alcotest.fail "governor did not converge";
    match
      Budget.step t ~overhead:(oh ()) ~can_strip:(!active > 0)
        ~can_restore:(!stripped > 0)
    with
    | Budget.Hold -> ()
    | a ->
        (match a with
        | Budget.Strip ->
            decr active;
            incr stripped
        | Budget.Restore ->
            incr active;
            decr stripped
        | Budget.Dilate _ | Budget.Narrow _ | Budget.Hold -> ());
        trace := oh () :: !trace;
        loop ()
  in
  loop ();
  (t, List.rev !trace)

let converges_from_above () =
  (* 12 units x 2.5 points + 4-point floor = 34 points, budget 10;
     active = 2 lands exactly on the band edge (9.0) and holds *)
  let t, trace = drive ~budget:10.0 ~units:12 ~unit_oh:2.5 ~floor_oh:4.0 in
  (* monotone approach: each action moves overhead toward the budget *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        if Float.abs (b -. 10.0) > Float.abs (a -. 10.0) +. 1e-9 then
          Alcotest.failf "overhead moved away from budget: %.2f -> %.2f" a b;
        monotone rest
    | _ -> ()
  in
  monotone trace;
  let final = List.nth trace (List.length trace - 1) in
  check_bool "lands inside the band" true (Float.abs (final -. 10.0) <= 1.0);
  check_int "no dilation needed while strips remain" 1 (Budget.scale t)

let converges_from_below () =
  (* starts at 2 points with everything stripped available to restore:
     model a warm system that over-shed earlier *)
  let t = Budget.create ~budget_pct:10.0 () in
  let active = ref 0 in
  let oh () = float_of_int !active *. 2.0 in
  let steps = ref 0 in
  while
    Budget.step t ~overhead:(oh ()) ~can_strip:(!active > 5)
      ~can_restore:(!active < 10)
    = Budget.Restore
    && !steps < 100
  do
    incr active;
    incr steps
  done;
  check_bool "restored up into the band" true (Float.abs (oh () -. 10.0) <= 2.0)

let dilation_when_unstrippable () =
  (* nothing strippable: only the check floor, 20 points — dilation must
     cut it toward the budget and then hold *)
  let t, trace = drive ~budget:10.0 ~units:0 ~unit_oh:0.0 ~floor_oh:20.0 in
  let final = List.nth trace (List.length trace - 1) in
  check_bool "dilated under budget+band" true (final <= 11.0);
  check_bool "used dilation" true (Budget.scale t > 1)

let suite =
  [
    ( "budget",
      [
        Alcotest.test_case "overhead metric" `Quick overhead_metric;
        Alcotest.test_case "create validates" `Quick create_validates;
        Alcotest.test_case "band policy" `Quick band_policy;
        Alcotest.test_case "converges from above" `Quick converges_from_above;
        Alcotest.test_case "converges from below" `Quick converges_from_below;
        Alcotest.test_case "dilation when unstrippable" `Quick
          dilation_when_unstrippable;
      ]
      @ List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ scale_always_legal ] );
  ]
