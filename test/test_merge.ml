(* Property suite for Profiles.Merge (ROADMAP item 3): cross-shard
   aggregation must be a pure fold — the merged aggregate is
   byte-identical however the job set is sharded, however the shards
   are merged, and whichever engine produced the per-job profiles.

   Per-job profiles come from real runs: random gen_jasm programs
   instrumented with all seven profile kinds (the two edge-site combos
   from test_slots), run under several triggers so the job set mixes
   exhaustive and sampled shapes. *)

module Lir = Ir.Lir
module Merge = Profiles.Merge

let non_edge_specs =
  [
    Core.Spec.call_edge;
    Core.Spec.field_access;
    Core.Spec.value_profile;
    Profiles.Specs.cct_profile;
    Profiles.Specs.receiver_profile;
  ]

let spec_edges = Core.Spec.combine (Core.Spec.edge_profile :: non_edge_specs)
let spec_paths = Core.Spec.combine (Profiles.Specs.path_profile :: non_edge_specs)

let compile src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  (classes, funcs)

(* One "job": run [src] instrumented with [spec]/[transform] under
   [trigger] on [engine], return the decoded profile in canonical
   form. *)
let run_job ~engine ~transform ~trigger src =
  let classes, funcs = compile src in
  let funcs' = List.map (fun f -> (transform f).Core.Transform.func) funcs in
  let prog = Vm.Program.link classes ~funcs:funcs' in
  let sampler = Core.Sampler.create trigger in
  let c = Profiles.Collector.create () in
  let (_ : Vm.Interp.result) =
    Vm.Interp.run ~engine ~fuel:200_000_000 ~use_icache:true prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 5 ]
      (Profiles.Collector.hooks c sampler)
  in
  Merge.of_collector c

(* The job set for one program: both spec combos x three triggers, so
   all seven kinds appear and sampled/exhaustive shapes mix. *)
let jobs_of ~engine src =
  List.concat_map
    (fun transform ->
      List.map
        (fun trigger -> run_job ~engine ~transform ~trigger src)
        [
          Core.Sampler.Never;
          Core.Sampler.Counter { interval = 3; jitter = 0 };
          Core.Sampler.Counter { interval = 7; jitter = 2 };
        ])
    [
      Core.Transform.exhaustive spec_edges;
      Core.Transform.full_dup spec_paths;
      Core.Transform.no_dup spec_edges;
    ]

(* deterministic shuffle / partition helpers *)
let shuffle rand l =
  l
  |> List.map (fun x -> (Random.State.bits rand, x))
  |> List.sort compare |> List.map snd

let partition rand k l =
  let shards = Array.make k [] in
  List.iter (fun x -> let i = Random.State.int rand k in shards.(i) <- x :: shards.(i)) l;
  Array.to_list shards |> List.map List.rev

let check_program ~fail src =
  let jobs = jobs_of ~engine:`Fast src in
  let whole = Merge.merge_list jobs in
  let bytes = Merge.render whole in
  (* render/parse are exact inverses *)
  if Merge.parse bytes <> whole then fail "parse (render t) <> t";
  (* canonical form is a fixed point through a rebuilt collector *)
  let rebuilt = Merge.of_collector (Merge.to_collector whole) in
  if Merge.render rebuilt <> bytes then
    fail "of_collector (to_collector t) not canonical fixed point";
  (* identity and single-element laws *)
  if Merge.render (Merge.merge whole Merge.empty) <> bytes then
    fail "merge t empty <> t";
  if Merge.render (Merge.merge Merge.empty whole) <> bytes then
    fail "merge empty t <> t";
  let rand = Random.State.make [| Hashtbl.hash src |] in
  (* shard-split == unsharded, for several random partitions *)
  for k = 1 to 4 do
    let shards = partition rand k jobs in
    let merged = Merge.merge_list (List.map Merge.merge_list shards) in
    if Merge.render merged <> bytes then
      fail (Printf.sprintf "sharded merge (k=%d) differs from whole" k)
  done;
  (* merge-order independence: random permutations, fold either way *)
  for _ = 1 to 3 do
    let perm = shuffle rand jobs in
    if Merge.render (Merge.merge_list perm) <> bytes then
      fail "merge is order-dependent (permutation)";
    let folded_right =
      List.fold_left (fun acc j -> Merge.merge j acc) Merge.empty perm
    in
    if Merge.render folded_right <> bytes then
      fail "merge is order-dependent (right fold)"
  done;
  (* engine independence: Ref-produced job profiles merge to the same
     bytes (per-job profiles are engine-invariant, so the aggregate
     must be too) *)
  let ref_jobs = jobs_of ~engine:`Ref src in
  if Merge.render (Merge.merge_list ref_jobs) <> bytes then
    fail "Ref-engine jobs merge to different bytes";
  (* worker-count independence of the parallel merge tree *)
  let t1 = Harness.Aggregate.merge_tree ~jobs:1 jobs in
  let t4 = Harness.Aggregate.merge_tree ~jobs:4 jobs in
  if Merge.render t1 <> bytes || Merge.render t4 <> bytes then
    fail "parallel merge tree differs by worker count";
  (* the report tables rendered from the aggregate are deterministic *)
  let csv t =
    Profiles.Report.to_csv (Merge.to_collector t)
    |> List.map (fun (k, c) -> k ^ "\000" ^ c)
    |> String.concat "\001"
  in
  let c0 = csv whole in
  for _ = 1 to 2 do
    let perm = shuffle rand jobs in
    if csv (Merge.merge_list perm) <> c0 then
      fail "merged report tables depend on merge order"
  done;
  true

let merge_props =
  QCheck.Test.make ~count:30
    ~name:"merge: shard/order/engine/worker-count invariance (7 kinds)"
    Gen_jasm.arbitrary_program
    (fun p ->
      check_program
        ~fail:(fun msg -> QCheck.Test.fail_reportf "%s" msg)
        (Gen_jasm.render p))

(* quick pass: the same laws on a few seeded programs *)
let seeded () =
  let rand = Random.State.make [| 0xA66 |] in
  let progs = QCheck.Gen.generate ~n:3 ~rand Gen_jasm.program in
  List.iter
    (fun p -> ignore (check_program ~fail:Alcotest.fail (Gen_jasm.render p)))
    progs

(* hand-built edge cases the generator may not hit *)
let empty_laws () =
  Alcotest.(check bool) "empty is empty" true (Merge.is_empty Merge.empty);
  Alcotest.(check string) "merge_list [] renders as empty"
    (Merge.render Merge.empty)
    (Merge.render (Merge.merge_list []));
  let r = Merge.render Merge.empty in
  Alcotest.(check bool) "empty roundtrips" true (Merge.parse r = Merge.empty)

(* TNV union-sum must not truncate: merging two full tables keeps every
   distinct value, so heavy hitters can never be evicted by a merge. *)
let tnv_union_no_truncation () =
  let mk vals =
    let c = Profiles.Collector.create () in
    List.iter
      (fun v ->
        Profiles.Value_profile.record c.Profiles.Collector.values ~meth:"M.m"
          ~site:1 ~value:v)
      vals;
    Merge.of_collector c
  in
  let a = mk [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let b = mk [ 11; 12; 13; 14; 15; 16; 17; 18 ] in
  let m = Merge.merge a b in
  match m.Merge.values with
  | [ (_, (entries, total)) ] ->
      Alcotest.(check int) "all 16 values survive" 16 (List.length entries);
      Alcotest.(check int) "totals add" 16 total
  | _ -> Alcotest.fail "expected one site"

let suite =
  [
    ( "merge",
      [
        Alcotest.test_case "seeded merge laws" `Quick seeded;
        Alcotest.test_case "empty laws" `Quick empty_laws;
        Alcotest.test_case "tnv union-sum" `Quick tnv_union_no_truncation;
        QCheck_alcotest.to_alcotest ~long:true merge_props;
      ] );
  ]
