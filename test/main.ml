let () =
  Alcotest.run "instr_sampling"
    (Test_pipeline.suite @ Test_ir.suite @ Test_bytecode.suite
   @ Test_jasm.suite @ Test_opt.suite @ Test_vm.suite @ Test_transform.suite
   @ Test_sampler.suite @ Test_profiles.suite @ Test_props.suite
   @ Test_workloads.suite @ Test_paths.suite @ Test_validate.suite
   @ Test_harness.suite @ Test_differential.suite @ Test_engine.suite
   @ Test_slots.suite @ Test_shrink.suite @ Test_cache_model.suite
   @ Test_pool.suite @ Test_fault.suite @ Test_robust.suite
   @ Test_runcache.suite @ Test_adaptive.suite @ Test_inline.suite
   @ Test_budget.suite @ Test_serve.suite @ Test_trace.suite
   @ Test_merge.suite)
