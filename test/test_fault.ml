(* Fault injection ([Fault] + the VM's guard gate).

   The load-bearing properties: a plan is a pure function of its seed
   (same seed, same plan, byte for byte); both execution engines apply
   plan events at identical cycle counts, so a faulted run is
   bit-identical on [`Ref] and [`Fast]; and a simulated compile failure
   degrades [`Fast] per-method to the interpreter without changing a
   single observable. *)

module Lir = Ir.Lir

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- plan derivation ---- *)

let test_plan_deterministic () =
  let p1 = Fault.of_seed 42 and p2 = Fault.of_seed 42 in
  check_bool "same seed, same plan" true (p1 = p2);
  check Alcotest.string "same seed, same rendering" (Fault.to_string p1)
    (Fault.to_string p2);
  check_bool "different seed, different events" true
    (Fault.of_seed 42 <> Fault.of_seed 43);
  let evs = Array.to_list p1.Fault.events in
  check_bool "events sorted by cycle" true
    (List.sort (fun a b -> compare a.Fault.at_cycle b.Fault.at_cycle) evs
    = evs)

let test_fail_compile_deterministic () =
  let p = Fault.make ~seed:7 ~compile_fail_pct:50 [] in
  let names = List.init 40 (Printf.sprintf "Cls.m%d") in
  let picks = List.map (Fault.fail_compile p) names in
  check_bool "same plan, same picks" true
    (picks = List.map (Fault.fail_compile p) names);
  check_bool "50% picks some but not all" true
    (List.mem true picks && List.mem false picks);
  check_bool "pct 0 picks none" true
    (not
       (List.exists
          (Fault.fail_compile (Fault.make ~seed:7 ~compile_fail_pct:0 []))
          names));
  check_bool "explicit list always fails" true
    (Fault.fail_compile (Fault.make ~compile_failures:[ "A.b" ] []) "A.b")

(* ---- differential runs under faults ---- *)

(* full-dup + counter trigger so checks, samples and instrumentation all
   execute; the observation tuple pins every counter the fault actions
   can perturb *)
let observe ?faults ?(args = [ 400 ]) ~engine src =
  let classes, funcs = Helpers.build src in
  let transform =
    Core.Transform.full_dup
      (Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ])
  in
  let funcs' =
    List.map (fun f -> (transform f).Core.Transform.func) funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 13; jitter = 0 })
  in
  let res =
    Vm.Interp.run ~engine ?faults ~use_icache:true ~use_dcache:true
      (Vm.Program.link classes ~funcs:funcs')
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args (Profiles.Collector.hooks collector sampler)
  in
  let c = res.Vm.Interp.counters in
  ( res,
    ( ( res.Vm.Interp.return_value,
        res.Vm.Interp.output,
        res.Vm.Interp.cycles,
        res.Vm.Interp.instructions ),
      ( c.Vm.Interp.entries,
        c.Vm.Interp.checks,
        c.Vm.Interp.samples,
        c.Vm.Interp.thread_switches,
        c.Vm.Interp.instrument_ops ),
      (res.Vm.Interp.icache_misses, res.Vm.Interp.dcache_misses),
      List.sort compare
        (Profiles.Call_edge.to_keyed collector.Profiles.Collector.call_edges)
    ) )

(* a plan of every non-fatal action, scheduled inside the run *)
let nonfatal_plan cycles =
  Fault.make ~seed:99
    [
      { Fault.at_cycle = cycles / 5; action = Fault.Flush_icache };
      { Fault.at_cycle = cycles / 4; action = Fault.Spurious_timer };
      { Fault.at_cycle = cycles / 3; action = Fault.Corrupt_sample_counter 7 };
      { Fault.at_cycle = cycles / 2; action = Fault.Flush_dcache };
      { Fault.at_cycle = 2 * cycles / 3; action = Fault.Spurious_timer };
    ]

let test_engines_agree_under_faults () =
  let r, _ = observe ~engine:`Fast Helpers.loop_src in
  let plan = nonfatal_plan r.Vm.Interp.cycles in
  let _, a = observe ~faults:plan ~engine:`Ref Helpers.loop_src in
  let _, b = observe ~faults:plan ~engine:`Fast Helpers.loop_src in
  check_bool "faulted run: Fast == Ref" true (a = b);
  let _, b2 = observe ~faults:plan ~engine:`Fast Helpers.loop_src in
  check_bool "faulted run is reproducible" true (b = b2)

let test_none_is_invisible () =
  let _, bare = observe ~engine:`Fast Helpers.loop_src in
  let _, under_none = observe ~faults:Fault.none ~engine:`Fast Helpers.loop_src in
  check_bool "empty plan is indistinguishable from no plan" true
    (bare = under_none)

let test_corrupt_sample_counter () =
  let r, _ = observe ~engine:`Fast Helpers.loop_src in
  let plan =
    Fault.make
      [
        {
          Fault.at_cycle = r.Vm.Interp.cycles / 2;
          action = Fault.Corrupt_sample_counter 7;
        };
      ]
  in
  let r', _ = observe ~faults:plan ~engine:`Fast Helpers.loop_src in
  check_int "sample counter skewed by exactly the delta"
    (r.Vm.Interp.counters.Vm.Interp.samples + 7)
    r'.Vm.Interp.counters.Vm.Interp.samples

let test_flush_icache_costs_misses () =
  let r, _ = observe ~engine:`Fast Helpers.loop_src in
  let plan =
    Fault.make
      [
        { Fault.at_cycle = r.Vm.Interp.cycles / 2; action = Fault.Flush_icache };
      ]
  in
  let r', _ = observe ~faults:plan ~engine:`Fast Helpers.loop_src in
  check_bool "a mid-loop flush forces re-misses" true
    (r'.Vm.Interp.icache_misses > r.Vm.Interp.icache_misses)

let test_trap_identical_on_both_engines () =
  let r, _ = observe ~engine:`Fast Helpers.loop_src in
  let plan =
    Fault.make ~seed:5
      [ { Fault.at_cycle = r.Vm.Interp.cycles / 2; action = Fault.Trap } ]
  in
  let msg engine =
    try
      ignore (observe ~faults:plan ~engine Helpers.loop_src);
      Alcotest.fail "trap did not fire"
    with Vm.Interp.Runtime_error m -> m
  in
  let m_ref = msg `Ref and m_fast = msg `Fast in
  check Alcotest.string "identical trap message" m_ref m_fast;
  check_bool "message names the injection" true
    (String.length m_ref >= 14 && String.sub m_ref 0 14 = "injected fault")

(* ---- graceful degradation ---- *)

let test_compile_failure_degrades_gracefully () =
  let _, bare = observe ~engine:`Fast Helpers.loop_src in
  let plan = Fault.make ~compile_failures:[ "Counter.bump" ] [] in
  let r, degraded = observe ~faults:plan ~engine:`Fast Helpers.loop_src in
  check_bool "observables identical with Counter.bump interpreted" true
    (bare = degraded);
  check_bool "the fallback was recorded" true
    (List.mem_assoc "Counter.bump" r.Vm.Interp.fallbacks);
  let r_ref, ref_obs = observe ~faults:plan ~engine:`Ref Helpers.loop_src in
  check_bool "Ref ignores compile-failure plans" true (bare = ref_obs);
  check
    Alcotest.(list (pair string string))
    "Ref reports no fallbacks" [] r_ref.Vm.Interp.fallbacks

let test_all_methods_degraded () =
  let args = [ 18 ] in
  let _, bare = observe ~args ~engine:`Fast Helpers.fib_src in
  let plan = Fault.make ~seed:3 ~compile_fail_pct:100 [] in
  let r, degraded = observe ~args ~faults:plan ~engine:`Fast Helpers.fib_src in
  check_bool "fully interpreted run still bit-identical" true
    (bare = degraded);
  check_bool "every executed method fell back" true
    (List.length r.Vm.Interp.fallbacks >= 2)

(* ---- the VM watchdog ---- *)

let test_watchdog_expires () =
  check_bool "a past deadline aborts the run" true
    (try
       let classes, funcs = Helpers.build Helpers.loop_src in
       ignore
         (Vm.Interp.run ~deadline:(Unix.gettimeofday () -. 1.0)
            ~deadline_poll:1_000 ~label:"watchdog-test"
            (Vm.Program.link classes ~funcs)
            ~entry:{ Lir.mclass = "Main"; mname = "main" }
            ~args:[ 100_000 ] Vm.Interp.null_hooks);
       false
     with Vm.Interp.Runtime_error m ->
       check_bool "message names the watchdog and the label" true
         (let has sub =
            let n = String.length sub and h = String.length m in
            let rec go i = i + n <= h && (String.sub m i n = sub || go (i + 1)) in
            go 0
          in
          has "wall-clock watchdog" && has "watchdog-test");
       true)

let test_fuel_message_has_context () =
  check_bool "fuel error names method, pc and label" true
    (try
       ignore
         (let classes, funcs = Helpers.build Helpers.loop_src in
          Vm.Interp.run ~fuel:10_000 ~label:"fuel-test (scale 1)"
            (Vm.Program.link classes ~funcs)
            ~entry:{ Lir.mclass = "Main"; mname = "main" }
            ~args:[ 1_000_000 ] Vm.Interp.null_hooks);
       false
     with Vm.Interp.Runtime_error m ->
       let has sub =
         let n = String.length sub and h = String.length m in
         let rec go i = i + n <= h && (String.sub m i n = sub || go (i + 1)) in
         go 0
       in
       has "out of fuel" && has "block" && has "pc"
       && has "while running fuel-test (scale 1)"
       && (has "Main.main" || has "Counter.bump"))

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "plans are seed-deterministic" `Quick
          test_plan_deterministic;
        Alcotest.test_case "compile-failure picks deterministic" `Quick
          test_fail_compile_deterministic;
        Alcotest.test_case "Fast == Ref under a fault plan" `Quick
          test_engines_agree_under_faults;
        Alcotest.test_case "empty plan is invisible" `Quick
          test_none_is_invisible;
        Alcotest.test_case "sample-counter corruption" `Quick
          test_corrupt_sample_counter;
        Alcotest.test_case "i-cache flush costs misses" `Quick
          test_flush_icache_costs_misses;
        Alcotest.test_case "trap identical on both engines" `Quick
          test_trap_identical_on_both_engines;
        Alcotest.test_case "compile failure degrades per-method" `Quick
          test_compile_failure_degrades_gracefully;
        Alcotest.test_case "fully-degraded run bit-identical" `Quick
          test_all_methods_degraded;
        Alcotest.test_case "watchdog expires" `Quick test_watchdog_expires;
        Alcotest.test_case "fuel message has context" `Quick
          test_fuel_message_has_context;
      ] );
  ]
