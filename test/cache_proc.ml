(* Child process for the shared-cache-directory collision test
   (test_runcache.ml): write N entries tagged TAG into DIR through the
   run cache, then exit 0.  A separate process — not a domain — because
   the property under test is the cross-process atomicity of the
   cache's temp+rename writes.

   Usage: cache_proc DIR TAG N *)

module R = Harness.Runcache

module C = R.Make (struct
  type t = string
end)

let key i =
  let module D = Harness.Digest in
  D.run_config ~kind:"test"
    ~bench:("2p" ^ string_of_int i)
    ~scale:1 ~funcs_digest:(D.hex "funcs") ~engine:"fast" ~recording:"slots"
    ~trigger:"none" ~timer_period:None
    ~costs:(D.costs Vm.Costs.default)
    ~faults:"none" ()

let () =
  match Sys.argv with
  | [| _; dir; tag; n |] ->
      R.set_dir (Some dir);
      for i = 0 to int_of_string n - 1 do
        ignore (C.find ~key:(key i) (fun () -> "payload:" ^ tag))
      done
  | _ ->
      prerr_endline "usage: cache_proc DIR TAG N";
      exit 2
