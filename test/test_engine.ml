(* Differential testing of the closure-compiled engine (`Fast) against
   the reference interpreter (`Ref).

   The two engines must be observationally BIT-IDENTICAL, not merely
   semantically equivalent: same return value and printed output, same
   cycle and instruction counts, same event counters (entries,
   yieldpoints, checks, samples, thread switches, instrumentation ops),
   same i-/d-cache miss counts, and — because instrumentation hooks fire
   in program order with full contexts — the same decoded profiles
   (call edges, field accesses, Ball–Larus paths).

   Every random program is run under every transform of the paper
   (exhaustive, Full-, Partial-, No-Duplication, and the
   yieldpoint-sharing optimization) crossed with every trigger
   (always/never/counter/jittered/per-thread/timer), with both caches
   enabled, and the full observation tuples are compared with
   structural equality.

   Quick/Slow split (PR 1 convention): the quick pass replays a few
   seeded programs; the QCheck property (100 random programs) registers
   as `Slow and runs under `make ci`. *)

module Lir = Ir.Lir

(* call-edge + field-access + Ball–Larus paths: together these record
   every hook invocation the transforms can emit, so profile equality
   pins the hook call sequence *)
let spec =
  Core.Spec.combine
    [ Core.Spec.call_edge; Core.Spec.field_access; Profiles.Specs.path_profile ]

let transforms =
  [
    ("baseline", None);
    ("exhaustive", Some (Core.Transform.exhaustive spec));
    ("full-dup", Some (Core.Transform.full_dup spec));
    ("partial-dup", Some (Core.Transform.partial_dup spec));
    ("no-dup", Some (Core.Transform.no_dup spec));
    ("yp-opt", Some (Core.Transform.full_dup_yieldpoint_opt spec));
  ]

let triggers =
  [
    ("always", Core.Sampler.Always);
    ("never", Core.Sampler.Never);
    ("counter-3", Core.Sampler.Counter { interval = 3; jitter = 0 });
    ("counter-7j2", Core.Sampler.Counter { interval = 7; jitter = 2 });
    ("per-thread-5", Core.Sampler.Counter_per_thread { interval = 5 });
    ("timer", Core.Sampler.Timer_bit);
  ]

let compile src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  (classes, funcs)

let instrument transform funcs =
  match transform with
  | None -> funcs
  | Some t -> List.map (fun f -> (t f).Core.Transform.func) funcs

(* Everything observable from one run, as one structurally comparable
   value.  A fresh link, collector and sampler per run: engines must
   agree starting from identical cold state.  [traces] arms the
   trace-recording tier (Fast only) with a low threshold so the small
   generated loops actually turn hot; [recording] selects the legacy
   event-by-event collector or the flat-slot recorder — traced
   execution must be bit-identical under both. *)
let observe ~engine ?trace_threshold ?(recording = `Legacy) classes funcs
    trigger =
  let prog = Vm.Program.link classes ~funcs in
  let sampler = Core.Sampler.create trigger in
  let hooks, recorder, decode =
    match recording with
    | `Legacy ->
        let c = Profiles.Collector.create () in
        (Profiles.Collector.hooks c sampler, None, fun () -> c)
    | `Slots ->
        let s = Profiles.Slots.create prog in
        ( Profiles.Slots.hooks s sampler,
          Some (Profiles.Slots.recorder s),
          fun () -> Profiles.Slots.decode s )
  in
  let res =
    Vm.Interp.run ~engine ~fuel:200_000_000 ~use_icache:true ~use_dcache:true
      ?recorder ?trace_threshold prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 5 ] hooks
  in
  let collector = decode () in
  let c = res.Vm.Interp.counters in
  ( ( res.Vm.Interp.return_value,
      res.Vm.Interp.output,
      res.Vm.Interp.cycles,
      res.Vm.Interp.instructions ),
    ( c.Vm.Interp.entries,
      c.Vm.Interp.backedge_yps,
      c.Vm.Interp.entry_yps,
      c.Vm.Interp.checks,
      c.Vm.Interp.samples,
      c.Vm.Interp.thread_switches,
      c.Vm.Interp.instrument_ops ),
    (res.Vm.Interp.icache_misses, res.Vm.Interp.dcache_misses),
    ( List.sort compare
        (Profiles.Call_edge.to_keyed collector.Profiles.Collector.call_edges),
      List.sort compare
        (Profiles.Field_access.to_keyed collector.Profiles.Collector.fields),
      List.sort compare
        (Profiles.Path_profile.to_alist collector.Profiles.Collector.paths) ) )

(* [fail]: how to report a divergence (QCheck's fail_reportf for the
   property, Alcotest.fail for the quick seeded pass) *)
let check_program ~fail src =
  let classes, funcs = compile src in
  List.for_all
    (fun (tname, transform) ->
      let funcs' = instrument transform funcs in
      List.for_all
        (fun (sname, trigger) ->
          let oracle = observe ~engine:`Ref classes funcs' trigger in
          List.for_all
            (fun (vname, obs) ->
              if obs <> oracle then
                fail
                  (Printf.sprintf
                     "engines diverge (%s): transform %s under trigger %s"
                     vname tname sname)
              else true)
            [
              ("Fast", observe ~engine:`Fast classes funcs' trigger);
              ( "Fast+traces",
                observe ~engine:`Fast ~trace_threshold:3 classes funcs'
                  trigger );
              ( "Fast+traces/slots",
                observe ~engine:`Fast ~trace_threshold:3 ~recording:`Slots
                  classes funcs' trigger );
            ])
        triggers)
    transforms

let engines_agree =
  QCheck.Test.make ~count:100
    ~name:"engine: Fast == Ref (all transforms x triggers, both caches)"
    Gen_jasm.arbitrary_program
    (fun p ->
      check_program
        ~fail:(fun msg -> QCheck.Test.fail_reportf "%s" msg)
        (Gen_jasm.render p))

(* quick pass: same check on a handful of programs from a pinned seed *)
let seeded_agree () =
  let rand = Random.State.make [| 0xE51 |] in
  let progs = QCheck.Gen.generate ~n:5 ~rand Gen_jasm.program in
  List.iter
    (fun p ->
      ignore (check_program ~fail:Alcotest.fail (Gen_jasm.render p)))
    progs

let suite =
  [
    ( "engine",
      Alcotest.test_case "Fast == Ref on seeded programs" `Quick seeded_agree
      :: List.map
           (QCheck_alcotest.to_alcotest ~long:false)
           [ engines_agree ] );
  ]
