(* Serve mode ([lib/serve]): canonical job lines, bounded fair
   admission, poison-job quarantine, journaled crash recovery, and the
   engine invariant that a fleet's sorted result lines are
   byte-identical however the jobs were scheduled, retried or resumed.

   Everything here runs in-process: crashes are simulated by
   constructing the journal a dead daemon would have left behind (the
   process-level SIGKILL path is scripts/serve_smoke.sh). *)

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module Job = Serve.Job
module Fairq = Serve.Fairq
module Journal = Serve.Journal
module Daemon = Serve.Daemon
module Fleet = Serve.Fleet
module Server = Serve.Server

let tmp_path name =
  let path = Filename.temp_file ("isf_serve_" ^ name) ".tmp" in
  Sys.remove path;
  path

(* Job execution shares the global memo tier with every other test;
   reset around each daemon run so byte-identity is honest (each run
   recomputes) and other suites see an unpolluted cache. *)
let with_fresh_cache f =
  Harness.Runcache.reset_memory ();
  Fun.protect ~finally:Harness.Runcache.reset_memory f

(* ---- canonical job lines ---- *)

let test_job_roundtrip () =
  let jobs = Fleet.jobs ~poison:2 ~seed:9 ~n:20 () in
  check_int "generator wove the poison in" 22 (List.length jobs);
  List.iter
    (fun j ->
      let line = Job.render j in
      check_bool "parse inverts render" true (Job.parse line = j);
      check_str "render is canonical" line (Job.render (Job.parse line));
      check_str "digest keys on the rendering" (Job.digest j)
        (Harness.Digest.hex line))
    jobs;
  (* digests separate every distinct job *)
  let digests = List.map Job.digest jobs in
  check_int "distinct jobs digest distinctly"
    (List.length (List.sort_uniq compare (List.map Job.render jobs)))
    (List.length (List.sort_uniq compare digests))

let test_job_parse_is_loud () =
  let bad line =
    check_bool (Printf.sprintf "%S is refused" line) true
      (try
         ignore (Job.parse line);
         false
       with Failure m -> String.length m > 0)
  in
  bad "";
  bad "bench=jess";
  bad "not a job line at all";
  bad
    "bench=jess scale=1 variant=bogus specs=call-edge trigger=never \
     engine=fast recording=slots poison=no";
  bad
    "bench=jess scale=1 variant=full-dup specs=bogus trigger=never \
     engine=fast recording=slots poison=no";
  bad
    "bench=jess scale=1 variant=full-dup specs=call-edge trigger=bogus \
     engine=fast recording=slots poison=no";
  bad
    "bench=jess scale=x variant=full-dup specs=call-edge trigger=never \
     engine=fast recording=slots poison=no";
  (* an unknown benchmark parses: it fails at execution, classified
     "bug" — a poison job, which is what the quarantine is for *)
  let j =
    Job.parse
      "bench=no-such-bench scale=1 variant=full-dup specs=call-edge \
       trigger=never engine=fast recording=slots poison=no"
  in
  check_str "unknown bench parses" "no-such-bench" j.Job.bench;
  check_str "and fails bug-classified" "bug"
    (try
       ignore (Job.execute j);
       "no failure"
     with e -> Harness.Robust.classify e)

(* ---- fair queue ---- *)

let test_fairq_round_robin () =
  let q = Fairq.create ~capacity:64 () in
  (* a flooding client ahead of two modest ones *)
  for i = 1 to 10 do
    match Fairq.submit q ~client:"flood" (Printf.sprintf "f%d" i) with
    | `Accepted -> ()
    | _ -> Alcotest.fail "submit under capacity"
  done;
  List.iter
    (fun x -> ignore (Fairq.submit q ~client:"a" x))
    [ "a1"; "a2" ];
  List.iter (fun x -> ignore (Fairq.submit q ~client:"b" x)) [ "b1" ];
  check_int "three clients queued" 3 (Fairq.clients q);
  let order = ref [] in
  let rec drain () =
    match Fairq.pop q with
    | Some x ->
        order := x :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  (* rotation is first-seen order (flood, a, b), resuming one past the
     client served last: every client is served once per round until it
     empties, so the flood cannot starve a or b *)
  check
    Alcotest.(list string)
    "round-robin interleaving"
    [
      "f1"; "a1"; "b1"; "f2"; "a2"; "f3"; "f4"; "f5"; "f6"; "f7"; "f8";
      "f9"; "f10";
    ]
    (List.rev !order);
  (* emptied clients are retired — a daemon outliving thousands of
     one-shot connections must not keep a queue per past client *)
  check_int "emptied clients retired from the rotation" 0 (Fairq.clients q)

let test_fairq_sheds_at_capacity () =
  let q = Fairq.create ~capacity:3 () in
  let accepted = ref 0 and shed = ref 0 in
  for i = 1 to 10 do
    match Fairq.submit q ~client:(Printf.sprintf "c%d" (i mod 4)) i with
    | `Accepted -> incr accepted
    | `Shed -> incr shed
    | `Closed -> Alcotest.fail "not closed"
  done;
  check_int "bounded: exactly capacity admitted" 3 !accepted;
  check_int "the rest shed explicitly" 7 !shed;
  check_int "shed counter agrees" 7 (Fairq.shed_count q);
  check_int "occupancy never exceeds capacity" 3 (Fairq.length q);
  (* a pop frees a slot: admission resumes instead of queueing unboundedly *)
  ignore (Fairq.pop q);
  check_bool "slot freed readmits" true
    (Fairq.submit q ~client:"late" 99 = `Accepted)

let test_fairq_close_now_drops () =
  let q = Fairq.create ~capacity:16 () in
  List.iter (fun x -> ignore (Fairq.submit q ~client:"c" x)) [ 1; 2; 3 ];
  let dropped = Fairq.close_now q in
  check_int "backlog returned to the caller" 3 (List.length dropped);
  check_bool "queue is closed" true (Fairq.pop_wait q = None);
  check_bool "no further admissions" true
    (Fairq.submit q ~client:"c" 4 = `Closed)

(* ---- worker service ---- *)

let test_service_distribution () =
  (* two tasks that each wait for the other force one task onto each
     worker domain; Pool.Service.stats must see the distribution *)
  let active = Atomic.make 0 in
  let pending = Atomic.make 2 in
  let next () =
    if Atomic.fetch_and_add pending (-1) > 0 then
      Some
        (fun () ->
          Atomic.incr active;
          let deadline = Unix.gettimeofday () +. 5.0 in
          while Atomic.get active < 2 && Unix.gettimeofday () < deadline do
            Domain.cpu_relax ()
          done;
          if Atomic.get active < 2 then
            Alcotest.fail "tasks never ran concurrently")
    else None
  in
  let s = Harness.Pool.Service.start ~workers:2 ~next in
  Harness.Pool.Service.join s;
  check
    Alcotest.(array int)
    "one barrier task per worker" [| 1; 1 |]
    (Harness.Pool.Service.stats s);
  check_int "nothing escaped the wrapper" 0 (Harness.Pool.Service.uncaught s)

let test_service_survives_raising_tasks () =
  let pending = Atomic.make 6 in
  let next () =
    let k = Atomic.fetch_and_add pending (-1) in
    if k > 0 then Some (fun () -> if k mod 2 = 0 then failwith "boom")
    else None
  in
  let s = Harness.Pool.Service.start ~workers:2 ~next in
  Harness.Pool.Service.join s;
  check_int "every task ran despite the failures" 6
    (Array.fold_left ( + ) 0 (Harness.Pool.Service.stats s));
  check_int "failures were counted, not fatal" 3
    (Harness.Pool.Service.uncaught s)

(* ---- daemon: identity, shedding, quarantine ---- *)

let small_fleet () =
  let jobs = Fleet.jobs ~poison:1 ~seed:4 ~n:6 () in
  List.mapi (fun i j -> (Fleet.client_of ~clients:3 i, j)) jobs

let test_concurrent_equals_sequential () =
  let entries = small_fleet () in
  let reference, ref_profiles =
    with_fresh_cache (fun () -> Fleet.run_sequential entries)
  in
  let stats, concurrent, conc_profiles =
    with_fresh_cache (fun () ->
        Fleet.run_daemon
          ~config:{ Daemon.default with workers = 3; capacity = 4 }
          entries)
  in
  check_int "every job answered" (List.length entries) (List.length concurrent);
  check_bool "concurrent == sequential, byte for byte" true
    (reference = concurrent);
  check_bool "profile payloads identical across scheduling" true
    (ref_profiles = conc_profiles);
  check_int "the poison job ended quarantined" 1 stats.Fleet.quarantined;
  check_int "no exception escaped a worker" 0 stats.Fleet.uncaught;
  check_bool "pinned submission never sheds" true (stats.Fleet.shed = 0);
  check
    Alcotest.(list (pair int string))
    "no unclassified failures" []
    (Fleet.unclassified concurrent)

let test_windowed_submission_identical () =
  let entries = small_fleet () in
  let reference, ref_profiles =
    with_fresh_cache (fun () -> Fleet.run_sequential entries)
  in
  let stats, windowed, w_profiles =
    with_fresh_cache (fun () ->
        Fleet.run_daemon
          ~config:{ Daemon.default with workers = 2; capacity = 4 }
          ~window:2 entries)
  in
  check_int "every job answered" (List.length entries) (List.length windowed);
  check_bool "closed-loop == open-loop == sequential, byte for byte" true
    (reference = windowed);
  check_bool "profile payloads identical too" true (ref_profiles = w_profiles);
  check_int "no exception escaped a worker" 0 stats.Fleet.uncaught

let test_merge_profiles_lossless () =
  let entries = small_fleet () in
  let results, profiles =
    with_fresh_cache (fun () -> Fleet.run_sequential entries)
  in
  with_fresh_cache (fun () ->
      let m1 = Fleet.merge_profiles ~jobs:1 ~entries ~results profiles in
      Harness.Runcache.reset_memory ();
      (* no payloads at all (a pre-profile journal replay would look like
         this): every OK job is recomputed through the run cache and the
         merge must still be byte-identical *)
      let m2 = Fleet.merge_profiles ~jobs:2 ~entries ~results [] in
      check_str "payload-less merge is byte-identical (lossless fallback)"
        (Profiles.Merge.render m1)
        (Profiles.Merge.render m2))

let test_daemon_sheds_when_saturated () =
  (* one worker wedged on a slow job + capacity 1: the second submit
     queues, the rest must shed — explicitly, not queue unboundedly *)
  let d =
    Daemon.start
      ~config:{ Daemon.default with workers = 1; capacity = 1 }
      ()
  in
  let job = List.nth (Fleet.jobs ~seed:2 ~n:1 ()) 0 in
  let accepted = ref 0 and shed = ref 0 in
  for _ = 1 to 12 do
    match Daemon.submit d ~client:"burst" job with
    | `Accepted _ -> incr accepted
    | `Shed -> incr shed
    | `Closed -> Alcotest.fail "daemon not closed"
  done;
  check_bool "admission is bounded" true (!accepted <= 3);
  check_bool "overflow shed explicitly" true (!shed >= 9);
  check_int "every submit was answered" 12 (!accepted + !shed);
  Daemon.drain d;
  let st = Daemon.stats d in
  Daemon.stop d;
  check_int "every accepted job completed" !accepted st.Daemon.completed;
  check_int "sheds counted" !shed st.Daemon.shed

let test_quarantine_after_n_failures () =
  let q = Serve.Quarantine.create ~threshold:3 () in
  check_bool "first failure retries" true
    (Serve.Quarantine.record_failure q ~digest:"d" ~report:"r" = `Retry 1);
  check_bool "second failure retries" true
    (Serve.Quarantine.record_failure q ~digest:"d" ~report:"r" = `Retry 2);
  check_bool "third failure quarantines" true
    (Serve.Quarantine.record_failure q ~digest:"d" ~report:"r" = `Quarantined);
  check_bool "quarantined digest is findable" true
    (Serve.Quarantine.find q ~digest:"d" = Some "r");
  check_bool "other digests unaffected" true
    (Serve.Quarantine.find q ~digest:"e" = None)

let test_poison_job_quarantined_not_retried_forever () =
  with_fresh_cache (fun () ->
      let poison =
        {
          Job.bench = "compress";
          scale = Some 1;
          variant = "full-dup";
          specs = [ "call-edge" ];
          trigger = Job.Never;
          engine = `Fast;
          recording = `Slots;
          poison = true;
        }
      in
      let d =
        Daemon.start ~config:{ Daemon.default with workers = 1 } ()
      in
      (match Daemon.submit d ~client:"t" poison with
      | `Accepted _ -> ()
      | _ -> Alcotest.fail "accepted");
      Daemon.drain d;
      let first =
        match Daemon.results d with
        | [ (_, line) ] -> line
        | _ -> Alcotest.fail "one result"
      in
      (* result line: "<id> <digest> QUARANTINED <report>" *)
      (match String.split_on_char ' ' first with
      | _ :: _ :: status :: _ ->
          check_str "poison job ends quarantined" "QUARANTINED" status
      | _ -> Alcotest.fail "malformed result line");
      (* resubmitting the same digest never runs it again: the answer is
         the quarantine report, immediately *)
      (match Daemon.submit d ~client:"t" poison with
      | `Accepted _ -> ()
      | _ -> Alcotest.fail "accepted");
      Daemon.drain d;
      let st = Daemon.stats d in
      Daemon.stop d;
      check_int "both submissions answered" 2 st.Daemon.completed;
      check_int "one quarantine entry, not two" 1 st.Daemon.quarantined)

(* ---- journal: crash simulation, torn tail, meta refusal ---- *)

let test_restart_resumes_byte_identical () =
  let entries = small_fleet () in
  let reference, _ = with_fresh_cache (fun () -> Fleet.run_sequential entries) in
  (* forge the journal a daemon killed mid-fleet would leave: every job
     submitted, the first three completed, the rest in flight *)
  let jpath = tmp_path "resume" in
  let j, _ = Journal.open_ ~meta:"sim" jpath in
  List.iteri
    (fun i (client, job) ->
      Journal.append j
        (Journal.Submitted { id = i + 1; client; line = Job.render job }))
    entries;
  List.iteri
    (fun i (_, result) ->
      if i < 3 then Journal.append j (Journal.Completed { id = i + 1; result }))
    reference;
  Journal.close j;
  let stats, resumed, _ =
    with_fresh_cache (fun () ->
        Fleet.run_daemon
          ~config:{ Daemon.default with workers = 2 }
          ~journal:jpath ~meta:"sim" entries)
  in
  check_int "completed jobs replayed, not re-run" 3 stats.Fleet.replayed;
  check_bool "resumed run == uninterrupted run, byte for byte" true
    (reference = resumed);
  (* second restart on the now-complete journal: everything replays *)
  let stats2, again, _ =
    with_fresh_cache (fun () ->
        Fleet.run_daemon ~journal:jpath ~meta:"sim" entries)
  in
  check_int "fully-complete journal replays everything"
    (List.length entries) stats2.Fleet.replayed;
  check_bool "and is still byte-identical" true (reference = again);
  Sys.remove jpath

let test_journal_torn_tail_tolerated () =
  let jpath = tmp_path "torn" in
  let j, _ = Journal.open_ ~meta:"m" jpath in
  Journal.append j (Journal.Submitted { id = 1; client = "c"; line = "l1" });
  Journal.append j (Journal.Completed { id = 1; result = "r1" });
  Journal.append j (Journal.Submitted { id = 2; client = "c"; line = "l2" });
  Journal.close j;
  (* a SIGKILL mid-append can at worst truncate the final record *)
  let bytes = In_channel.with_open_bin jpath In_channel.input_all in
  Out_channel.with_open_bin jpath (fun oc ->
      Out_channel.output_string oc
        (String.sub bytes 0 (String.length bytes - 7)));
  let j2, r = Journal.open_ ~meta:"m" jpath in
  Journal.close j2;
  check
    Alcotest.(list (pair int string))
    "fully-written records survive the torn tail"
    [ (1, "r1") ]
    r.Journal.completed;
  check_bool "the torn record is gone, not half-read" true
    (match r.Journal.pending with
    | [] -> true
    | [ (2, "c", "l2") ] -> true (* the tear landed after record 3 *)
    | _ -> false);
  Sys.remove jpath

let test_journal_profile_records_recovered () =
  let jpath = tmp_path "profrec" in
  let j, _ = Journal.open_ ~meta:"m" jpath in
  Journal.append j (Journal.Submitted { id = 1; client = "c"; line = "l1" });
  Journal.append j (Journal.Profile { id = 1; payload = "p1" });
  Journal.append j (Journal.Completed { id = 1; result = "r1" });
  Journal.append j (Journal.Submitted { id = 2; client = "c"; line = "l2" });
  (* a kill between the Profile append and its Completed append: the
     orphan payload must NOT be recovered — the job re-runs and writes a
     fresh deterministic pair *)
  Journal.append j (Journal.Profile { id = 2; payload = "p2" });
  Journal.close j;
  let j2, r = Journal.open_ ~meta:"m" jpath in
  Journal.close j2;
  check
    Alcotest.(list (pair int string))
    "payloads of completed jobs recovered"
    [ (1, "p1") ]
    r.Journal.profiles;
  check_bool "the half-written job is pending again" true
    (List.exists (fun (id, _, _) -> id = 2) r.Journal.pending);
  Sys.remove jpath

let test_journal_meta_mismatch_refused () =
  let jpath = tmp_path "meta" in
  let j, _ = Journal.open_ ~meta:"config-a" jpath in
  Journal.append j (Journal.Submitted { id = 1; client = "c"; line = "l" });
  Journal.close j;
  check_bool "a different configuration is refused, loudly" true
    (try
       ignore (Journal.open_ ~meta:"config-b" jpath);
       false
     with Failure m ->
       check_bool "the refusal names the journal" true
         (String.length m > 0);
       true);
  (* the matching meta still opens *)
  let j2, r = Journal.open_ ~meta:"config-a" jpath in
  Journal.close j2;
  check_int "journal intact after the refusal" 1
    (List.length r.Journal.pending);
  Sys.remove jpath

let test_journal_garbage_file_refused () =
  (* pointing --journal at a file that is not a journal at all must
     refuse loudly, not silently truncate it to an empty journal *)
  let jpath = tmp_path "garbage" in
  let content = "#!/bin/sh\necho this is certainly not a job journal\n" in
  Out_channel.with_open_bin jpath (fun oc ->
      Out_channel.output_string oc content);
  check_bool "a non-journal file is refused" true
    (try
       ignore (Journal.open_ ~meta:"m" jpath);
       false
     with Failure m -> String.length m > 0);
  check_str "and left byte-for-byte intact" content
    (In_channel.with_open_bin jpath In_channel.input_all);
  Sys.remove jpath

let test_quarantine_survives_restart () =
  with_fresh_cache (fun () ->
      let poison =
        {
          Job.bench = "compress";
          scale = Some 1;
          variant = "full-dup";
          specs = [ "call-edge" ];
          trigger = Job.Always;
          engine = `Fast;
          recording = `Slots;
          poison = true;
        }
      in
      let jpath = tmp_path "qrestart" in
      (* first life: the poison job gets quarantined and journaled *)
      let d1 = Daemon.start ~journal:jpath ~meta:"q" () in
      (match Daemon.submit d1 ~client:"t" poison with
      | `Accepted _ -> ()
      | _ -> Alcotest.fail "accepted");
      Daemon.drain d1;
      let st1 = Daemon.stats d1 in
      Daemon.stop d1;
      check_int "first life quarantined the job" 1 st1.Daemon.quarantined;
      (* second life: the quarantine list is restored from the journal,
         so resubmitting answers immediately without running the job *)
      let d2 = Daemon.start ~journal:jpath ~meta:"q" () in
      (match Daemon.submit d2 ~client:"t" poison with
      | `Accepted _ -> ()
      | _ -> Alcotest.fail "accepted");
      Daemon.drain d2;
      let answers = Daemon.results d2 in
      let st2 = Daemon.stats d2 in
      Daemon.stop d2;
      check_bool "restarted daemon answers from the quarantine list" true
        (List.exists
           (fun (_, line) ->
             match String.split_on_char ' ' line with
             | _ :: _ :: "QUARANTINED" :: _ -> true
             | _ -> false)
           answers);
      check_int "nothing newly quarantined on the second life" 0
        st2.Daemon.quarantined;
      Sys.remove jpath)

(* ---- socket front-end ---- *)

(* The submission trio per job makes two of every three completions a
   warm-cache (or quarantine-list) answer that can finish inside
   [Daemon.submit], before the server registers the id -> conn route:
   the regression pinned here is that such a RESULT was dropped and
   the client hung forever. *)
let test_socket_instant_results_not_dropped () =
  with_fresh_cache (fun () ->
      let sock = tmp_path "sock" in
      let srv = Server.create ~socket:sock in
      let d = Daemon.start ~on_result:(Server.on_result srv) () in
      let stop = Atomic.make false in
      let loop =
        Domain.spawn (fun () ->
            Server.run srv d ~stop:(fun () -> Atomic.get stop))
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Domain.join loop;
          Daemon.stop d)
        (fun () ->
          let entries =
            Fleet.jobs ~seed:3 ~n:6 ()
            |> List.concat_map (fun j -> [ ("x", j); ("y", j); ("z", j) ])
          in
          let results, _shed, _profiles =
            Server.client_run ~timeout:60.0 ~socket:sock entries
          in
          check_int "every submission got its RESULT line"
            (List.length entries) (List.length results);
          (* the three submissions of each job agree past the id column *)
          let strip line =
            match String.index_opt line ' ' with
            | Some i -> String.sub line (i + 1) (String.length line - i - 1)
            | None -> line
          in
          let rec trios = function
            | (_, a) :: (_, b) :: (_, c) :: rest ->
                check_str "duplicate submissions answer identically"
                  (strip a) (strip b);
                check_str "cached answer matches the computed one" (strip a)
                  (strip c);
                trios rest
            | _ -> ()
          in
          trios results))

(* run [f] against a live socket server on a fresh daemon *)
let with_socket_server f =
  with_fresh_cache (fun () ->
      let sock = tmp_path "sock" in
      let srv = Server.create ~socket:sock in
      let d = Daemon.start ~on_result:(Server.on_result srv) () in
      let stop = Atomic.make false in
      let loop =
        Domain.spawn (fun () ->
            Server.run srv d ~stop:(fun () -> Atomic.get stop))
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          Domain.join loop;
          Daemon.stop d)
        (fun () -> f sock))

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* The batched data plane end to end: SUBMIT* frames of 4, PROFILE
   payload frames, and byte-identity of the pipelined client against
   the in-process sequential reference. *)
let test_socket_pipelined_batches_and_profiles () =
  with_socket_server (fun sock ->
      let entries =
        Fleet.jobs ~seed:5 ~n:6 ()
        |> List.mapi (fun i j -> (Fleet.client_of ~clients:2 i, j))
      in
      let reference, ref_profiles = Fleet.run_sequential entries in
      Harness.Runcache.reset_memory ();
      let results, shed, profs =
        Server.client_run ~timeout:60.0 ~batch:4 ~profiles:true ~socket:sock
          entries
      in
      check_int "nothing shed under capacity" 0 shed;
      check_bool "pipelined batches == sequential, byte for byte" true
        (reference = results);
      let ok_ids =
        List.filter_map
          (fun (id, line) ->
            match String.split_on_char ' ' line with
            | _ :: _ :: "OK" :: _ -> Some id
            | _ -> None)
          results
      in
      check
        Alcotest.(list int)
        "one PROFILE frame per OK result" ok_ids (List.map fst profs);
      List.iter (fun (_, p) -> ignore (Profiles.Merge.parse p)) profs;
      (* the streamed payloads merge to the same aggregate as the
         sequential fleet's in-process payloads *)
      let m_sock = Fleet.merge_profiles ~jobs:1 ~entries ~results profs in
      Harness.Runcache.reset_memory ();
      let m_seq =
        Fleet.merge_profiles ~jobs:2 ~entries ~results:reference ref_profiles
      in
      check_str "merged aggregate identical over the wire"
        (Profiles.Merge.render m_seq)
        (Profiles.Merge.render m_sock))

(* Control-plane corners: PING, PROFILES ack, SUBMIT* bounds, and the
   extended STATS counters. *)
let test_socket_protocol_basics () =
  with_socket_server (fun sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
      let ic = Unix.in_channel_of_descr fd in
      let send s =
        ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s))
      in
      send "PING\n";
      check_str "pong" "OK pong" (input_line ic);
      send "PROFILES on\n";
      check_str "profiles ack" "OK profiles on" (input_line ic);
      send "PROFILES off\n";
      check_str "profiles off ack" "OK profiles off" (input_line ic);
      send "SUBMIT* 0\n";
      (match String.split_on_char ' ' (input_line ic) with
      | "ERR" :: _ -> ()
      | l -> Alcotest.failf "batch size 0 accepted: %s" (String.concat " " l));
      send (Printf.sprintf "SUBMIT* %d\n" (Server.max_batch + 1));
      (match String.split_on_char ' ' (input_line ic) with
      | "ERR" :: _ -> ()
      | l -> Alcotest.failf "oversized batch accepted: %s" (String.concat " " l));
      send "STATS\n";
      let stats = input_line ic in
      List.iter
        (fun key ->
          check_bool (key ^ " reported") true (contains stats (key ^ "=")))
        [
          "queue"; "submit_batches"; "submit_batch_max"; "result_batches";
          "result_batch_max"; "merges"; "merge_inputs"; "cache_mem_hits";
          "cache_misses";
        ];
      send "QUIT\n";
      try Unix.close fd with Unix.Unix_error _ -> ())

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "job lines: render/parse/digest" `Quick
          test_job_roundtrip;
        Alcotest.test_case "job parse errors are loud" `Quick
          test_job_parse_is_loud;
        Alcotest.test_case "fair queue: flooding client cannot starve"
          `Quick test_fairq_round_robin;
        Alcotest.test_case "fair queue: bounded, sheds explicitly" `Quick
          test_fairq_sheds_at_capacity;
        Alcotest.test_case "fair queue: close_now returns the backlog"
          `Quick test_fairq_close_now_drops;
        Alcotest.test_case "service: work distributes across workers"
          `Quick test_service_distribution;
        Alcotest.test_case "service: raising tasks never kill a worker"
          `Quick test_service_survives_raising_tasks;
        Alcotest.test_case "concurrent == sequential, byte for byte" `Quick
          test_concurrent_equals_sequential;
        Alcotest.test_case "closed-loop window == open loop" `Quick
          test_windowed_submission_identical;
        Alcotest.test_case "merge_profiles is lossless without payloads"
          `Quick test_merge_profiles_lossless;
        Alcotest.test_case "saturation sheds instead of queueing" `Quick
          test_daemon_sheds_when_saturated;
        Alcotest.test_case "quarantine trips after N failures" `Quick
          test_quarantine_after_n_failures;
        Alcotest.test_case "poison job quarantined, never re-run" `Quick
          test_poison_job_quarantined_not_retried_forever;
        Alcotest.test_case "kill + restart resumes byte-identical" `Quick
          test_restart_resumes_byte_identical;
        Alcotest.test_case "journal tolerates a torn tail" `Quick
          test_journal_torn_tail_tolerated;
        Alcotest.test_case "journal recovers completed profile payloads"
          `Quick test_journal_profile_records_recovered;
        Alcotest.test_case "journal refuses a foreign configuration" `Quick
          test_journal_meta_mismatch_refused;
        Alcotest.test_case "journal refuses a garbage file" `Quick
          test_journal_garbage_file_refused;
        Alcotest.test_case "quarantine survives a restart" `Quick
          test_quarantine_survives_restart;
        Alcotest.test_case "socket: instant completions are not dropped"
          `Quick test_socket_instant_results_not_dropped;
        Alcotest.test_case "socket: pipelined batches + PROFILE frames"
          `Quick test_socket_pipelined_batches_and_profiles;
        Alcotest.test_case "socket: protocol corners and STATS counters"
          `Quick test_socket_protocol_basics;
      ] );
  ]
