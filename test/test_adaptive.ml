(* Differential testing of the adaptive tier (lib/adaptive) on random
   well-typed programs.

   Four claims, each checked across transforms x triggers x engines:

   1. Loop transparency: with the governor off, an adaptive run — FDO
      inlining, hot block reordering and on-stack frame migration all
      live — returns the same value, prints the same output and decodes
      the same profile as the loop-off run.  Inlined clones keep their
      resolved slots (edge/field ops) or are re-keyed through
      [Profiles.Slots.mint_call_edge] (call-edge ops), so adaptation is
      invisible to the recorded profile.
   2. Engine bit-identity UNDER adaptation: `Fast == `Ref on the full
      observation tuple (cycles, instructions, counters, cache misses,
      profiles, decision log, final versions) while methods are being
      hot-swapped and frames migrated mid-run.
   3. Budget safety: with the governor on, stripping and dilation may
      change the recorded profile — that is the point of shedding — but
      never the program's semantics: same return value, same output.
   4. Determinism: same (program, transform, trigger, config) gives an
      identical decision log, poll count and final method versions on
      every run.

   Triggers are deliberately sampler-state-driven (always / never /
   counter): a timer-bit trigger would couple sampling to cycle counts,
   which adaptation changes by design, so ON == OFF profile equality
   only holds for triggers that depend on the check sequence alone.

   Quick/Slow split (PR 1 convention): the quick pass replays a few
   seeded programs; the QCheck property (100 random programs) registers
   as `Slow and runs under `make ci`. *)

module Lir = Ir.Lir

(* the three profiles the controller steers by *)
let spec =
  Core.Spec.combine
    [ Core.Spec.call_edge; Core.Spec.field_access; Core.Spec.edge_profile ]

let transforms =
  [
    ("exhaustive", Core.Transform.exhaustive spec);
    ("full-dup", Core.Transform.full_dup spec);
    ("no-dup", Core.Transform.no_dup spec);
  ]

let triggers =
  [
    ("always", Core.Sampler.Always);
    ("never", Core.Sampler.Never);
    ("counter-3", Core.Sampler.Counter { interval = 3; jitter = 0 });
    ("counter-7j2", Core.Sampler.Counter { interval = 7; jitter = 2 });
  ]

(* aggressive thresholds so small random programs actually trigger
   inlining and reordering decisions *)
let fdo_config =
  {
    Adaptive.Controller.default with
    Adaptive.Controller.poll_period = 500;
    inline_threshold = 2;
    reorder_threshold = 4;
  }

let budget_config =
  { fdo_config with Adaptive.Controller.budget_pct = Some 5.0 }

let compile src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  (classes, funcs)

let instrument transform funcs =
  List.map (fun f -> (transform f).Core.Transform.func) funcs

(* Digest of the final method table — func bodies and code layout — so
   two runs can be compared for "same final versions" without keeping
   the programs alive. *)
let versions_digest (prog : Vm.Program.t) =
  let repr =
    Array.map
      (fun (m : Vm.Program.meth) -> (m.Vm.Program.func, m.Vm.Program.code_addr))
      prog.Vm.Program.methods
  in
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Marshal.to_string repr []))

(* One run; [adaptive = Some config] attaches a fresh controller.  A
   fresh link, sampler and slot resolution per run: runs must agree
   starting from identical cold state. *)
let observe ~engine ~adaptive classes funcs trigger =
  let prog = Vm.Program.link classes ~funcs in
  let sampler = Core.Sampler.create trigger in
  let slots = Profiles.Slots.create prog in
  let ctl =
    Option.map
      (fun config -> Adaptive.Controller.create ~config ~sampler slots)
      adaptive
  in
  let res =
    Vm.Interp.run ~engine ~fuel:200_000_000 ~use_icache:true ~use_dcache:true
      ~recorder:(Profiles.Slots.recorder slots)
      ?on_init:(Option.map Adaptive.Controller.on_init ctl)
      prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 5 ]
      (Profiles.Slots.hooks slots sampler)
  in
  let col = Profiles.Slots.decode slots in
  let c = res.Vm.Interp.counters in
  let sem = (res.Vm.Interp.return_value, res.Vm.Interp.output) in
  (* sorted: adaptation may mint call-edge events in a different
     first-touch order than the dynamic path; content must agree *)
  let profile =
    ( List.sort compare
        (Profiles.Call_edge.to_keyed col.Profiles.Collector.call_edges),
      List.sort compare
        (Profiles.Field_access.to_keyed col.Profiles.Collector.fields),
      List.sort compare
        (Profiles.Edge_profile.to_alist col.Profiles.Collector.edges) )
  in
  let full =
    ( sem,
      (res.Vm.Interp.cycles, res.Vm.Interp.instructions),
      ( c.Vm.Interp.entries,
        c.Vm.Interp.backedge_yps,
        c.Vm.Interp.entry_yps,
        c.Vm.Interp.checks,
        c.Vm.Interp.samples,
        c.Vm.Interp.thread_switches,
        c.Vm.Interp.instrument_ops ),
      (res.Vm.Interp.icache_misses, res.Vm.Interp.dcache_misses),
      profile,
      ( Option.map Adaptive.Controller.decisions ctl,
        Option.map Adaptive.Controller.polls ctl ),
      versions_digest prog )
  in
  (sem, profile, full)

let check_program ~fail src =
  let classes, funcs = compile src in
  List.for_all
    (fun (tname, transform) ->
      let funcs' = instrument transform funcs in
      let ok =
        List.for_all
          (fun (sname, trigger) ->
            let off_sem, off_prof, _ =
              observe ~engine:`Ref ~adaptive:None classes funcs' trigger
            in
            let on_sem, on_prof, on_full =
              observe ~engine:`Ref ~adaptive:(Some fdo_config) classes funcs'
                trigger
            in
            let _, _, on_full' =
              observe ~engine:`Fast ~adaptive:(Some fdo_config) classes funcs'
                trigger
            in
            if on_sem <> off_sem then
              fail
                (Printf.sprintf
                   "adaptive changed semantics: %s under %s" tname sname)
            else if on_prof <> off_prof then
              fail
                (Printf.sprintf
                   "adaptive changed the profile: %s under %s" tname sname)
            else if on_full <> on_full' then
              fail
                (Printf.sprintf
                   "engines diverge under adaptation: %s under %s" tname sname)
            else true)
          triggers
      in
      ok
      &&
      (* determinism: a second identical run reproduces the decision
         log, poll count and final versions bit for bit *)
      let _, _, a =
        observe ~engine:`Ref ~adaptive:(Some fdo_config) classes funcs'
          (Core.Sampler.Counter { interval = 3; jitter = 0 })
      in
      let _, _, b =
        observe ~engine:`Ref ~adaptive:(Some fdo_config) classes funcs'
          (Core.Sampler.Counter { interval = 3; jitter = 0 })
      in
      if a <> b then
        fail (Printf.sprintf "adaptive run not deterministic: %s" tname)
      else
        (* governor on: profiles may legitimately change, semantics and
           engine agreement may not *)
        let b_sem, _, b_full =
          observe ~engine:`Ref ~adaptive:(Some budget_config) classes funcs'
            (Core.Sampler.Counter { interval = 3; jitter = 0 })
        in
        let _, _, b_full' =
          observe ~engine:`Fast ~adaptive:(Some budget_config) classes funcs'
            (Core.Sampler.Counter { interval = 3; jitter = 0 })
        in
        let off_sem, _, _ =
          observe ~engine:`Ref ~adaptive:None classes funcs'
            (Core.Sampler.Counter { interval = 3; jitter = 0 })
        in
        if b_sem <> off_sem then
          fail (Printf.sprintf "governor changed semantics: %s" tname)
        else if b_full <> b_full' then
          fail
            (Printf.sprintf "engines diverge under the governor: %s" tname)
        else true)
    transforms

let adaptive_invariant =
  QCheck.Test.make ~count:100
    ~name:
      "adaptive: ON == OFF semantics+profile, Fast == Ref, deterministic \
       (all transforms x triggers)"
    Gen_jasm.arbitrary_program
    (fun p ->
      check_program
        ~fail:(fun msg -> QCheck.Test.fail_reportf "%s" msg)
        (Gen_jasm.render p))

(* quick pass: same check on a handful of programs from a pinned seed *)
let seeded_invariant () =
  let rand = Random.State.make [| 0xADA9 |] in
  let progs = QCheck.Gen.generate ~n:5 ~rand Gen_jasm.program in
  List.iter
    (fun p ->
      ignore (check_program ~fail:Alcotest.fail (Gen_jasm.render p) : bool))
    progs

let suite =
  [
    ( "adaptive",
      Alcotest.test_case "ON == OFF on seeded programs" `Quick seeded_invariant
      :: List.map
           (QCheck_alcotest.to_alcotest ~long:false)
           [ adaptive_invariant ] );
  ]
