(* Property tests for the adaptive tier's feedback-directed transforms
   (Opt.Fdo) on random well-typed programs, instrumented by every
   duplication transform of the paper.

   Invariants the controller's correctness (and the frame-migration
   map) rests on:

   - every rewrite produces IR the verifier accepts — in particular no
     sampling check ever lands in duplicated code;
   - [strip_instrumentation] removes plain [Instrument] ops ONLY: the
     paper-mandated machinery ([Check] terminators,
     [Guarded_instrument] checks, yieldpoints) survives per block, so
     the fire/sample sequence of a stripped method is unchanged;
   - [inline_static_call] preserves the whole sampling apparatus of
     caller and callee (check/yieldpoint counts add up), keeps the
     rewritten block's yieldpoint prefix (what a migrating frame resumes
     by), and re-keys every cloned call-edge op through [mint];
   - [hot_layout] is layout-only and well-formed: dead blocks get no
     address, live ranges are disjoint, hotter blocks come first. *)

module Lir = Ir.Lir

let spec =
  Core.Spec.combine
    [ Core.Spec.call_edge; Core.Spec.field_access; Core.Spec.edge_profile ]

let transforms =
  [
    ("exhaustive", Core.Transform.exhaustive spec);
    ("full-dup", Core.Transform.full_dup spec);
    ("partial-dup", Core.Transform.partial_dup spec);
    ("no-dup", Core.Transform.no_dup spec);
  ]

let compile src =
  let classes = Jasm.Compile.compile_string src in
  Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes)

(* ---- counting helpers (live blocks only) ---- *)

let live_blocks f =
  List.filter_map
    (fun l ->
      let b = Lir.block f l in
      if b.Lir.role = Lir.Dead then None else Some (l, b))
    (List.init (Lir.num_blocks f) Fun.id)

let yps_of (b : Lir.block) =
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (function Lir.Yieldpoint k -> Some k | _ -> None)
          (Array.to_seq b.Lir.instrs)))

let count_instrs f pred =
  List.fold_left
    (fun n (_, b) ->
      n + Array.fold_left (fun n i -> if pred i then n + 1 else n) 0 b.Lir.instrs)
    0 (live_blocks f)

let n_checks f =
  List.length
    (List.filter
       (fun (_, b) -> match b.Lir.term with Lir.Check _ -> true | _ -> false)
       (live_blocks f))

let n_guarded f =
  count_instrs f (function Lir.Guarded_instrument _ -> true | _ -> false)

let n_yps f = count_instrs f (function Lir.Yieldpoint _ -> true | _ -> false)
let n_plain f = count_instrs f (function Lir.Instrument _ -> true | _ -> false)

let fail_at ~fail fmt = Printf.ksprintf fail fmt

(* ---- strip ---- *)

let check_strip ~fail tname (f : Lir.func) =
  let sf = Opt.Fdo.strip_instrumentation f in
  (try Ir.Verify.check_exn sf
   with e ->
     fail_at ~fail "%s: strip broke the verifier: %s" tname
       (Printexc.to_string e));
  if Opt.Fdo.has_plain_instrument sf then
    fail_at ~fail "%s: plain instrument op survived strip" tname;
  if n_checks sf <> n_checks f then
    fail_at ~fail "%s: strip changed Check terminator count" tname;
  if n_guarded sf <> n_guarded f then
    fail_at ~fail "%s: strip changed guarded-op count" tname;
  (* the migration map's contract: per surviving block, same label, same
     role, same yieldpoint sequence, same terminator *)
  List.iter
    (fun (l, b) ->
      let sb = Lir.block sf l in
      if sb.Lir.role <> b.Lir.role then
        fail_at ~fail "%s: strip changed role of block %d" tname l;
      if yps_of sb <> yps_of b then
        fail_at ~fail "%s: strip changed yieldpoints of block %d" tname l;
      if sb.Lir.term <> b.Lir.term then
        fail_at ~fail "%s: strip changed terminator of block %d" tname l)
    (live_blocks f)

(* ---- inline ---- *)

let static_call_sites (f : Lir.func) =
  List.concat_map
    (fun (l, b) ->
      List.filter_map Fun.id
        (Array.to_list
           (Array.mapi
              (fun i instr ->
                match instr with
                | Lir.Call { kind = Lir.Static; target; _ } ->
                    Some (l, i, target)
                | _ -> None)
              b.Lir.instrs)))
    (live_blocks f)

let check_inline ~fail tname (funcs : Lir.func list) (f : Lir.func) =
  List.iter
    (fun (bl, idx, target) ->
      match
        List.find_opt (fun g -> Lir.method_ref_equal g.Lir.fname target) funcs
      with
      | Some callee
        when Opt.Fdo.inlinable ~max_size:64 callee
             && not (Lir.method_ref_equal f.Lir.fname target) ->
          let minted = ref 0 in
          let mint op =
            incr minted;
            { op with Lir.slot = -1 }
          in
          let nf = Opt.Fdo.inline_static_call f ~callee ~at:(bl, idx) ~mint in
          (try Ir.Verify.check_exn nf
           with e ->
             fail_at ~fail "%s: inline broke the verifier: %s" tname
               (Printexc.to_string e));
          (* whole sampling apparatus of caller + callee preserved *)
          if n_checks nf <> n_checks f + n_checks callee then
            fail_at ~fail "%s: inline lost/added Check terminators" tname;
          if n_yps nf <> n_yps f + n_yps callee then
            fail_at ~fail "%s: inline lost/added yieldpoints" tname;
          if n_guarded nf <> n_guarded f + n_guarded callee then
            fail_at ~fail "%s: inline lost/added guarded ops" tname;
          if n_plain nf <> n_plain f + n_plain callee then
            fail_at ~fail "%s: inline lost/added instrument ops" tname;
          (* every cloned call-edge op was re-keyed through [mint] *)
          let callee_call_edges =
            count_instrs callee (function
              | Lir.Instrument op | Lir.Guarded_instrument op ->
                  op.Lir.hook = "call_edge"
              | _ -> false)
          in
          if !minted <> callee_call_edges then
            fail_at ~fail "%s: minted %d of %d cloned call-edge ops" tname
              !minted callee_call_edges;
          (* the rewritten block keeps its yieldpoint prefix: a frame
             parked at any pre-call yieldpoint can migrate into [nf] *)
          let old_b = Lir.block f bl in
          let pre_yps =
            yps_of
              {
                old_b with
                Lir.instrs = Array.sub old_b.Lir.instrs 0 idx;
              }
          in
          let new_b = Lir.block nf bl in
          if yps_of new_b <> pre_yps then
            fail_at ~fail "%s: inline changed block %d's yieldpoint prefix"
              tname bl
      | _ -> ())
    (static_call_sites f)

(* ---- hot layout ---- *)

let check_layout ~fail tname (f : Lir.func) =
  (* deterministic pseudo-random weights *)
  let weight l = (l * 2654435761) land 0xFF in
  let base = 1000 in
  let addr, next = Opt.Fdo.hot_layout f ~weight base in
  if Array.length addr <> Lir.num_blocks f then
    fail_at ~fail "%s: layout array length mismatch" tname;
  let size (b : Lir.block) = Array.length b.Lir.instrs + 1 in
  let total = ref 0 in
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role = Lir.Dead then begin
      if addr.(l) <> -1 then
        fail_at ~fail "%s: dead block %d got an address" tname l
    end
    else begin
      total := !total + size b;
      if addr.(l) < base then
        fail_at ~fail "%s: block %d laid out below base" tname l
    end
  done;
  if next <> base + !total then
    fail_at ~fail "%s: layout cursor %d <> base + live size %d" tname next
      (base + !total);
  (* live ranges are disjoint and hotter blocks come first *)
  let live = live_blocks f in
  List.iter
    (fun (l1, b1) ->
      List.iter
        (fun (l2, _) ->
          if l1 <> l2 then begin
            let s1, e1 = (addr.(l1), addr.(l1) + size b1) in
            let s2 = addr.(l2) in
            if s2 >= s1 && s2 < e1 then
              fail_at ~fail "%s: blocks %d and %d overlap" tname l1 l2;
            if weight l1 > weight l2 && addr.(l1) > addr.(l2) then
              fail_at ~fail "%s: hotter block %d laid out after %d" tname l1
                l2
          end)
        live)
    live

let check_program ~fail src =
  let funcs = compile src in
  List.for_all
    (fun (tname, transform) ->
      let funcs' =
        List.map (fun f -> (transform f).Core.Transform.func) funcs
      in
      List.iter
        (fun f ->
          check_strip ~fail tname f;
          check_inline ~fail tname funcs' f;
          check_layout ~fail tname f)
        funcs';
      true)
    transforms

let fdo_invariants =
  QCheck.Test.make ~count:100
    ~name:
      "fdo: strip/inline/layout verified and sampling-preserving (all \
       transforms)"
    Gen_jasm.arbitrary_program
    (fun p ->
      check_program
        ~fail:(fun msg -> QCheck.Test.fail_reportf "%s" msg)
        (Gen_jasm.render p))

let seeded_invariants () =
  let rand = Random.State.make [| 0xF40 |] in
  let progs = QCheck.Gen.generate ~n:8 ~rand Gen_jasm.program in
  List.iter
    (fun p ->
      ignore (check_program ~fail:Alcotest.fail (Gen_jasm.render p) : bool))
    progs

let suite =
  [
    ( "fdo",
      Alcotest.test_case "transform invariants on seeded programs" `Quick
        seeded_invariants
      :: List.map
           (QCheck_alcotest.to_alcotest ~long:false)
           [ fdo_invariants ] );
  ]
