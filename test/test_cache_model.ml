(* Cache-model regression test.

   Pins the EXACT i-cache and d-cache miss counts (and cycles) of a
   small fixed workload, under both execution engines.  The cache
   simulation is part of the deterministic cost model the paper's
   tables are reproduced on (duplicated code stresses the i-cache —
   DESIGN.md section 4), so a silent change to set indexing, line size,
   eviction order, or to WHERE the engines issue cache accesses would
   skew every experiment while all purely semantic tests stay green.
   These constants were produced by the reference interpreter at the
   time the compiled engine was introduced; both engines must
   reproduce them forever.

   The workload mixes the behaviors the model distinguishes: a strided
   array sweep (d-cache locality), deep recursion (i-cache pressure
   from frame churn), and an instrumented variant whose duplicated
   code doubles the method bodies' footprint. *)

module Lir = Ir.Lir

let src =
  {|class Main {
  static fun fib(n: int): int {
    if (n < 2) { return n; }
    return (Main.fib(n - 1) + Main.fib(n - 2)) & 1048575;
  }
  static fun main(n: int): int {
    var acc: int = n;
    var arr: int[] = new int[64];
    var i: int = 0;
    while (i < 64) { arr[i & 63] = (i * 7) & 1023; i = i + 1; }
    var j: int = 0;
    while (j < 32) {
      acc = (acc + arr[(j * 5) & 63] + Main.fib(10)) & 1048575;
      j = j + 1;
    }
    print(acc);
    return acc;
  }
}|}

let spec = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let run ~engine ~instrumented =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  let funcs =
    if instrumented then
      List.map
        (fun f -> (Core.Transform.full_dup spec f).Core.Transform.func)
        funcs
    else funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 3; jitter = 0 })
  in
  Vm.Interp.run ~engine ~use_icache:true ~use_dcache:true
    (Vm.Program.link classes ~funcs)
    ~entry:{ Lir.mclass = "Main"; mname = "main" }
    ~args:[ 5 ]
    (Profiles.Collector.hooks collector sampler)

(* (cycles, instructions, icache misses, dcache misses) *)
let expected_baseline = (171774, 46512, 7, 8)
(* the duplicated bodies exactly double the workload's i-cache misses
   (7 -> 14) while its data footprint is untouched (8 d-cache misses in
   both) — the effect Table 3 attributes instrumentation dilation to *)
let expected_instrumented = (312183, 54161, 14, 8)

let check_pinned name expected ~instrumented =
  List.iter
    (fun (ename, engine) ->
      let r = run ~engine ~instrumented in
      let got =
        ( r.Vm.Interp.cycles,
          r.Vm.Interp.instructions,
          r.Vm.Interp.icache_misses,
          r.Vm.Interp.dcache_misses )
      in
      let show (c, n, i, d) =
        Printf.sprintf "(cycles %d, instrs %d, icache %d, dcache %d)" c n i d
      in
      if got <> expected then
        Alcotest.failf "%s under %s engine: pinned %s, got %s" name ename
          (show expected) (show got))
    [ ("ref", `Ref); ("fast", `Fast) ]

let baseline_pinned () =
  check_pinned "baseline" expected_baseline ~instrumented:false

let instrumented_pinned () =
  check_pinned "full-dup counter-3" expected_instrumented ~instrumented:true

let suite =
  [
    ( "cache-model",
      [
        Alcotest.test_case "baseline misses pinned" `Quick baseline_pinned;
        Alcotest.test_case "instrumented misses pinned" `Quick
          instrumented_pinned;
      ] );
  ]
