(* The core contribution: structural and dynamic properties of the five
   transformations (sections 2, 3 and 4.5 of the paper). *)

module Lir = Ir.Lir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spec = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

(* a function with a loop, a call and field traffic, post-frontend *)
let sample_func () =
  let _, funcs = Helpers.build Helpers.loop_src in
  List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "bump") funcs

let main_func () =
  let _, funcs = Helpers.build Helpers.loop_src in
  List.find (fun (f : Lir.func) -> f.Lir.fname.Lir.mname = "main") funcs

let live_blocks f =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) -> if b.Lir.role <> Lir.Dead then incr n)
    f.Lir.blocks;
  !n

let count_in_role f role p =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      if b.Lir.role = role then
        Array.iter (fun i -> if p i then incr n) b.Lir.instrs)
    f.Lir.blocks;
  !n

let is_instrument = function Lir.Instrument _ -> true | _ -> false
let is_guarded = function Lir.Guarded_instrument _ -> true | _ -> false
let is_yieldpoint = function Lir.Yieldpoint _ -> true | _ -> false

(* -------- Full-Duplication structure -------- *)

let full_dup_structure () =
  let f = main_func () in
  let n_orig = live_blocks f in
  let backedges = List.length (Ir.Loops.retreating_edges f) in
  let r = Core.Transform.full_dup spec f in
  let g = r.Core.Transform.func in
  Ir.Verify.check_exn g;
  check_int "static checks = entry + backedges" (1 + backedges)
    r.Core.Transform.static_checks;
  check_bool "duplicated at least all original blocks" true
    (r.Core.Transform.duplicated_blocks >= n_orig);
  (* instrumentation only in the duplicated code *)
  check_int "no ops in checking code" 0 (count_in_role g Lir.Orig is_instrument);
  check_int "no ops in check blocks" 0
    (count_in_role g Lir.Check_block is_instrument);
  check_bool "ops present in dup code" true
    (count_in_role g Lir.Dup is_instrument > 0);
  (* entry is a check block targeting the dup entry *)
  (match (Lir.block g g.Lir.entry).Lir.term with
  | Lir.Check { on_sample; fall } ->
      check_bool "sample target is dup" true
        ((Lir.block g on_sample).Lir.role = Lir.Dup);
      check_bool "fall is checking code" true
        ((Lir.block g fall).Lir.role = Lir.Orig)
  | _ -> Alcotest.fail "entry must be a check");
  (* the duplicated subgraph must be acyclic: all backedges return to the
     checking code (bounded time per sample, section 2) *)
  let dup_cycle = ref false in
  let n = Lir.num_blocks g in
  let color = Array.make n 0 in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if (Lir.block g v).Lir.role = Lir.Dup then begin
          if color.(v) = 1 then dup_cycle := true
          else if color.(v) = 0 then dfs v
        end)
      (Ir.Cfg.succs g u);
    color.(u) <- 2
  in
  for l = 0 to n - 1 do
    if (Lir.block g l).Lir.role = Lir.Dup && color.(l) = 0 then dfs l
  done;
  check_bool "duplicated code is a DAG" false !dup_cycle

(* Property 1, dynamically: executed checks never exceed executed method
   entries plus executed backedges. *)
let property_one trigger () =
  let res, _ =
    Helpers.exec_transformed ~transform:(Core.Transform.full_dup spec) ~trigger
      Helpers.loop_src [ 300 ]
  in
  let c = res.Vm.Interp.counters in
  check_bool
    (Printf.sprintf "checks %d <= entries %d + backedges %d"
       c.Vm.Interp.checks c.Vm.Interp.entries c.Vm.Interp.backedge_yps)
    true
    (c.Vm.Interp.checks <= c.Vm.Interp.entries + c.Vm.Interp.backedge_yps)

let property_one_partial () =
  (* Partial-Duplication also respects Property 1, and the paper's
     claim that it "executes no more checks than Full-Duplication" holds
     exactly: every backedge traversal routes through the shared check
     in both transforms, and Partial-Duplication only ever deletes
     checks (those whose sample target was removed). *)
  let full, _ =
    Helpers.exec_transformed ~transform:(Core.Transform.full_dup spec)
      ~trigger:(Core.Sampler.Counter { interval = 13; jitter = 0 })
      Helpers.loop_src [ 300 ]
  in
  let part, _ =
    Helpers.exec_transformed ~transform:(Core.Transform.partial_dup spec)
      ~trigger:(Core.Sampler.Counter { interval = 13; jitter = 0 })
      Helpers.loop_src [ 300 ]
  in
  let pc = part.Vm.Interp.counters and fc = full.Vm.Interp.counters in
  check_bool "no more checks than Full-Duplication" true
    (pc.Vm.Interp.checks <= fc.Vm.Interp.checks);
  (* and Property 1 itself *)
  check_bool "Property 1" true
    (pc.Vm.Interp.checks <= pc.Vm.Interp.entries + pc.Vm.Interp.backedge_yps)

(* -------- No-Duplication -------- *)

let no_dup_structure () =
  let f = sample_func () in
  let plan = Core.Spec.plan_for spec f in
  let r = Core.Transform.no_dup spec f in
  check_int "no duplicated blocks" 0 r.Core.Transform.duplicated_blocks;
  check_int "one check per op" (List.length plan) r.Core.Transform.static_checks;
  let g = r.Core.Transform.func in
  check_int "all ops guarded"
    (List.length plan)
    (count_in_role g Lir.Orig is_guarded)

(* -------- checks-only -------- *)

let checks_only_structure () =
  let f = main_func () in
  let backedges = List.length (Ir.Loops.retreating_edges f) in
  let r = Core.Transform.checks_only ~entries:false ~backedges:true f in
  check_int "backedge checks" backedges r.Core.Transform.static_checks;
  check_int "nothing duplicated" 0 r.Core.Transform.duplicated_blocks;
  (* both branches of the check go to the same place *)
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      match b.Lir.term with
      | Lir.Check { on_sample; fall } ->
          check_int "check is a no-op branch" on_sample fall
      | _ -> ())
    r.Core.Transform.func.Lir.blocks

(* -------- yieldpoint optimization -------- *)

let yieldpoint_opt_structure () =
  let f = main_func () in
  let r = Core.Transform.full_dup_yieldpoint_opt spec f in
  let g = r.Core.Transform.func in
  check_int "no yieldpoints in checking code" 0
    (count_in_role g Lir.Orig is_yieldpoint
    + count_in_role g Lir.Check_block is_yieldpoint);
  check_bool "yieldpoints survive in dup code" true
    (count_in_role g Lir.Dup is_yieldpoint > 0)

let yieldpoint_opt_still_schedules () =
  (* threads must still get preempted — via the yieldpoints that now live
     in the duplicated code, reached whenever samples fire *)
  let b = Workloads.Suite.find "pbob" in
  let classes = Workloads.Suite.compile b in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  let funcs =
    List.map
      (fun f ->
        (Core.Transform.full_dup_yieldpoint_opt spec f).Core.Transform.func)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 100; jitter = 0 })
  in
  let res =
    Vm.Interp.run
      (Vm.Program.link classes ~funcs)
      ~entry:Workloads.Suite.entry ~args:[ 1 ]
      (Profiles.Collector.hooks collector sampler)
  in
  check_bool "threads still switch" true
    (res.Vm.Interp.counters.Vm.Interp.thread_switches > 0)

(* -------- Partial-Duplication -------- *)

let partial_smaller_than_full () =
  (* with sparse instrumentation (call-edge only: one op at entry),
     partial duplication must drop blocks *)
  let f = main_func () in
  let full = Core.Transform.full_dup Core.Spec.call_edge f in
  let part = Core.Transform.partial_dup Core.Spec.call_edge f in
  check_bool
    (Printf.sprintf "fewer dup blocks (%d < %d)"
       part.Core.Transform.duplicated_blocks full.Core.Transform.duplicated_blocks)
    true
    (part.Core.Transform.duplicated_blocks < full.Core.Transform.duplicated_blocks)

let partial_identical_profiles () =
  (* "Instrumentation is performed identically to Full-Duplication":
     at sample interval 1 both must produce the same profile *)
  let run transform =
    let _, collector =
      Helpers.exec_transformed ~transform ~trigger:Core.Sampler.Always
        Helpers.loop_src [ 120 ]
    in
    ( Profiles.Call_edge.to_keyed collector.Profiles.Collector.call_edges,
      Profiles.Field_access.to_keyed collector.Profiles.Collector.fields )
  in
  let ce_full, fa_full = run (Core.Transform.full_dup spec) in
  let ce_part, fa_part = run (Core.Transform.partial_dup spec) in
  let sort = List.sort compare in
  Alcotest.(check (list (pair string int)))
    "same call edges" (sort ce_full) (sort ce_part);
  Alcotest.(check (list (pair string int)))
    "same field profile" (sort fa_full) (sort fa_part)

let partial_removes_useless_checks () =
  (* a method whose only instrumentation sits at entry: every backedge
     check in the checking code would divert to a bottom node, so
     partial duplication must remove them all *)
  let f = main_func () in
  let part = Core.Transform.partial_dup Core.Spec.call_edge f in
  (* only the entry check remains *)
  check_int "only the entry check survives" 1 part.Core.Transform.static_checks

(* -------- exhaustive -------- *)

let exhaustive_counts () =
  let n = 77 in
  let _, collector =
    Helpers.exec_transformed ~transform:(Core.Transform.exhaustive spec)
      ~trigger:Core.Sampler.Never Helpers.loop_src [ n ]
  in
  (* identical to the perfect (interval 1) profile *)
  let _, perfect =
    Helpers.exec_transformed ~transform:(Core.Transform.full_dup spec)
      ~trigger:Core.Sampler.Always Helpers.loop_src [ n ]
  in
  Alcotest.(check (list (pair string int)))
    "exhaustive = perfect profile"
    (List.sort compare
       (Profiles.Call_edge.to_keyed perfect.Profiles.Collector.call_edges))
    (List.sort compare
       (Profiles.Call_edge.to_keyed collector.Profiles.Collector.call_edges))

(* -------- all transforms on all benchmarks preserve semantics -------- *)

let transform_preserves name transform (b : Workloads.Suite.benchmark) () =
  ignore name;
  let classes = Workloads.Suite.compile b in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  let baseline =
    Vm.Interp.run (Helpers.link classes funcs) ~entry:Workloads.Suite.entry
      ~args:[ 1 ] Vm.Interp.null_hooks
  in
  let funcs' =
    List.map
      (fun f ->
        let g = (transform f).Core.Transform.func in
        Core.Validate.check_exn g;
        g)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler =
    Core.Sampler.create (Core.Sampler.Counter { interval = 37; jitter = 5 })
  in
  let res =
    Vm.Interp.run (Helpers.link classes funcs') ~entry:Workloads.Suite.entry
      ~args:[ 1 ]
      (Profiles.Collector.hooks collector sampler)
  in
  Alcotest.(check string)
    "output unchanged" baseline.Vm.Interp.output res.Vm.Interp.output

let preservation_cases =
  List.concat_map
    (fun (name, transform) ->
      List.map
        (fun (b : Workloads.Suite.benchmark) ->
          Alcotest.test_case
            (name ^ ":" ^ b.Workloads.Suite.bname)
            `Quick
            (transform_preserves name transform b))
        Workloads.Suite.all)
    [
      ("full-dup", Core.Transform.full_dup spec);
      ("partial-dup", Core.Transform.partial_dup spec);
      ("no-dup", Core.Transform.no_dup spec);
      ("yp-opt", Core.Transform.full_dup_yieldpoint_opt spec);
    ]

let suite =
  [
    ( "transform.full-dup",
      [
        Alcotest.test_case "structure" `Quick full_dup_structure;
        Alcotest.test_case "Property 1 (never fires)" `Quick
          (property_one Core.Sampler.Never);
        Alcotest.test_case "Property 1 (always fires)" `Quick
          (property_one Core.Sampler.Always);
        Alcotest.test_case "Property 1 (interval 7)" `Quick
          (property_one (Core.Sampler.Counter { interval = 7; jitter = 0 }));
      ] );
    ( "transform.no-dup",
      [ Alcotest.test_case "structure" `Quick no_dup_structure ] );
    ( "transform.checks-only",
      [ Alcotest.test_case "structure" `Quick checks_only_structure ] );
    ( "transform.yieldpoint-opt",
      [
        Alcotest.test_case "structure" `Quick yieldpoint_opt_structure;
        Alcotest.test_case "still schedules threads" `Quick
          yieldpoint_opt_still_schedules;
      ] );
    ( "transform.partial-dup",
      [
        Alcotest.test_case "smaller than full" `Quick partial_smaller_than_full;
        Alcotest.test_case "identical instrumentation" `Quick
          partial_identical_profiles;
        Alcotest.test_case "removes useless checks" `Quick
          partial_removes_useless_checks;
        Alcotest.test_case "Property 1 preserved" `Quick property_one_partial;
      ] );
    ( "transform.exhaustive",
      [ Alcotest.test_case "equals perfect profile" `Quick exhaustive_counts ] );
    ("transform.preservation", preservation_cases);
  ]
