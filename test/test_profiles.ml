(* Profile data structures and the overlap-percentage accuracy metric. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let close ?(eps = 1e-6) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%f - %f| < %f" msg expected got eps)
    true
    (Float.abs (expected -. got) < eps)

(* -------- overlap metric -------- *)

let overlap_identical () =
  let p = [ ("a", 10); ("b", 30); ("c", 60) ] in
  close "identical profiles" 100.0 (Profiles.Overlap.percent p p);
  (* scaling either profile changes nothing: percentages are normalized *)
  let p2 = List.map (fun (k, c) -> (k, c * 7)) p in
  close "scaled profile" 100.0 (Profiles.Overlap.percent p p2)

let overlap_disjoint () =
  close "disjoint" 0.0
    (Profiles.Overlap.percent [ ("a", 5) ] [ ("b", 5) ])

let overlap_partial () =
  (* perfect: a=50%, b=50%; sampled: a=100% -> overlap = min(50,100) = 50 *)
  close "half" 50.0
    (Profiles.Overlap.percent [ ("a", 1); ("b", 1) ] [ ("a", 42) ])

let overlap_empty () =
  close "both empty" 100.0 (Profiles.Overlap.percent [] []);
  close "one empty" 0.0 (Profiles.Overlap.percent [ ("a", 1) ] [])

let overlap_is_symmetric () =
  let p1 = [ ("a", 3); ("b", 9); ("c", 2) ] in
  let p2 = [ ("b", 1); ("c", 8); ("d", 4) ] in
  close "symmetric"
    (Profiles.Overlap.percent p1 p2)
    (Profiles.Overlap.percent p2 p1)

let overlap_duplicate_keys () =
  (* duplicated keys accumulate before comparison *)
  close "dup keys" 100.0
    (Profiles.Overlap.percent
       [ ("a", 1); ("a", 1) ]
       [ ("a", 5) ])

let sample_percentages () =
  let pcts = Profiles.Overlap.sample_percentages [ ("a", 1); ("b", 3) ] in
  close "b is 75%" 75.0 (List.assoc "b" pcts);
  check_bool "sorted descending" true (fst (List.hd pcts) = "b")

(* -------- call-edge profile -------- *)

let call_edges () =
  let t = Profiles.Call_edge.create () in
  Profiles.Call_edge.record t ~caller:"A.m" ~site:3 ~callee:"B.n";
  Profiles.Call_edge.record t ~caller:"A.m" ~site:3 ~callee:"B.n";
  Profiles.Call_edge.record t ~caller:"A.m" ~site:9 ~callee:"B.n";
  check_int "distinct edges" 2 (Profiles.Call_edge.distinct_edges t);
  check_int "total" 3 (Profiles.Call_edge.total t);
  check_int "per-edge count" 2
    (Profiles.Call_edge.count t
       { Profiles.Call_edge.caller = "A.m"; site = 3; callee = "B.n" });
  match Profiles.Call_edge.to_alist t with
  | (top, 2) :: _ ->
      Alcotest.(check string)
        "edge name" "A.m@3->B.n"
        (Profiles.Call_edge.edge_name top)
  | _ -> Alcotest.fail "expected the hot edge first"

(* -------- field profile -------- *)

let field_profile () =
  let t = Profiles.Field_access.create () in
  Profiles.Field_access.record t ~field:"C.x" ~is_write:false;
  Profiles.Field_access.record t ~field:"C.x" ~is_write:true;
  Profiles.Field_access.record t ~field:"C.y" ~is_write:false;
  check_int "total" 3 (Profiles.Field_access.total t);
  check_int "reads" 2 (Profiles.Field_access.reads t);
  check_int "writes" 1 (Profiles.Field_access.writes t);
  check_int "per field" 2 (Profiles.Field_access.count t "C.x");
  check_int "distinct" 2 (Profiles.Field_access.distinct_fields t)

(* -------- edge profile -------- *)

let edge_profile () =
  let t = Profiles.Edge_profile.create () in
  Profiles.Edge_profile.record t ~meth:"A.m" ~src:0 ~dst:1;
  Profiles.Edge_profile.record t ~meth:"A.m" ~src:0 ~dst:1;
  Profiles.Edge_profile.record t ~meth:"A.m" ~src:1 ~dst:0;
  check_int "count" 2 (Profiles.Edge_profile.count t ~meth:"A.m" ~src:0 ~dst:1);
  check_int "total" 3 (Profiles.Edge_profile.total t)

(* -------- value profile -------- *)

let value_profile_basic () =
  let t = Profiles.Value_profile.create () in
  for _ = 1 to 90 do
    Profiles.Value_profile.record t ~meth:"A.m" ~site:1 ~value:42
  done;
  for _ = 1 to 10 do
    Profiles.Value_profile.record t ~meth:"A.m" ~site:1 ~value:7
  done;
  (match Profiles.Value_profile.top_value t ~meth:"A.m" ~site:1 with
  | Some (v, _) -> check_int "top value" 42 v
  | None -> Alcotest.fail "expected a top value");
  match Profiles.Value_profile.invariance t ~meth:"A.m" ~site:1 with
  | Some inv -> close ~eps:0.01 "90% invariant" 0.9 inv
  | None -> Alcotest.fail "expected invariance"

let value_profile_eviction () =
  (* hammer one value, then stream many distinct ones: the heavy hitter
     must survive the halving eviction *)
  let t = Profiles.Value_profile.create () in
  for _ = 1 to 1000 do
    Profiles.Value_profile.record t ~meth:"A.m" ~site:0 ~value:5
  done;
  for v = 100 to 200 do
    Profiles.Value_profile.record t ~meth:"A.m" ~site:0 ~value:v
  done;
  match Profiles.Value_profile.top_value t ~meth:"A.m" ~site:0 with
  | Some (v, _) -> check_int "heavy hitter survives" 5 v
  | None -> Alcotest.fail "expected a top value"

(* -------- collector dispatch -------- *)

let collector_unknown_hook () =
  let t = Profiles.Collector.create () in
  let hooks = Profiles.Collector.null_sampler_hooks t in
  let ctx =
    {
      Vm.Interp.cur = { Ir.Lir.mclass = "A"; mname = "m" };
      caller = None;
      eval = (fun _ -> 0);
      frame_id = 0;
      class_of = (fun _ -> None);
      stack = (fun () -> []);
    }
  in
  check_bool "unknown hook raises" true
    (try
       hooks.Vm.Interp.on_instrument ctx
         (Ir.Lir.mk_op "bogus" Ir.Lir.P_unit);
       false
     with Vm.Interp.Runtime_error _ -> true)

let op_costs_sane () =
  let cost h = Profiles.Collector.op_cost (Ir.Lir.mk_op h Ir.Lir.P_unit) in
  check_bool "call edge is the expensive one" true
    (cost "call_edge" > cost "field_access");
  check_bool "field op costs about a check" true
    (abs (cost "field_access" - Vm.Costs.default.Vm.Costs.check) <= 2)

let suite =
  [
    ( "profiles.overlap",
      [
        Alcotest.test_case "identical" `Quick overlap_identical;
        Alcotest.test_case "disjoint" `Quick overlap_disjoint;
        Alcotest.test_case "partial" `Quick overlap_partial;
        Alcotest.test_case "empty" `Quick overlap_empty;
        Alcotest.test_case "symmetric" `Quick overlap_is_symmetric;
        Alcotest.test_case "duplicate keys" `Quick overlap_duplicate_keys;
        Alcotest.test_case "sample percentages" `Quick sample_percentages;
      ] );
    ( "profiles.tables",
      [
        Alcotest.test_case "call edges" `Quick call_edges;
        Alcotest.test_case "field accesses" `Quick field_profile;
        Alcotest.test_case "cfg edges" `Quick edge_profile;
        Alcotest.test_case "value tables" `Quick value_profile_basic;
        Alcotest.test_case "value eviction" `Quick value_profile_eviction;
      ] );
    ( "profiles.collector",
      [
        Alcotest.test_case "unknown hook" `Quick collector_unknown_hook;
        Alcotest.test_case "op costs" `Quick op_costs_sane;
      ] );
  ]
