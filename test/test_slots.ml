(* Differential testing of the flat-slot recording path (Profiles.Slots)
   against the legacy event-by-event collector.

   The two recording paths must be BIT-IDENTICAL, not merely
   semantically equivalent: same return value and printed output, same
   cycle and instruction counts (the per-op charge is resolved once at
   slot-resolution time and must equal Collector.op_cost), same event
   counters, and — the strong claim — the same decoded profiles
   including hashtable iteration order: every comparison below uses the
   UNSORTED to_alist / to_keyed / hot_contexts outputs, so a decode
   that inserted keys in any order other than the legacy first-event
   order fails the test even when the multiset of counts matches.

   Every random program is run under all seven instrumentations
   combined (call edges, field accesses, basic-block edges, value TNV,
   Ball–Larus paths, receiver classes, CCT) crossed with exhaustive and
   sampled configurations, on both engines, and the full observation
   tuples are compared with structural equality against the legacy/Ref
   oracle.

   Quick/Slow split (PR 1 convention): the quick pass replays a few
   seeded programs; the QCheck property (100 random programs) registers
   as `Slow and runs under `make ci`. *)

module Lir = Ir.Lir

(* All seven profile kinds, split into two combos because the
   transforms support at most one edge-site spec at a time (multiple
   ops on one CFG edge are not grouped): edge_profile and path_profile
   each get a run, every non-edge spec rides along in both. *)
let non_edge_specs =
  [
    Core.Spec.call_edge;
    Core.Spec.field_access;
    Core.Spec.value_profile;
    Profiles.Specs.cct_profile;
    Profiles.Specs.receiver_profile;
  ]

let spec_edges = Core.Spec.combine (Core.Spec.edge_profile :: non_edge_specs)
let spec_paths = Core.Spec.combine (Profiles.Specs.path_profile :: non_edge_specs)

(* exhaustive = unguarded ops (the bench configuration); full-dup and
   no-dup cover guarded ops on the duplicated and inline paths *)
let transforms =
  List.concat_map
    (fun (pname, spec) ->
      [
        ("exhaustive/" ^ pname, Core.Transform.exhaustive spec);
        ("full-dup/" ^ pname, Core.Transform.full_dup spec);
        ("no-dup/" ^ pname, Core.Transform.no_dup spec);
      ])
    [ ("edges", spec_edges); ("paths", spec_paths) ]

let triggers =
  [
    ("never", Core.Sampler.Never);
    ("counter-3", Core.Sampler.Counter { interval = 3; jitter = 0 });
    ("counter-7j2", Core.Sampler.Counter { interval = 7; jitter = 2 });
  ]

let compile src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  (classes, funcs)

let instrument transform funcs =
  List.map (fun f -> (transform f).Core.Transform.func) funcs

(* Everything observable from one run through one recording path, as
   one structurally comparable value.  Profile lists are deliberately
   NOT sorted: iteration order is part of the contract. *)
let observe ~engine ~recording classes funcs trigger =
  let prog = Vm.Program.link classes ~funcs in
  let sampler = Core.Sampler.create trigger in
  let hooks, recorder, decode =
    match recording with
    | `Legacy ->
        let c = Profiles.Collector.create () in
        (Profiles.Collector.hooks c sampler, None, fun () -> c)
    | `Slots ->
        let s = Profiles.Slots.create prog in
        ( Profiles.Slots.hooks s sampler,
          Some (Profiles.Slots.recorder s),
          fun () -> Profiles.Slots.decode s )
  in
  let res =
    Vm.Interp.run ~engine ~fuel:200_000_000 ~use_icache:true ~use_dcache:true
      ?recorder prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 5 ] hooks
  in
  let col = decode () in
  let c = res.Vm.Interp.counters in
  ( ( res.Vm.Interp.return_value,
      res.Vm.Interp.output,
      res.Vm.Interp.cycles,
      res.Vm.Interp.instructions ),
    ( c.Vm.Interp.entries,
      c.Vm.Interp.backedge_yps,
      c.Vm.Interp.entry_yps,
      c.Vm.Interp.checks,
      c.Vm.Interp.samples,
      c.Vm.Interp.thread_switches,
      c.Vm.Interp.instrument_ops ),
    ( Profiles.Call_edge.to_alist col.Profiles.Collector.call_edges,
      Profiles.Field_access.to_alist col.Profiles.Collector.fields,
      ( Profiles.Field_access.reads col.Profiles.Collector.fields,
        Profiles.Field_access.writes col.Profiles.Collector.fields ),
      Profiles.Edge_profile.to_alist col.Profiles.Collector.edges,
      Profiles.Value_profile.to_keyed col.Profiles.Collector.values,
      Profiles.Path_profile.to_alist col.Profiles.Collector.paths,
      Profiles.Receiver_profile.to_keyed col.Profiles.Collector.receivers ),
    ( Profiles.Cct.to_keyed col.Profiles.Collector.cct,
      Profiles.Cct.hot_contexts col.Profiles.Collector.cct,
      Profiles.Cct.n_nodes col.Profiles.Collector.cct,
      Profiles.Cct.max_depth col.Profiles.Collector.cct,
      Profiles.Cct.total_walks col.Profiles.Collector.cct ) )

(* Satellite invariant: the per-event charge resolved at
   slot-resolution time must equal the legacy dispatcher's
   Collector.op_cost for every op of the program — cycle equality then
   follows structurally rather than coincidentally. *)
let check_resolved_charges prog =
  let s = Profiles.Slots.create prog in
  let rc = Profiles.Slots.recorder s in
  Array.iter
    (fun (m : Vm.Program.meth) ->
      for l = 0 to Lir.num_blocks m.Vm.Program.func - 1 do
        let b = Lir.block m.Vm.Program.func l in
        Array.iter
          (fun instr ->
            match instr with
            | Lir.Instrument op | Lir.Guarded_instrument op ->
                if op.Lir.slot < 0 then
                  Alcotest.failf "op %s escaped slot resolution" op.Lir.hook;
                let resolved = rc.Vm.Machine.ev_cost.(op.Lir.slot) in
                let legacy = Profiles.Collector.op_cost op in
                if resolved <> legacy then
                  Alcotest.failf "hook %s: resolved charge %d <> op_cost %d"
                    op.Lir.hook resolved legacy
            | _ -> ())
          b.Lir.instrs
      done)
    prog.Vm.Program.methods

(* [fail]: QCheck's fail_reportf for the property, Alcotest.fail for
   the quick seeded pass *)
let check_program ~fail src =
  let classes, funcs = compile src in
  List.for_all
    (fun (tname, transform) ->
      let funcs' = instrument transform funcs in
      check_resolved_charges (Vm.Program.link classes ~funcs:funcs');
      List.for_all
        (fun (sname, trigger) ->
          let oracle = observe ~engine:`Ref ~recording:`Legacy classes funcs' trigger in
          List.for_all
            (fun (ename, engine, recording, rname) ->
              let o = observe ~engine ~recording classes funcs' trigger in
              if o <> oracle then
                fail
                  (Printf.sprintf
                     "recording paths diverge from legacy/Ref: transform %s, \
                      trigger %s, engine %s, recording %s"
                     tname sname ename rname)
              else true)
            [
              ("Ref", `Ref, `Slots, "slots");
              ("Fast", `Fast, `Legacy, "legacy");
              ("Fast", `Fast, `Slots, "slots");
            ])
        triggers)
    transforms

let recordings_agree =
  QCheck.Test.make ~count:100
    ~name:"slots: flat decode == legacy collector (all profiles x both engines)"
    Gen_jasm.arbitrary_program
    (fun p ->
      check_program
        ~fail:(fun msg -> QCheck.Test.fail_reportf "%s" msg)
        (Gen_jasm.render p))

(* quick pass: same check on a handful of programs from a pinned seed *)
let seeded_agree () =
  let rand = Random.State.make [| 0x510F5 |] in
  let progs = QCheck.Gen.generate ~n:5 ~rand Gen_jasm.program in
  List.iter
    (fun p ->
      ignore (check_program ~fail:Alcotest.fail (Gen_jasm.render p)))
    progs

(* Satellite: cct max_depth counts only nodes where a walk ended or
   leaves — interior uncounted prefixes never determine the depth. *)
let cct_max_depth () =
  let t = Profiles.Cct.create () in
  Alcotest.(check int) "empty" 0 (Profiles.Cct.max_depth t);
  Profiles.Cct.record t [ ("a", 1); ("b", 2); ("c", 3) ];
  Alcotest.(check int) "walk of 3" 3 (Profiles.Cct.max_depth t);
  Profiles.Cct.record t [ ("a", 1) ];
  Alcotest.(check int) "shorter walk keeps depth" 3 (Profiles.Cct.max_depth t);
  (* an imported tree can hold an uncounted leaf (no walk ended there):
     it still counts toward depth, while the uncounted interior node
     above it does not determine it *)
  let t2 = Profiles.Cct.create () in
  Profiles.Cct.import t2 ~walks:1 ~root:0
    ~children:(fun n ->
      match n with
      | 0 -> [ (("a", 1), 1) ]
      | 1 -> [ (("b", 2), 2) ]
      | _ -> [])
    ~count:(fun n -> if n = 0 then 1 else 0);
  Alcotest.(check int) "uncounted leaf depth" 2 (Profiles.Cct.max_depth t2)

let suite =
  [
    ( "slots",
      [
        Alcotest.test_case "flat == legacy on seeded programs" `Quick
          seeded_agree;
        Alcotest.test_case "cct max_depth: counted-or-leaf" `Quick
          cct_max_depth;
      ]
      @ List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ recordings_agree ] );
  ]
