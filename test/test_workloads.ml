(* Every benchmark must compile, verify, run deterministically, and have
   the workload character its Table 1 row requires. *)

module Lir = Ir.Lir

let build_baseline b =
  let classes = Workloads.Suite.compile b in
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  let funcs = Opt.Pipeline.front funcs in
  Vm.Program.link classes ~funcs

let run_baseline ?(scale = 1) b =
  Vm.Interp.run (build_baseline b) ~entry:Workloads.Suite.entry ~args:[ scale ]
    Vm.Interp.null_hooks

let compiles (b : Workloads.Suite.benchmark) () =
  let classes = Workloads.Suite.compile b in
  Alcotest.(check bool) "has classes" true (List.length classes > 0);
  let funcs = Bytecode.To_lir.program_to_funcs classes in
  List.iter Ir.Verify.check_exn funcs

let runs (b : Workloads.Suite.benchmark) () =
  let res = run_baseline b in
  Alcotest.(check bool)
    "terminates with a checksum" true
    (res.Vm.Interp.return_value <> None);
  Alcotest.(check bool)
    (Printf.sprintf "does real work (%d cycles)" res.Vm.Interp.cycles)
    true
    (res.Vm.Interp.cycles > 50_000)

let deterministic (b : Workloads.Suite.benchmark) () =
  let r1 = run_baseline b and r2 = run_baseline b in
  Alcotest.(check string) "same output" r1.Vm.Interp.output r2.Vm.Interp.output;
  Alcotest.(check int) "same cycles" r1.Vm.Interp.cycles r2.Vm.Interp.cycles

let threads_used () =
  let res = run_baseline (Workloads.Suite.find "volano") in
  Alcotest.(check bool)
    "thread switches happened" true
    (res.Vm.Interp.counters.Vm.Interp.thread_switches > 0)

let scale_scales () =
  let b = Workloads.Suite.find "jess" in
  let r1 = run_baseline ~scale:1 b and r2 = run_baseline ~scale:2 b in
  Alcotest.(check bool)
    "scale 2 does more work" true
    (r2.Vm.Interp.cycles > r1.Vm.Interp.cycles * 3 / 2)

(* full-scale runs of every benchmark: slower, so excluded from the
   default quick pass (alcotest -q); `make ci` runs them *)
let runs_full (b : Workloads.Suite.benchmark) () =
  let res = run_baseline ~scale:2 b in
  Alcotest.(check bool)
    "terminates with a checksum" true
    (res.Vm.Interp.return_value <> None)

let deterministic_full (b : Workloads.Suite.benchmark) () =
  let r1 = run_baseline ~scale:2 b and r2 = run_baseline ~scale:2 b in
  Alcotest.(check string) "same output" r1.Vm.Interp.output r2.Vm.Interp.output;
  Alcotest.(check int) "same cycles" r1.Vm.Interp.cycles r2.Vm.Interp.cycles

let per_bench ?(speed = `Quick) f =
  List.map
    (fun (b : Workloads.Suite.benchmark) ->
      Alcotest.test_case b.Workloads.Suite.bname speed (f b))
    Workloads.Suite.all

let suite =
  [
    ("workloads compile", per_bench compiles);
    ("workloads run", per_bench runs);
    ("workloads deterministic", per_bench deterministic);
    ("workloads run (full scale)", per_bench ~speed:`Slow runs_full);
    ( "workloads deterministic (full scale)",
      per_bench ~speed:`Slow deterministic_full );
    ( "workloads misc",
      [
        Alcotest.test_case "volano uses threads" `Quick threads_used;
        Alcotest.test_case "scale parameter works" `Quick scale_scales;
      ] );
  ]
