(* Directed tests for the trace-recording tier (lib/vm/trace.ml).

   The differential property in Test_engine already crosses Fast+traces
   against the reference on random programs; these tests pin the three
   hand-picked scenarios a random generator rarely lands on precisely:

   - side-exit register restoration: a guard fails mid-trace AFTER the
     fused body has written registers the continuation reads, so a
     botched write-back changes the return value, not just the timing;
   - mid-trace fault injection: deterministic chaos plans fire while a
     compiled trace is executing — faults must land at identical cycle
     counts whether the loop runs fused or word-at-a-time;
   - invalidation under the adaptive loop: hot-swap must tear down every
     installed trace (EV_INVALIDATE), sites must re-record against the
     new world, and the whole run must stay bit-identical to the
     reference under the same controller config.

   Each test also asserts the event taxonomy moved — a trace that never
   compiled or never ran would make these checks vacuous. *)

module Lir = Ir.Lir

let threshold = 3 (* loops turn hot almost immediately *)

let compile src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  (classes, funcs)

(* Full observation tuple of one cold run (fresh link and collector). *)
let observe ~engine ?trace_threshold ?faults ?on_init_of classes funcs =
  let prog = Vm.Program.link classes ~funcs in
  let sampler = Core.Sampler.create (Core.Sampler.Counter { interval = 3; jitter = 0 }) in
  let slots = Profiles.Slots.create prog in
  let on_init = Option.map (fun f -> f sampler slots) on_init_of in
  let res =
    Vm.Interp.run ~engine ~fuel:200_000_000 ~use_icache:true ~use_dcache:true
      ~recorder:(Profiles.Slots.recorder slots)
      ?trace_threshold ?faults ?on_init prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 5 ]
      (Profiles.Slots.hooks slots sampler)
  in
  let col = Profiles.Slots.decode slots in
  let c = res.Vm.Interp.counters in
  ( ( res.Vm.Interp.return_value,
      res.Vm.Interp.output,
      res.Vm.Interp.cycles,
      res.Vm.Interp.instructions ),
    ( c.Vm.Interp.entries,
      c.Vm.Interp.backedge_yps,
      c.Vm.Interp.entry_yps,
      c.Vm.Interp.checks,
      c.Vm.Interp.samples,
      c.Vm.Interp.thread_switches,
      c.Vm.Interp.instrument_ops ),
    (res.Vm.Interp.icache_misses, res.Vm.Interp.dcache_misses),
    ( List.sort compare
        (Profiles.Call_edge.to_keyed col.Profiles.Collector.call_edges),
      List.sort compare
        (Profiles.Field_access.to_keyed col.Profiles.Collector.fields) ) )

let stat name =
  match List.assoc_opt name (Vm.Trace.stats ()) with
  | Some n -> n
  | None -> Alcotest.failf "unknown trace event %S" name

(* run [f] and return (result, per-event stat deltas) *)
let with_stats f =
  let before = Vm.Trace.stats () in
  let r = f () in
  let deltas =
    List.map
      (fun (k, v) -> (k, v - List.assoc k before))
      (Vm.Trace.stats ())
  in
  (r, deltas)

let check_moved deltas what names =
  List.iter
    (fun n ->
      if List.assoc n deltas <= 0 then
        Alcotest.failf "%s: expected %s > 0 (got %d)" what n
          (List.assoc n deltas))
    names

(* ---- 1. side-exit register restoration ---- *)

(* The loop body writes [a] and [b] every iteration; the divergent
   iteration (i = 97, long after the trace compiled at threshold 3)
   side-exits at the If guard and the taken path reads [b] — if the
   guard restored stale or missing register state, [s] and the return
   value change.  The nested variant exercises exits from a trace whose
   anchor sits under a call (guards capture call depth). *)
let flat_src =
  {|
  class Main {
    static fun main(n: int): int {
      var s: int = 0;
      var i: int = 0;
      while (i < 100) {
        var a: int = i * 3 + n;
        var b: int = a + s;
        if (i == 97) { s = s + b * 7; } else { s = s + a; }
        i = i + 1;
      }
      print(s);
      return s + i;
    }
  }
|}

let nested_src =
  {|
  class Main {
    static fun inner(k: int, lim: int): int {
      var t: int = 0;
      var j: int = 0;
      while (j < lim) {
        var u: int = j * 2 + k;
        if (u == 93) { t = t + u * 11; } else { t = t + u; }
        j = j + 1;
      }
      return t;
    }
    static fun main(n: int): int {
      var s: int = 0;
      var i: int = 0;
      while (i < 40) {
        s = s + Main.inner(i, 30 + (i % 3));
        i = i + 1;
      }
      print(s);
      return s;
    }
  }
|}

let side_exit_registers () =
  List.iter
    (fun (name, src) ->
      let classes, funcs = compile src in
      let oracle = observe ~engine:`Ref classes funcs in
      let traced, deltas =
        with_stats (fun () ->
            observe ~engine:`Fast ~trace_threshold:threshold classes funcs)
      in
      if traced <> oracle then
        Alcotest.failf "%s: traced run diverges from reference" name;
      (* the trace must have compiled, run, and side-exited — otherwise
         the equality above never exercised guard restoration *)
      check_moved deltas name [ "EV_COMPILE"; "EV_TRACE"; "EV_EXIT" ])
    [ ("flat loop", flat_src); ("nested loop", nested_src) ]

(* ---- 2. mid-trace fault injection ---- *)

(* Chaos plans fire at absolute cycle counts; with the loop hot and
   fused, those cycles land mid-trace.  The traced run must observe
   every fault at the same cycle as the reference — same output, same
   counters, same everything — or degrade identically (both raise, same
   message).  Several seeds, so plans land in different trace phases
   (recording, fused execution, side exits). *)
let run_outcome ~engine ?trace_threshold ~faults classes funcs =
  match observe ~engine ?trace_threshold ~faults classes funcs with
  | obs -> Ok obs
  | exception Vm.Interp.Runtime_error msg -> Error msg

let mid_trace_faults () =
  let classes, funcs = compile flat_src in
  let exercised = ref 0 in
  List.iter
    (fun seed ->
      let faults = Fault.of_seed seed in
      let oracle = run_outcome ~engine:`Ref ~faults classes funcs in
      let traced, deltas =
        with_stats (fun () ->
            run_outcome ~engine:`Fast ~trace_threshold:threshold ~faults
              classes funcs)
      in
      if traced <> oracle then
        Alcotest.failf "chaos seed %d: traced run diverges from reference"
          seed;
      if List.assoc "EV_TRACE" deltas > 0 then incr exercised)
    [ 1; 2; 3; 42; 1234 ];
  (* at least some plans must have left the trace tier running — all
     plans aborting before the loop turns hot would prove nothing *)
  if !exercised = 0 then
    Alcotest.fail "no chaos plan ever reached fused trace execution"

(* ---- 3. invalidation under the adaptive loop ---- *)

(* Aggressive controller thresholds (as in Test_adaptive) so the small
   program actually inlines and reorders mid-run: every hot_swap must
   invalidate the installed traces, and re-recording against the new
   method versions must stay bit-identical to the reference adaptive
   run under the same config.  The poll period must leave room between
   adaptive safepoints for the trace entry precheck (a trace only runs
   when its worst-case iteration fits before the next poll) — at
   Test_adaptive's 500 cycles an exhaustively-instrumented iteration
   never fits and traces would compile but never execute. *)
let fdo_config =
  {
    Adaptive.Controller.default with
    Adaptive.Controller.poll_period = 4000;
    inline_threshold = 2;
    reorder_threshold = 4;
  }

let adaptive_src =
  {|
  class W {
    var acc: int;
    fun step(k: int): int {
      this.acc = this.acc + k;
      return this.acc;
    }
  }
  class Main {
    static fun hot(w: W, lim: int): int {
      var j: int = 0;
      var t: int = 0;
      while (j < lim) {
        t = t + w.step(j);
        j = j + 1;
      }
      return t;
    }
    static fun main(n: int): int {
      var w: W = new W;
      var s: int = 0;
      var i: int = 0;
      while (i < 60) {
        s = s + Main.hot(w, 20 + (i % 5));
        i = i + 1;
      }
      print(s);
      return s;
    }
  }
|}

let invalidate_under_adaptive () =
  let classes, funcs = compile adaptive_src in
  let funcs =
    List.map
      (fun f ->
        (Core.Transform.exhaustive Harness.Table_adaptive.spec f)
          .Core.Transform.func)
      funcs
  in
  let on_init_of sampler slots =
    Adaptive.Controller.on_init
      (Adaptive.Controller.create ~config:fdo_config ~sampler slots)
  in
  let oracle = observe ~engine:`Ref ~on_init_of classes funcs in
  let traced, deltas =
    with_stats (fun () ->
        observe ~engine:`Fast ~trace_threshold:threshold ~on_init_of classes
          funcs)
  in
  if traced <> oracle then
    Alcotest.fail "adaptive traced run diverges from reference";
  check_moved deltas "adaptive"
    [ "EV_COMPILE"; "EV_TRACE"; "EV_INVALIDATE" ];
  ignore (stat "EV_RECORD")

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "side exits restore register state" `Quick
          side_exit_registers;
        Alcotest.test_case "chaos faults land mid-trace bit-identically"
          `Quick mid_trace_faults;
        Alcotest.test_case "adaptive hot-swap invalidates and re-records"
          `Quick invalidate_under_adaptive;
      ] );
  ]
