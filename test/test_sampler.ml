(* Trigger mechanisms (core/sampler.ml): counter semantics per the paper's
   Figure 3, per-thread counters, the timer bit, jitter, and runtime
   control. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fires_of t n =
  List.init n (fun _ -> Core.Sampler.fire t 0)

let count l = List.length (List.filter Fun.id l)

let counter_interval () =
  let t = Core.Sampler.create (Core.Sampler.Counter { interval = 10; jitter = 0 }) in
  let fires = fires_of t 1000 in
  (* roughly one sample per interval checks *)
  check_int "about 100 samples" 99 (count fires);
  (* the gap between consecutive samples is exactly the interval *)
  let positions =
    List.mapi (fun i f -> (i, f)) fires
    |> List.filter (fun (_, f) -> f)
    |> List.map fst
  in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iter (fun g -> check_int "gap = interval" 10 g) (gaps positions)

let counter_always_never () =
  let a = Core.Sampler.create Core.Sampler.Always in
  check_int "always fires" 50 (count (fires_of a 50));
  let n = Core.Sampler.create Core.Sampler.Never in
  check_int "never fires" 0 (count (fires_of n 50))

let interval_one_behaves_like_always () =
  let t = Core.Sampler.create (Core.Sampler.Counter { interval = 1; jitter = 0 }) in
  (* after the initial countdown, every check samples *)
  let fires = fires_of t 100 in
  check_bool "at least 99 of 100" true (count fires >= 99)

let per_thread_counters () =
  let t = Core.Sampler.create (Core.Sampler.Counter_per_thread { interval = 5 }) in
  (* interleave two threads; each gets its own countdown *)
  let fired_a = ref 0 and fired_b = ref 0 in
  for _ = 1 to 50 do
    if Core.Sampler.fire t 1 then incr fired_a;
    if Core.Sampler.fire t 2 then incr fired_b
  done;
  check_int "thread 1 rate" 9 !fired_a;
  check_int "thread 2 rate" 9 !fired_b

let timer_bit () =
  let t = Core.Sampler.create Core.Sampler.Timer_bit in
  check_bool "no tick, no sample" false (Core.Sampler.fire t 0);
  Core.Sampler.on_timer_tick t;
  check_bool "tick then sample" true (Core.Sampler.fire t 0);
  check_bool "bit clears after sample" false (Core.Sampler.fire t 0)

let timer_tick_ignored_by_counter () =
  let t = Core.Sampler.create (Core.Sampler.Counter { interval = 1000; jitter = 0 }) in
  Core.Sampler.on_timer_tick t;
  check_bool "counter ignores timer" false (Core.Sampler.fire t 0)

let runtime_retuning () =
  let t = Core.Sampler.create (Core.Sampler.Counter { interval = 1000; jitter = 0 }) in
  Core.Sampler.set_interval t 2;
  let fires = fires_of t 100 in
  check_bool "faster after retune" true (count fires >= 45);
  Core.Sampler.disable t;
  check_int "disabled = permanently false" 0 (count (fires_of t 100));
  Core.Sampler.enable t;
  check_bool "re-enabled fires again" true (count (fires_of t 10) > 0)

let jitter_properties () =
  let t = Core.Sampler.create (Core.Sampler.Counter { interval = 20; jitter = 5 }) in
  let fires = fires_of t 10_000 in
  let n = count fires in
  (* mean interval stays near 20: between 400 and 600 samples *)
  check_bool (Printf.sprintf "sample count %d in [400,600]" n) true
    (n >= 400 && n <= 600);
  (* gaps vary (that is the point of the jitter) *)
  let positions =
    List.mapi (fun i f -> (i, f)) fires
    |> List.filter (fun (_, f) -> f)
    |> List.map fst
  in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  let gs = gaps positions in
  check_bool "gaps not all equal" true
    (List.exists (fun g -> g <> List.hd gs) gs);
  check_bool "gaps within interval +- jitter" true
    (List.for_all (fun g -> g >= 15 && g <= 25) gs)

let jitter_deterministic () =
  let mk () = Core.Sampler.create (Core.Sampler.Counter { interval = 20; jitter = 5 }) in
  Alcotest.(check (list bool))
    "same jittered stream" (fires_of (mk ()) 500) (fires_of (mk ()) 500)

let samples_fired_counts () =
  let t = Core.Sampler.create (Core.Sampler.Counter { interval = 10; jitter = 0 }) in
  ignore (fires_of t 100);
  check_int "fired counter" 9 (Core.Sampler.samples_fired t)

(* Regression (adaptive governor retuning): a mid-run interval change
   must also clamp the already-wound per-thread countdowns.  Before the
   fix, a widen-then-narrow sequence left a thread's counter at the old
   long value and its next sample drifted arbitrarily far past the new
   interval. *)
let per_thread_retune_clamps () =
  let t =
    Core.Sampler.create (Core.Sampler.Counter_per_thread { interval = 4 })
  in
  ignore (Core.Sampler.fire t 0);
  (* dilate, then let a fresh thread wind a long countdown *)
  Core.Sampler.set_interval t 1000;
  ignore (Core.Sampler.fire t 1);
  (* narrow back down: every thread — including thread 1, whose counter
     was wound to ~1000 during the wide phase — must sample within the
     new interval (+1 for the fire-on-reaching-zero convention) *)
  Core.Sampler.set_interval t 3;
  let within_new_interval tid =
    let fired = ref false in
    for _ = 1 to 4 do
      if Core.Sampler.fire t tid then fired := true
    done;
    !fired
  in
  check_bool "thread 0 samples within the interval" true
    (within_new_interval 0);
  check_bool "thread 1 samples within the interval" true
    (within_new_interval 1);
  (* and [interval] reports the retuned value *)
  Alcotest.(check (option int))
    "interval reports retune" (Some 3)
    (Core.Sampler.interval t)

let suite =
  [
    ( "sampler",
      [
        Alcotest.test_case "counter interval" `Quick counter_interval;
        Alcotest.test_case "always/never" `Quick counter_always_never;
        Alcotest.test_case "interval 1 ~ always" `Quick
          interval_one_behaves_like_always;
        Alcotest.test_case "per-thread counters" `Quick per_thread_counters;
        Alcotest.test_case "timer bit" `Quick timer_bit;
        Alcotest.test_case "counter ignores timer" `Quick
          timer_tick_ignored_by_counter;
        Alcotest.test_case "runtime retuning" `Quick runtime_retuning;
        Alcotest.test_case "jitter properties" `Quick jitter_properties;
        Alcotest.test_case "jitter determinism" `Quick jitter_deterministic;
        Alcotest.test_case "samples_fired" `Quick samples_fired_counts;
        Alcotest.test_case "per-thread retune clamps" `Quick
          per_thread_retune_clamps;
      ] );
  ]
