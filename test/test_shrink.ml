(* Tests of the [Gen_jasm] shrinker.

   The generator produces a statement AST precisely so that QCheck can
   shrink counterexamples; these tests pin the properties that make the
   shrinker trustworthy:

   - soundness: every shrink candidate is still a well-formed,
     terminating program (loop counters live in the un-shrinkable
     wrapper text, so dropping body statements cannot unbound a loop);
   - progress: under an always-failing predicate, greedy minimization
     reaches the syntactic floor — empty bodies, a single helper,
     literal returns — so real counterexamples come back small;
   - predicate preservation: minimizing against a seeded known-bad
     predicate (here: "the program contains a while loop") keeps the
     predicate true at no larger a size. *)

module Lir = Ir.Lir

let render = Gen_jasm.render
let size p = String.length (render p)

let run_prog p =
  let classes = Jasm.Compile.compile_string (render p) in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  Vm.Interp.run ~fuel:200_000_000
    (Vm.Program.link classes ~funcs)
    ~entry:{ Lir.mclass = "Main"; mname = "main" }
    ~args:[ 5 ] Vm.Interp.null_hooks

let seeded n =
  let rand = Random.State.make [| 0x5817 |] in
  QCheck.Gen.generate ~n ~rand Gen_jasm.program

(* Greedy fixpoint minimizer: repeatedly accept the first strictly
   smaller candidate on which the predicate still fails.  Strict size
   decrease guarantees termination. *)
exception Found of Gen_jasm.prog

let minimize bad p =
  let rec go p =
    match
      Gen_jasm.shrink_prog p (fun q ->
          if size q < size p && bad q then raise (Found q))
    with
    | () -> p
    | exception Found q -> go q
  in
  go p

(* every candidate the shrinker proposes must itself compile and
   terminate — otherwise shrinking a counterexample could turn a real
   bug into a generator artifact *)
let candidates_well_formed () =
  List.iter
    (fun p ->
      Gen_jasm.shrink_prog p (fun q ->
          match run_prog q with
          | (_ : Vm.Interp.result) -> ()
          | exception e ->
              Alcotest.failf "shrink candidate broken (%s):\n%s"
                (Printexc.to_string e) (render q)))
    (seeded 3)

(* under an always-failing predicate the minimizer must strip a program
   to the scaffold: no statements anywhere, one helper, literal return *)
let minimizes_to_floor () =
  List.iter
    (fun p ->
      let m = minimize (fun _ -> true) p in
      Alcotest.(check int) "main body emptied" 0 (List.length m.Gen_jasm.main_body);
      Alcotest.(check int) "unreferenced helpers dropped" 1
        (List.length m.Gen_jasm.funcs);
      List.iter
        (fun (fd : Gen_jasm.func_decl) ->
          Alcotest.(check int) "helper body emptied" 0
            (List.length fd.Gen_jasm.f_body);
          Alcotest.(check int) "return collapsed to a literal" 1
            (String.length fd.Gen_jasm.f_ret))
        m.Gen_jasm.funcs;
      (* the floor is still a valid program *)
      ignore (run_prog m))
    (seeded 5)

(* seeded known-bad predicate: minimize while preserving it *)
let preserves_predicate () =
  let bad p = Gen_jasm.contains (render p) "while (" in
  let victim =
    match List.find_opt bad (seeded 50) with
    | Some p -> p
    | None -> Alcotest.fail "seed produced no program with a while loop"
  in
  let m = minimize bad victim in
  Alcotest.(check bool) "predicate survives minimization" true (bad m);
  Alcotest.(check bool) "minimized is no larger" true (size m <= size victim);
  (* the minimized counterexample still runs *)
  ignore (run_prog m)

let suite =
  [
    ( "shrink",
      [
        Alcotest.test_case "candidates stay well-formed" `Quick
          candidates_well_formed;
        Alcotest.test_case "always-bad minimizes to the floor" `Quick
          minimizes_to_floor;
        Alcotest.test_case "known-bad predicate is preserved" `Quick
          preserves_predicate;
      ] );
  ]
