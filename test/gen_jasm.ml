(* Random well-typed jasm program generator for property-based tests.

   Programs are guaranteed to terminate (loops are bounded counters with
   fresh names that random statements can never write, the static call
   graph is acyclic) and to be deterministic, so any two executions —
   baseline vs optimized, baseline vs instrumented — must print the same
   output and return the same checksum.

   The generated surface covers every instrumentation point of the
   framework: method entries and (nested) loop backedges carry checks;
   instance-field, static-field and array reads/writes are field-access
   instrumentation sites; static and virtual calls are call-edge sites;
   conditionals, switches and for-loops exercise CFG shapes (join
   points, multi-way branches) that duplication must get right.

   Safety invariants, maintained syntactically:
   - division/remainder is always by a non-zero constant;
   - array indices are masked with [& 7] against fixed-size-8 arrays;
   - object locals are initialized at declaration and never reassigned,
     so no null dereference;
   - every stored value is masked to 20 bits, so checksums stay small. *)

open QCheck.Gen

type ctx = {
  vars : string list; (* int locals *)
  arrays : string list; (* int[] locals, all of length 8 *)
  cells : string list; (* Cell locals, never null *)
  statics : string list; (* qualified static int fields *)
  funcs : int; (* callable Main.f0 .. Main.f(n-1) *)
}

let int_lit = map string_of_int (int_range (-99) 99)

let var ctx = oneofl ctx.vars

let rec expr ctx depth =
  if depth = 0 then oneof [ int_lit; var ctx ]
  else
    frequency
      [
        (2, int_lit);
        (3, var ctx);
        ( 2,
          match ctx.arrays with
          | [] -> var ctx
          | arrays ->
              let* a = oneofl arrays in
              let* i = expr ctx (depth - 1) in
              return (Printf.sprintf "%s[(%s) & 7]" a i) );
        ( 1,
          match ctx.arrays with
          | [] -> int_lit
          | arrays ->
              let* a = oneofl arrays in
              return (a ^ ".length") );
        ( 2,
          match ctx.cells with
          | [] -> var ctx
          | cells ->
              let* c = oneofl cells in
              let* access = oneofl [ ".v"; ".w"; ".get()"; ".mix()" ] in
              return (c ^ access) );
        ( 1,
          match ctx.statics with
          | [] -> int_lit
          | statics -> oneofl statics );
        ( 4,
          let* op = oneofl [ "+"; "-"; "*"; "&"; "^"; "|" ] in
          let* a = expr ctx (depth - 1) in
          let* b = expr ctx (depth - 1) in
          (* keep multiplication small to avoid overflow weirdness *)
          if op = "*" then
            return (Printf.sprintf "(((%s) %% 97) * ((%s) %% 97))" a b)
          else return (Printf.sprintf "((%s) %s (%s))" a op b) );
        ( 2,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 1 9 in
          return (Printf.sprintf "((%s) / %d)" a k) );
        ( 2,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 1 9 in
          return (Printf.sprintf "((%s) %% %d)" a k) );
        ( 1,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 0 4 in
          let* op = oneofl [ "<<"; ">>" ] in
          return (Printf.sprintf "((%s) %s %d)" a op k) );
        ( 2,
          if ctx.funcs = 0 then var ctx
          else
            let* f = int_range 0 (ctx.funcs - 1) in
            let* a = expr ctx (depth - 1) in
            let* b = expr ctx (depth - 1) in
            return (Printf.sprintf "Main.f%d((%s), (%s))" f a b) );
      ]

let rec cond ctx depth =
  frequency
    [
      ( 5,
        let* op = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
        let* a = expr ctx depth in
        let* b = expr ctx depth in
        return (Printf.sprintf "(%s) %s (%s)" a op b) );
      ( 1,
        if depth <= 0 then return "0 == 0"
        else
          let* op = oneofl [ "&&"; "||" ] in
          let* a = cond ctx (depth - 1) in
          let* b = cond ctx (depth - 1) in
          return (Printf.sprintf "(%s) %s (%s)" a op b) );
      ( 1,
        if depth <= 0 then return "1 != 0"
        else
          let* a = cond ctx (depth - 1) in
          return (Printf.sprintf "!(%s)" a) );
    ]

(* statements write only to int locals, arrays, fields and static fields;
   fresh loop counters (never exposed in [ctx.vars]) guarantee
   termination *)
let rec stmts ctx ~fresh ~depth ~budget =
  if budget <= 0 then return []
  else
    let* s, fresh' = stmt ctx ~fresh ~depth in
    let* rest = stmts ctx ~fresh:fresh' ~depth ~budget:(budget - 1) in
    return (s :: rest)

and block ctx ~fresh ~depth ~budget =
  let* body = stmts ctx ~fresh ~depth ~budget in
  return (String.concat " " body)

and stmt ctx ~fresh ~depth =
  frequency
    [
      ( 4,
        let* v = var ctx in
        let* e = expr ctx 2 in
        return (Printf.sprintf "%s = (%s) & 1048575;" v e, fresh) );
      ( 2,
        match ctx.arrays with
        | [] ->
            let* v = var ctx in
            return (Printf.sprintf "%s = %s + 1;" v v, fresh)
        | arrays ->
            let* a = oneofl arrays in
            let* i = expr ctx 1 in
            let* e = expr ctx 2 in
            return
              (Printf.sprintf "%s[(%s) & 7] = (%s) & 1048575;" a i e, fresh) );
      ( 2,
        match ctx.cells with
        | [] ->
            let* v = var ctx in
            return (Printf.sprintf "%s = %s ^ 5;" v v, fresh)
        | cells ->
            let* c = oneofl cells in
            let* e = expr ctx 1 in
            let* f =
              oneofl
                [
                  Printf.sprintf "%s.v = (%s) & 1048575;";
                  Printf.sprintf "%s.w = (%s) & 1048575;";
                  Printf.sprintf "%s.bump((%s) & 255);";
                ]
            in
            return (f c e, fresh) );
      ( 1,
        match ctx.statics with
        | [] ->
            let* v = var ctx in
            return (Printf.sprintf "%s = %s | 2;" v v, fresh)
        | statics ->
            let* s = oneofl statics in
            let* e = expr ctx 1 in
            return (Printf.sprintf "%s = (%s) & 1048575;" s e, fresh) );
      ( 2,
        let* c = cond ctx 1 in
        if depth <= 0 then
          let* v = var ctx in
          return (Printf.sprintf "if (%s) { %s = %s + 1; }" c v v, fresh)
        else
          let* then_ = block ctx ~fresh:(fresh + 100) ~depth:(depth - 1) ~budget:2 in
          let* else_ = block ctx ~fresh:(fresh + 200) ~depth:(depth - 1) ~budget:2 in
          return (Printf.sprintf "if (%s) { %s } else { %s }" c then_ else_, fresh) );
      ( 2,
        (* while loop on a fresh bounded counter: a (possibly nested)
           backedge with checks under the duplicating transforms *)
        if depth <= 0 then
          let* v = var ctx in
          return (Printf.sprintf "%s = %s ^ 3;" v v, fresh)
        else
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 6 in
          let* body =
            block ctx ~fresh:(fresh + 1) ~depth:(depth - 1) ~budget:2
          in
          return
            ( Printf.sprintf
                "var %s: int = 0; while (%s < %d) { %s %s = %s + 1; }" i i
                bound body i i,
              fresh + 1 ) );
      ( 1,
        (* for loop: same backedge shape, different frontend path *)
        if depth <= 0 then
          let* v = var ctx in
          return (Printf.sprintf "%s = %s + 2;" v v, fresh)
        else
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 5 in
          let* body =
            block ctx ~fresh:(fresh + 1) ~depth:(depth - 1) ~budget:2
          in
          return
            ( Printf.sprintf
                "for (var %s: int = 0; %s < %d; %s = %s + 1) { %s }" i i bound
                i i body,
              fresh + 1 ) );
      ( 1,
        (* switch: multi-way branch, no fallthrough *)
        if depth <= 0 then
          let* v = var ctx in
          return (Printf.sprintf "%s = %s - 1;" v v, fresh)
        else
          let* e = expr ctx 1 in
          let* c0 = block ctx ~fresh:(fresh + 300) ~depth:0 ~budget:1 in
          let* c1 = block ctx ~fresh:(fresh + 400) ~depth:0 ~budget:1 in
          let* d = block ctx ~fresh:(fresh + 500) ~depth:0 ~budget:1 in
          return
            ( Printf.sprintf
                "switch ((%s) & 3) { case 0: { %s } case 1: { %s } default: { \
                 %s } }"
                e c0 c1 d,
              fresh ) );
      ( 1,
        let* e = expr ctx 1 in
        return (Printf.sprintf "print((%s) & 255);" e, fresh) );
    ]

(* Cell instances are the virtual-dispatch and instance-field sites; a
   generated program may allocate a SubCell into a Cell local, making
   [get] a genuinely polymorphic call. *)
let helper_classes =
  {|class Cell {
  var v: int;
  var w: int;
  fun bump(d: int) { this.v = (this.v + d) & 1048575; }
  fun mix(): int { this.w = (this.w ^ ((this.v % 97) * 3)) & 1048575; return this.w; }
  fun get(): int { return (this.v + this.w) & 1048575; }
}
class SubCell extends Cell {
  fun get(): int { return (this.v ^ (this.w << 1)) & 1048575; }
}
class Gs {
  static var s0: int;
  static var s1: int;
}|}

let statics = [ "Gs.s0"; "Gs.s1" ]

let func_src idx n_callable =
  (* f_idx may call f0 .. f_{idx-1}: the call graph is acyclic *)
  let ctx =
    {
      vars = [ "a"; "b"; "t" ];
      arrays = [ "arr" ];
      cells = [ "c" ];
      statics;
      funcs = min idx n_callable;
    }
  in
  let* cell_class = oneofl [ "Cell"; "SubCell" ] in
  let* body = stmts ctx ~fresh:0 ~depth:3 ~budget:4 in
  let* ret = expr ctx 2 in
  return
    (Printf.sprintf
       "static fun f%d(a: int, b: int): int { var t: int = (a ^ b) & 65535; \
        var arr: int[] = new int[8]; var c: Cell = new %s; arr[0] = a & \
        1048575; arr[1] = b & 1048575; c.v = b & 255; %s return (%s) & \
        1048575; }"
       idx cell_class (String.concat " " body) ret)

let program =
  let* n_funcs = int_range 1 4 in
  let* funcs =
    flatten_l (List.init n_funcs (fun i -> func_src i n_funcs))
  in
  (* "k" is main's loop counter: random statements must never write
     it, so it is not exposed as a variable at all *)
  let main_ctx =
    {
      vars = [ "acc" ];
      arrays = [ "marr" ];
      cells = [ "mc" ];
      statics;
      funcs = n_funcs;
    }
  in
  let* main_body = stmts main_ctx ~fresh:1000 ~depth:3 ~budget:5 in
  return
    (Printf.sprintf
       {|%s
class Main {
  %s
  static fun main(n: int): int {
    var acc: int = n;
    var marr: int[] = new int[8];
    var mc: Cell = new SubCell;
    var k: int = 0;
    while (k < 8) {
      %s
      acc = (acc + Main.f0(acc, k)) & 1048575;
      marr[k & 7] = acc;
      k = k + 1;
    }
    acc = (acc + mc.get() + marr[3] + Gs.s0 + Gs.s1) & 1048575;
    print(acc);
    return acc;
  }
}|}
       helper_classes
       (String.concat "\n  " funcs)
       (String.concat " " main_body))

let arbitrary_program =
  QCheck.make ~print:(fun s -> s) program
