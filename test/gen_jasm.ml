(* Random well-typed jasm program generator for property-based tests.

   Programs are guaranteed to terminate (loops are bounded counters with
   fresh names that random statements can never write, the static call
   graph is acyclic) and to be deterministic, so any two executions —
   baseline vs optimized, baseline vs instrumented, reference engine vs
   compiled engine — must print the same output and return the same
   checksum.

   The generated surface covers every instrumentation point of the
   framework: method entries and (nested) loop backedges carry checks;
   instance-field, static-field and array reads/writes are field-access
   instrumentation sites; static and virtual calls are call-edge sites;
   conditionals, switches and for-loops exercise CFG shapes (join
   points, multi-way branches) that duplication must get right.

   Safety invariants, maintained syntactically:
   - division/remainder is always by a non-zero constant;
   - array indices are masked with [& 7] against fixed-size-8 arrays;
   - object locals are initialized at declaration and never reassigned,
     so no null dereference;
   - every stored value is masked to 20 bits, so checksums stay small.

   Programs are generated as a small statement AST rather than flat
   strings so that counterexamples can be SHRUNK: the shrinker drops
   statements at any depth, hoists a nested block's statement over its
   wrapper, and removes whole helper methods once nothing references
   them.  Loop counters live in the wrapper text ([parts]), never in the
   shrinkable bodies, so every shrunk program still terminates. *)

open QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Program AST (the unit of shrinking)                                 *)
(* ------------------------------------------------------------------ *)

(* [Compound] is any statement wrapping sub-blocks: rendering interleaves
   [parts] and [bodies] ([parts] has one more element than [bodies]).
   Everything needed for termination — loop headers, counter increments —
   lives in [parts], so bodies can shrink to empty safely. *)
type stmt =
  | Atom of string
  | Compound of { parts : string array; bodies : stmt list array }

type func_decl = {
  f_idx : int; (* Main.f<idx> *)
  f_cell : string; (* class of the local cell: "Cell" or "SubCell" *)
  f_body : stmt list;
  f_ret : string; (* return expression *)
}

type prog = { funcs : func_decl list; main_body : stmt list }

let rec render_stmt buf = function
  | Atom s -> Buffer.add_string buf s
  | Compound { parts; bodies } ->
      Array.iteri
        (fun i body ->
          Buffer.add_string buf parts.(i);
          render_body buf body)
        bodies;
      Buffer.add_string buf parts.(Array.length bodies)

and render_body buf body =
  List.iter
    (fun s ->
      render_stmt buf s;
      Buffer.add_char buf ' ')
    body

(* Cell instances are the virtual-dispatch and instance-field sites; a
   generated program may allocate a SubCell into a Cell local, making
   [get] a genuinely polymorphic call. *)
let helper_classes =
  {|class Cell {
  var v: int;
  var w: int;
  fun bump(d: int) { this.v = (this.v + d) & 1048575; }
  fun mix(): int { this.w = (this.w ^ ((this.v % 97) * 3)) & 1048575; return this.w; }
  fun get(): int { return (this.v + this.w) & 1048575; }
}
class SubCell extends Cell {
  fun get(): int { return (this.v ^ (this.w << 1)) & 1048575; }
}
class Gs {
  static var s0: int;
  static var s1: int;
}|}

let render_func fd =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "static fun f%d(a: int, b: int): int { var t: int = (a ^ b) & 65535; \
        var arr: int[] = new int[8]; var c: Cell = new %s; arr[0] = a & \
        1048575; arr[1] = b & 1048575; c.v = b & 255; "
       fd.f_idx fd.f_cell);
  render_body buf fd.f_body;
  Buffer.add_string buf (Printf.sprintf "return (%s) & 1048575; }" fd.f_ret);
  Buffer.contents buf

let render (p : prog) =
  let main = Buffer.create 512 in
  render_body main p.main_body;
  Printf.sprintf
    {|%s
class Main {
  %s
  static fun main(n: int): int {
    var acc: int = n;
    var marr: int[] = new int[8];
    var mc: Cell = new SubCell;
    var k: int = 0;
    while (k < 8) {
      %s
      acc = (acc + Main.f0(acc, k)) & 1048575;
      marr[k & 7] = acc;
      k = k + 1;
    }
    acc = (acc + mc.get() + marr[3] + Gs.s0 + Gs.s1) & 1048575;
    print(acc);
    return acc;
  }
}|}
    helper_classes
    (String.concat "\n  " (List.map render_func p.funcs))
    (Buffer.contents main)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  vars : string list; (* int locals *)
  arrays : string list; (* int[] locals, all of length 8 *)
  cells : string list; (* Cell locals, never null *)
  statics : string list; (* qualified static int fields *)
  funcs : int; (* callable Main.f0 .. Main.f(n-1) *)
}

let int_lit = map string_of_int (int_range (-99) 99)

let var ctx = oneofl ctx.vars

let rec expr ctx depth =
  if depth = 0 then oneof [ int_lit; var ctx ]
  else
    frequency
      [
        (2, int_lit);
        (3, var ctx);
        ( 2,
          match ctx.arrays with
          | [] -> var ctx
          | arrays ->
              let* a = oneofl arrays in
              let* i = expr ctx (depth - 1) in
              return (Printf.sprintf "%s[(%s) & 7]" a i) );
        ( 1,
          match ctx.arrays with
          | [] -> int_lit
          | arrays ->
              let* a = oneofl arrays in
              return (a ^ ".length") );
        ( 2,
          match ctx.cells with
          | [] -> var ctx
          | cells ->
              let* c = oneofl cells in
              let* access = oneofl [ ".v"; ".w"; ".get()"; ".mix()" ] in
              return (c ^ access) );
        ( 1,
          match ctx.statics with
          | [] -> int_lit
          | statics -> oneofl statics );
        ( 4,
          let* op = oneofl [ "+"; "-"; "*"; "&"; "^"; "|" ] in
          let* a = expr ctx (depth - 1) in
          let* b = expr ctx (depth - 1) in
          (* keep multiplication small to avoid overflow weirdness *)
          if op = "*" then
            return (Printf.sprintf "(((%s) %% 97) * ((%s) %% 97))" a b)
          else return (Printf.sprintf "((%s) %s (%s))" a op b) );
        ( 2,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 1 9 in
          return (Printf.sprintf "((%s) / %d)" a k) );
        ( 2,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 1 9 in
          return (Printf.sprintf "((%s) %% %d)" a k) );
        ( 1,
          let* a = expr ctx (depth - 1) in
          let* k = int_range 0 4 in
          let* op = oneofl [ "<<"; ">>" ] in
          return (Printf.sprintf "((%s) %s %d)" a op k) );
        ( 2,
          if ctx.funcs = 0 then var ctx
          else
            let* f = int_range 0 (ctx.funcs - 1) in
            let* a = expr ctx (depth - 1) in
            let* b = expr ctx (depth - 1) in
            return (Printf.sprintf "Main.f%d((%s), (%s))" f a b) );
      ]

let rec cond ctx depth =
  frequency
    [
      ( 5,
        let* op = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
        let* a = expr ctx depth in
        let* b = expr ctx depth in
        return (Printf.sprintf "(%s) %s (%s)" a op b) );
      ( 1,
        if depth <= 0 then return "0 == 0"
        else
          let* op = oneofl [ "&&"; "||" ] in
          let* a = cond ctx (depth - 1) in
          let* b = cond ctx (depth - 1) in
          return (Printf.sprintf "(%s) %s (%s)" a op b) );
      ( 1,
        if depth <= 0 then return "1 != 0"
        else
          let* a = cond ctx (depth - 1) in
          return (Printf.sprintf "!(%s)" a) );
    ]

(* statements write only to int locals, arrays, fields and static fields;
   fresh loop counters (never exposed in [ctx.vars], and living in the
   wrapper text rather than the shrinkable bodies) guarantee
   termination *)
let rec stmts ctx ~fresh ~depth ~budget =
  if budget <= 0 then return []
  else
    let* s, fresh' = stmt ctx ~fresh ~depth in
    let* rest = stmts ctx ~fresh:fresh' ~depth ~budget:(budget - 1) in
    return (s :: rest)

and stmt ctx ~fresh ~depth =
  frequency
    [
      ( 4,
        let* v = var ctx in
        let* e = expr ctx 2 in
        return (Atom (Printf.sprintf "%s = (%s) & 1048575;" v e), fresh) );
      ( 2,
        match ctx.arrays with
        | [] ->
            let* v = var ctx in
            return (Atom (Printf.sprintf "%s = %s + 1;" v v), fresh)
        | arrays ->
            let* a = oneofl arrays in
            let* i = expr ctx 1 in
            let* e = expr ctx 2 in
            return
              ( Atom
                  (Printf.sprintf "%s[(%s) & 7] = (%s) & 1048575;" a i e),
                fresh ) );
      ( 2,
        match ctx.cells with
        | [] ->
            let* v = var ctx in
            return (Atom (Printf.sprintf "%s = %s ^ 5;" v v), fresh)
        | cells ->
            let* c = oneofl cells in
            let* e = expr ctx 1 in
            let* f =
              oneofl
                [
                  Printf.sprintf "%s.v = (%s) & 1048575;";
                  Printf.sprintf "%s.w = (%s) & 1048575;";
                  Printf.sprintf "%s.bump((%s) & 255);";
                ]
            in
            return (Atom (f c e), fresh) );
      ( 1,
        match ctx.statics with
        | [] ->
            let* v = var ctx in
            return (Atom (Printf.sprintf "%s = %s | 2;" v v), fresh)
        | statics ->
            let* s = oneofl statics in
            let* e = expr ctx 1 in
            return (Atom (Printf.sprintf "%s = (%s) & 1048575;" s e), fresh) );
      ( 2,
        let* c = cond ctx 1 in
        if depth <= 0 then
          let* v = var ctx in
          return
            (Atom (Printf.sprintf "if (%s) { %s = %s + 1; }" c v v), fresh)
        else
          let* then_ =
            stmts ctx ~fresh:(fresh + 100) ~depth:(depth - 1) ~budget:2
          in
          let* else_ =
            stmts ctx ~fresh:(fresh + 200) ~depth:(depth - 1) ~budget:2
          in
          return
            ( Compound
                {
                  parts =
                    [| Printf.sprintf "if (%s) { " c; " } else { "; " }" |];
                  bodies = [| then_; else_ |];
                },
              fresh ) );
      ( 2,
        (* while loop on a fresh bounded counter: a (possibly nested)
           backedge with checks under the duplicating transforms *)
        if depth <= 0 then
          let* v = var ctx in
          return (Atom (Printf.sprintf "%s = %s ^ 3;" v v), fresh)
        else
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 6 in
          let* body =
            stmts ctx ~fresh:(fresh + 1) ~depth:(depth - 1) ~budget:2
          in
          return
            ( Compound
                {
                  parts =
                    [|
                      Printf.sprintf "var %s: int = 0; while (%s < %d) { " i i
                        bound;
                      Printf.sprintf "%s = %s + 1; }" i i;
                    |];
                  bodies = [| body |];
                },
              fresh + 1 ) );
      ( 1,
        (* for loop: same backedge shape, different frontend path *)
        if depth <= 0 then
          let* v = var ctx in
          return (Atom (Printf.sprintf "%s = %s + 2;" v v), fresh)
        else
          let i = Printf.sprintf "i%d" fresh in
          let* bound = int_range 1 5 in
          let* body =
            stmts ctx ~fresh:(fresh + 1) ~depth:(depth - 1) ~budget:2
          in
          return
            ( Compound
                {
                  parts =
                    [|
                      Printf.sprintf
                        "for (var %s: int = 0; %s < %d; %s = %s + 1) { " i i
                        bound i i;
                      "}";
                    |];
                  bodies = [| body |];
                },
              fresh + 1 ) );
      ( 1,
        (* switch: multi-way branch, no fallthrough *)
        if depth <= 0 then
          let* v = var ctx in
          return (Atom (Printf.sprintf "%s = %s - 1;" v v), fresh)
        else
          let* e = expr ctx 1 in
          let* c0 = stmts ctx ~fresh:(fresh + 300) ~depth:0 ~budget:1 in
          let* c1 = stmts ctx ~fresh:(fresh + 400) ~depth:0 ~budget:1 in
          let* d = stmts ctx ~fresh:(fresh + 500) ~depth:0 ~budget:1 in
          return
            ( Compound
                {
                  parts =
                    [|
                      Printf.sprintf "switch ((%s) & 3) { case 0: { " e;
                      " } case 1: { ";
                      " } default: { ";
                      " } }";
                    |];
                  bodies = [| c0; c1; d |];
                },
              fresh ) );
      ( 1,
        let* e = expr ctx 1 in
        return (Atom (Printf.sprintf "print((%s) & 255);" e), fresh) );
    ]

let statics = [ "Gs.s0"; "Gs.s1" ]

let func_decl idx n_callable =
  (* f_idx may call f0 .. f_{idx-1}: the call graph is acyclic *)
  let ctx =
    {
      vars = [ "a"; "b"; "t" ];
      arrays = [ "arr" ];
      cells = [ "c" ];
      statics;
      funcs = min idx n_callable;
    }
  in
  let* cell_class = oneofl [ "Cell"; "SubCell" ] in
  let* body = stmts ctx ~fresh:0 ~depth:3 ~budget:4 in
  let* ret = expr ctx 2 in
  return { f_idx = idx; f_cell = cell_class; f_body = body; f_ret = ret }

let program =
  let* n_funcs = int_range 1 4 in
  let* funcs = flatten_l (List.init n_funcs (fun i -> func_decl i n_funcs)) in
  (* "k" is main's loop counter: random statements must never write
     it, so it is not exposed as a variable at all *)
  let main_ctx =
    {
      vars = [ "acc" ];
      arrays = [ "marr" ];
      cells = [ "mc" ];
      statics;
      funcs = n_funcs;
    }
  in
  let* main_body = stmts main_ctx ~fresh:1000 ~depth:3 ~budget:5 in
  return { funcs; main_body }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Candidates for one statement: hoist any nested statement over the
   wrapper, or keep the wrapper with one of its bodies shrunk. *)
let rec shrink_stmt s yield =
  match s with
  | Atom _ -> ()
  | Compound { parts; bodies } ->
      Array.iter (fun body -> List.iter yield body) bodies;
      Array.iteri
        (fun i body ->
          shrink_body body (fun body' ->
              let bodies' = Array.copy bodies in
              bodies'.(i) <- body';
              yield (Compound { parts; bodies = bodies' })))
        bodies

(* Candidates for a statement list: drop any one element, or shrink any
   one element in place. *)
and shrink_body l yield =
  let rec go pre = function
    | [] -> ()
    | x :: rest ->
        yield (List.rev_append pre rest);
        shrink_stmt x (fun x' -> yield (List.rev_append pre (x' :: rest)));
        go (x :: pre) rest
  in
  go [] l

let replace_func (p : prog) fd' =
  {
    p with
    funcs =
      List.map (fun g -> if g.f_idx = fd'.f_idx then fd' else g) p.funcs;
  }

(* Whole-program candidates, most aggressive first: drop an unreferenced
   helper method entirely (main always calls f0, so only f1.. qualify —
   checked against the rendered remainder, which covers calls from other
   helpers' bodies and return expressions), then statement-level
   shrinking of main and of each helper, then collapsing a helper's
   return expression. *)
let shrink_prog (p : prog) yield =
  List.iter
    (fun fd ->
      if fd.f_idx > 0 then begin
        let p' =
          { p with funcs = List.filter (fun g -> g.f_idx <> fd.f_idx) p.funcs }
        in
        if not (contains (render p') (Printf.sprintf "Main.f%d(" fd.f_idx))
        then yield p'
      end)
    p.funcs;
  shrink_body p.main_body (fun mb -> yield { p with main_body = mb });
  List.iter
    (fun fd ->
      shrink_body fd.f_body (fun b -> yield (replace_func p { fd with f_body = b }));
      if fd.f_ret <> "0" then yield (replace_func p { fd with f_ret = "0" }))
    p.funcs

let arbitrary_program = QCheck.make ~print:render ~shrink:shrink_prog program
