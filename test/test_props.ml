(* Property-based tests (QCheck, registered as alcotest cases).

   The central properties:
   - every transformation of the framework preserves program semantics on
     random well-typed programs, under several triggers;
   - Property 1 (checks <= entries + backedges) holds dynamically for
     Full- and Partial-Duplication on random programs;
   - the optimizer pipeline preserves semantics;
   - dominator/loop analyses satisfy their defining properties on the
     CFGs of random programs;
   - the overlap metric is bounded, symmetric and 100 only on equal
     normalized profiles;
   - the bytecode verifier never crashes on arbitrary instruction
     sequences (it accepts or rejects, but never throws). *)

module Lir = Ir.Lir

let spec = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let run_program src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  let prog = Vm.Program.link classes ~funcs in
  let res =
    Vm.Interp.run ~fuel:200_000_000 prog
      ~entry:{ Lir.mclass = "Main"; mname = "main" }
      ~args:[ 5 ] Vm.Interp.null_hooks
  in
  (classes, funcs, res)

let run_transformed ?(validate = true) classes funcs transform trigger =
  let funcs' =
    List.map
      (fun f ->
        let g = (transform f).Core.Transform.func in
        (* the exhaustive transform intentionally leaves unguarded ops in
           the original code, so its callers skip the sampling validator *)
        if validate then Core.Validate.check_exn g;
        g)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler = Core.Sampler.create trigger in
  Vm.Interp.run ~fuel:200_000_000
    (Vm.Program.link classes ~funcs:funcs')
    ~entry:{ Lir.mclass = "Main"; mname = "main" }
    ~args:[ 5 ]
    (Profiles.Collector.hooks collector sampler)

let count = 40

let transform_preserves_semantics ?validate name transform trigger =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "%s preserves semantics of random programs" name)
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes, funcs, base = run_program src in
      let res = run_transformed ?validate classes funcs transform trigger in
      String.equal base.Vm.Interp.output res.Vm.Interp.output
      && base.Vm.Interp.return_value = res.Vm.Interp.return_value)

let property_one_random =
  QCheck.Test.make ~count ~name:"Property 1 on random programs"
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes, funcs, _ = run_program src in
      List.for_all
        (fun transform ->
          let res =
            run_transformed classes funcs transform
              (Core.Sampler.Counter { interval = 3; jitter = 0 })
          in
          let c = res.Vm.Interp.counters in
          c.Vm.Interp.checks
          <= c.Vm.Interp.entries + c.Vm.Interp.backedge_yps)
        [ Core.Transform.full_dup spec; Core.Transform.partial_dup spec ])

let optimizer_preserves =
  QCheck.Test.make ~count ~name:"optimizer pipeline preserves semantics"
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes = Jasm.Compile.compile_string src in
      let raw = Bytecode.To_lir.program_to_funcs classes in
      let run funcs =
        Vm.Interp.run ~fuel:200_000_000
          (Vm.Program.link classes ~funcs)
          ~entry:{ Lir.mclass = "Main"; mname = "main" }
          ~args:[ 5 ] Vm.Interp.null_hooks
      in
      let base = run raw in
      let optimized =
        Opt.Pipeline.front ~inline:true ~yieldpoints:false raw
        |> List.map Opt.Pipeline.back
      in
      let res = run optimized in
      String.equal base.Vm.Interp.output res.Vm.Interp.output
      && base.Vm.Interp.return_value = res.Vm.Interp.return_value)

let analyses_sound =
  QCheck.Test.make ~count ~name:"dominators and loops on random CFGs"
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes = Jasm.Compile.compile_string src in
      let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
      List.for_all
        (fun (f : Lir.func) ->
          let dom = Ir.Dom.compute f in
          let reach = Ir.Cfg.reachable f in
          let entry_dominates =
            Array.for_all Fun.id
              (Array.mapi
                 (fun l r -> (not r) || Ir.Dom.dominates dom f.Lir.entry l)
                 reach)
          in
          (* jasm frontends only emit reducible CFGs, where retreating
             edges and natural backedges coincide *)
          let reducible = Ir.Loops.is_reducible f in
          let nat = Ir.Loops.natural_backedges f in
          let retreating_are_natural =
            List.for_all
              (fun e -> List.mem e nat)
              (Ir.Loops.retreating_edges f)
          in
          entry_dominates && reducible && retreating_are_natural)
        funcs)

let sampled_profile_is_subset =
  QCheck.Test.make ~count:25
    ~name:"sampled call edges are a subset of the perfect profile"
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes, funcs, _ = run_program src in
      let profile trigger =
        let funcs' =
          List.map
            (fun f -> (Core.Transform.full_dup spec f).Core.Transform.func)
            funcs
        in
        let collector = Profiles.Collector.create () in
        let sampler = Core.Sampler.create trigger in
        ignore
          (Vm.Interp.run ~fuel:200_000_000
             (Vm.Program.link classes ~funcs:funcs')
             ~entry:{ Lir.mclass = "Main"; mname = "main" }
             ~args:[ 5 ]
             (Profiles.Collector.hooks collector sampler));
        Profiles.Call_edge.to_keyed collector.Profiles.Collector.call_edges
      in
      let perfect = profile Core.Sampler.Always in
      let sampled = profile (Core.Sampler.Counter { interval = 5; jitter = 1 }) in
      List.for_all
        (fun (k, c) ->
          match List.assoc_opt k perfect with
          | Some pc -> c <= pc
          | None -> false)
        sampled)

let overlap_bounded =
  let profile_gen =
    QCheck.Gen.(
      list_size (int_range 0 8)
        (pair (map (Printf.sprintf "k%d") (int_range 0 5)) (int_range 1 100)))
  in
  QCheck.Test.make ~count:200 ~name:"overlap metric bounded and symmetric"
    (QCheck.make (QCheck.Gen.pair profile_gen profile_gen))
    (fun (p1, p2) ->
      let o12 = Profiles.Overlap.percent p1 p2 in
      let o21 = Profiles.Overlap.percent p2 p1 in
      o12 >= -1e-9
      && o12 <= 100.0 +. 1e-9
      && Float.abs (o12 -. o21) < 1e-6
      && Float.abs (Profiles.Overlap.percent p1 p1 -. 100.0) < 1e-6)

let verifier_total =
  let instr_gen =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun n -> Bytecode.Bc.Const n) (int_range (-5) 5));
          (2, map (fun s -> Bytecode.Bc.Load s) (int_range 0 3));
          (2, map (fun s -> Bytecode.Bc.Store s) (int_range 0 3));
          (1, return Bytecode.Bc.Dup);
          (1, return Bytecode.Bc.Pop);
          (1, return Bytecode.Bc.Swap);
          (1, return (Bytecode.Bc.Binop Lir.Add));
          (2, map (fun t -> Bytecode.Bc.Goto t) (int_range 0 12));
          (2, map (fun t -> Bytecode.Bc.If (Bytecode.Bc.Ceq, t)) (int_range 0 12));
          (1, return Bytecode.Bc.Return);
          (1, return Bytecode.Bc.Return_value);
        ])
  in
  QCheck.Test.make ~count:500 ~name:"bytecode verifier never crashes"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 12) instr_gen))
    (fun code ->
      let m =
        {
          Bytecode.Classfile.mname = "m";
          static = true;
          n_args = 0;
          returns = false;
          max_locals = 4;
          code = Array.of_list code;
        }
      in
      match Bytecode.Bverify.check_method m with
      | Ok _ | Error _ -> true)

let vec_model =
  QCheck.Test.make ~count:300 ~name:"Vec behaves like a list"
    (QCheck.make QCheck.Gen.(small_list small_int))
    (fun xs ->
      let v = Ir.Vec.create () in
      List.iter (fun x -> ignore (Ir.Vec.push v x)) xs;
      Ir.Vec.to_list v = xs
      && Ir.Vec.length v = List.length xs
      && List.for_all
           (fun i -> Ir.Vec.get v i = List.nth xs i)
           (List.init (List.length xs) Fun.id))

let qtests =
  [
    transform_preserves_semantics "full-dup" (Core.Transform.full_dup spec)
      (Core.Sampler.Counter { interval = 7; jitter = 0 });
    transform_preserves_semantics "partial-dup" (Core.Transform.partial_dup spec)
      (Core.Sampler.Counter { interval = 3; jitter = 2 });
    transform_preserves_semantics "no-dup" (Core.Transform.no_dup spec)
      (Core.Sampler.Counter { interval = 5; jitter = 0 });
    transform_preserves_semantics "yp-opt"
      (Core.Transform.full_dup_yieldpoint_opt spec)
      Core.Sampler.Always;
    transform_preserves_semantics ~validate:false "exhaustive"
      (Core.Transform.exhaustive spec) Core.Sampler.Never;
    property_one_random;
    optimizer_preserves;
    analyses_sound;
    sampled_profile_is_subset;
    overlap_bounded;
    verifier_total;
    vec_model;
  ]

let suite =
  [ ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qtests) ]
