(* Experiment harness: the qualitative claims of the paper's tables must
   hold for the reproduced measurements.  Full tables are exercised via
   bench/main.exe; here we verify the claims on a fast subset. *)

module Measure = Harness.Measure

let check_bool = Alcotest.(check bool)

let spec = Harness.Common.both_specs

let bench name = Measure.prepare (Workloads.Suite.find name)

(* overhead ordering on one benchmark: exhaustive > no-dup checking >
   full-dup framework > yieldpoint-optimized framework > 0 *)
let overhead_ordering () =
  let build = bench "jess" in
  let base = Measure.run_baseline build in
  let pct transform =
    Measure.overhead_pct ~base (Measure.run_transformed ~transform build)
  in
  let exhaustive = pct (Core.Transform.exhaustive spec) in
  let full = pct (Core.Transform.full_dup spec) in
  let ypopt = pct (Core.Transform.full_dup_yieldpoint_opt spec) in
  check_bool
    (Printf.sprintf "exhaustive %.1f > full-dup framework %.1f" exhaustive full)
    true (exhaustive > full);
  check_bool
    (Printf.sprintf "full-dup %.1f > yieldpoint-opt %.1f" full ypopt)
    true (full > ypopt);
  check_bool "yieldpoint-opt still costs something" true (ypopt > -1.0)

(* accuracy rises as the interval falls (on matched sample counts it
   converges to 100 at interval 1) *)
let accuracy_convergence () =
  let build = bench "jess" in
  let perfect_ce, _ = Harness.Common.perfect_profiles build in
  let acc interval =
    let m =
      Measure.run_transformed
        ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
        ~transform:(Core.Transform.full_dup spec)
        build
    in
    Profiles.Overlap.percent perfect_ce
      (Profiles.Call_edge.to_keyed
         m.Measure.collector.Profiles.Collector.call_edges)
  in
  let a1 = acc 1 and a100 = acc 100 and a100k = acc 100_000 in
  check_bool (Printf.sprintf "interval 1 is perfect (%.1f)" a1) true
    (a1 > 99.9);
  check_bool (Printf.sprintf "interval 100 accurate (%.1f)" a100) true
    (a100 > 85.0);
  check_bool
    (Printf.sprintf "interval 100000 collapses (%.1f < %.1f)" a100k a100)
    true (a100k < a100)

(* sampled-instrumentation overhead above the framework's own vanishes as
   the interval grows (Table 4's "Sampled Instrum." column) *)
let sampling_overhead_vanishes () =
  let build = bench "mtrt" in
  let base = Measure.run_baseline build in
  let transform = Core.Transform.full_dup spec in
  let fw = Measure.overhead_pct ~base (Measure.run_transformed ~transform build) in
  let total interval =
    Measure.overhead_pct ~base
      (Measure.run_transformed
         ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
         ~transform build)
  in
  check_bool "interval 10000 ~ framework only" true
    (total 10_000 -. fw < 1.0);
  check_bool "interval 1 is much more expensive" true (total 1 > fw +. 20.0)

(* Table 2's breakdown: backedge-only + entry-only roughly add up to the
   full framework overhead (paper: "the sum ... is roughly equivalent") *)
let breakdown_adds_up () =
  let build = bench "compress" in
  let base = Measure.run_baseline build in
  let pct transform =
    Measure.overhead_pct ~base (Measure.run_transformed ~transform build)
  in
  let total = pct (Core.Transform.full_dup spec) in
  let be = pct (Core.Transform.checks_only ~entries:false ~backedges:true) in
  let en = pct (Core.Transform.checks_only ~entries:true ~backedges:false) in
  check_bool
    (Printf.sprintf "sum %.1f within 4 points of total %.1f" (be +. en) total)
    true
    (Float.abs (be +. en -. total) < 4.0)

(* timer trigger is less accurate than a matched counter (Table 5); the
   quick variant uses a 3-benchmark subset at scale 1, the Slow variant
   the full suite at scale 2 *)
let timer_less_accurate ?scale ?benches () =
  let rows = Harness.Table5.run ?scale ?benches () in
  let avg f = Harness.Common.mean (List.map f rows) in
  let t = avg Harness.Table5.time_based in
  let c = avg Harness.Table5.counter_based in
  check_bool (Printf.sprintf "counter %.1f > timer %.1f on average" c t) true
    (c > t)

let timer_less_accurate_quick () =
  timer_less_accurate ~scale:1
    ~benches:(List.map Workloads.Suite.find [ "compress"; "jess"; "mpegaudio" ])
    ()

let timer_less_accurate_full () = timer_less_accurate ~scale:2 ()

(* space roughly doubles under Full-Duplication *)
let space_doubles () =
  let build = bench "javac" in
  let base = Measure.run_baseline build in
  let full =
    Measure.run_transformed ~transform:(Core.Transform.full_dup spec) build
  in
  let ratio =
    float_of_int full.Measure.code_words /. float_of_int base.Measure.code_words
  in
  check_bool (Printf.sprintf "code ratio %.2f in [1.9, 2.6]" ratio) true
    (ratio >= 1.9 && ratio <= 2.6);
  (* partial duplication with sparse instrumentation stays well below *)
  let part =
    Measure.run_transformed
      ~transform:(Core.Transform.partial_dup Core.Spec.call_edge)
      build
  in
  check_bool "partial-dup is smaller" true
    (part.Measure.code_words < full.Measure.code_words)

let experiment_registry () =
  List.iter
    (fun w ->
      Alcotest.(check string)
        "of_name . name = id"
        (Harness.Experiments.name w)
        (Harness.Experiments.name
           (Harness.Experiments.of_name (Harness.Experiments.name w))))
    Harness.Experiments.all;
  check_bool "numeric aliases" true
    (Harness.Experiments.of_name "4" = Harness.Experiments.T4)

let table_rendering () =
  let s =
    Harness.Text_table.render
      ~header:[ "name"; "x" ]
      [ [ "row1"; "1.0" ]; [ "longer-row"; "23.5" ] ]
  in
  check_bool "columns aligned" true
    (String.length s > 0
    && List.length (String.split_on_char '\n' (String.trim s)) = 4)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "overhead ordering" `Quick overhead_ordering;
        Alcotest.test_case "accuracy convergence" `Quick accuracy_convergence;
        Alcotest.test_case "sampling overhead vanishes" `Quick
          sampling_overhead_vanishes;
        Alcotest.test_case "table2 breakdown adds up" `Quick breakdown_adds_up;
        Alcotest.test_case "timer less accurate" `Quick
          timer_less_accurate_quick;
        Alcotest.test_case "timer less accurate (full scale)" `Slow
          timer_less_accurate_full;
        Alcotest.test_case "space doubles" `Quick space_doubles;
        Alcotest.test_case "experiment registry" `Quick experiment_registry;
        Alcotest.test_case "table rendering" `Quick table_rendering;
      ] );
  ]
