(* Differential testing of the sampling framework on random programs.

   Each test compiles >= 100 random well-typed jasm programs (the
   generator in [Gen_jasm] covers nested backedges, static and virtual
   calls, conditionals, switches, field/array/static accesses) and
   compares an instrumented execution against the uninstrumented
   baseline:

   - every duplication strategy must preserve output and return value
     under EVERY trigger — Always, Never, deterministic and jittered
     counters, per-thread counters, and the timer bit;
   - Property 1 of the paper (dynamic checks <= method entries +
     backedge yieldpoints) must hold for the duplicating transforms;
   - the Always trigger ("sample interval 1") must reproduce the
     perfect profile: its call-edge and field counts equal those of
     the exhaustively instrumented program, exactly. *)

module Lir = Ir.Lir

let spec = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let triggers =
  [
    ("always", Core.Sampler.Always);
    ("never", Core.Sampler.Never);
    ("counter-3", Core.Sampler.Counter { interval = 3; jitter = 0 });
    ("counter-7j2", Core.Sampler.Counter { interval = 7; jitter = 2 });
    ("per-thread-5", Core.Sampler.Counter_per_thread { interval = 5 });
    ("timer", Core.Sampler.Timer_bit);
  ]

let compile src =
  let classes = Jasm.Compile.compile_string src in
  let funcs = Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes) in
  (classes, funcs)

let run_funcs classes funcs hooks =
  Vm.Interp.run ~fuel:200_000_000
    (Vm.Program.link classes ~funcs)
    ~entry:{ Lir.mclass = "Main"; mname = "main" }
    ~args:[ 5 ] hooks

let run_instrumented ?(validate = true) classes funcs transform trigger =
  let funcs' =
    List.map
      (fun f ->
        let g = (transform f).Core.Transform.func in
        if validate then Core.Validate.check_exn g;
        g)
      funcs
  in
  let collector = Profiles.Collector.create () in
  let sampler = Core.Sampler.create trigger in
  let res =
    run_funcs classes funcs' (Profiles.Collector.hooks collector sampler)
  in
  (res, collector)

let count = 100

(* (a) semantics preservation: one test per transform, every trigger
   exercised on every generated program *)
let preserves name transform =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "differential: %s == baseline under all triggers" name)
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes, funcs = compile src in
      let base = run_funcs classes funcs Vm.Interp.null_hooks in
      List.for_all
        (fun (tname, trigger) ->
          let res, _ = run_instrumented classes funcs transform trigger in
          let same =
            String.equal base.Vm.Interp.output res.Vm.Interp.output
            && base.Vm.Interp.return_value = res.Vm.Interp.return_value
          in
          if not same then
            QCheck.Test.fail_reportf
              "%s diverged from baseline under trigger %s" name tname
          else same)
        triggers)

(* (b) Property 1, dynamically: the duplicating transforms insert checks
   only at method entries and loop backedges *)
let property_one =
  QCheck.Test.make ~count
    ~name:"differential: Property 1 (checks <= entries + backedge yps)"
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes, funcs = compile src in
      List.for_all
        (fun (name, transform) ->
          List.for_all
            (fun trigger ->
              let res, _ = run_instrumented classes funcs transform trigger in
              let c = res.Vm.Interp.counters in
              let ok =
                c.Vm.Interp.checks
                <= c.Vm.Interp.entries + c.Vm.Interp.backedge_yps
              in
              if not ok then
                QCheck.Test.fail_reportf
                  "%s: %d checks > %d entries + %d backedge yps" name
                  c.Vm.Interp.checks c.Vm.Interp.entries
                  c.Vm.Interp.backedge_yps
              else ok)
            [
              Core.Sampler.Always;
              Core.Sampler.Counter { interval = 3; jitter = 0 };
            ])
        [
          ("full-dup", Core.Transform.full_dup spec);
          ("partial-dup", Core.Transform.partial_dup spec);
        ])

(* (c) the Always trigger reproduces the perfect profile: identical
   call-edge and field-access counts to exhaustive instrumentation *)
let sorted_keyed l = List.sort compare l

let always_is_perfect =
  QCheck.Test.make ~count
    ~name:"differential: Always trigger == exhaustive (perfect) profile"
    Gen_jasm.arbitrary_program
    (fun p ->
      let src = Gen_jasm.render p in
      let classes, funcs = compile src in
      let keyed (_, col) =
        ( sorted_keyed
            (Profiles.Call_edge.to_keyed col.Profiles.Collector.call_edges),
          sorted_keyed
            (Profiles.Field_access.to_keyed col.Profiles.Collector.fields) )
      in
      let sampled =
        keyed
          (run_instrumented classes funcs
             (Core.Transform.full_dup spec)
             Core.Sampler.Always)
      in
      let perfect =
        keyed
          (run_instrumented ~validate:false classes funcs
             (Core.Transform.exhaustive spec)
             Core.Sampler.Never)
      in
      sampled = perfect)

let qtests =
  [
    preserves "full-dup" (Core.Transform.full_dup spec);
    preserves "partial-dup" (Core.Transform.partial_dup spec);
    preserves "no-dup" (Core.Transform.no_dup spec);
    preserves "yp-opt" (Core.Transform.full_dup_yieldpoint_opt spec);
    property_one;
    always_is_perfect;
  ]

let suite =
  [
    ( "differential",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qtests );
  ]
