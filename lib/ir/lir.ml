(* Low-level register IR (LIR).

   This is the representation the sampling framework transforms, mirroring
   the role of Jalapeno's LIR in the paper: methods arrive here after the
   bytecode-to-LIR translation and most optimization, instrumentation and
   code duplication are applied here, and the result is what the VM
   "executes" (interprets under a cycle-cost model).

   Virtual registers are unbounded ints.  Labels are dense ints indexing the
   function's block vector.  Booleans are represented as ints 0/1. *)

type reg = int
type label = int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type unop = Neg | Not

type operand = Reg of reg | Imm of int

(* Symbolic references; resolved to dense ids when a [Vm.Program] is linked. *)
type method_ref = { mclass : string; mname : string }
type field_ref = { fclass : string; fname : string }

type call_kind = Static | Virtual

type yp_kind = Yp_entry | Yp_backedge

(* Payload carried by an instrumentation operation.  The VM does not
   interpret it; it hands it to the embedder's instrumentation hook
   (see DESIGN.md section on layering: vm does not depend on core). *)
type payload =
  | P_unit
  | P_field of field_ref * bool  (* field, is_write *)
  | P_edge of label * label
  | P_operand of operand (* value observed at runtime *)
  | P_value of operand * int (* observed operand + profiling site id *)
  | P_site of int

type instrument_op = {
  hook : string;
  payload : payload;
  mutable slot : int;
      (* dense event id assigned by the slot-resolution pre-pass
         (Profiles.Slots) on the linked program; -1 = unresolved, in which
         case the VM falls back to the event-by-event hook dispatch *)
}

let mk_op hook payload = { hook; payload; slot = -1 }

type instr =
  | Move of reg * operand
  | Unop of reg * unop * operand
  | Binop of reg * binop * operand * operand
  | Get_field of reg * operand * field_ref
  | Put_field of operand * field_ref * operand
  | Get_static of reg * field_ref
  | Put_static of field_ref * operand
  | New_object of reg * string
  | New_array of reg * operand
  | Array_load of reg * operand * operand
  | Array_store of operand * operand * operand
  | Array_length of reg * operand
  | Call of {
      dst : reg option;
      kind : call_kind;
      target : method_ref;
      args : operand list;
      site : int;  (* bytecode index of the call: the paper's call-site id *)
    }
  | Intrinsic of { dst : reg option; name : string; args : operand list }
  | Instance_test of reg * operand * string
      (* dst = 1 when the operand's runtime class is exactly the named
         class, else 0 (null included).  Emitted by the devirtualization
         pass as the guard of a predicted-receiver fast path. *)
  | Yieldpoint of yp_kind
  | Instrument of instrument_op
  | Guarded_instrument of instrument_op
      (* No-Duplication: a check guarding a single instrumentation op *)

type terminator =
  | Goto of label
  | If of { cond : operand; if_true : label; if_false : label }
  | Switch of { scrut : operand; cases : (int * label) list; default : label }
  | Return of operand option
  | Check of { on_sample : label; fall : label }
      (* compiler-inserted counter-based check (paper Figure 3) *)

(* Role of a block in the transformed method; used by code layout (duplicated
   code is placed out of the common path) and by the experiment metrics. *)
type role = Orig | Dup | Check_block | Dead

type block = { instrs : instr array; term : terminator; role : role }

type func = {
  fname : method_ref;
  params : reg list;  (* registers that receive the arguments, in order *)
  blocks : block Vec.t;
  entry : label;
  mutable next_reg : int;
}

let dead_block = { instrs = [||]; term = Return None; role = Dead }

let block f l = Vec.get f.blocks l
let set_block f l b = Vec.set f.blocks l b
let add_block f b = Vec.push f.blocks b
let num_blocks f = Vec.length f.blocks

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let copy_func f =
  { f with blocks = Vec.copy f.blocks }

(* Successor labels of a terminator, in branch order (may contain
   duplicates when several targets coincide). *)
let succs_of_term = function
  | Goto l -> [ l ]
  | If { if_true; if_false; _ } -> [ if_true; if_false ]
  | Switch { cases; default; _ } -> List.map snd cases @ [ default ]
  | Return _ -> []
  | Check { on_sample; fall } -> [ on_sample; fall ]

(* Rewrite every successor label of a terminator. *)
let map_term_labels g = function
  | Goto l -> Goto (g l)
  | If { cond; if_true; if_false } ->
      If { cond; if_true = g if_true; if_false = g if_false }
  | Switch { scrut; cases; default } ->
      Switch
        {
          scrut;
          cases = List.map (fun (c, l) -> (c, g l)) cases;
          default = g default;
        }
  | Return x -> Return x
  | Check { on_sample; fall } -> Check { on_sample = g on_sample; fall = g fall }

(* Rewrite label payloads inside instrumentation ops (used when cloning). *)
let map_instr_labels g = function
  | Instrument ({ payload = P_edge (a, b); _ } as op) ->
      Instrument { op with payload = P_edge (g a, g b); slot = -1 }
  | Guarded_instrument ({ payload = P_edge (a, b); _ } as op) ->
      Guarded_instrument { op with payload = P_edge (g a, g b); slot = -1 }
  | i -> i

let is_instrumented_block b =
  Array.exists
    (function Instrument _ | Guarded_instrument _ -> true | _ -> false)
    b.instrs

let defs_of_instr = function
  | Move (r, _)
  | Unop (r, _, _)
  | Binop (r, _, _, _)
  | Get_field (r, _, _)
  | Get_static (r, _)
  | New_object (r, _)
  | New_array (r, _)
  | Array_load (r, _, _)
  | Array_length (r, _) ->
      [ r ]
  | Call { dst; _ } | Intrinsic { dst; _ } -> (
      match dst with Some r -> [ r ] | None -> [])
  | Instance_test (r, _, _) -> [ r ]
  | Put_field _ | Put_static _ | Array_store _ | Yieldpoint _ | Instrument _
  | Guarded_instrument _ ->
      []

let uses_of_operand = function Reg r -> [ r ] | Imm _ -> []

let uses_of_payload = function
  | P_operand op | P_value (op, _) -> uses_of_operand op
  | P_unit | P_field _ | P_edge _ | P_site _ -> []

let uses_of_instr = function
  | Move (_, a) | Unop (_, _, a) -> uses_of_operand a
  | Binop (_, _, a, b) -> uses_of_operand a @ uses_of_operand b
  | Get_field (_, o, _) -> uses_of_operand o
  | Put_field (o, _, v) -> uses_of_operand o @ uses_of_operand v
  | Get_static (_, _) -> []
  | Put_static (_, v) -> uses_of_operand v
  | New_object (_, _) -> []
  | New_array (_, n) -> uses_of_operand n
  | Array_load (_, a, i) -> uses_of_operand a @ uses_of_operand i
  | Array_store (a, i, v) ->
      uses_of_operand a @ uses_of_operand i @ uses_of_operand v
  | Array_length (_, a) -> uses_of_operand a
  | Call { args; _ } -> List.concat_map uses_of_operand args
  | Intrinsic { args; _ } -> List.concat_map uses_of_operand args
  | Instance_test (_, o, _) -> uses_of_operand o
  | Yieldpoint _ -> []
  | Instrument op | Guarded_instrument op -> uses_of_payload op.payload

let uses_of_term = function
  | Goto _ | Return None | Check _ -> []
  | If { cond; _ } -> uses_of_operand cond
  | Switch { scrut; _ } -> uses_of_operand scrut
  | Return (Some v) -> uses_of_operand v

let method_ref_equal (a : method_ref) (b : method_ref) =
  String.equal a.mclass b.mclass && String.equal a.mname b.mname

let field_ref_equal (a : field_ref) (b : field_ref) =
  String.equal a.fclass b.fclass && String.equal a.fname b.fname

let string_of_method_ref m = m.mclass ^ "." ^ m.mname
let string_of_field_ref f = f.fclass ^ "." ^ f.fname
