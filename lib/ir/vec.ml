type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit v.data 0 ndata 0 v.len;
  v.data <- ndata

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let map_into f v =
  for i = 0 to v.len - 1 do
    v.data.(i) <- f v.data.(i)
  done

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (fun x -> ignore (push v x)) l;
  v

let copy v = { data = Array.copy v.data; len = v.len }

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0
