(** Minimal growable array (OCaml 5.1 has no [Dynarray] yet).

    Used throughout the IR to store basic blocks indexed by label. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val unsafe_get : 'a t -> int -> 'a
(** No bounds check: only for hot paths that have already validated the
    index against {!length} (the VM heap does). *)

val set : 'a t -> int -> 'a -> unit
(** Raises [Invalid_argument] when out of bounds. *)

val push : 'a t -> 'a -> int
(** Appends an element and returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map_into : ('a -> 'a) -> 'a t -> unit
(** In-place map. *)

val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val copy : 'a t -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
