type benchmark = {
  bname : string;
  description : string;
  source : string;
  default_scale : int;
  threaded : bool;
}

let all =
  [
    {
      bname = "compress";
      description = "LZW kernel: tight field/array loop (_201_compress)";
      source = Compress.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "jess";
      description = "rule engine: cascaded tiny calls (_202_jess)";
      source = Jess.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "db";
      description = "index ops: big blocks, low overheads (_209_db)";
      source = Db.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "javac";
      description = "recursive-descent parser: rich call-edge mix (_213_javac)";
      source = Javac.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "mpegaudio";
      description = "fixed-point filter bank: numeric loops (_222_mpegaudio)";
      source = Mpegaudio.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "mtrt";
      description = "ray caster: virtual dispatch over a BVH (_227_mtrt)";
      source = Mtrt.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "jack";
      description = "tokenizer/printer: write-heavy fields (_228_jack)";
      source = Jack.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "opt_compiler";
      description = "expression-tree optimizer: most call-dominated (opt-compiler)";
      source = Opt_compiler.source;
      default_scale = 1;
      threaded = false;
    };
    {
      bname = "pbob";
      description = "warehouse transactions across worker threads (pBOB)";
      source = Pbob.source;
      default_scale = 1;
      threaded = true;
    };
    {
      bname = "volano";
      description = "chat-room message passing between threads (VolanoMark)";
      source = Volano.source;
      default_scale = 1;
      threaded = true;
    };
  ]

let find name = List.find (fun b -> b.bname = name) all

let names = List.map (fun b -> b.bname) all

(* domain-safe: experiment cells running on a pool may ask for the same
   benchmark concurrently; the memo compiles it exactly once *)
let compiled : (string, Bytecode.Classfile.program) Sync.Memo.t =
  Sync.Memo.create ()

let compile b =
  Sync.Memo.get compiled b.bname (fun () ->
      Jasm.Compile.compile_string ~file:b.bname b.source)

let entry = { Ir.Lir.mclass = "Main"; mname = "main" }
