(* Figure 8: the Jalapeno-specific yieldpoint optimization (section 4.5).

   (A) framework overhead per benchmark with yieldpoints moved into the
       duplicated code — the checks absorb the yieldpoint cost, dropping
       the paper's 4.9% average to 1.4%;
   (B) total sampling overhead (both instrumentations) vs sample
       interval, converging to ~1.5% instead of ~5%. *)

type row_a = { bench : string; framework : float Robust.outcome }

type row_b = { interval : int; total : float }

type data = { a : row_a list; b : row_b list; failures : Robust.failure list }

let paper_a =
  [
    ("compress", 1.4);
    ("jess", -0.5);
    ("db", 1.6);
    ("javac", 2.2);
    ("mpegaudio", -2.1);
    ("mtrt", 1.9);
    ("jack", 0.8);
    ("opt_compiler", 4.8);
    ("pbob", 1.4);
    ("volano", 0.5);
  ]

let paper_b =
  [
    (1, 179.9);
    (10, 27.6);
    (100, 8.1);
    (1_000, 3.0);
    (10_000, 1.5);
    (100_000, 1.5);
  ]

let transform = Core.Transform.full_dup_yieldpoint_opt Common.both_specs

(* Pure-data description for Schedule. *)
let requests ?scale ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let both = [ "call-edge"; "field-access" ] in
  List.concat_map
    (fun (bench : Workloads.Suite.benchmark) ->
      let b = bench.Workloads.Suite.bname in
      [
        Schedule.baseline ?scale b;
        Schedule.instrumented ?scale ~variant:Schedule.Yp_opt ~specs:both b;
      ])
    benches
  @ List.concat_map
      (fun interval ->
        List.concat_map
          (fun (bench : Workloads.Suite.benchmark) ->
            let b = bench.Workloads.Suite.bname in
            [
              Schedule.baseline ?scale b;
              Schedule.instrumented ?scale ~variant:Schedule.Yp_opt
                ~specs:both
                ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                b;
            ])
          benches)
      Common.sample_intervals

let run ?scale ?jobs ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let nb = List.length benches in
  let ni = List.length Common.sample_intervals in
  let progress =
    Pool.Progress.create ~label:"figure8" ~total:(nb + (ni * nb)) ()
  in
  let a =
    Pool.map ?jobs
      (fun bench ->
        let framework =
          Robust.cell
            ~key:(Printf.sprintf "figure8/a/%s" bench.Workloads.Suite.bname)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let fw = Measure.run_transformed ~transform build in
              Measure.check_output ~base fw;
              Measure.overhead_pct ~base fw)
        in
        Pool.Progress.step progress;
        { bench = bench.Workloads.Suite.bname; framework })
      benches
  in
  (* one cell per (interval, benchmark) *)
  let cells =
    List.concat_map
      (fun interval -> List.map (fun b -> (interval, b)) benches)
      Common.sample_intervals
  in
  let totals =
    Pool.map ?jobs
      (fun (interval, bench) ->
        let r =
          Robust.cell
            ~key:
              (Printf.sprintf "figure8/b/%d/%s" interval
                 bench.Workloads.Suite.bname)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let m =
                Measure.run_transformed
                  ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                  ~transform build
              in
              Measure.overhead_pct ~base m)
        in
        Pool.Progress.step progress;
        r)
      cells
  in
  Pool.Progress.finish progress;
  let b =
    List.mapi
      (fun i interval ->
        let mine = List.filteri (fun j _ -> j / nb = i) totals in
        { interval; total = Common.mean (Robust.oks mine) })
      Common.sample_intervals
  in
  {
    a;
    b;
    failures =
      Robust.errors (List.map (fun r -> r.framework) a)
      @ Robust.errors totals;
  }

let to_string d =
  "Figure 8 (A): framework overhead with the yieldpoint optimization\n"
  ^ Text_table.render
      ~header:[ "Benchmark"; "Framework (%)" ]
      (List.map
         (fun r -> [ r.bench; Robust.cell_str Text_table.pct r.framework ])
         d.a
      @ [
          [
            "Average";
            Text_table.pct
              (Common.mean
                 (Robust.oks (List.map (fun r -> r.framework) d.a)));
          ];
        ])
  ^ "\nFigure 8 (B): total sampling overhead vs interval (avg over benchmarks)\n"
  ^ Text_table.render
      ~header:[ "Interval"; "Total (%)" ]
      (List.map
         (fun r -> [ string_of_int r.interval; Text_table.pct r.total ])
         d.b)

let print d =
  print_string "Figure 8: Jalapeno-specific yieldpoint optimization\n";
  print_string (to_string d);
  match d.failures with [] -> () | fs -> print_string (Robust.report fs)
