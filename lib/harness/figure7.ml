(* Figure 7: graphical overlap of the javac call-edge profile — the
   sample-percentage of each hot call edge under the perfect profile vs a
   profile sampled at interval 1000 with Full-Duplication.

   The paper plots the top ~50 edges and reports a 93.8% overlap; we emit
   the same series as a table (and CSV) so the bar-and-dot plot can be
   regenerated. *)

type point = { edge : string; perfect_pct : float; sampled_pct : float }

type data = {
  points : point list;
  overlap : float;
  n_samples : int;
  failures : Robust.failure list;
}

let paper_overlap = 93.8

(* Pure-data description for Schedule; the perfect cell is exactly
   Common.perfect_profiles' run. *)
let requests ?scale ?(interval = 1_000) () =
  let both = [ "call-edge"; "field-access" ] in
  [
    Schedule.instrumented ?scale ~variant:Schedule.Full_dup ~specs:both
      ~trigger:Core.Sampler.Always "javac";
    Schedule.instrumented ?scale ~variant:Schedule.Full_dup ~specs:both
      ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
      "javac";
  ]

let run ?scale ?jobs ?(interval = 1_000) ?(top = 50) () =
  let bench = Workloads.Suite.find "javac" in
  (* a 2-cell grid: the perfect profile and the sampled run are
     independent computations; only keyed profiles (marshal-safe) are
     checkpointed, never metrics *)
  let cells =
    [
      (fun () ->
        `Perfect
          (Robust.cell ~key:"figure7/perfect" (fun () ->
               fst (Common.perfect_profiles (Measure.prepare ?scale bench)))));
      (fun () ->
        `Sampled
          (Robust.cell
             ~key:(Printf.sprintf "figure7/sampled@%d" interval)
             (fun () ->
               let build = Measure.prepare ?scale bench in
               let m =
                 Measure.run_transformed
                   ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                   ~transform:(Core.Transform.full_dup Common.both_specs)
                   build
               in
               ( Profiles.Call_edge.to_keyed
                   m.Measure.collector.Profiles.Collector.call_edges,
                 m.Measure.samples ))));
    ]
  in
  let perfect_o, sampled_o =
    match Pool.map ?jobs (fun cell -> cell ()) cells with
    | [ `Perfect p; `Sampled s ] -> (p, s)
    | _ -> assert false
  in
  match (perfect_o, sampled_o) with
  | Ok perfect_ce, Ok (sampled_ce, n_samples) ->
      let perfect_pcts = Profiles.Overlap.sample_percentages perfect_ce in
      let sampled_pcts = Profiles.Overlap.sample_percentages sampled_ce in
      let sampled_of e =
        Option.value ~default:0.0 (List.assoc_opt e sampled_pcts)
      in
      let points =
        List.filteri (fun i _ -> i < top) perfect_pcts
        |> List.map (fun (e, p) ->
               { edge = e; perfect_pct = p; sampled_pct = sampled_of e })
      in
      {
        points;
        overlap = Profiles.Overlap.percent perfect_ce sampled_ce;
        n_samples;
        failures = [];
      }
  | _ ->
      let fail = function Error f -> [ f ] | Ok _ -> [] in
      {
        points = [];
        overlap = Float.nan;
        n_samples = 0;
        failures = fail perfect_o @ fail sampled_o;
      }

let to_string d =
  Printf.sprintf "javac call-edge profile, overlap = %.1f%% (%d samples)\n"
    d.overlap d.n_samples
  ^ Text_table.render
      ~header:[ "Call edge"; "Perfect (%)"; "Sampled (%)" ]
      (List.map
         (fun p ->
           [
             p.edge;
             Printf.sprintf "%.3f" p.perfect_pct;
             Printf.sprintf "%.3f" p.sampled_pct;
           ])
         d.points)

let to_csv d =
  "edge,perfect_pct,sampled_pct\n"
  ^ String.concat ""
      (List.map
         (fun p ->
           Printf.sprintf "%s,%.4f,%.4f\n" p.edge p.perfect_pct p.sampled_pct)
         d.points)

let print d =
  print_string "Figure 7: javac call-edge profile, perfect vs sampled\n";
  print_string (to_string d);
  match d.failures with [] -> () | fs -> print_string (Robust.report fs)
