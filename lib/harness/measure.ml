module Lir = Ir.Lir

type build = {
  bench : Workloads.Suite.benchmark;
  scale : int;
  classes : Bytecode.Classfile.program;
  base_funcs : Lir.func list;
}

(* Both caches are keyed per-key-locked (Sync.Memo): when experiment cells
   run on a domain pool, the first cell to need a (benchmark, scale) build
   compiles it while the others block, and every later cell reads the
   published, immutable value.  No build is ever compiled twice. *)
let build_cache : (string * int, build) Sync.Memo.t = Sync.Memo.create ()

let prepare ?(scale = 0) (bench : Workloads.Suite.benchmark) =
  let scale = if scale = 0 then bench.Workloads.Suite.default_scale else scale in
  let key = (bench.Workloads.Suite.bname, scale) in
  Sync.Memo.get build_cache key (fun () ->
      let classes = Workloads.Suite.compile bench in
      let base_funcs =
        Opt.Pipeline.front (Bytecode.To_lir.program_to_funcs classes)
      in
      { bench; scale; classes; base_funcs })

(* The execution engine every experiment runs on, settable once from the
   CLI (isf --engine).  The engines are bit-identical, so this can never
   change a number — EXPERIMENTS.md results are engine-invariant — but
   caches are still keyed by it so mixed-engine comparisons (bench, the
   differential suite) never alias. *)
let default_engine : [ `Ref | `Fast ] Atomic.t = Atomic.make `Fast

let set_engine e = Atomic.set default_engine e
let current_engine () = Atomic.get default_engine

(* The profile recording path (isf --recording).  [`Slots] (default)
   resolves every instrument op to a flat slot after linking and records
   through preallocated buffers (Profiles.Slots), decoding into the
   legacy collector structures at end of run; [`Legacy] is the original
   event-by-event hook dispatch, kept as the differential oracle.  The
   two are bit-identical — cycles, counters and every decoded profile
   table including iteration order — so results are recording-invariant
   (test/test_slots.ml enforces this differentially). *)
let recording : [ `Slots | `Legacy ] Atomic.t = Atomic.make `Slots

let set_recording r = Atomic.set recording r
let current_recording () = Atomic.get recording

(* The trace-recording tier (isf --traces): [Some t] arms hot-loop
   tracing on the Fast engine with backedge threshold [t].  Traced
   execution is bit-identical on every observable (test/test_engine.ml
   enforces this differentially), so results are trace-invariant — but
   run keys still carry the setting so trace-on and trace-off
   measurements never alias in the cache.  Ignored by [`Ref]. *)
let traces : int option Atomic.t = Atomic.make None

let set_traces t = Atomic.set traces t
let current_traces () = Atomic.get traces

(* Chaos mode (isf --chaos SEED): every measurement runs under a fault
   plan derived from the session seed and the cell's (benchmark, scale)
   — deliberately NOT from which table or worker asks, so concurrent
   cells measuring the same build inject the same faults and results
   stay independent of -j and of execution order. *)
let chaos : int option Atomic.t = Atomic.make None

let set_chaos s = Atomic.set chaos s

(* Per-cell wall-clock budget in seconds (isf --watchdog); <= 0 disables
   the deadline entirely (the clock is then never read). *)
let watchdog : float Atomic.t = Atomic.make 600.0

let set_watchdog s = Atomic.set watchdog s

let fault_plan build =
  match Atomic.get chaos with
  | None -> Fault.none
  | Some seed ->
      Fault.of_seed ~compile_fail_pct:25
        (seed
        lxor Hashtbl.hash (build.bench.Workloads.Suite.bname, build.scale))

type metrics = {
  cycles : int;
  instructions : int;
  checks : int;
  samples : int;
  entries : int;
  backedge_yps : int;
  instrument_ops : int;
  output : string;
  code_words : int;
  collector : Profiles.Collector.t;
  fallbacks : (string * string) list;
}

let metrics_of prog (res : Vm.Interp.result) collector =
  {
    cycles = res.Vm.Interp.cycles;
    instructions = res.Vm.Interp.instructions;
    checks = res.Vm.Interp.counters.Vm.Interp.checks;
    samples = res.Vm.Interp.counters.Vm.Interp.samples;
    entries = res.Vm.Interp.counters.Vm.Interp.entries;
    backedge_yps = res.Vm.Interp.counters.Vm.Interp.backedge_yps;
    instrument_ops = res.Vm.Interp.counters.Vm.Interp.instrument_ops;
    output = res.Vm.Interp.output;
    code_words = prog.Vm.Program.total_code_words;
    collector;
    fallbacks = res.Vm.Interp.fallbacks;
  }

(* How one run records its profile events: hooks (+ recorder for the
   flat path) built against the linked program, and a decode producing
   the collector afterwards.  [mk] runs after linking because slot
   resolution needs the resolved method ids. *)
type recording_instance = {
  r_hooks : Vm.Interp.hooks;
  r_recorder : Vm.Machine.flat_recorder option;
  r_decode : unit -> Profiles.Collector.t;
  r_on_init : (Vm.Machine.state -> unit) option;
      (* adaptive runs attach their controller here *)
}

let no_recording (_ : Vm.Program.t) =
  {
    r_hooks = Vm.Interp.null_hooks;
    r_recorder = None;
    r_decode = Profiles.Collector.create;
    r_on_init = None;
  }

let execute ?engine ?timer_period build funcs mk =
  let engine =
    match engine with Some e -> e | None -> Atomic.get default_engine
  in
  let prog = Vm.Program.link build.classes ~funcs in
  let recording = mk prog in
  let faults = fault_plan build in
  let label =
    let ctx = Robust.context () in
    if not (String.equal ctx "") then ctx
    else
      Printf.sprintf "%s (scale %d)" build.bench.Workloads.Suite.bname
        build.scale
  in
  let deadline =
    let w = Atomic.get watchdog in
    if w <= 0.0 then None else Some (Unix.gettimeofday () +. w)
  in
  let res =
    Vm.Interp.run ~engine ~use_icache:true ?timer_period ~faults ~label
      ?deadline ?recorder:recording.r_recorder
      ?trace_threshold:(Atomic.get traces) ?on_init:recording.r_on_init prog
      ~entry:Workloads.Suite.entry ~args:[ build.scale ] recording.r_hooks
  in
  (metrics_of prog res (recording.r_decode ()), res)

(* Content-addressed result cache (in-memory always; plus the on-disk
   tier when [Runcache.set_dir] armed one).  The key is the full
   canonical run configuration — transformed code digest, engine,
   recording, trigger, timer period, cost table, fault plan — so two
   cells that would perform an identical measurement share one run, no
   matter which table driver or which process asks.  This subsumes the
   old per-(benchmark, scale, engine) baseline memo: a baseline is just
   a run of the untransformed code with no recording attached. *)
module Cache = Runcache.Make (struct
  type t = metrics
end)

let base_digest_cache : (string * int, string) Sync.Memo.t =
  Sync.Memo.create ()

let base_funcs_digest build =
  Sync.Memo.get base_digest_cache
    (build.bench.Workloads.Suite.bname, build.scale)
    (fun () -> Digest.funcs build.base_funcs)

let () =
  Runcache.on_reset (fun () ->
      Sync.Memo.clear build_cache;
      Sync.Memo.clear base_digest_cache)

let engine_str = function `Ref -> "ref" | `Fast -> "fast"

let run_key ?adaptive ~kind ~funcs_digest ~engine ~recording ~trigger
    ~timer_period build =
  let traces =
    (* only the Fast engine consults the tier, so Ref keys stay stable
       whatever the session-wide setting *)
    match (engine, Atomic.get traces) with
    | `Fast, Some t -> Some (Printf.sprintf "threshold:%d" t)
    | _ -> None
  in
  Digest.run_config ?adaptive ?traces ~kind
    ~bench:build.bench.Workloads.Suite.bname ~scale:build.scale ~funcs_digest
    ~engine:(engine_str engine) ~recording ~trigger ~timer_period
    ~costs:(Digest.costs Vm.Costs.default)
    ~faults:(Digest.fault_plan (fault_plan build))
    ()

let run_baseline ?engine build =
  let engine =
    match engine with Some e -> e | None -> Atomic.get default_engine
  in
  let key =
    run_key ~kind:"baseline" ~funcs_digest:(base_funcs_digest build) ~engine
      ~recording:"none" ~trigger:"none" ~timer_period:None build
  in
  Cache.find ~key (fun () ->
      fst (execute ~engine build build.base_funcs no_recording))

let run_transformed ?engine ?recording:rec_override
    ?(trigger = Core.Sampler.Never) ?timer_period ~transform build =
  let engine =
    match engine with Some e -> e | None -> Atomic.get default_engine
  in
  let recording_path =
    match rec_override with Some r -> r | None -> Atomic.get recording
  in
  let funcs =
    List.map
      (fun f -> (transform f).Core.Transform.func)
      build.base_funcs
  in
  let mk prog =
    let sampler = Core.Sampler.create trigger in
    match recording_path with
    | `Legacy ->
        let collector = Profiles.Collector.create () in
        {
          r_hooks = Profiles.Collector.hooks collector sampler;
          r_recorder = None;
          r_decode = (fun () -> collector);
          r_on_init = None;
        }
    | `Slots ->
        let slots = Profiles.Slots.create prog in
        {
          r_hooks = Profiles.Slots.hooks slots sampler;
          r_recorder = Some (Profiles.Slots.recorder slots);
          r_decode = (fun () -> Profiles.Slots.decode slots);
          r_on_init = None;
        }
  in
  let key =
    run_key ~kind:"instrumented" ~funcs_digest:(Digest.funcs funcs) ~engine
      ~recording:
        (match recording_path with `Slots -> "slots" | `Legacy -> "legacy")
      ~trigger:(Digest.trigger trigger) ~timer_period build
  in
  Cache.find ~key (fun () -> fst (execute ~engine ?timer_period build funcs mk))

(* ------------------------------------------------------------------ *)
(* Adaptive runs (DESIGN.md §9)                                        *)
(* ------------------------------------------------------------------ *)

type adaptive_metrics = {
  am : metrics;
  instr_cycles : int;
  achieved_overhead_pct : float;
  decisions : string list;
  polls : int;
}

(* A separate cache instance because the Marshal'd payload differs from
   [metrics]; keys can't alias Cache's — [kind=adaptive] plus the
   adaptive= line make them distinct strings. *)
module Adaptive_cache = Runcache.Make (struct
  type t = adaptive_metrics
end)

let run_adaptive ?engine ?(trigger = Core.Sampler.Counter { interval = 64; jitter = 0 })
    ?timer_period ?(config = Adaptive.Controller.default) ~transform build =
  let engine =
    match engine with Some e -> e | None -> Atomic.get default_engine
  in
  let funcs =
    List.map (fun f -> (transform f).Core.Transform.func) build.base_funcs
  in
  (* the controller reads the live profile from the flat-slot recorder,
     so adaptive runs are pinned to [`Slots] recording regardless of the
     session-wide setting (the loop-off byte-identity guarantees are
     what both recordings keep) *)
  let key =
    run_key
      ~adaptive:(Adaptive.Controller.config_digest config)
      ~kind:"adaptive" ~funcs_digest:(Digest.funcs funcs) ~engine
      ~recording:"slots" ~trigger:(Digest.trigger trigger) ~timer_period build
  in
  Adaptive_cache.find ~key (fun () ->
      let ctl = ref None in
      let mk prog =
        let sampler = Core.Sampler.create trigger in
        let slots = Profiles.Slots.create prog in
        let c = Adaptive.Controller.create ~config ~sampler slots in
        ctl := Some c;
        {
          r_hooks = Profiles.Slots.hooks slots sampler;
          r_recorder = Some (Profiles.Slots.recorder slots);
          r_decode = (fun () -> Profiles.Slots.decode slots);
          r_on_init = Some (Adaptive.Controller.on_init c);
        }
      in
      let m, res = execute ~engine ?timer_period build funcs mk in
      let c = Option.get !ctl in
      {
        am = m;
        instr_cycles = res.Vm.Interp.instr_cycles;
        achieved_overhead_pct =
          Adaptive.Budget.overhead ~cycles:res.Vm.Interp.cycles
            ~icycles:res.Vm.Interp.instr_cycles;
        decisions = Adaptive.Controller.decisions c;
        polls = Adaptive.Controller.polls c;
      })

(* One UNCACHED adaptive execution, timed.  [run_adaptive] results flow
   through the run cache (by design — tables want cell reuse), which
   makes wall-clock timing of the cached entry point meaningless; bench
   drivers time this instead.  Same configuration surface and the same
   execution path as [run_adaptive], minus the cache and the controller
   introspection. *)
let adaptive_wall ?engine
    ?(trigger = Core.Sampler.Counter { interval = 64; jitter = 0 })
    ?timer_period ?(config = Adaptive.Controller.default) ~transform build =
  let engine =
    match engine with Some e -> e | None -> Atomic.get default_engine
  in
  let funcs =
    List.map (fun f -> (transform f).Core.Transform.func) build.base_funcs
  in
  let mk prog =
    let sampler = Core.Sampler.create trigger in
    let slots = Profiles.Slots.create prog in
    let c = Adaptive.Controller.create ~config ~sampler slots in
    {
      r_hooks = Profiles.Slots.hooks slots sampler;
      r_recorder = Some (Profiles.Slots.recorder slots);
      r_decode = (fun () -> Profiles.Slots.decode slots);
      r_on_init = Some (Adaptive.Controller.on_init c);
    }
  in
  let t0 = Unix.gettimeofday () in
  let (_ : metrics * Vm.Interp.result) =
    execute ~engine ?timer_period build funcs mk
  in
  Unix.gettimeofday () -. t0

let overhead_pct ~base m =
  100.0 *. float_of_int (m.cycles - base.cycles) /. float_of_int base.cycles

let check_output ~base m =
  if not (String.equal base.output m.output) then
    failwith
      (Printf.sprintf
         "instrumented run changed program output (%S vs %S prefixes)"
         (String.sub base.output 0 (min 40 (String.length base.output)))
         (String.sub m.output 0 (min 40 (String.length m.output))))

let median l =
  let s = List.sort compare l in
  List.nth s (List.length s / 2)

let compile_stats ~transform build =
  let raw_funcs = Bytecode.To_lir.program_to_funcs build.classes in
  let time_pipeline tr =
    let samples =
      List.init 5 (fun _ ->
          let _, stats = Opt.Pipeline.compile ~transform:tr raw_funcs in
          stats)
    in
    let pick f = median (List.map f samples) in
    {
      Opt.Pipeline.seconds_front = pick (fun s -> s.Opt.Pipeline.seconds_front);
      seconds_transform = pick (fun s -> s.Opt.Pipeline.seconds_transform);
      seconds_back = pick (fun s -> s.Opt.Pipeline.seconds_back);
    }
  in
  let base = time_pipeline Fun.id in
  let instr =
    time_pipeline (fun f -> (transform f).Core.Transform.func)
  in
  (base, instr)
