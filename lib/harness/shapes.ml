(* Shape gate: the validated claims of EXPERIMENTS.md, as executable
   checks over freshly reproduced tables.

   EXPERIMENTS.md validates *shapes* — orderings between variants,
   per-benchmark characters, where crossovers fall — not absolute
   percentages (the simulator's scale differs from the paper's 604e).
   Each check below encodes one recorded verdict with enough margin that
   it is stable at the default scales, so a failure means the framework,
   the cost model or an engine drifted, not that the simulator wobbled:
   every input number is a deterministic cycle count or overlap.  The
   one wall-clock measurement anywhere (Table 2's compile-time column)
   is deliberately not checked.

   Used by `isf table all` and by the bench binary, which exits non-zero
   when any claim fails, making both usable as CI gates. *)

type check = { claim : string; pass : bool; detail : string }

let ck claim pass detail = { claim; pass; detail }
let f1 = Printf.sprintf "%.1f"

let find_row rows bench =
  List.find (fun (b, _) -> String.equal b bench) rows |> snd

let argmax f rows =
  List.fold_left
    (fun best r -> match best with
      | Some b when f b >= f r -> best
      | _ -> Some r)
    None rows

(* -------------------- Table 1: exhaustive instrumentation ----------- *)

(* An ERR cell becomes NaN here, and NaN fails every comparison below —
   a table with failed cells can never pass its shapes. *)
let nan_or o = Robust.get_or ~default:Float.nan o

let table1 (rows : Table1.row list) =
  let ce = List.map (fun (r : Table1.row) -> (r.Table1.bench, nan_or r.Table1.call_edge)) rows in
  let fa = List.map (fun (r : Table1.row) -> (r.Table1.bench, nan_or r.Table1.field_access)) rows in
  let avg l = Common.mean (List.map snd l) in
  let lowest l =
    match argmax (fun (_, v) -> -.v) l with Some (b, _) -> b | None -> "?"
  in
  let highest l =
    match argmax snd l with Some (b, _) -> b | None -> "?"
  in
  let fd b = find_row fa b > find_row ce b in
  [
    ck "call-edge far too expensive to run unnoticed (avg > 50%)"
      (avg ce > 50.0)
      (f1 (avg ce));
    ck "field-access likewise (avg > 20%)" (avg fa > 20.0) (f1 (avg fa));
    ck "db is the cheapest row on both columns"
      (String.equal (lowest ce) "db" && String.equal (lowest fa) "db")
      (lowest ce ^ "/" ^ lowest fa);
    ck "opt_compiler is the most call-dominated (highest call-edge)"
      (String.equal (highest ce) "opt_compiler")
      (highest ce);
    ck "loop kernels (compress/mpegaudio) are field-dominated (FA > CE)"
      (fd "compress" && fd "mpegaudio")
      (f1 (find_row fa "compress") ^ ">" ^ f1 (find_row ce "compress"));
  ]

(* -------------------- Table 2: Full-Duplication framework ----------- *)

let table2 (rows : Table2.row list) =
  let get f =
    List.map (fun (r : Table2.row) -> (r.Table2.bench, Table2.get f r)) rows
  in
  let tot = get (fun m -> m.Table2.total) in
  let be = get (fun m -> m.Table2.backedge_only) in
  let en = get (fun m -> m.Table2.entry_only) in
  let avg l = Common.mean (List.map snd l) in
  let be_dom b = find_row be b > find_row en b in
  [
    ck "framework overhead is tens of percent at most, not exhaustive-level"
      (avg tot < 30.0)
      (f1 (avg tot));
    ck "compress/mpegaudio are backedge-dominated"
      (be_dom "compress" && be_dom "mpegaudio")
      (f1 (find_row be "compress") ^ " vs " ^ f1 (find_row en "compress"));
    ck "javac/opt_compiler are entry-dominated"
      ((not (be_dom "javac")) && not (be_dom "opt_compiler"))
      (f1 (find_row en "javac") ^ " vs " ^ f1 (find_row be "javac"));
    ck "backedge + entry ~= total (indirect cost small)"
      (Float.abs (avg be +. avg en -. avg tot) < (0.2 *. avg tot) +. 0.5)
      (f1 (avg be) ^ "+" ^ f1 (avg en) ^ " vs " ^ f1 (avg tot));
    ck "duplication costs space on every benchmark"
      (List.for_all (fun (_, v) -> v > 0.0)
         (get (fun m -> m.Table2.space_increase_kb)))
      "all rows > 0 KB";
  ]

(* -------------------- Table 3: No-Duplication checking -------------- *)

let table3 ~(t1 : Table1.row list) ~(t2 : Table2.row list)
    (rows : Table3.row list) =
  let entry_of b =
    Table2.get
      (fun m -> m.Table2.entry_only)
      (List.find (fun (r : Table2.row) -> String.equal r.Table2.bench b) t2)
  in
  (* identical check placement, so identical up to i-cache layout: the
     guarded ops occupy different code addresses than bare entry checks,
     which perturbs db by ~0.0007 points (see EXPERIMENTS.md) *)
  let identity =
    List.for_all
      (fun (r : Table3.row) ->
        Float.abs (nan_or r.Table3.call_edge -. entry_of r.Table3.bench) < 0.01)
      rows
  in
  let avg f l = Common.mean (List.map f l) in
  let fa3 = avg (fun (r : Table3.row) -> nan_or r.Table3.field_access) rows in
  let fa1 = avg (fun (r : Table1.row) -> nan_or r.Table1.field_access) t1 in
  let ratio = fa3 /. fa1 in
  [
    ck "call-edge checking cost = Table 2 entry column (within 0.01 points)"
      identity
      (if identity then "identical up to i-cache layout"
       else
         String.concat ", "
           (List.filter_map
              (fun (r : Table3.row) ->
                let d = nan_or r.Table3.call_edge -. entry_of r.Table3.bench in
                if Float.abs d < 0.01 then None
                else Some (Printf.sprintf "%s %+.6f" r.Table3.bench d))
              rows));
    ck "field-access: checks are nearly ineffective (0.5 < ND/exhaustive < 1)"
      (ratio > 0.5 && ratio < 1.0)
      (f1 (100.0 *. ratio) ^ "% of exhaustive");
  ]

(* -------------------- Table 4: overhead/accuracy vs interval -------- *)

let table4 (r : Table4.rows) =
  let at cells k = List.find (fun (c : Table4.cell) -> c.Table4.interval = k) cells in
  let fd = r.Table4.full_dup and nd = r.Table4.no_dup in
  let rec decreasing = function
    | (a : Table4.cell) :: (b : Table4.cell) :: rest ->
        a.Table4.num_samples >= b.Table4.num_samples && decreasing (b :: rest)
    | _ -> true
  in
  let fd_floorish =
    Float.abs ((at fd 10_000).Table4.total -. (at fd 100_000).Table4.total)
  in
  let nd_band =
    let ts =
      List.filter_map
        (fun (c : Table4.cell) ->
          if c.Table4.interval >= 1_000 then Some c.Table4.total else None)
        nd
    in
    List.fold_left Float.max neg_infinity ts
    -. List.fold_left Float.min infinity ts
  in
  [
    ck "interval 1 reproduces the perfect profile (accuracy 100/100)"
      ((at fd 1).Table4.acc_call_edge > 99.9 && (at fd 1).Table4.acc_field > 99.9)
      (f1 (at fd 1).Table4.acc_call_edge ^ "/" ^ f1 (at fd 1).Table4.acc_field);
    ck "sampling overhead above the framework's own ~0 by interval 1000"
      ((at fd 1_000).Table4.sampled_instr < 1.0)
      (f1 (at fd 1_000).Table4.sampled_instr);
    ck "total overhead converges to the framework floor"
      (fd_floorish < 3.0)
      (f1 (at fd 10_000).Table4.total ^ " vs " ^ f1 (at fd 100_000).Table4.total);
    ck "accuracy stays high through interval 100 (call-edge >= 80)"
      ((at fd 100).Table4.acc_call_edge >= 80.0)
      (f1 (at fd 100).Table4.acc_call_edge);
    ck "accuracy collapses when samples run out (call-edge @1e5 < 50)"
      ((at fd 100_000).Table4.acc_call_edge < 50.0)
      (f1 (at fd 100_000).Table4.acc_call_edge);
    ck "sample count decreases with interval" (decreasing fd) "monotone";
    ck "No-Duplication total pinned near its checking floor"
      (nd_band < 5.0)
      (f1 nd_band ^ " point band");
    ck "No-Duplication floor far above Full-Duplication's"
      ((at nd 1_000).Table4.total > (at fd 1_000).Table4.total +. 10.0)
      (f1 (at nd 1_000).Table4.total ^ " vs " ^ f1 (at fd 1_000).Table4.total);
  ]

(* -------------------- Table 5: trigger mechanisms ------------------- *)

let table5 (rows : Table5.row list) =
  let avg f = Common.mean (List.map f rows) in
  let t = avg Table5.time_based in
  let c = avg Table5.counter_based in
  let wins =
    List.length
      (List.filter
         (fun (r : Table5.row) -> Table5.counter_based r > Table5.time_based r)
         rows)
  in
  [
    ck "counter-based trigger is more accurate on average" (c > t)
      (f1 c ^ " vs " ^ f1 t);
    ck "counter-based wins on a clear majority of benchmarks"
      (wins >= 6)
      (string_of_int wins ^ "/" ^ string_of_int (List.length rows));
  ]

(* -------------------- Figure 7: javac call-edge overlap ------------- *)

let figure7 (d : Figure7.data) =
  [
    ck "sampled javac call-edge profile overlaps the perfect one (>= 85%)"
      (d.Figure7.overlap >= 85.0)
      (f1 d.Figure7.overlap);
    ck "at a paper-matched sample count (>= 1000 samples)"
      (d.Figure7.n_samples >= 1_000)
      (string_of_int d.Figure7.n_samples);
  ]

(* -------------------- Figure 8: yieldpoint optimization ------------- *)

let figure8 ~(t2 : Table2.row list) (d : Figure8.data) =
  let t2avg =
    Common.mean
      (List.map (fun r -> Table2.get (fun m -> m.Table2.total) r) t2)
  in
  let f8avg =
    Common.mean
      (List.map (fun (r : Figure8.row_a) -> nan_or r.Figure8.framework) d.Figure8.a)
  in
  let last_total =
    match List.rev d.Figure8.b with
    | (b : Figure8.row_b) :: _ -> b.Figure8.total
    | [] -> infinity
  in
  [
    ck "yieldpoint optimization makes the framework nearly free (< half)"
      (f8avg < 0.5 *. t2avg)
      (f1 t2avg ^ " -> " ^ f1 f8avg);
    ck "total sampling overhead converges to the new floor"
      (last_total < f8avg +. 3.0)
      (f1 last_total ^ " vs floor " ^ f1 f8avg);
  ]

(* -------------------- reporting ------------------------------------- *)

let all_pass groups =
  List.for_all (fun (_, cs) -> List.for_all (fun c -> c.pass) cs) groups

let render groups =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Shape gate: reproduced tables vs EXPERIMENTS.md recorded shapes\n";
  List.iter
    (fun (name, cs) ->
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  [%s] %s: %s (%s)\n"
               (if c.pass then "ok" else "FAIL")
               name c.claim c.detail))
        cs)
    groups;
  let failed =
    List.concat_map (fun (_, cs) -> List.filter (fun c -> not c.pass) cs) groups
  in
  Buffer.add_string buf
    (if failed = [] then "  all shapes reproduce\n"
     else Printf.sprintf "  %d SHAPE(S) DIVERGED\n" (List.length failed));
  Buffer.contents buf
