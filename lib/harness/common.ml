(* Shared experiment configuration. *)

let both_specs = Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]

let sample_intervals = [ 1; 10; 100; 1_000; 10_000; 100_000 ]

let benchmarks () = Workloads.Suite.all

(* Perfect profiles (sample interval 1 — all execution in duplicated code),
   cached per (benchmark, scale, engine) with per-key locking so pooled
   cells compute each at most once. *)
let perfect_cache :
    ( string * int * [ `Ref | `Fast ],
      (string * int) list * (string * int) list )
    Sync.Memo.t =
  Sync.Memo.create ()

let perfect_profiles (build : Measure.build) =
  let key =
    ( build.Measure.bench.Workloads.Suite.bname,
      build.Measure.scale,
      Measure.current_engine () )
  in
  Sync.Memo.get perfect_cache key (fun () ->
      let m =
        Measure.run_transformed ~trigger:Core.Sampler.Always
          ~transform:(Core.Transform.full_dup both_specs)
          build
      in
      ( Profiles.Call_edge.to_keyed
          m.Measure.collector.Profiles.Collector.call_edges,
        Profiles.Field_access.to_keyed
          m.Measure.collector.Profiles.Collector.fields ))

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
