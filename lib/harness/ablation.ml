(* Ablation studies for the design choices the paper discusses but does
   not table:

   A1 — deterministic vs randomized sample interval (section 4.4: "adding
        a small random factor to the sample interval ... could possibly
        even increase the accuracy in the expected case").  Our synthetic
        loops are more periodic than SPECjvm98, so the aliasing worst
        case is visible and the jitter repairs it.
   A2 — naive 5-instruction check vs a PowerPC-style decrement-and-check
        single instruction (section 2.2's hardware remark).
   A3 — duplication strategy (Full / Partial / No) vs instrumentation
        density: code size and overhead, the section 3 trade-off.
   A4 — global vs per-thread sampling counter on the threaded benchmarks
        (section 2.2's multiprocessor concern). *)

module Lir = Ir.Lir

let both = Common.both_specs

(* ------------------------------------------------------------------ *)
(* A1: trigger determinism                                             *)
(* ------------------------------------------------------------------ *)

type a1_row = {
  a1_bench : string;
  interval : int;
  det_acc : float;
  jit_acc : float;
}

let run_a1 ?scale ?jobs () =
  let cells =
    List.concat_map
      (fun bname -> List.map (fun i -> (bname, i)) [ 10; 100; 1000 ])
      [ "mpegaudio"; "compress"; "jess"; "javac" ]
  in
  Pool.map ?jobs
    (fun (bname, interval) ->
      let build = Measure.prepare ?scale (Workloads.Suite.find bname) in
      let perfect_ce, _ = Common.perfect_profiles build in
      let acc jitter =
        let m =
          Measure.run_transformed
            ~trigger:(Core.Sampler.Counter { interval; jitter })
            ~transform:(Core.Transform.full_dup both)
            build
        in
        Profiles.Overlap.percent perfect_ce
          (Profiles.Call_edge.to_keyed
             m.Measure.collector.Profiles.Collector.call_edges)
      in
      {
        a1_bench = bname;
        interval;
        det_acc = acc 0;
        jit_acc = acc (max 1 (interval / 4));
      })
    cells

let a1_to_string rows =
  "Ablation A1: deterministic vs randomized sample interval (call-edge \
   accuracy)\n"
  ^ Text_table.render
      ~header:[ "Benchmark"; "Interval"; "Deterministic (%)"; "Jittered (%)" ]
      (List.map
         (fun r ->
           [
             r.a1_bench;
             string_of_int r.interval;
             Text_table.pct r.det_acc;
             Text_table.pct r.jit_acc;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* A2: check implementation cost                                       *)
(* ------------------------------------------------------------------ *)

type a2_row = { a2_bench : string; naive : float; count_register : float }

let framework_overhead_with costs build =
  let transform f = (Core.Transform.full_dup both f).Core.Transform.func in
  let funcs = List.map transform build.Measure.base_funcs in
  let run fs =
    Vm.Interp.run ~use_icache:true ~costs
      (Vm.Program.link build.Measure.classes ~funcs:fs)
      ~entry:Workloads.Suite.entry
      ~args:[ build.Measure.scale ]
      Vm.Interp.null_hooks
  in
  let base = run build.Measure.base_funcs in
  let instr = run funcs in
  100.0
  *. float_of_int (instr.Vm.Interp.cycles - base.Vm.Interp.cycles)
  /. float_of_int base.Vm.Interp.cycles

let run_a2 ?scale ?jobs () =
  Pool.map ?jobs
    (fun bench ->
      let build = Measure.prepare ?scale bench in
      {
        a2_bench = bench.Workloads.Suite.bname;
        naive = framework_overhead_with Vm.Costs.default build;
        count_register =
          framework_overhead_with Vm.Costs.hardware_count_register build;
      })
    (Common.benchmarks ())

let a2_to_string rows =
  "Ablation A2: naive check vs hardware decrement-and-check (framework \
   overhead)\n"
  ^ Text_table.render
      ~header:[ "Benchmark"; "Naive 5-op check (%)"; "Count register (%)" ]
      (List.map
         (fun r ->
           [
             r.a2_bench;
             Text_table.pct r.naive;
             Text_table.pct r.count_register;
           ])
         rows
      @ [
          [
            "Average";
            Text_table.pct (Common.mean (List.map (fun r -> r.naive) rows));
            Text_table.pct
              (Common.mean (List.map (fun r -> r.count_register) rows));
          ];
        ])

(* ------------------------------------------------------------------ *)
(* A3: duplication strategy vs instrumentation density                 *)
(* ------------------------------------------------------------------ *)

type a3_row = {
  density : string;
  variant : string;
  space_ratio : float; (* code words vs baseline *)
  framework : float; (* checking overhead, no samples *)
  sampled_1000 : float; (* total overhead at interval 1000 *)
}

let run_a3 ?scale ?jobs () =
  let build = Measure.prepare ?scale (Workloads.Suite.find "javac") in
  let base = Measure.run_baseline build in
  let cells =
    List.concat_map
      (fun (density, spec) ->
        List.map
          (fun (variant, transform) -> (density, variant, transform))
          [
            ("full-dup", Core.Transform.full_dup spec);
            ("partial-dup", Core.Transform.partial_dup spec);
            ("no-dup", Core.Transform.no_dup spec);
          ])
      [
        ("sparse (call-edge)", Core.Spec.call_edge);
        ("dense (call-edge+field)", both);
      ]
  in
  Pool.map ?jobs
    (fun (density, variant, transform) ->
      let fw = Measure.run_transformed ~transform build in
      let sampled =
        Measure.run_transformed
          ~trigger:(Core.Sampler.Counter { interval = 1_000; jitter = 0 })
          ~transform build
      in
      {
        density;
        variant;
        space_ratio =
          float_of_int fw.Measure.code_words
          /. float_of_int base.Measure.code_words;
        framework = Measure.overhead_pct ~base fw;
        sampled_1000 = Measure.overhead_pct ~base sampled;
      })
    cells

let a3_to_string rows =
  "Ablation A3: duplication strategy vs instrumentation density (javac)\n"
  ^ Text_table.render
      ~header:
        [ "Density"; "Variant"; "Space ratio"; "Framework (%)"; "Sampled@1000 (%)" ]
      (List.map
         (fun r ->
           [
             r.density;
             r.variant;
             Printf.sprintf "%.2f" r.space_ratio;
             Text_table.pct r.framework;
             Text_table.pct r.sampled_1000;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* A4: global vs per-thread counter                                    *)
(* ------------------------------------------------------------------ *)

type a4_row = {
  a4_bench : string;
  global_acc : float;
  per_thread_acc : float;
  global_samples : int;
  per_thread_samples : int;
}

let run_a4 ?scale ?jobs () =
  Pool.map ?jobs
    (fun bname ->
      let build = Measure.prepare ?scale (Workloads.Suite.find bname) in
      let perfect_ce, _ = Common.perfect_profiles build in
      let run trigger =
        let m =
          Measure.run_transformed ~trigger
            ~transform:(Core.Transform.full_dup both)
            build
        in
        ( Profiles.Overlap.percent perfect_ce
            (Profiles.Call_edge.to_keyed
               m.Measure.collector.Profiles.Collector.call_edges),
          m.Measure.samples )
      in
      let ga, gs = run (Core.Sampler.Counter { interval = 500; jitter = 0 }) in
      let pa, ps = run (Core.Sampler.Counter_per_thread { interval = 500 }) in
      {
        a4_bench = bname;
        global_acc = ga;
        per_thread_acc = pa;
        global_samples = gs;
        per_thread_samples = ps;
      })
    [ "pbob"; "volano" ]

let a4_to_string rows =
  "Ablation A4: global vs per-thread sampling counter (threaded \
   benchmarks, call-edge accuracy)\n"
  ^ Text_table.render
      ~header:
        [
          "Benchmark";
          "Global acc (%)";
          "Per-thread acc (%)";
          "Global samples";
          "Per-thread samples";
        ]
      (List.map
         (fun r ->
           [
             r.a4_bench;
             Text_table.pct r.global_acc;
             Text_table.pct r.per_thread_acc;
             string_of_int r.global_samples;
             string_of_int r.per_thread_samples;
           ])
         rows)

(* Pure-data description of the ablations' measurements for Schedule.
   A2 calls Vm.Interp.run directly with swapped cost tables — it
   bypasses Measure entirely and is neither cached nor requested. *)
let requests ?scale () =
  let both_names = [ "call-edge"; "field-access" ] in
  let perfect ?scale b =
    Schedule.instrumented ?scale ~variant:Schedule.Full_dup ~specs:both_names
      ~trigger:Core.Sampler.Always b
  in
  let a1 =
    List.concat_map
      (fun bname ->
        List.concat_map
          (fun interval ->
            [
              perfect ?scale bname;
              Schedule.instrumented ?scale ~variant:Schedule.Full_dup
                ~specs:both_names
                ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                bname;
              Schedule.instrumented ?scale ~variant:Schedule.Full_dup
                ~specs:both_names
                ~trigger:
                  (Core.Sampler.Counter
                     { interval; jitter = max 1 (interval / 4) })
                bname;
            ])
          [ 10; 100; 1000 ])
      [ "mpegaudio"; "compress"; "jess"; "javac" ]
  in
  let a3 =
    Schedule.baseline ?scale "javac"
    :: List.concat_map
         (fun specs ->
           List.concat_map
             (fun variant ->
               [
                 Schedule.instrumented ?scale ~variant ~specs "javac";
                 Schedule.instrumented ?scale ~variant ~specs
                   ~trigger:
                     (Core.Sampler.Counter { interval = 1_000; jitter = 0 })
                   "javac";
               ])
             [ Schedule.Full_dup; Schedule.Partial_dup; Schedule.No_dup ])
         [ [ "call-edge" ]; both_names ]
  in
  let a4 =
    List.concat_map
      (fun bname ->
        [
          perfect ?scale bname;
          Schedule.instrumented ?scale ~variant:Schedule.Full_dup
            ~specs:both_names
            ~trigger:(Core.Sampler.Counter { interval = 500; jitter = 0 })
            bname;
          Schedule.instrumented ?scale ~variant:Schedule.Full_dup
            ~specs:both_names
            ~trigger:(Core.Sampler.Counter_per_thread { interval = 500 })
            bname;
        ])
      [ "pbob"; "volano" ]
  in
  a1 @ a3 @ a4

let run_all ?scale ?jobs () =
  if Robust.checkpointed_cells () = 0 then
    Schedule.prewarm ?jobs (requests ?scale ());
  print_string (a1_to_string (run_a1 ?scale ?jobs ()));
  print_newline ();
  print_string (a2_to_string (run_a2 ?scale ?jobs ()));
  print_newline ();
  print_string (a3_to_string (run_a3 ?scale ?jobs ()));
  print_newline ();
  print_string (a4_to_string (run_a4 ?scale ?jobs ()))
