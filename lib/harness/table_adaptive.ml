(* Adaptive experiment (DESIGN.md §9): closes the FDO loop and measures
   what it buys.

   Per benchmark, three runs of the same exhaustively-instrumented code
   (call-edge + field-access + edge-profile — the profiles the
   controller steers by):

   - baseline:      uninstrumented (the usual overhead denominator);
   - instrumented:  exhaustive instrumentation, adaptive loop OFF —
                    the paper's "too expensive to execute unnoticed"
                    configuration;
   - adaptive:      the same code with the loop ON: the overhead-budget
                    governor (budget in points, default 10) strips and
                    dilates against the live icycles ratio while the
                    controller inlines hot sampled call edges and
                    block-reorders hot methods.

   Columns: overhead of the instrumented and adaptive runs over the
   baseline, the speedup the loop bought (instrumented / adaptive
   cycles), the achieved instrumentation overhead (the governor's own
   metric, {!Adaptive.Budget.overhead}, to compare against the budget),
   and the number of adaptive decisions taken.

   Not part of `isf table all` — everything there keeps its
   byte-identical loop-off output; this table exists to measure the
   loop. *)

type nums = {
  instr_oh : float;  (* instrumented-over-baseline overhead, % *)
  adaptive_oh : float;  (* adaptive-over-baseline overhead, % *)
  speedup : float;  (* instrumented cycles / adaptive cycles *)
  achieved : float;  (* achieved instrumentation overhead, points *)
  ndecisions : int;
}

type row = { bench : string; budget : float; nums : nums Robust.outcome }

let spec =
  Core.Spec.combine
    [ Core.Spec.call_edge; Core.Spec.field_access; Core.Spec.edge_profile ]

let config ?(budget = 10.0) () =
  {
    Adaptive.Controller.default with
    Adaptive.Controller.budget_pct = Some budget;
  }

let run ?scale ?jobs ?(budget = 10.0) ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let progress =
    Pool.Progress.create ~label:"adaptive" ~total:(List.length benches) ()
  in
  let rows =
    Pool.map ?jobs
      (fun (bench : Workloads.Suite.benchmark) ->
        let r =
          Robust.cell
            ~key:(Printf.sprintf "adaptive/%s" bench.Workloads.Suite.bname)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let transform = Core.Transform.exhaustive spec in
              let instr = Measure.run_transformed ~transform build in
              let a =
                Measure.run_adaptive ~config:(config ~budget ()) ~transform
                  build
              in
              Measure.check_output ~base instr;
              Measure.check_output ~base a.Measure.am;
              {
                instr_oh = Measure.overhead_pct ~base instr;
                adaptive_oh = Measure.overhead_pct ~base a.Measure.am;
                speedup =
                  float_of_int instr.Measure.cycles
                  /. float_of_int a.Measure.am.Measure.cycles;
                achieved = a.Measure.achieved_overhead_pct;
                ndecisions = List.length a.Measure.decisions;
              })
        in
        Pool.Progress.step progress;
        { bench = bench.Workloads.Suite.bname; budget; nums = r })
      benches
  in
  Pool.Progress.finish progress;
  rows

let failures rows = Robust.errors (List.map (fun r -> r.nums) rows)

let geomean = function
  | [] -> nan
  | l ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 l
        /. float_of_int (List.length l))

let summary rows =
  let oks = Robust.oks (List.map (fun r -> r.nums) rows) in
  ( geomean (List.map (fun n -> n.speedup) oks),
    Common.mean (List.map (fun n -> n.achieved) oks) )

let to_string rows =
  let g, a = summary rows in
  let x f = Printf.sprintf "%.2fx" f in
  Text_table.render
    ~header:
      [
        "Benchmark";
        "Instr (%)";
        "Adaptive (%)";
        "Speedup";
        "Achieved (pts)";
        "Decisions";
      ]
    (List.map
       (fun r ->
         [
           r.bench;
           Robust.cell_str Text_table.pct
             (Result.map (fun n -> n.instr_oh) r.nums);
           Robust.cell_str Text_table.pct
             (Result.map (fun n -> n.adaptive_oh) r.nums);
           Robust.cell_str x (Result.map (fun n -> n.speedup) r.nums);
           Robust.cell_str Text_table.pct1
             (Result.map (fun n -> n.achieved) r.nums);
           Robust.cell_str string_of_int
             (Result.map (fun n -> n.ndecisions) r.nums);
         ])
       rows
    @ [
        [
          "Geomean/mean";
          "";
          "";
          x g;
          Text_table.pct1 a;
          "";
        ];
      ])

let print rows =
  (match rows with
  | { budget; _ } :: _ ->
      Printf.printf
        "Adaptive: online recompilation under a %.0f-point overhead budget\n"
        budget
  | [] -> ());
  print_string (to_string rows);
  match failures rows with [] -> () | fs -> print_string (Robust.report fs)
