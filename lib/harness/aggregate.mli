(** Fleet-level profile aggregation: {!Profiles.Merge} run as a
    parallel merge tree on the domain pool, with merged aggregates
    cached in the content-addressed run cache under the sorted list of
    input run digests. *)

val merge_tree : ?jobs:int -> Profiles.Merge.t list -> Profiles.Merge.t
(** Pairwise merge rounds over {!Pool.map}.  The tree shape depends
    only on the list length and results assemble in submission order,
    so the output is identical for every worker count (and, by
    {!Profiles.Merge.merge}'s associativity, equal to the sequential
    left fold). *)

val merged_key : string list -> string
(** Cache key for an aggregate: sorted (not deduplicated) input run
    digests, hashed.  Order-independent; multiplicity-preserving. *)

val merge_cached :
  ?jobs:int -> digests:string list -> (unit -> Profiles.Merge.t list) ->
  Profiles.Merge.t
(** Look up the aggregate under {!merged_key}; on miss, run [compute]
    through {!merge_tree} and publish the canonical rendering to both
    cache tiers. *)

val cached : digests:string list -> bool
(** Available from either tier without computing? *)

val merge_count : unit -> int
(** Pairwise merges performed by this process (monotonic). *)

val input_count : unit -> int
(** Profiles fed into {!merge_tree} by this process (monotonic). *)
