(** Measurement plumbing shared by every experiment driver.

    A [build] is a benchmark compiled through the baseline pipeline
    (optimizer + yieldpoints).  Experiment drivers re-transform its
    post-frontend LIR and run the VM with the instruction cache model on,
    comparing cycle counts against the baseline run of the same build —
    the analog of the paper's "overhead relative to the original,
    non-instrumented code". *)

type build = {
  bench : Workloads.Suite.benchmark;
  scale : int;
  classes : Bytecode.Classfile.program;
  base_funcs : Ir.Lir.func list; (* optimized, yieldpoints inserted *)
}

val prepare : ?scale:int -> Workloads.Suite.benchmark -> build
(** Memoized per (benchmark, scale). *)

val set_engine : [ `Ref | `Fast ] -> unit
(** Select the VM execution engine every subsequent measurement runs on
    (default [`Fast]).  The engines are bit-identical (see {!Vm.Engine}),
    so results are engine-invariant; caches are still keyed by the engine
    so explicit per-call overrides never alias. *)

val current_engine : unit -> [ `Ref | `Fast ]

val set_recording : [ `Slots | `Legacy ] -> unit
(** Select the profile recording path (default [`Slots]): flat-slot
    recording ({!Profiles.Slots} — compile-time event resolution,
    preallocated buffers, end-of-run decode) or the legacy
    event-by-event hook dispatch kept as the differential oracle.  The
    paths are bit-identical — cycles, counters and every decoded profile
    table — so every published number is recording-invariant. *)

val current_recording : unit -> [ `Slots | `Legacy ]

val set_traces : int option -> unit
(** Arm ([Some threshold]) or disarm ([None], the default) the
    trace-recording tier ({!Vm.Trace}) for every subsequent measurement:
    on the Fast engine, a loop whose backedge executes [threshold] times
    is recorded and compiled to a fused superinstruction closure.
    Traced execution is bit-identical on every observable, so results
    are trace-invariant; run keys still carry the setting so trace-on
    and trace-off runs never alias in the cache.  Ignored by [`Ref]. *)

val current_traces : unit -> int option

val set_chaos : int option -> unit
(** Arm ([Some seed]) or disarm ([None], the default) chaos mode: every
    subsequent measurement runs under a deterministic {!Fault.plan}
    derived from the seed and the cell's (benchmark, scale) — and only
    those, so results are independent of worker count and execution
    order.  With chaos off, runs are bit-identical to a build without
    fault injection at all. *)

val set_watchdog : float -> unit
(** Per-measurement wall-clock budget in seconds (default 600).  A cell
    exceeding it aborts with a watchdog {!Vm.Interp.Runtime_error}
    (classified ["timeout"] by {!Robust}).  [<= 0] disables the watchdog
    and the VM never reads the clock. *)

type metrics = {
  cycles : int;
  instructions : int;
  checks : int;
  samples : int;
  entries : int;
  backedge_yps : int;
  instrument_ops : int;
  output : string;
  code_words : int; (* linked code size, in instruction words *)
  collector : Profiles.Collector.t;
  fallbacks : (string * string) list;
      (* methods the engine degraded to the interpreter for (see
         {!Vm.Engine}); [] unless compilation failed or was
         fault-injected to fail *)
}

val run_baseline : ?engine:[ `Ref | `Fast ] -> build -> metrics
(** The denominator of every overhead figure.  [engine] defaults to
    {!current_engine}.  Cached through {!Runcache} under the canonical
    run key ({!Digest.run_config}), so a baseline is measured once per
    content-identical configuration — across every table driver, every
    domain, and (with [--cache]) every process. *)

val run_transformed :
  ?engine:[ `Ref | `Fast ] ->
  ?recording:[ `Slots | `Legacy ] ->
  ?trigger:Core.Sampler.trigger ->
  ?timer_period:int ->
  transform:(Ir.Lir.func -> Core.Transform.result) ->
  build ->
  metrics
(** Applies [transform] to every function of the build (backend passes
    afterwards are not re-run: overhead measurement isolates the
    framework), links, and runs with a fresh collector.  Default trigger
    is [Never] (framework-overhead configurations).  [recording]
    overrides {!current_recording} for this run only — service jobs
    ({!Serve}) carry their own recording path and must not mutate the
    session-wide setting under concurrent siblings.  Cached through
    {!Runcache} keyed by the digest of the transformed code plus the
    full run configuration, so identical cells requested by different
    drivers execute once.  Failing runs (chaos faults, watchdog) are
    never cached. *)

type adaptive_metrics = {
  am : metrics;  (* the run's ordinary metrics (profile decoded at exit) *)
  instr_cycles : int;  (* instrumentation cycles, included in am.cycles *)
  achieved_overhead_pct : float;
      (* {!Adaptive.Budget.overhead} of the whole run — the quantity the
         governor steered against its budget *)
  decisions : string list;  (* controller decision log, oldest first *)
  polls : int;
}

val run_adaptive :
  ?engine:[ `Ref | `Fast ] ->
  ?trigger:Core.Sampler.trigger ->
  ?timer_period:int ->
  ?config:Adaptive.Controller.config ->
  transform:(Ir.Lir.func -> Core.Transform.result) ->
  build ->
  adaptive_metrics
(** Like {!run_transformed}, but with the adaptive loop armed
    ({!Adaptive.Controller}): the run records through flat slots
    (regardless of {!set_recording} — the controller reads the live
    profile from the recorder), polls the controller at safepoints, and
    hot-swaps recompiled method versions mid-run.  Default [trigger] is
    [Counter 64] (the loop needs samples to steer by).  Cached like
    every other measurement, keyed additionally by the rendered
    controller config. *)

val adaptive_wall :
  ?engine:[ `Ref | `Fast ] ->
  ?trigger:Core.Sampler.trigger ->
  ?timer_period:int ->
  ?config:Adaptive.Controller.config ->
  transform:(Ir.Lir.func -> Core.Transform.result) ->
  build ->
  float
(** One {e uncached} adaptive execution, returning its wall-clock
    seconds (link + run).  {!run_adaptive} flows through the run cache,
    so timing it measures the cache; bench drivers that want honest
    wall-clock numbers time this instead.  Simulated observables are
    identical to {!run_adaptive} with the same configuration. *)

val overhead_pct : base:metrics -> metrics -> float
(** Percent overhead in cycles relative to [base]. *)

val check_output : base:metrics -> metrics -> unit
(** Raises [Failure] when the transformed run printed something different —
    every experiment doubles as a semantics test. *)

val compile_stats :
  transform:(Ir.Lir.func -> Core.Transform.result) ->
  build ->
  Opt.Pipeline.compile_stats * Opt.Pipeline.compile_stats
(** (baseline, transformed) wall-clock pipeline timings, median of 5. *)
