(* Table 2: Full-Duplication framework overhead — no samples taken, so
   everything measured here is the cost of the framework itself: the
   counter-based checks on entries/backedges plus indirect effects of
   doubling the code (i-cache).

   Paper: total averages 4.9%; compress/mpegaudio are backedge-dominated,
   javac/opt-compiler entry-dominated; space roughly doubles; compile
   time increases 34% on average (the doubling happens late, so only
   instruction selection / scheduling / register allocation see 2x
   code). *)

type meas = {
  total : float; (* full framework (duplication + all checks), no samples *)
  backedge_only : float; (* checks on backedges only, no duplication *)
  entry_only : float; (* checks on entries only, no duplication *)
  space_increase_kb : float;
  compile_increase : float; (* percent *)
}

type row = { bench : string; meas : meas Robust.outcome }

(* Field of a row for shape checks and downstream tables; NaN when the
   row's cell failed, which poisons any comparison into a shape FAIL
   rather than silently passing. *)
let get f r = match r.meas with Ok m -> f m | Error _ -> Float.nan

let paper =
  [
    ("compress", 8.7, 8.3, 0.9, 106.0, 37.0);
    ("jess", 3.3, 2.9, 0.1, 244.0, 37.0);
    ("db", 2.1, 1.8, 0.2, 123.0, 34.0);
    ("javac", 2.7, 0.2, 1.4, 442.0, 38.0);
    ("mpegaudio", 9.9, 9.0, 0.8, 156.0, 31.0);
    ("mtrt", 3.4, 2.0, 2.4, 163.0, 31.0);
    ("jack", 8.4, 6.6, 1.2, 258.0, 18.0);
    ("opt_compiler", 6.2, 2.1, 4.4, 976.0, 48.0);
    ("pbob", 3.8, 2.5, 0.9, 306.0, 37.0);
    ("volano", 1.4, 0.3, 1.0, 75.0, 32.0);
  ]

let words_to_kb w = float_of_int (w * 4) /. 1024.0

(* Pure-data description of this table's measurements for Schedule;
   compile_stats is wall-clock (never cached) and so never requested. *)
let requests ?scale ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  List.concat_map
    (fun (bench : Workloads.Suite.benchmark) ->
      let b = bench.Workloads.Suite.bname in
      [
        Schedule.baseline ?scale b;
        Schedule.instrumented ?scale ~variant:Schedule.Full_dup
          ~specs:[ "call-edge"; "field-access" ] b;
        Schedule.instrumented ?scale
          ~variant:(Schedule.Checks_only { entries = false; backedges = true })
          ~specs:[] b;
        Schedule.instrumented ?scale
          ~variant:(Schedule.Checks_only { entries = true; backedges = false })
          ~specs:[] b;
      ])
    benches

let run ?scale ?jobs ?benches ?(measure_compile = true) () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let progress =
    Pool.Progress.create ~label:"table2" ~total:(List.length benches) ()
  in
  let rows =
    Pool.map ?jobs
      (fun bench ->
        let meas =
          Robust.cell
            ~key:(Printf.sprintf "table2/%s" bench.Workloads.Suite.bname)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let full =
                Measure.run_transformed
                  ~transform:(Core.Transform.full_dup Common.both_specs)
                  build
              in
              Measure.check_output ~base full;
              let be =
                Measure.run_transformed
                  ~transform:
                    (Core.Transform.checks_only ~entries:false ~backedges:true)
                  build
              in
              let en =
                Measure.run_transformed
                  ~transform:
                    (Core.Transform.checks_only ~entries:true ~backedges:false)
                  build
              in
              let compile_increase =
                (* the only wall-clock (nondeterministic) measurement
                   anywhere; skipped (NaN, printed "-") in
                   fully-deterministic mode *)
                if not measure_compile then Float.nan
                else begin
                  let base_compile, instr_compile =
                    Measure.compile_stats
                      ~transform:(Core.Transform.full_dup Common.both_specs)
                      build
                  in
                  let tot (s : Opt.Pipeline.compile_stats) =
                    s.Opt.Pipeline.seconds_front
                    +. s.Opt.Pipeline.seconds_transform
                    +. s.Opt.Pipeline.seconds_back
                  in
                  if tot base_compile <= 0.0 then 0.0
                  else
                    100.0
                    *. (tot instr_compile -. tot base_compile)
                    /. tot base_compile
                end
              in
              {
                total = Measure.overhead_pct ~base full;
                backedge_only = Measure.overhead_pct ~base be;
                entry_only = Measure.overhead_pct ~base en;
                space_increase_kb =
                  words_to_kb
                    (full.Measure.code_words - base.Measure.code_words);
                compile_increase;
              })
        in
        Pool.Progress.step progress;
        { bench = bench.Workloads.Suite.bname; meas })
      benches
  in
  Pool.Progress.finish progress;
  rows

let failures rows = Robust.errors (List.map (fun r -> r.meas) rows)

let average rows =
  let ms = Robust.oks (List.map (fun r -> r.meas) rows) in
  ( Common.mean (List.map (fun m -> m.total) ms),
    Common.mean (List.map (fun m -> m.backedge_only) ms),
    Common.mean (List.map (fun m -> m.entry_only) ms),
    Common.mean (List.map (fun m -> m.space_increase_kb) ms),
    Common.mean (List.map (fun m -> m.compile_increase) ms) )

let opt_pct v = if Float.is_nan v then "-" else Text_table.pct v

let to_string rows =
  let t, b, e, s, c = average rows in
  Text_table.render
    ~header:
      [
        "Benchmark";
        "Total (%)";
        "Backedges (%)";
        "Entries (%)";
        "Space (KB)";
        "Compile (+%)";
      ]
    (List.map
       (fun r ->
         r.bench
         ::
         (match r.meas with
         | Ok m ->
             [
               Text_table.pct m.total;
               Text_table.pct m.backedge_only;
               Text_table.pct m.entry_only;
               Text_table.pct m.space_increase_kb;
               opt_pct m.compile_increase;
             ]
         | Error _ -> [ "ERR"; "ERR"; "ERR"; "ERR"; "ERR" ]))
       rows
    @ [
        [
          "Average";
          Text_table.pct t;
          Text_table.pct b;
          Text_table.pct e;
          Text_table.pct s;
          opt_pct c;
        ];
      ])

let print rows =
  print_string
    "Table 2: Full-Duplication framework overhead (no samples taken)\n";
  print_string (to_string rows);
  match failures rows with
  | [] -> ()
  | fs -> print_string (Robust.report fs)
