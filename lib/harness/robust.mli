(** Crash tolerance for experiment cells.

    Each (benchmark, configuration) measurement runs inside {!cell},
    which converts exceptions into structured {!failure} values — a
    failing cell renders as [ERR] and lands in the error report instead
    of tearing down the whole table — retries transient failures with
    bounded exponential backoff, and, when a checkpoint file is armed
    via {!set_checkpoint}, persists every completed cell so a killed run
    resumes exactly where it stopped (ISSUE 3).

    The checkpoint file is an append-only sequence of marshaled
    [(key, payload)] records: a kill can at worst truncate the record
    being written, and the loader tolerates that truncated tail, so all
    fully completed cells survive any crash.  Only successful cells are
    persisted; failed cells are re-attempted on resume. *)

type failure = {
  key : string;  (** the cell's stable identity, e.g. ["table1/raytrace/call-edge"] *)
  classification : string;
      (** ["fault"] (injected), ["fuel"], ["timeout"] (watchdog),
          ["transient"]-exhausted stays its final class, ["bug"]
          (anything else), ["dependency"] (an upstream cell failed) *)
  attempts : int;  (** how many times the cell body ran *)
  message : string;
  backtrace : string;  (** raw backtrace of the last attempt; may be empty *)
}

type 'a outcome = ('a, failure) result

exception Transient of string
(** Raise from a cell body to request a retry (classified transient,
    like [Sys_error] and [Out_of_memory]). *)

val context : unit -> string
(** Key of the cell currently executing on this domain ([""] outside any
    cell).  {!Measure.execute} uses it to label VM error messages with
    the benchmark/config they belong to. *)

val classify : exn -> string
(** The [classification] {!cell} would assign this exception. *)

val set_checkpoint : ?meta:string -> string option -> unit
(** Arm ([Some path]) or disarm ([None]) the checkpoint store.  Arming
    loads every complete record already in the file (tolerating a
    truncated tail) and appends subsequent completed cells to it.
    [meta] fingerprints the run configuration; arming a file written
    under a different [meta] raises [Failure] rather than resuming into
    inconsistent results. *)

val checkpointed_cells : unit -> int
(** Number of cells the armed checkpoint resumed from disk (0 when no
    checkpoint is armed or the file was empty).  {!Experiments} and
    {!Ablation} skip the scheduler's prewarm when this is non-zero:
    re-measuring cells the resume already finished would defeat it. *)

val cell : ?retries:int -> key:string -> (unit -> 'a) -> 'a outcome
(** Run one experiment cell.  If the checkpoint holds [key], the cached
    payload is returned without running [f].  Otherwise [f] runs with
    {!context} set to [key]; transient failures are retried up to
    [retries] (default 2) more times with exponential backoff (50ms,
    100ms, ...); any final exception becomes [Error failure].  A
    successful value is marshaled into the checkpoint, so it must be
    closure-free (floats, strings, lists/tuples/records of those). *)

val oks : 'a outcome list -> 'a list
val errors : 'a outcome list -> failure list

val get_or : default:'a -> 'a outcome -> 'a

val cell_str : ('a -> string) -> 'a outcome -> string
(** Render a table cell: the value through [f], or ["ERR"]. *)

val report : failure list -> string
(** The error-report appendix: one block per failure, sorted by key.
    Backtraces are rendered only for ["bug"] failures — an expected,
    classified failure already carries its deterministic context in the
    message, while its backtrace depends on which awaiter of a memoized
    cell re-raised first, which would make the report nondeterministic
    under [-j] and across configurations. *)
