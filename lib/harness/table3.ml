(* Table 3: No-Duplication checking overhead — each instrumentation
   operation guarded by its own check, no samples taken.

   Paper: call-edge averages 1.3% (checks on method entries only — cheap,
   No-Duplication wins there); field-access averages 51.1%, barely less
   than exhaustive instrumentation, because a check costs about as much
   as the field-access op it guards — "making the insertion of checks
   completely ineffective". *)

type row = {
  bench : string;
  call_edge : float Robust.outcome;
  field_access : float Robust.outcome;
}

let paper =
  [
    ("compress", 0.9, 151.5);
    ("jess", 0.1, 36.6);
    ("db", 0.2, 6.9);
    ("javac", 1.4, 21.3);
    ("mpegaudio", 0.8, 100.7);
    ("mtrt", 2.4, 49.1);
    ("jack", 1.2, 72.1);
    ("opt_compiler", 4.4, 41.1);
    ("pbob", 2.3, 21.3);
    ("volano", 1.0, 10.4);
  ]

(* Pure-data description of this table's measurements for Schedule. *)
let requests ?scale ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  List.concat_map
    (fun (bench : Workloads.Suite.benchmark) ->
      List.concat_map
        (fun slug ->
          [
            Schedule.baseline ?scale bench.Workloads.Suite.bname;
            Schedule.instrumented ?scale ~variant:Schedule.No_dup
              ~specs:[ slug ] bench.Workloads.Suite.bname;
          ])
        [ "call-edge"; "field-access" ])
    benches

let run ?scale ?jobs ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let cells =
    List.concat_map
      (fun bench ->
        [
          (bench, "call-edge", Core.Spec.call_edge);
          (bench, "field-access", Core.Spec.field_access);
        ])
      benches
  in
  let progress =
    Pool.Progress.create ~label:"table3" ~total:(List.length cells) ()
  in
  let pcts =
    Pool.map ?jobs
      (fun (bench, slug, spec) ->
        let r =
          Robust.cell
            ~key:
              (Printf.sprintf "table3/%s/%s" bench.Workloads.Suite.bname slug)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let m =
                Measure.run_transformed ~transform:(Core.Transform.no_dup spec)
                  build
              in
              Measure.check_output ~base m;
              Measure.overhead_pct ~base m)
        in
        Pool.Progress.step progress;
        r)
      cells
  in
  Pool.Progress.finish progress;
  let rec rows benches pcts =
    match (benches, pcts) with
    | [], [] -> []
    | bench :: bt, ce :: fa :: pt ->
        {
          bench = bench.Workloads.Suite.bname;
          call_edge = ce;
          field_access = fa;
        }
        :: rows bt pt
    | _ -> assert false
  in
  rows benches pcts

let failures rows =
  Robust.errors
    (List.concat_map (fun r -> [ r.call_edge; r.field_access ]) rows)

let average rows =
  ( Common.mean (Robust.oks (List.map (fun r -> r.call_edge) rows)),
    Common.mean (Robust.oks (List.map (fun r -> r.field_access) rows)) )

let to_string rows =
  let avg_ce, avg_fa = average rows in
  Text_table.render
    ~header:[ "Benchmark"; "Call-edge (%)"; "Field-access (%)" ]
    (List.map
       (fun r ->
         [
           r.bench;
           Robust.cell_str Text_table.pct r.call_edge;
           Robust.cell_str Text_table.pct r.field_access;
         ])
       rows
    @ [ [ "Average"; Text_table.pct avg_ce; Text_table.pct avg_fa ] ])

let print rows =
  print_string
    "Table 3: No-Duplication checking overhead (no samples taken)\n";
  print_string (to_string rows);
  match failures rows with
  | [] -> ()
  | fs -> print_string (Robust.report fs)
