(* Table 1: time overhead of exhaustive instrumentation (no framework),
   call-edge and field-access, per benchmark.

   Paper: call-edge averages 88.3%, field-access 60.4%; db is the lowest
   row on both, compress the field-access-heaviest, opt-compiler the
   call-heaviest.  "Clearly, these instrumentations as implemented here
   are too expensive to execute unnoticed at runtime." *)

type row = {
  bench : string;
  call_edge : float Robust.outcome;
  field_access : float Robust.outcome;
}

let paper =
  [
    ("compress", 72.4, 204.8);
    ("jess", 133.2, 60.9);
    ("db", 8.3, 7.7);
    ("javac", 75.7, 14.2);
    ("mpegaudio", 129.6, 99.8);
    ("mtrt", 122.2, 46.0);
    ("jack", 34.3, 108.7);
    ("opt_compiler", 189.0, 34.9);
    ("pbob", 72.3, 20.2);
    ("volano", 46.6, 7.6);
  ]

(* The measurements the cells below will ask Measure for, as pure data
   for Schedule's global deduplication; mirrors [run] exactly. *)
let requests ?scale ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  List.concat_map
    (fun (bench : Workloads.Suite.benchmark) ->
      List.concat_map
        (fun slug ->
          [
            Schedule.baseline ?scale bench.Workloads.Suite.bname;
            Schedule.instrumented ?scale ~variant:Schedule.Exhaustive
              ~specs:[ slug ] bench.Workloads.Suite.bname;
          ])
        [ "call-edge"; "field-access" ])
    benches

let run ?scale ?jobs ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  (* one cell per (benchmark, instrumentation) *)
  let cells =
    List.concat_map
      (fun bench ->
        [
          (bench, "call-edge", Core.Spec.call_edge);
          (bench, "field-access", Core.Spec.field_access);
        ])
      benches
  in
  let progress =
    Pool.Progress.create ~label:"table1" ~total:(List.length cells) ()
  in
  let pcts =
    Pool.map ?jobs
      (fun (bench, slug, spec) ->
        let r =
          Robust.cell
            ~key:
              (Printf.sprintf "table1/%s/%s" bench.Workloads.Suite.bname slug)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let m =
                Measure.run_transformed
                  ~transform:(Core.Transform.exhaustive spec) build
              in
              Measure.check_output ~base m;
              Measure.overhead_pct ~base m)
        in
        Pool.Progress.step progress;
        r)
      cells
  in
  Pool.Progress.finish progress;
  let rec rows benches pcts =
    match (benches, pcts) with
    | [], [] -> []
    | bench :: bt, ce :: fa :: pt ->
        {
          bench = bench.Workloads.Suite.bname;
          call_edge = ce;
          field_access = fa;
        }
        :: rows bt pt
    | _ -> assert false
  in
  rows benches pcts

let failures rows =
  Robust.errors
    (List.concat_map (fun r -> [ r.call_edge; r.field_access ]) rows)

let average rows =
  ( Common.mean (Robust.oks (List.map (fun r -> r.call_edge) rows)),
    Common.mean (Robust.oks (List.map (fun r -> r.field_access) rows)) )

let to_string rows =
  let avg_ce, avg_fa = average rows in
  Text_table.render
    ~header:[ "Benchmark"; "Call-edge (%)"; "Field-access (%)" ]
    (List.map
       (fun r ->
         [
           r.bench;
           Robust.cell_str Text_table.pct r.call_edge;
           Robust.cell_str Text_table.pct r.field_access;
         ])
       rows
    @ [ [ "Average"; Text_table.pct avg_ce; Text_table.pct avg_fa ] ])

let print rows =
  print_string
    "Table 1: exhaustive instrumentation overhead (no framework)\n";
  print_string (to_string rows);
  match failures rows with
  | [] -> ()
  | fs -> print_string (Robust.report fs)
