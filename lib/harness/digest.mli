(** Canonical, content-addressed digests for run configurations.

    Every measurement the harness performs is fully determined by pure
    data: the linked program (itself determined by the benchmark, the
    scale and the instrumentation transform applied to its functions),
    the execution engine, the recording path, the sampling trigger, the
    cost table and the fault plan.  This module renders each of those to
    a canonical string and combines them into a single multi-line run
    key.  The full key — not its hash — is what the in-memory cache is
    indexed by, so in-process lookups can never collide; the MD5 of the
    key only names the on-disk entry file, and {!Runcache} stores the
    full key inside the entry and verifies it on every read (a
    parse-clean entry whose embedded key differs is reported loudly as
    a collision rather than silently served).

    Deliberately excluded from the key: the watchdog deadline and the
    fuel bound.  Both only affect {e failing} runs, and failures are
    never cached — a cached entry always holds a successful
    measurement.  Deliberately included even though today's code would
    tolerate merging them: the engine and the recording path, so the
    differential tests (Ref vs Fast, Legacy vs Slots) can never be fed
    each other's cached results. *)

val hex : string -> string
(** MD5 of a string, as 32 lowercase hex characters. *)

val funcs : Ir.Lir.func list -> string
(** Digest of a list of LIR functions in order, over their canonical
    pretty-printed form ({!Ir.Pp.func_to_string}).  The printer covers
    every semantically relevant field (including instrumentation hooks
    and payloads) and none of the VM's mutable scratch state, so two
    programs digest equal iff they execute identically. *)

val costs : Vm.Costs.t -> string
(** Canonical [field=value] rendering of the whole cost table. *)

val trigger : Core.Sampler.trigger -> string
(** Canonical rendering, e.g. ["counter:1000:0"], ["timer-bit"]. *)

val fault_plan : Fault.plan -> string
(** ["none"] for the empty plan, otherwise a digest over the plan's
    canonical serialization (seed, every event, the compile-failure
    set) — chaos runs therefore never alias clean runs, and two chaos
    runs alias only when their whole fault schedule is identical. *)

val run_config :
  ?adaptive:string ->
  ?traces:string ->
  kind:string ->
  bench:string ->
  scale:int ->
  funcs_digest:string ->
  engine:string ->
  recording:string ->
  trigger:string ->
  timer_period:int option ->
  costs:string ->
  faults:string ->
  unit ->
  string
(** The full canonical run key: one [field=value] line per component,
    prefixed with a format-version line so a change to the key schema
    can never be confused with an older one.  [adaptive] (the rendered
    controller configuration) is appended as an extra line only when
    the adaptive loop is on — keys of non-adaptive runs are
    byte-identical to what they were before the adaptive tier existed,
    so warm on-disk caches stay valid.  [traces] (the rendered trace
    tier configuration, e.g. ["threshold:64"]) follows the same
    only-when-armed convention. *)
