(* Two-tier content-addressed run cache.  See runcache.mli for the
   contract; the design mirrors robust.ml's checkpoints where the two
   overlap (Marshal payloads, tolerance of torn tails, loud refusal of
   a store written by a different configuration). *)

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  corrupt : int;
}

let version = Printf.sprintf "isf-runcache 1 ocaml-%s" Sys.ocaml_version
let magic = "ISF-RUNCACHE-ENTRY 1\n"
let version_file = "CACHE_VERSION"

(* configuration + stats, shared across domains *)
let lock = Mutex.create ()
let dir_ref = ref None
let zero = { mem_hits = 0; disk_hits = 0; misses = 0; stores = 0; corrupt = 0 }
let stats_ref = ref zero
let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
let dir () = locked (fun () -> !dir_ref)
let stats () = locked (fun () -> !stats_ref)

let bump which =
  locked (fun () ->
      let s = !stats_ref in
      stats_ref :=
        (match which with
        | `Mem -> { s with mem_hits = s.mem_hits + 1 }
        | `Disk -> { s with disk_hits = s.disk_hits + 1 }
        | `Miss -> { s with misses = s.misses + 1 }
        | `Store -> { s with stores = s.stores + 1 }
        | `Corrupt -> { s with corrupt = s.corrupt + 1 }))

let corruptions () = (stats ()).corrupt

(* registered in-memory caches, cleared together by [reset_memory] *)
let resets : (unit -> unit) list ref = ref []
let on_reset f = locked (fun () -> resets := f :: !resets)

let reset_memory () =
  let fs = locked (fun () -> !resets) in
  List.iter (fun f -> f ()) fs;
  locked (fun () -> stats_ref := zero)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in_noerr ic;
  s

(* All disk writes go through temp-file + atomic rename so a reader (or
   a concurrent writer racing on the same key) never observes a partial
   file — last rename wins, and both writers wrote equivalent bytes. *)
let write_atomic ~dir path s =
  match Filename.temp_file ~temp_dir:dir "isf-" ".tmp" with
  | exception Sys_error _ -> false
  | tmp -> (
      try
        let oc = open_out_bin tmp in
        output_string oc s;
        close_out oc;
        Sys.rename tmp path;
        true
      with Sys_error _ ->
        (try Sys.remove tmp with Sys_error _ -> ());
        false)

let trace_stats_registered = ref false

(* A writer that dies between [Filename.temp_file] and [Sys.rename]
   leaves an orphan isf-*.tmp behind forever.  Sweep them on open, but
   only once they are old enough that no live process can still be
   mid-write — another daemon sharing the directory may have created a
   tmp file moments ago and is about to rename it. *)
let stale_tmp_age = 900.0 (* seconds *)

let has_suffix suf s =
  String.length s >= String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

let has_prefix pre s =
  String.length s >= String.length pre
  && String.equal (String.sub s 0 (String.length pre)) pre

let sweep_stale_tmps d =
  match Sys.readdir d with
  | exception Sys_error _ -> 0
  | names ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun n name ->
          if has_prefix "isf-" name && has_suffix ".tmp" name then begin
            let path = Filename.concat d name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> n
            | st ->
                if now -. st.Unix.st_mtime > stale_tmp_age then (
                  try
                    Sys.remove path;
                    n + 1
                  with Sys_error _ -> n)
                else n
          end
          else n)
        0 names

let set_dir d =
  (match d with
  | None -> ()
  | Some d ->
      mkdir_p d;
      let swept = sweep_stale_tmps d in
      if swept > 0 && !Pool.trace then
        Printf.eprintf "[runcache] swept %d stale tmp file(s) in %s\n%!" swept d;
      let vpath = Filename.concat d version_file in
      if Sys.file_exists vpath then begin
        let found = String.trim (read_file vpath) in
        if not (String.equal found version) then
          failwith
            (Printf.sprintf
               "run cache %s was written by an incompatible version (%S, this \
                build is %S); delete it or point --cache elsewhere"
               d found version)
      end
      else if not (write_atomic ~dir:d vpath (version ^ "\n")) then
        failwith (Printf.sprintf "run cache %s is not writable" d));
  locked (fun () ->
      dir_ref := d;
      if d <> None && not !trace_stats_registered then begin
        trace_stats_registered := true;
        at_exit (fun () ->
            if !Pool.trace then
              let s = stats () in
              Printf.eprintf
                "[runcache] mem-hits=%d disk-hits=%d misses=%d stores=%d \
                 corrupt=%d\n\
                 %!"
                s.mem_hits s.disk_hits s.misses s.stores s.corrupt)
      end)

let entry_path ~dir ~key = Filename.concat dir (Digest.hex key ^ ".cell")

(* Read one entry file.  Anything short of a fully verified entry —
   absent, foreign magic, torn Marshal, payload/digest mismatch — is a
   miss and will be recomputed and overwritten; everything but plain
   absence additionally counts as a corruption event, which long-running
   services ({!Serve.Daemon}) watch to circuit-break a rotting disk
   tier.  The single loud case: a verified entry embedding a different
   key than the one that hashed to this filename is an MD5 collision,
   which must never be served. *)
let read_raw ~key path =
  match open_in_bin path with
  | exception Sys_error _ -> `Miss
  | ic ->
      let r =
        try
          let m = really_input_string ic (String.length magic) in
          if not (String.equal m magic) then `Corrupt
          else
            let k, dg, payload =
              (Marshal.from_channel ic : string * string * string)
            in
            if not (String.equal (Stdlib.Digest.string payload) dg) then
              `Corrupt
            else if String.equal k key then `Hit payload
            else `Collision k
        with End_of_file | Failure _ -> `Corrupt
      in
      close_in_noerr ic;
      (match r with
      | `Collision k ->
          bump `Corrupt;
          failwith
            (Printf.sprintf
               "run cache entry %s: digest collision (entry holds a different \
                run key %s)"
               path
               (String.escaped (String.sub k 0 (min 80 (String.length k)))))
      | `Corrupt ->
          bump `Corrupt;
          `Miss
      | (`Miss | `Hit _) as r -> r)

let write_raw ~dir ~key payload =
  let b = Buffer.create (String.length payload + 256) in
  Buffer.add_string b magic;
  Buffer.add_string b
    (Marshal.to_string (key, Stdlib.Digest.string payload, payload) []);
  write_atomic ~dir (entry_path ~dir ~key) (Buffer.contents b)

module Make (V : sig
  type t
end) =
struct
  let memo : (string, V.t) Sync.Memo.t = Sync.Memo.create ~size:64 ()
  let () = on_reset (fun () -> Sync.Memo.clear memo)

  let disk_load ~key =
    match dir () with
    | None -> None
    | Some d -> (
        match read_raw ~key (entry_path ~dir:d ~key) with
        | `Miss -> None
        | `Hit payload -> (
            try Some (Marshal.from_string payload 0 : V.t)
            with Failure _ -> None))

  let disk_save ~key v =
    match dir () with
    | None -> false
    | Some d -> write_raw ~dir:d ~key (Marshal.to_string v [])

  let find ~key f =
    match Sync.Memo.find_opt memo key with
    | Some v ->
        bump `Mem;
        v
    | None ->
        Sync.Memo.get memo key (fun () ->
            match disk_load ~key with
            | Some v ->
                bump `Disk;
                v
            | None ->
                let v = f () in
                bump `Miss;
                if disk_save ~key v then bump `Store;
                v)

  let cached ~key =
    match Sync.Memo.find_opt memo key with
    | Some _ -> true
    | None -> disk_load ~key <> None
end
