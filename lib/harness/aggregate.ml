(* Fleet-level profile aggregation: a parallel merge tree over the
   domain pool plus merge-aware caching in the content-addressed run
   cache.

   The tree shape is a function of the input list length alone
   (pairwise rounds, left to right), and Pool.map assembles results in
   submission index order, so the aggregate is identical whatever
   worker count ran it — Profiles.Merge's associativity does the rest.

   Cached aggregates are keyed by the sorted list of input run digests:
   sorting makes the key independent of shard arrival order, and the
   full multiset (not a deduplicated set) is kept so a job that
   legitimately appears twice in a fleet keeps double weight. *)

module Merge = Profiles.Merge

(* observability for the daemon's STATS line *)
let merges = Atomic.make 0
let inputs = Atomic.make 0
let merge_count () = Atomic.get merges
let input_count () = Atomic.get inputs

let merge_pair a b =
  Atomic.incr merges;
  Merge.merge a b

let merge_tree ?jobs profiles =
  Atomic.set inputs (Atomic.get inputs + List.length profiles);
  let rec round = function
    | [] -> Merge.empty
    | [ x ] -> x
    | l ->
        let rec pair = function
          | a :: b :: rest -> (a, Some b) :: pair rest
          | [ a ] -> [ (a, None) ]
          | [] -> []
        in
        round
          (Pool.map ?jobs
             (fun (a, b) ->
               match b with Some b -> merge_pair a b | None -> a)
             (pair l))
  in
  round profiles

module Cache = Runcache.Make (struct
  type t = string (* canonical rendering of the aggregate *)
end)

let merged_key digests =
  let sorted = List.sort compare digests in
  "merged-profile:" ^ Stdlib.Digest.to_hex (Stdlib.Digest.string (String.concat "\n" sorted))

let merge_cached ?jobs ~digests compute =
  let rendered =
    Cache.find ~key:(merged_key digests) (fun () ->
        Merge.render (merge_tree ?jobs (compute ())))
  in
  Merge.parse rendered

let cached ~digests = Cache.cached ~key:(merged_key digests)
