(* Canonical digests for run configurations.  See digest.mli for the
   inclusion/exclusion rationale; Stdlib.Digest (MD5) is only used to
   compress canonical strings, never as the equality oracle — the full
   key travels with every cache entry and is compared verbatim. *)

let hex s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

let funcs fs =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string b (Ir.Pp.func_to_string f);
      (* an unambiguous separator so concatenations can't alias *)
      Buffer.add_char b '\000')
    fs;
  Printf.sprintf "%d:%s" (List.length fs) (hex (Buffer.contents b))

let costs (c : Vm.Costs.t) =
  Printf.sprintf
    "alu=%d move=%d mem=%d branch=%d switch=%d call_base=%d call_per_arg=%d \
     ret=%d alloc_base=%d alloc_per_slot=%d yieldpoint=%d check=%d \
     intrinsic=%d icache_miss=%d sample_jump=%d"
    c.Vm.Costs.alu c.move c.mem c.branch c.switch c.call_base c.call_per_arg
    c.ret c.alloc_base c.alloc_per_slot c.yieldpoint c.check c.intrinsic
    c.icache_miss c.sample_jump

let trigger = function
  | Core.Sampler.Counter { interval; jitter } ->
      Printf.sprintf "counter:%d:%d" interval jitter
  | Core.Sampler.Counter_per_thread { interval } ->
      Printf.sprintf "counter-per-thread:%d" interval
  | Core.Sampler.Timer_bit -> "timer-bit"
  | Core.Sampler.Always -> "always"
  | Core.Sampler.Never -> "never"

let fault_action = function
  | Fault.Trap -> "trap"
  | Fault.Spurious_timer -> "spurious-timer"
  | Fault.Corrupt_sample_counter d ->
      Printf.sprintf "corrupt-sample-counter:%d" d
  | Fault.Flush_icache -> "flush-icache"
  | Fault.Flush_dcache -> "flush-dcache"

let fault_plan (p : Fault.plan) =
  if Fault.is_none p then "none"
  else
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "seed=%d\n" p.Fault.seed);
    Array.iter
      (fun (e : Fault.event) ->
        Buffer.add_string b
          (Printf.sprintf "event=%d:%s\n" e.Fault.at_cycle
             (fault_action e.Fault.action)))
      p.Fault.events;
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "compile-failure=%s\n" m))
      p.Fault.compile_failures;
    Buffer.add_string b
      (Printf.sprintf "compile-fail-pct=%d\n" p.Fault.compile_fail_pct);
    hex (Buffer.contents b)

let run_config ?adaptive ?traces ~kind ~bench ~scale ~funcs_digest ~engine
    ~recording ~trigger ~timer_period ~costs ~faults () =
  String.concat "\n"
    ([
       "isf-run 1";
       "kind=" ^ kind;
       "bench=" ^ bench;
       Printf.sprintf "scale=%d" scale;
       "funcs=" ^ funcs_digest;
       "engine=" ^ engine;
       "recording=" ^ recording;
       "trigger=" ^ trigger;
       (match timer_period with
       | None -> "timer-period=default"
       | Some p -> Printf.sprintf "timer-period=%d" p);
       "costs=" ^ costs;
       "faults=" ^ faults;
     ]
    (* appended only when the adaptive loop is on, so every legacy key
       stays byte-identical and warm caches survive this addition *)
    @ (match adaptive with None -> [] | Some a -> [ "adaptive=" ^ a ])
    (* likewise appended only when the trace tier is armed: tier-off
       keys stay byte-identical to pre-trace keys *)
    @ match traces with None -> [] | Some t -> [ "traces=" ^ t ])
