(* Run-everything driver used by bin/isf and bench/main. *)

type which = T1 | T2 | T3 | T4 | T5 | F7 | F8 | Adaptive

(* [Adaptive] is deliberately NOT in [all]: `table all` must stay
   byte-identical to its pre-adaptive output (the loop-off guarantee),
   and the adaptive experiment is opt-in (`table adaptive`). *)
let all = [ T1; T2; T3; T4; T5; F7; F8 ]

let name = function
  | T1 -> "table1"
  | T2 -> "table2"
  | T3 -> "table3"
  | T4 -> "table4"
  | T5 -> "table5"
  | F7 -> "figure7"
  | F8 -> "figure8"
  | Adaptive -> "adaptive"

let of_name = function
  | "table1" | "1" -> T1
  | "table2" | "2" -> T2
  | "table3" | "3" -> T3
  | "table4" | "4" -> T4
  | "table5" | "5" -> T5
  | "figure7" | "7" -> F7
  | "figure8" | "8" -> F8
  | "adaptive" -> Adaptive
  | s -> invalid_arg ("unknown experiment: " ^ s)

(* Print one experiment; the returned failures are the cells that
   rendered ERR (empty on a healthy run), so callers can exit non-zero
   without parsing output. *)
let run_one ?scale ?jobs ?measure_compile ?budget which =
  match which with
  | T1 ->
      let r = Table1.run ?scale ?jobs () in
      Table1.print r;
      Table1.failures r
  | T2 ->
      let r = Table2.run ?scale ?jobs ?measure_compile () in
      Table2.print r;
      Table2.failures r
  | T3 ->
      let r = Table3.run ?scale ?jobs () in
      Table3.print r;
      Table3.failures r
  | T4 ->
      let r = Table4.run ?scale ?jobs () in
      Table4.print r;
      r.Table4.failures
  | T5 ->
      (* more samples are needed for stable trigger-accuracy comparisons *)
      let scale = match scale with None -> Some 4 | s -> s in
      let r = Table5.run ?scale ?jobs () in
      Table5.print r;
      Table5.failures r
  | F7 ->
      (* scale/interval chosen so the sample count matches the paper's
         run length (~10^3-10^4 samples); see EXPERIMENTS.md *)
      let scale = match scale with None -> Some 4 | s -> s in
      let d = Figure7.run ?scale ?jobs ~interval:100 () in
      Figure7.print d;
      d.Figure7.failures
  | F8 ->
      let d = Figure8.run ?scale ?jobs () in
      Figure8.print d;
      d.Figure8.failures
  | Adaptive ->
      let r = Table_adaptive.run ?scale ?jobs ?budget () in
      Table_adaptive.print r;
      Table_adaptive.failures r

(* Every measurement the drivers above will request, as pure data for
   the global scheduler (Schedule).  T5/F7 get the same scale-4 /
   interval-100 treatment [run_one] applies. *)
let requests ?scale () =
  let scale45 = match scale with None -> Some 4 | s -> s in
  Table1.requests ?scale ()
  @ Table2.requests ?scale ()
  @ Table3.requests ?scale ()
  @ Table4.requests ?scale ()
  @ Table5.requests ?scale:scale45 ()
  @ Figure7.requests ?scale:scale45 ~interval:100 ()
  @ Figure8.requests ?scale ()

(* Deduplicate and execute the full cell set up front; the drivers then
   find every measurement already published in the run cache, so their
   output is byte-identical to an unscheduled run.  Skipped when a
   checkpoint resume already holds finished cells — recomputing them
   would defeat the resume. *)
let prewarm ?scale ?jobs () =
  if Robust.checkpointed_cells () = 0 then
    Schedule.prewarm ?jobs (requests ?scale ())

let run_all ?scale ?jobs ?measure_compile () =
  prewarm ?scale ?jobs ();
  List.concat_map
    (fun w ->
      let fails = run_one ?scale ?jobs ?measure_compile w in
      print_newline ();
      fails)
    all

(* Run every experiment, keep the data, and check it against the shapes
   recorded in EXPERIMENTS.md (see Shapes).  Returns [true] when every
   shape reproduces AND no cell failed — an ERR cell poisons its shape
   inputs to NaN, but an injected fault must fail the gate even when the
   surviving cells happen to satisfy every claim.  [measure_compile]
   defaults to [false] here so the full output is deterministic —
   byte-identical across runs and across VM engines — and therefore
   diffable; only the Table 2 compile column is affected (printed "-"). *)
let run_gated ?scale ?jobs ?(measure_compile = false) () =
  prewarm ?scale ?jobs ();
  let show print tbl =
    print tbl;
    print_newline ();
    tbl
  in
  let t1 = show Table1.print (Table1.run ?scale ?jobs ()) in
  let t2 = show Table2.print (Table2.run ?scale ?jobs ~measure_compile ()) in
  let t3 = show Table3.print (Table3.run ?scale ?jobs ()) in
  let t4 = show Table4.print (Table4.run ?scale ?jobs ()) in
  let scale45 = match scale with None -> Some 4 | s -> s in
  let t5 = show Table5.print (Table5.run ?scale:scale45 ?jobs ()) in
  let f7 =
    show Figure7.print (Figure7.run ?scale:scale45 ?jobs ~interval:100 ())
  in
  let f8 = show Figure8.print (Figure8.run ?scale ?jobs ()) in
  let groups =
    [
      ("table1", Shapes.table1 t1);
      ("table2", Shapes.table2 t2);
      ("table3", Shapes.table3 ~t1 ~t2 t3);
      ("table4", Shapes.table4 t4);
      ("table5", Shapes.table5 t5);
      ("figure7", Shapes.figure7 f7);
      ("figure8", Shapes.figure8 ~t2 f8);
    ]
  in
  print_string (Shapes.render groups);
  let failures =
    Table1.failures t1 @ Table2.failures t2 @ Table3.failures t3
    @ t4.Table4.failures @ Table5.failures t5 @ f7.Figure7.failures
    @ f8.Figure8.failures
  in
  if failures <> [] then
    Printf.printf "%d experiment cell(s) failed (see reports above)\n"
      (List.length failures);
  Shapes.all_pass groups && failures = []
