(* Crash tolerance for experiment cells.

   Every (benchmark, configuration) measurement runs inside [cell],
   which turns exceptions into structured [failure] values instead of
   tearing down the whole table, retries transient classes with bounded
   backoff, and — when a checkpoint file is armed — persists each
   completed cell so a killed run resumes where it stopped.

   The checkpoint is an append-only sequence of marshaled
   [(key, payload)] records.  Append-only is what makes it crash-safe: a
   kill can at worst truncate the final record, and the loader stops at
   the first undecodable tail instead of failing, so every fully written
   cell survives.  Only [Ok] payloads are persisted — a failed cell is
   re-attempted on resume, which is what you want after fixing whatever
   killed it. *)

type failure = {
  key : string;
  classification : string;
  attempts : int;
  message : string;
  backtrace : string;
}

type 'a outcome = ('a, failure) result

exception Transient of string

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

(* The key of the cell currently executing on this domain, so layers
   below (Measure.execute's VM label, error messages) can say which
   benchmark/config a failure belongs to without threading it through
   every call. *)
let ctx_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")
let context () = Domain.DLS.get ctx_key

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let classify = function
  | Vm.Interp.Runtime_error m ->
      if has_prefix "injected fault" m then "fault"
      else if has_prefix "out of fuel" m then "fuel"
      else if has_prefix "wall-clock watchdog" m then "timeout"
      else "bug"
  | Transient _ | Sys_error _ | Out_of_memory -> "transient"
  | _ -> "bug"

let message_of = function
  | Vm.Interp.Runtime_error m -> m
  | Transient m -> "transient: " ^ m
  | Failure m -> m
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* Checkpoint store                                                    *)
(* ------------------------------------------------------------------ *)

(* "\000" cannot start a cell key (keys are human-readable table/bench
   paths), so this name can never collide. *)
let meta_key = "\000meta"

let lock = Mutex.create ()
let store : (string, string) Hashtbl.t = Hashtbl.create 64
let chan : out_channel option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Read every complete record; a truncated or corrupt tail (the record
   being written when the process died) ends the load silently. *)
let load path =
  let tbl = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    (try
       while true do
         let k, payload = (Marshal.from_channel ic : string * string) in
         Hashtbl.replace tbl k payload
       done
     with End_of_file | Failure _ -> ());
    close_in ic
  end;
  tbl

(* Cells resumed from an armed checkpoint file, as opposed to persisted
   by this process: lets the scheduler skip its prewarm on a resume,
   where re-measuring the already-finished cells would defeat it. *)
let resumed = ref 0
let checkpointed_cells () = locked (fun () -> !resumed)

let set_checkpoint ?(meta = "") path_opt =
  locked (fun () ->
      (match !chan with Some oc -> close_out oc | None -> ());
      chan := None;
      Hashtbl.reset store;
      resumed := 0;
      match path_opt with
      | None -> ()
      | Some path ->
          let tbl = load path in
          (match Hashtbl.find_opt tbl meta_key with
          | Some payload ->
              let prev = (Marshal.from_string payload 0 : string) in
              if prev <> meta then
                failwith
                  (Printf.sprintf
                     "checkpoint %s was written by a different run \
                      configuration (%S, this run is %S); delete it or point \
                      --checkpoint elsewhere"
                     path prev meta)
          | None -> ());
          Hashtbl.iter
            (fun k v ->
              if k <> meta_key then begin
                Hashtbl.replace store k v;
                incr resumed
              end)
            tbl;
          let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
          chan := Some oc;
          if not (Hashtbl.mem tbl meta_key) then begin
            Marshal.to_channel oc (meta_key, Marshal.to_string meta []) [];
            flush oc
          end)

let lookup key = locked (fun () -> Hashtbl.find_opt store key)

let persist key payload =
  locked (fun () ->
      Hashtbl.replace store key payload;
      match !chan with
      | None -> ()
      | Some oc ->
          Marshal.to_channel oc (key, payload) [];
          flush oc)

(* ------------------------------------------------------------------ *)
(* The cell runner                                                     *)
(* ------------------------------------------------------------------ *)

let () = Printexc.record_backtrace true

let cell ?(retries = 2) ~key f =
  match lookup key with
  | Some payload -> Ok (Marshal.from_string payload 0)
  | None ->
      let rec attempt n =
        let saved = Domain.DLS.get ctx_key in
        Domain.DLS.set ctx_key key;
        let r =
          match f () with
          | v -> Ok v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              Error (e, Printexc.raw_backtrace_to_string bt)
        in
        Domain.DLS.set ctx_key saved;
        match r with
        | Ok v ->
            (* payload must not contain closures: checkpointed cells carry
               reduced values (floats, keyed lists), never raw metrics *)
            persist key (Marshal.to_string v []);
            Ok v
        | Error (e, bt) ->
            let cls = classify e in
            if String.equal cls "transient" && n <= retries then begin
              Unix.sleepf (0.05 *. float_of_int (1 lsl (n - 1)));
              attempt (n + 1)
            end
            else
              Error
                {
                  key;
                  classification = cls;
                  attempts = n;
                  message = message_of e;
                  backtrace = bt;
                }
      in
      attempt 1

(* ------------------------------------------------------------------ *)
(* Outcome helpers                                                     *)
(* ------------------------------------------------------------------ *)

let oks l = List.filter_map (function Ok v -> Some v | Error _ -> None) l

let errors l =
  List.filter_map (function Ok _ -> None | Error f -> Some f) l

let get_or ~default = function Ok v -> v | Error _ -> default
let cell_str f = function Ok v -> f v | Error _ -> "ERR"

let report failures =
  let fs = List.sort (fun a b -> compare a.key b.key) failures in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "Error report: %d cell(s) failed\n" (List.length fs));
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "  ERR %s [%s after %d attempt%s]: %s\n" f.key
           f.classification f.attempts
           (if f.attempts = 1 then "" else "s")
           f.message);
      (* backtraces only for unexpected failures: an expected,
         classified failure (fault/fuel/timeout/dependency) already
         carries its full deterministic context in the message, while
         its backtrace depends on which awaiter of a memoized cell
         re-raised first — printing it would make the report
         byte-nondeterministic under -j and across configurations *)
      if f.backtrace <> "" && String.equal f.classification "bug" then
        List.iter
          (fun line ->
            if not (String.equal line "") then
              Buffer.add_string b ("      " ^ line ^ "\n"))
          (String.split_on_char '\n' f.backtrace))
    fs;
  Buffer.contents b
