(* Work-stealing pool over Domain with per-worker mutex-guarded deques.

   All tasks are enqueued before the workers start, so termination is
   simple: a worker exits once its own deque and every victim's deque are
   empty.  Workers take from the front of their own deque and steal from
   the front of a victim's — FIFO order keeps early (often expensive,
   cache-seeding) cells running first. *)

let default_jobs () =
  match Sys.getenv_opt "ISF_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

type deque = { mu : Mutex.t; tasks : (unit -> unit) Queue.t }

let take_from d =
  Mutex.lock d.mu;
  let r = Queue.take_opt d.tasks in
  Mutex.unlock d.mu;
  r

let run_tasks ~jobs (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.iter (fun t -> t ()) tasks
  else begin
    let nworkers = min jobs n in
    let deques =
      Array.init nworkers (fun _ ->
          { mu = Mutex.create (); tasks = Queue.create () })
    in
    Array.iteri (fun i t -> Queue.push t deques.(i mod nworkers).tasks) tasks;
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker w () =
      let rec next k =
        (* k = 0 is our own deque; k > 0 are steal victims *)
        if k = nworkers then None
        else
          match take_from deques.((w + k) mod nworkers) with
          | Some t -> Some t
          | None -> next (k + 1)
      in
      let rec loop () =
        if Atomic.get failed = None then
          match next 0 with
          | Some task ->
              (try task ()
               with e ->
                 let bt = Printexc.get_raw_backtrace () in
                 ignore (Atomic.compare_and_set failed None (Some (e, bt))));
              loop ()
          | None -> ()
      in
      loop ()
    in
    let domains =
      Array.init (nworkers - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let run ?(jobs = 1) thunks = run_tasks ~jobs (Array.of_list thunks)

let map ?(jobs = 1) f xs =
  let input = Array.of_list xs in
  let out = Array.make (Array.length input) None in
  run_tasks ~jobs
    (Array.mapi (fun i x () -> out.(i) <- Some (f x)) input);
  Array.to_list
    (Array.map
       (function Some v -> v | None -> invalid_arg "Pool.map: task skipped")
       out)

let trace =
  ref
    (match Sys.getenv_opt "ISF_TRACE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

module Progress = struct
  type t = {
    mu : Mutex.t;
    label : string;
    total : int;
    enabled : bool;
    mutable cells_done : int;
    mutable cycles : int;
    mutable drawn : bool;
  }

  let create ?enabled ~label ~total () =
    let enabled = match enabled with Some e -> e | None -> !trace in
    {
      mu = Mutex.create ();
      label;
      total;
      enabled;
      cells_done = 0;
      cycles = 0;
      drawn = false;
    }

  let step ?(cycles = 0) t =
    Mutex.lock t.mu;
    t.cells_done <- t.cells_done + 1;
    t.cycles <- t.cycles + cycles;
    if t.enabled then begin
      t.drawn <- true;
      Printf.eprintf "\r[%s] %d/%d cells, %#d cycles%!" t.label t.cells_done
        t.total t.cycles
    end;
    Mutex.unlock t.mu

  let finish t =
    Mutex.lock t.mu;
    if t.drawn then prerr_newline ();
    t.drawn <- false;
    Mutex.unlock t.mu
end
