(* Work-stealing pool over Domain with per-worker mutex-guarded deques.

   All tasks are enqueued before the workers start, so termination is
   simple: a worker exits once its own deque and every victim's deque are
   empty.  Workers take from the front of their own deque and steal from
   the front of a victim's — FIFO order keeps early (often expensive,
   cache-seeding) cells running first. *)

let default_jobs () =
  match Sys.getenv_opt "ISF_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count () - 1)

exception Failures of (int * exn * string) list

let () =
  Printexc.register_printer (function
    | Failures l ->
        Some
          (Printf.sprintf "Pool.Failures: %d task(s) failed\n%s"
             (List.length l)
             (String.concat "\n"
                (List.map
                   (fun (i, e, bt) ->
                     Printf.sprintf "  task %d: %s%s" i (Printexc.to_string e)
                       (if String.equal bt "" then ""
                        else
                          "\n    "
                          ^ String.concat "\n    "
                              (String.split_on_char '\n' (String.trim bt))))
                   l)))
    | _ -> None)

type deque = { mu : Mutex.t; tasks : (int * (unit -> unit)) Queue.t }

let take_from d =
  Mutex.lock d.mu;
  let r = Queue.take_opt d.tasks in
  Mutex.unlock d.mu;
  r

(* every task runs to completion even after a failure elsewhere, and every
   failure is kept: a chaos run that breaks several cells reports them
   all, not just whichever worker lost the race *)
let raise_failures failures =
  match List.sort (fun (i, _, _, _) (j, _, _, _) -> compare i j) failures with
  | [] -> ()
  | [ (_, e, _, bt) ] -> Printexc.raise_with_backtrace e bt
  | many -> raise (Failures (List.map (fun (i, e, s, _) -> (i, e, s)) many))

let run_tasks ~jobs (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then begin
    let failures = ref [] in
    Array.iteri
      (fun i t ->
        try t ()
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          failures :=
            (i, e, Printexc.raw_backtrace_to_string bt, bt) :: !failures)
      tasks;
    raise_failures !failures
  end
  else begin
    let nworkers = min jobs n in
    let deques =
      Array.init nworkers (fun _ ->
          { mu = Mutex.create (); tasks = Queue.create () })
    in
    Array.iteri
      (fun i t -> Queue.push (i, t) deques.(i mod nworkers).tasks)
      tasks;
    let failed_mu = Mutex.create () in
    let failures = ref [] in
    let worker w () =
      let rec next k =
        (* k = 0 is our own deque; k > 0 are steal victims *)
        if k = nworkers then None
        else
          match take_from deques.((w + k) mod nworkers) with
          | Some t -> Some t
          | None -> next (k + 1)
      in
      let rec loop () =
        match next 0 with
        | Some (i, task) ->
            (try task ()
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               let s = Printexc.raw_backtrace_to_string bt in
               Mutex.lock failed_mu;
               failures := (i, e, s, bt) :: !failures;
               Mutex.unlock failed_mu);
            loop ()
        | None -> ()
      in
      loop ()
    in
    let domains =
      Array.init (nworkers - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains;
    raise_failures !failures
  end

let run ?(jobs = 1) thunks = run_tasks ~jobs (Array.of_list thunks)

let map ?(jobs = 1) f xs =
  let input = Array.of_list xs in
  let out = Array.make (Array.length input) None in
  run_tasks ~jobs
    (Array.mapi (fun i x () -> out.(i) <- Some (f x)) input);
  Array.to_list
    (Array.map
       (function Some v -> v | None -> invalid_arg "Pool.map: task skipped")
       out)

let trace =
  ref
    (match Sys.getenv_opt "ISF_TRACE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

(* Persistent worker pool for service mode (Serve.Daemon): unlike
   [run_tasks], work arrives while the workers are already running, so
   each worker loops on a caller-supplied blocking [next] until it
   returns [None] (the source is closed and drained).  Per-worker
   executed-task counters let fairness/starvation tests assert the
   actual distribution of jobs over domains instead of inferring it
   from timing. *)
module Service = struct
  type t = {
    domains : unit Domain.t array;
    executed : int Atomic.t array;
    uncaught : int Atomic.t;
  }

  let start ~workers ~next =
    let workers = max 1 workers in
    let executed = Array.init workers (fun _ -> Atomic.make 0) in
    let uncaught = Atomic.make 0 in
    let worker w () =
      let rec loop () =
        match next () with
        | None -> ()
        | Some task ->
            (* a worker must survive anything a task throws — a wedged
               or dead worker is exactly the failure mode service mode
               exists to rule out.  Tasks are expected to classify their
               own failures; anything escaping here is counted so the
               daemon can report it. *)
            (try task ()
             with e ->
               Atomic.incr uncaught;
               Printf.eprintf "[pool] worker %d: uncaught %s\n%!" w
                 (Printexc.to_string e));
            Atomic.incr executed.(w);
            loop ()
      in
      loop ()
    in
    {
      domains = Array.init workers (fun w -> Domain.spawn (worker w));
      executed;
      uncaught;
    }

  let stats t = Array.map Atomic.get t.executed
  let uncaught t = Atomic.get t.uncaught

  let join t = Array.iter Domain.join t.domains
end

module Progress = struct
  type t = {
    mu : Mutex.t;
    label : string;
    total : int;
    enabled : bool;
    mutable cells_done : int;
    mutable drawn : bool;
  }

  let create ?enabled ~label ~total () =
    let enabled = match enabled with Some e -> e | None -> !trace in
    {
      mu = Mutex.create ();
      label;
      total;
      enabled;
      cells_done = 0;
      drawn = false;
    }

  let step t =
    Mutex.lock t.mu;
    t.cells_done <- t.cells_done + 1;
    if t.enabled then begin
      t.drawn <- true;
      Printf.eprintf "\r[%s] %d/%d cells%!" t.label t.cells_done t.total
    end;
    Mutex.unlock t.mu

  let finish t =
    Mutex.lock t.mu;
    if t.drawn then prerr_newline ();
    t.drawn <- false;
    Mutex.unlock t.mu
end
