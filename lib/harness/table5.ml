(* Table 5: counter-based vs time-based trigger accuracy, Full-Duplication
   with field-access instrumentation.

   Paper: time-based averaged 63% overlap vs 84% for counter-based at a
   matched number of samples (counter interval 30,000), because the
   timer-set bit is observed at the *next* check, mis-attributing samples
   to whatever follows long instruction sequences (section 2.1). *)

type meas = {
  time_based : float;
  counter_based : float;
  matched_interval : int; (* counter interval chosen to match sample counts *)
}

type row = { bench : string; meas : meas Robust.outcome }

let time_based r = match r.meas with Ok m -> m.time_based | Error _ -> Float.nan

let counter_based r =
  match r.meas with Ok m -> m.counter_based | Error _ -> Float.nan

let paper =
  [
    ("compress", 88.0, 98.0);
    ("jess", 91.0, 95.0);
    ("db", 66.0, 95.0);
    ("javac", 59.0, 73.0);
    ("mpegaudio", 69.0, 95.0);
    ("mtrt", 51.0, 67.0);
    ("jack", 45.0, 94.0);
    ("opt_compiler", 58.0, 65.0);
    ("pbob", 75.0, 87.0);
    ("volano", 27.0, 71.0);
  ]

let transform = Core.Transform.full_dup Core.Spec.field_access

(* Pure-data description for Schedule.  The matched-interval counter
   run depends on the timer run's sample count, so it cannot be
   described up front; the cell computes it on demand. *)
let requests ?scale ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  List.concat_map
    (fun (bench : Workloads.Suite.benchmark) ->
      let b = bench.Workloads.Suite.bname in
      [
        Schedule.baseline ?scale b;
        Schedule.instrumented ?scale ~variant:Schedule.Full_dup
          ~specs:[ "field-access" ] ~trigger:Core.Sampler.Always b;
        Schedule.instrumented ?scale ~variant:Schedule.Full_dup
          ~specs:[ "field-access" ] ~trigger:Core.Sampler.Timer_bit
          ~timer_period:25_000 b;
      ])
    benches

let run ?scale ?jobs ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let progress =
    Pool.Progress.create ~label:"table5" ~total:(List.length benches) ()
  in
  let rows =
    Pool.map ?jobs
      (fun bench ->
        let meas =
          Robust.cell
            ~key:(Printf.sprintf "table5/%s" bench.Workloads.Suite.bname)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let perfect_fa =
                let m =
                  Measure.run_transformed ~trigger:Core.Sampler.Always
                    ~transform build
                in
                Profiles.Field_access.to_keyed
                  m.Measure.collector.Profiles.Collector.fields
              in
              (* the paper's 10 ms timer on 1-5 s runs yields hundreds of
                 samples; our runs are shorter, so the simulated timer
                 period is scaled to 25k cycles ("2.5 ms") to keep the
                 sample counts comparable *)
              let timer =
                Measure.run_transformed ~trigger:Core.Sampler.Timer_bit
                  ~timer_period:25_000 ~transform build
              in
              Measure.check_output ~base timer;
              let timer_acc =
                Profiles.Overlap.percent perfect_fa
                  (Profiles.Field_access.to_keyed
                     timer.Measure.collector.Profiles.Collector.fields)
              in
              (* match the counter's sample count to the timer's, as the
                 paper does ("a sample interval of 30,000 ... resulted in
                 approximately the same number of samples") *)
              let interval =
                max 1 (timer.Measure.checks / max 1 timer.Measure.samples)
              in
              let counter =
                Measure.run_transformed
                  ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                  ~transform build
              in
              let counter_acc =
                Profiles.Overlap.percent perfect_fa
                  (Profiles.Field_access.to_keyed
                     counter.Measure.collector.Profiles.Collector.fields)
              in
              {
                time_based = timer_acc;
                counter_based = counter_acc;
                matched_interval = interval;
              })
        in
        Pool.Progress.step progress;
        { bench = bench.Workloads.Suite.bname; meas })
      benches
  in
  Pool.Progress.finish progress;
  rows

let failures rows = Robust.errors (List.map (fun r -> r.meas) rows)

let average rows =
  let ms = Robust.oks (List.map (fun r -> r.meas) rows) in
  ( Common.mean (List.map (fun m -> m.time_based) ms),
    Common.mean (List.map (fun m -> m.counter_based) ms) )

let to_string rows =
  let t, c = average rows in
  Text_table.render
    ~header:
      [ "Benchmark"; "Time-based (%)"; "Counter-based (%)"; "Interval used" ]
    (List.map
       (fun r ->
         r.bench
         ::
         (match r.meas with
         | Ok m ->
             [
               Text_table.pct m.time_based;
               Text_table.pct m.counter_based;
               string_of_int m.matched_interval;
             ]
         | Error _ -> [ "ERR"; "ERR"; "ERR" ]))
       rows
    @ [ [ "Average"; Text_table.pct t; Text_table.pct c; "" ] ])

let print rows =
  print_string
    "Table 5: trigger-mechanism accuracy, field-access profile overlap\n";
  print_string (to_string rows);
  match failures rows with
  | [] -> ()
  | fs -> print_string (Robust.report fs)
