(** Two-tier content-addressed cache for measurement results.

    Tier 1 is in-memory and domain-safe ({!Sync.Memo}): within one
    process, the first caller of a key computes it while concurrent
    callers of the same key block and share the result.  Tier 2 is an
    optional on-disk store ([isf --cache DIR] / [ISF_CACHE]) shared
    across processes: entries are written to a temporary file and
    renamed into place, so concurrent writers — domains of one process
    or separate [isf] processes — can never expose a partial entry.

    On-disk entries carry a magic header, the full run key and an MD5
    of the marshalled payload.  A truncated, corrupt or foreign file is
    treated as a miss and recomputed (then overwritten); an entry that
    parses and verifies but embeds a {e different} run key than the one
    that hashed to its filename is a digest collision and raises — that
    is the only loud failure a read can produce.  A cache directory
    written by an incompatible format or compiler version is refused
    with [Failure], mirroring {!Robust.set_checkpoint}'s refusal of
    foreign checkpoints ([bin/isf.ml] turns it into exit 2). *)

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  corrupt : int;
      (** disk entries that existed but failed verification (foreign
          magic, torn payload, digest mismatch, or a collision) — each
          was recomputed, but a climbing count means the disk tier is
          rotting.  {!Serve.Daemon} circuit-breaks on it. *)
}

val version : string
(** Format version recorded in [DIR/CACHE_VERSION]; includes the OCaml
    version because entries are [Marshal]-encoded.  Bump the format
    component whenever the payload layout (e.g. [Measure.metrics])
    changes shape. *)

val set_dir : string option -> unit
(** Enable ([Some dir], created if missing) or disable ([None]) the
    persistent tier.  Raises [Failure] if [dir] was written by an
    incompatible version — delete it or point [--cache] elsewhere.
    Opening a directory also sweeps [isf-*.tmp] files older than
    {!stale_tmp_age} — orphans of a writer that crashed between
    creating its temp file and the atomic rename.  Younger tmp files
    are left alone: another process sharing the directory may be
    mid-write. *)

val dir : unit -> string option

val stale_tmp_age : float
(** Age in seconds past which an [isf-*.tmp] file is considered the
    debris of a crashed writer and swept by {!set_dir}. *)

val stats : unit -> stats

val corruptions : unit -> int
(** [ (stats ()).corrupt ] — cheap accessor for circuit breakers. *)

val on_reset : (unit -> unit) -> unit
(** Register an in-memory cache to be cleared by {!reset_memory}.
    Every {!Make} instance registers itself; {!Measure} additionally
    registers its build caches. *)

val reset_memory : unit -> unit
(** Clear every registered in-memory cache (and the stats), as if the
    process had just started; the disk tier is untouched.  Used by the
    harness benchmark and tests to measure a warm disk cache from a
    cold memory state. *)

module Make (V : sig
  type t
end) : sig
  val find : key:string -> (unit -> V.t) -> V.t
  (** Memory hit, else disk hit, else compute, publish to both tiers.
      Only successful computations are ever cached: if [f] raises, the
      key is left uncomputed (concurrent waiters retry) and nothing is
      written to disk. *)

  val cached : key:string -> bool
  (** Is the key available from either tier without computing? *)
end
