(* Table 4: overhead and accuracy of SAMPLED instrumentation vs sample
   interval, for Full-Duplication and No-Duplication, with call-edge and
   field-access instrumentation applied together in the same run.

   Paper: at interval 1000 accuracy stays 93-98% while the
   sampled-instrumentation overhead (above the framework's own) drops
   under 1%; accuracy only collapses around interval 100,000 where too
   few samples remain; No-Duplication's total stays high because its
   field-access checking overhead dominates. *)

type cell = {
  interval : int;
  num_samples : float; (* average over benchmarks *)
  sampled_instr : float; (* total minus framework overhead, % *)
  total : float; (* vs non-instrumented baseline, % *)
  acc_call_edge : float; (* overlap vs perfect profile, % *)
  acc_field : float;
}

type rows = {
  full_dup : cell list;
  no_dup : cell list;
  failures : Robust.failure list;
}

(* Paper's averaged figures (sample interval, samples, sampled-instr %,
   total %, call-edge accuracy %, field-access accuracy %). *)
let paper_full_dup =
  [
    (1, 1.1e7, 167.2, 182.2, 100.0, 100.0);
    (10, 1.1e6, 26.4, 29.3, 99.0, 100.0);
    (100, 1.1e5, 4.2, 10.3, 98.0, 99.0);
    (1_000, 1.1e4, 0.8, 6.3, 94.0, 97.0);
    (10_000, 1137.0, 0.1, 5.1, 82.0, 94.0);
    (100_000, 109.0, 0.1, 5.0, 71.0, 83.0);
  ]

let paper_no_dup =
  [
    (1, 6.7e7, 118.2, 269.1, 100.0, 100.0);
    (10, 6.7e6, 22.8, 79.5, 98.0, 100.0);
    (100, 6.7e5, 3.6, 61.3, 97.0, 99.0);
    (1_000, 6.7e4, 1.0, 57.2, 93.0, 98.0);
    (10_000, 6736.0, 0.2, 55.7, 81.0, 96.0);
    (100_000, 662.0, 0.2, 55.2, 70.0, 87.0);
  ]

let variant_of_name = function
  | `Full -> Core.Transform.full_dup Common.both_specs
  | `No -> Core.Transform.no_dup Common.both_specs

let variant_slug = function `Full -> "full" | `No -> "no"

let sweep ?scale ?jobs ~progress benches variant =
  let transform = variant_of_name variant in
  let slug = variant_slug variant in
  (* per-benchmark framework overhead of this variant (trigger Never);
     only the float is checkpointed — metrics hold closures — and the
     per-interval cells re-derive build/baseline through the memo caches *)
  let framework =
    Pool.map ?jobs
      (fun bench ->
        let r =
          Robust.cell
            ~key:
              (Printf.sprintf "table4/%s/framework/%s" slug
                 bench.Workloads.Suite.bname)
            (fun () ->
              let build = Measure.prepare ?scale bench in
              let base = Measure.run_baseline build in
              let fw = Measure.run_transformed ~transform build in
              Measure.overhead_pct ~base fw)
        in
        Pool.Progress.step progress;
        (bench, r))
      benches
  in
  (* one cell per (interval, benchmark), regrouped by interval below *)
  let cells =
    List.concat_map
      (fun interval -> List.map (fun fw -> (interval, fw)) framework)
      Common.sample_intervals
  in
  let per_cell =
    Pool.map ?jobs
      (fun (interval, (bench, fw_outcome)) ->
        let key =
          Printf.sprintf "table4/%s/%d/%s" slug interval
            bench.Workloads.Suite.bname
        in
        let r =
          match fw_outcome with
          | Error f ->
              (* the sampled-instr column needs the framework number;
                 don't run (or checkpoint) a cell whose input is missing,
                 report the dependency instead *)
              Error
                {
                  Robust.key;
                  classification = "dependency";
                  attempts = 0;
                  message = "framework cell failed: " ^ f.Robust.message;
                  backtrace = "";
                }
          | Ok fw_pct ->
              Robust.cell ~key (fun () ->
                  let build = Measure.prepare ?scale bench in
                  let base = Measure.run_baseline build in
                  let m =
                    Measure.run_transformed
                      ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                      ~transform build
                  in
                  Measure.check_output ~base m;
                  let perfect_ce, perfect_fa = Common.perfect_profiles build in
                  let sampled_ce =
                    Profiles.Call_edge.to_keyed
                      m.Measure.collector.Profiles.Collector.call_edges
                  in
                  let sampled_fa =
                    Profiles.Field_access.to_keyed
                      m.Measure.collector.Profiles.Collector.fields
                  in
                  let total = Measure.overhead_pct ~base m in
                  ( float_of_int m.Measure.samples,
                    total -. fw_pct,
                    total,
                    Profiles.Overlap.percent perfect_ce sampled_ce,
                    Profiles.Overlap.percent perfect_fa sampled_fa ))
        in
        Pool.Progress.step progress;
        r)
      cells
  in
  let nb = List.length benches in
  let aggregated =
    List.mapi
      (fun i interval ->
        let per_bench = List.filteri (fun j _ -> j / nb = i) per_cell in
        let vals = Robust.oks per_bench in
        let nth f = Common.mean (List.map f vals) in
        {
          interval;
          num_samples = nth (fun (s, _, _, _, _) -> s);
          sampled_instr = nth (fun (_, si, _, _, _) -> si);
          total = nth (fun (_, _, t, _, _) -> t);
          acc_call_edge = nth (fun (_, _, _, a, _) -> a);
          acc_field = nth (fun (_, _, _, _, a) -> a);
        })
      Common.sample_intervals
  in
  (aggregated, Robust.errors (List.map snd framework) @ Robust.errors per_cell)

(* Pure-data description of the sweep's measurements for Schedule; each
   per-interval cell also re-derives its baseline and the perfect
   profile (Common.perfect_profiles), so those are requested per cell
   and collapse in the global dedupe. *)
let requests ?scale ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let both = [ "call-edge"; "field-access" ] in
  List.concat_map
    (fun variant ->
      let v =
        match variant with `Full -> Schedule.Full_dup | `No -> Schedule.No_dup
      in
      List.concat_map
        (fun (bench : Workloads.Suite.benchmark) ->
          let b = bench.Workloads.Suite.bname in
          [
            Schedule.baseline ?scale b;
            Schedule.instrumented ?scale ~variant:v ~specs:both b;
          ])
        benches
      @ List.concat_map
          (fun interval ->
            List.concat_map
              (fun (bench : Workloads.Suite.benchmark) ->
                let b = bench.Workloads.Suite.bname in
                [
                  Schedule.baseline ?scale b;
                  Schedule.instrumented ?scale ~variant:v ~specs:both
                    ~trigger:(Core.Sampler.Counter { interval; jitter = 0 })
                    b;
                  Schedule.instrumented ?scale ~variant:Schedule.Full_dup
                    ~specs:both ~trigger:Core.Sampler.Always b;
                ])
              benches)
          Common.sample_intervals)
    [ `Full; `No ]

let run ?scale ?jobs ?benches () =
  let benches =
    match benches with Some l -> l | None -> Common.benchmarks ()
  in
  let cells_per_variant =
    List.length benches * (1 + List.length Common.sample_intervals)
  in
  let progress =
    Pool.Progress.create ~label:"table4" ~total:(2 * cells_per_variant) ()
  in
  let full_dup, full_fails = sweep ?scale ?jobs ~progress benches `Full in
  let no_dup, no_fails = sweep ?scale ?jobs ~progress benches `No in
  Pool.Progress.finish progress;
  { full_dup; no_dup; failures = full_fails @ no_fails }

let cells_to_string title cells =
  title ^ "\n"
  ^ Text_table.render
      ~header:
        [
          "Interval";
          "Samples";
          "SampledInstr (%)";
          "Total (%)";
          "CallEdge acc (%)";
          "FieldAcc acc (%)";
        ]
      (List.map
         (fun c ->
           [
             string_of_int c.interval;
             Printf.sprintf "%.0f" c.num_samples;
             Text_table.pct c.sampled_instr;
             Text_table.pct c.total;
             Text_table.pct c.acc_call_edge;
             Text_table.pct c.acc_field;
           ])
         cells)

let to_string r =
  cells_to_string "Full-Duplication" r.full_dup
  ^ "\n"
  ^ cells_to_string "No-Duplication" r.no_dup

let print r =
  print_string
    "Table 4: sampled instrumentation overhead and accuracy (averaged over \
     all benchmarks)\n";
  print_string (to_string r);
  match r.failures with [] -> () | fs -> print_string (Robust.report fs)
