(** Work-stealing domain pool for experiment grids.

    Experiment drivers decompose their benchmark × configuration matrix
    into independent cells and run them here.  Tasks are dealt
    round-robin onto per-worker deques; a worker that drains its own
    deque steals from the others, so an expensive cell (a benchmark that
    compiles slowly, a sweep at interval 1) never leaves the remaining
    workers idle.  The calling domain participates as worker 0 and
    [jobs - 1] further domains are spawned per call — experiment grids
    are seconds-to-minutes of work, so domain startup is noise.

    {b Determinism.}  Results are assembled by submission index, so
    [map] returns exactly what [List.map] would, whatever order cells
    finish in.  Cells must not depend on shared mutable state beyond the
    domain-safe memo caches ({!Measure.prepare}, {!Measure.run_baseline},
    {!Common.perfect_profiles}) — under that discipline a parallel table
    is byte-identical to a sequential one (enforced by
    [test/test_pool.ml]).

    {b Exceptions.}  Every task runs to completion even when another
    task has already failed, and every failure is collected.  After all
    workers have joined: a single failure is re-raised with its original
    backtrace; two or more are raised together as {!Failures}, ordered
    by submission index, so a run that breaks several cells reports them
    all instead of whichever failure won the race. *)

exception Failures of (int * exn * string) list
(** Two or more tasks failed: [(submission index, exception, backtrace)]
    for each, in submission order.  A registered printer renders the
    full listing. *)

val default_jobs : unit -> int
(** The [ISF_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count () - 1] (at least 1). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element, running up to [jobs]
    cells concurrently, and returns the results in input order.
    [jobs <= 1] (the default) degenerates to a plain in-domain
    [List.map]: no domain is spawned, tasks run in submission order. *)

val run : ?jobs:int -> (unit -> unit) list -> unit
(** Same scheduling for effect-only tasks. *)

(** Persistent worker pool for service mode ({!Serve.Daemon}).  Where
    {!run} enqueues everything up front and tears the domains down at
    the end, a service's work arrives while the workers are already
    running: each of [workers] domains loops on the caller-supplied
    [next] — expected to block until work is available — and exits when
    it returns [None] (source closed and drained).  A task that throws
    never kills its worker: the exception is counted ({!Service.uncaught})
    and printed, and the worker moves on — daemons classify failures
    inside the task and treat a non-zero uncaught count as a bug. *)
module Service : sig
  type t

  val start : workers:int -> next:(unit -> (unit -> unit) option) -> t
  (** Spawn [max 1 workers] domains, each looping on [next].  [next]
      must be domain-safe and must eventually return [None] in every
      worker once the work source is closed, or {!join} never returns. *)

  val stats : t -> int array
  (** Tasks executed per worker domain, index = worker id.  Monotonic;
      safe to read while the service runs. *)

  val uncaught : t -> int
  (** Exceptions that escaped tasks (each one is a bug in the caller's
      task wrapper — the daemon surfaces this in its own stats). *)

  val join : t -> unit
  (** Wait for every worker to observe [None] and exit. *)
end

(** Progress line for long sweeps, written to [stderr] so table output on
    [stdout] stays byte-identical.  Thread-safe; disabled unless
    {!trace} is set (CLI [--trace] or the [ISF_TRACE] environment
    variable). *)
module Progress : sig
  type t

  val create : ?enabled:bool -> label:string -> total:int -> unit -> t
  (** [enabled] defaults to {!trace}'s value. *)

  val step : t -> unit
  (** Record one finished cell and redraw the line:
      [\[label\] cells done/total]. *)

  val finish : t -> unit
  (** Terminate the line (newline on [stderr]) if anything was drawn. *)
end

val trace : bool ref
(** Default for {!Progress.create}; initialized from [ISF_TRACE]. *)
