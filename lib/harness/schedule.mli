(** Global deduplicating cell scheduler.

    Each table/figure driver can describe the measurements its cells
    will perform as pure-data {!run} values ([requests] in each driver
    module).  Before [isf table all] / [isf ablation] executes the
    drivers, {!prewarm} collects every driver's list, drops the
    duplicates (baselines requested by all seven drivers, perfect
    profiles shared between Table 4, Figure 7 and the ablations, …) and
    executes the deduplicated set through {!Pool}.  Because every
    measurement is content-cached ({!Measure} via {!Runcache}), the
    drivers then run unchanged and find their cells already computed —
    their printed output stays byte-identical to an unscheduled run,
    while each distinct measurement executes exactly once.

    A {!run} deliberately mirrors what the driver will ask {!Measure}
    for — same spec construction, same trigger, same timer period — so
    its cache key is identical to the driver's.  Runs that depend on a
    previous measurement's result (Table 5's matched counter interval)
    cannot be described up front and are simply not requested; the
    driver computes them on demand as before. *)

type variant =
  | Exhaustive
  | Full_dup
  | Partial_dup
  | No_dup
  | Yp_opt  (** full duplication with the yieldpoint optimization *)
  | Checks_only of { entries : bool; backedges : bool }

type run =
  | Baseline of { bench : string; scale : int option }
  | Instrumented of {
      bench : string;
      scale : int option;
      variant : variant;
      specs : string list;
          (** instrumentation spec names in order, e.g.
              [["call-edge"; "field-access"]]; ignored by [Checks_only] *)
      trigger : Core.Sampler.trigger;
      timer_period : int option;
    }

val baseline : ?scale:int -> string -> run

val instrumented :
  ?scale:int ->
  ?trigger:Core.Sampler.trigger ->
  ?timer_period:int ->
  variant:variant ->
  specs:string list ->
  string ->
  run
(** [trigger] defaults to [Never], like {!Measure.run_transformed}. *)

val dedupe : run list -> run list
(** Structural deduplication, stable (first occurrence wins). *)

val execute : run -> unit
(** Perform one run through {!Measure}, publishing it to the run cache;
    the measured value is discarded here and picked up by whichever
    driver cell asks for the same configuration. *)

val prewarm : ?jobs:int -> run list -> unit
(** Dedupe and execute through {!Pool}.  Failures (chaos faults,
    watchdog) are swallowed: a failing run publishes nothing, and the
    owning driver cell will re-run it under {!Robust.cell} with proper
    retry/classify/report behavior. *)
