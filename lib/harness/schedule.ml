(* Global deduplicating cell scheduler; see schedule.mli.  The only
   invariant that matters here: [execute] must reconstruct the exact
   transform a driver cell will use — same spec values, same variant
   constructor — so the transformed code digests (and therefore the
   cache keys) coincide. *)

type variant =
  | Exhaustive
  | Full_dup
  | Partial_dup
  | No_dup
  | Yp_opt
  | Checks_only of { entries : bool; backedges : bool }

type run =
  | Baseline of { bench : string; scale : int option }
  | Instrumented of {
      bench : string;
      scale : int option;
      variant : variant;
      specs : string list;
      trigger : Core.Sampler.trigger;
      timer_period : int option;
    }

let baseline ?scale bench = Baseline { bench; scale }

let instrumented ?scale ?(trigger = Core.Sampler.Never) ?timer_period ~variant
    ~specs bench =
  Instrumented { bench; scale; variant; specs; trigger; timer_period }

let spec_of_name = function
  | "call-edge" -> Core.Spec.call_edge
  | "field-access" -> Core.Spec.field_access
  | s -> invalid_arg ("Schedule: unknown instrumentation spec " ^ s)

(* a single name stays a bare spec (drivers pass [Core.Spec.call_edge]
   directly, not a 1-element combine) *)
let spec_of = function
  | [ one ] -> spec_of_name one
  | names -> Core.Spec.combine (List.map spec_of_name names)

let transform_of variant specs =
  match variant with
  | Exhaustive -> Core.Transform.exhaustive (spec_of specs)
  | Full_dup -> Core.Transform.full_dup (spec_of specs)
  | Partial_dup -> Core.Transform.partial_dup (spec_of specs)
  | No_dup -> Core.Transform.no_dup (spec_of specs)
  | Yp_opt -> Core.Transform.full_dup_yieldpoint_opt (spec_of specs)
  | Checks_only { entries; backedges } ->
      Core.Transform.checks_only ~entries ~backedges

let execute = function
  | Baseline { bench; scale } ->
      ignore
        (Measure.run_baseline
           (Measure.prepare ?scale (Workloads.Suite.find bench)))
  | Instrumented { bench; scale; variant; specs; trigger; timer_period } ->
      let build = Measure.prepare ?scale (Workloads.Suite.find bench) in
      ignore
        (Measure.run_transformed ~trigger ?timer_period
           ~transform:(transform_of variant specs)
           build)

let dedupe runs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r then false
      else begin
        Hashtbl.add seen r ();
        true
      end)
    runs

let prewarm ?jobs runs =
  let unique = dedupe runs in
  let progress =
    Pool.Progress.create ~label:"prewarm" ~total:(List.length unique) ()
  in
  ignore
    (Pool.map ?jobs
       (fun r ->
         (* a failing run (chaos fault, watchdog) publishes nothing;
            the owning driver cell re-runs it under Robust.cell *)
         (try execute r with _ -> ());
         Pool.Progress.step progress)
       unique);
  Pool.Progress.finish progress
