module Lir = Ir.Lir

type site =
  | At_entry
  | Before_instr of Lir.label * int
  | On_edge of Lir.label * Lir.label

type insertion = { site : site; op : Lir.instrument_op }

type t = { spec_name : string; plan : Lir.func -> insertion list }

let call_edge =
  {
    spec_name = "call-edge";
    plan =
      (fun _f ->
        [ { site = At_entry; op = Lir.mk_op "call_edge" Lir.P_unit } ]);
  }

let field_access =
  {
    spec_name = "field-access";
    plan =
      (fun f ->
        let acc = ref [] in
        for l = 0 to Lir.num_blocks f - 1 do
          let b = Lir.block f l in
          if b.Lir.role <> Lir.Dead then
            Array.iteri
              (fun i instr ->
                match instr with
                | Lir.Get_field (_, _, fld) ->
                    acc :=
                      {
                        site = Before_instr (l, i);
                        op = Lir.mk_op "field_access" (Lir.P_field (fld, false));
                      }
                      :: !acc
                | Lir.Put_field (_, fld, _) ->
                    acc :=
                      {
                        site = Before_instr (l, i);
                        op = Lir.mk_op "field_access" (Lir.P_field (fld, true));
                      }
                      :: !acc
                | _ -> ())
              b.Lir.instrs
        done;
        List.rev !acc);
  }

let edge_profile =
  {
    spec_name = "edge-profile";
    plan =
      (fun f ->
        List.map
          (fun (u, v) ->
            {
              site = On_edge (u, v);
              op = Lir.mk_op "edge" (Lir.P_edge (u, v));
            })
          (Ir.Cfg.edges f));
  }

let value_profile =
  {
    spec_name = "value-profile";
    plan =
      (fun f ->
        let acc = ref [] in
        for l = 0 to Lir.num_blocks f - 1 do
          let b = Lir.block f l in
          if b.Lir.role <> Lir.Dead then
            Array.iteri
              (fun i instr ->
                match instr with
                | Lir.Call { args = a0 :: _; site = s; _ } ->
                    acc :=
                      {
                        site = Before_instr (l, i);
                        op = Lir.mk_op "value" (Lir.P_value (a0, s));
                      }
                      :: !acc
                | _ -> ())
              b.Lir.instrs
        done;
        List.rev !acc);
  }

let combine specs =
  {
    spec_name = String.concat "+" (List.map (fun s -> s.spec_name) specs);
    plan = (fun f -> List.concat_map (fun s -> s.plan f) specs);
  }

let plan_for t f = t.plan f
