type trigger =
  | Counter of { interval : int; jitter : int }
  | Counter_per_thread of { interval : int }
  | Timer_bit
  | Always
  | Never

type t = {
  mutable trigger : trigger;
  mutable counter : int;
  thread_counters : (int, int ref) Hashtbl.t;
  mutable bit : bool;
  mutable enabled : bool;
  mutable rng : int;
  mutable fired : int;
}

let create trigger =
  let counter =
    match trigger with
    | Counter { interval; _ } | Counter_per_thread { interval } -> interval
    | _ -> 0
  in
  {
    trigger;
    counter;
    thread_counters = Hashtbl.create 4;
    bit = false;
    enabled = true;
    rng = 0x0BADCAFE;
    fired = 0;
  }

let next_jitter t span =
  t.rng <- ((t.rng * 1103515245) + 12345) land 0x3FFFFFFF;
  t.rng mod ((2 * span) + 1) - span

let reset_value t =
  match t.trigger with
  | Counter { interval; jitter } ->
      if jitter > 0 then max 1 (interval + next_jitter t jitter) else interval
  | Counter_per_thread { interval } -> interval
  | _ -> 0

let fire t tid =
  if not t.enabled then false
  else
    match t.trigger with
    | Always ->
        t.fired <- t.fired + 1;
        true
    | Never -> false
    | Counter _ ->
        if t.counter <= 0 then begin
          t.fired <- t.fired + 1;
          t.counter <- reset_value t;
          t.counter <- t.counter - 1;
          true
        end
        else begin
          t.counter <- t.counter - 1;
          false
        end
    | Counter_per_thread _ ->
        let c =
          match Hashtbl.find_opt t.thread_counters tid with
          | Some c -> c
          | None ->
              let c = ref (reset_value t) in
              Hashtbl.add t.thread_counters tid c;
              c
        in
        if !c <= 0 then begin
          t.fired <- t.fired + 1;
          c := reset_value t - 1;
          true
        end
        else begin
          decr c;
          false
        end
    | Timer_bit ->
        if t.bit then begin
          t.bit <- false;
          t.fired <- t.fired + 1;
          true
        end
        else false

let on_timer_tick t =
  match t.trigger with Timer_bit -> t.bit <- true | _ -> ()

let set_interval t interval =
  (match t.trigger with
  | Counter { jitter; _ } -> t.trigger <- Counter { interval; jitter }
  | Counter_per_thread _ -> t.trigger <- Counter_per_thread { interval }
  | _ -> ());
  t.counter <- min t.counter interval;
  (* per-thread countdowns must be clamped too, or a mid-run widening
     followed by a narrowing leaves stale long countdowns behind and the
     next sample drifts past the new interval *)
  Hashtbl.iter (fun _ c -> c := min !c interval) t.thread_counters

let interval t =
  match t.trigger with
  | Counter { interval; _ } | Counter_per_thread { interval } -> Some interval
  | Timer_bit | Always | Never -> None

let disable t = t.enabled <- false
let enable t = t.enabled <- true
let samples_fired t = t.fired
