(** Trigger mechanisms and the runtime sampling state.

    The default trigger is the paper's compiler-inserted counter-based
    sampling (Figure 3):

    {v
      if (globalCounter <= 0) { takeSample(); globalCounter = resetValue; }
      globalCounter--;
    v}

    [fire] implements exactly that; the VM calls it once per executed
    check.  Alternatives reproduce section 2.1/4.6: a timer-set bit
    (inaccurate attribution), per-thread counters (no contention), and a
    randomized interval (the DCPI-style jitter discussed in section 4.4). *)

type trigger =
  | Counter of { interval : int; jitter : int }
      (** global counter; when [jitter > 0] each reset draws the next
          interval uniformly from [interval ± jitter] (deterministically) *)
  | Counter_per_thread of { interval : int }
  | Timer_bit  (** sample when the simulated timer has set the bit *)
  | Always  (** sample interval 1 — the paper's "perfect profile" config *)
  | Never  (** checks execute but never fire (framework-overhead configs) *)

type t

val create : trigger -> t

val fire : t -> int -> bool
(** [fire t tid] — the sample condition, with Figure 3's counter update. *)

val on_timer_tick : t -> unit
(** Wire to {!Vm.Interp.hooks.on_timer_tick}: sets the bit for
    [Timer_bit] triggers, no-op otherwise. *)

val set_interval : t -> int -> unit
(** Runtime tunability ("the tradeoff between overhead and accuracy
    [can] be adjusted easily at runtime").  Clamps the pending global
    and per-thread countdowns so the next sample is never further away
    than the new interval. *)

val interval : t -> int option
(** Current interval of a counter-based trigger; [None] for the
    non-counter triggers. *)

val disable : t -> unit
(** Sets the sample condition permanently false — the paper's way of
    retiring instrumented code that never exits. *)

val enable : t -> unit
val samples_fired : t -> int
