module Lir = Ir.Lir

type result = {
  func : Lir.func;
  static_checks : int;
  duplicated_blocks : int;
}

let count_checks (f : Lir.func) =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      if b.Lir.role <> Lir.Dead then begin
        (match b.Lir.term with Lir.Check _ -> incr n | _ -> ());
        Array.iter
          (function Lir.Guarded_instrument _ -> incr n | _ -> ())
          b.Lir.instrs
      end)
    f.Lir.blocks;
  !n

let count_dup (f : Lir.func) =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) -> if b.Lir.role = Lir.Dup then incr n)
    f.Lir.blocks;
  !n

let mk_result func =
  { func; static_checks = count_checks func; duplicated_blocks = count_dup func }

(* Split the plan by site kind. *)
let split_plan plan =
  let entry = ref [] and before = ref [] and edges = ref [] in
  List.iter
    (fun (ins : Spec.insertion) ->
      match ins.Spec.site with
      | Spec.At_entry -> entry := ins.Spec.op :: !entry
      | Spec.Before_instr (l, i) -> before := (l, i, ins.Spec.op) :: !before
      | Spec.On_edge (u, v) -> edges := ((u, v), ins.Spec.op) :: !edges)
    plan;
  (List.rev !entry, List.rev !before, List.rev !edges)

(* Insert ops before instructions, highest index first so earlier indices
   stay valid; ops sharing an index keep plan order. *)
let insert_before_ops f ~(relabel : Lir.label -> Lir.label) ~mk before =
  let by_label = Hashtbl.create 8 in
  List.iter
    (fun (l, i, op) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_label l) in
      Hashtbl.replace by_label l ((i, op) :: cur))
    before;
  Hashtbl.iter
    (fun l rev_ops ->
      let ops = List.rev rev_ops in
      (* group ops per index, preserving plan order within a group *)
      let by_idx = Hashtbl.create 8 in
      let idxs = ref [] in
      List.iter
        (fun (i, op) ->
          if not (Hashtbl.mem by_idx i) then idxs := i :: !idxs;
          Hashtbl.replace by_idx i
            (op :: Option.value ~default:[] (Hashtbl.find_opt by_idx i)))
        ops;
      let idxs = List.sort (fun a b -> compare b a) !idxs in
      List.iter
        (fun i ->
          let group = List.rev (Hashtbl.find by_idx i) in
          Ir.Edit.insert_before f (relabel l) i (List.map mk group))
        idxs)
    by_label

(* Entry ops go after a leading entry yieldpoint when present. *)
let insert_entry_ops f ~at ~mk ops =
  if ops <> [] then begin
    let b = Lir.block f at in
    let pos =
      if Array.length b.Lir.instrs > 0
         && b.Lir.instrs.(0) = Lir.Yieldpoint Lir.Yp_entry
      then 1
      else 0
    in
    Ir.Edit.insert_before f at pos (List.map mk ops)
  end

(* ------------------------------------------------------------------ *)
(* Exhaustive instrumentation (no framework)                           *)
(* ------------------------------------------------------------------ *)

let instrument_in_place ~mk spec f =
  let plan = Spec.plan_for spec f in
  let f = Lir.copy_func f in
  let entry_ops, before, edges = split_plan plan in
  insert_before_ops f ~relabel:Fun.id ~mk before;
  insert_entry_ops f ~at:f.Lir.entry ~mk entry_ops;
  List.iter
    (fun ((u, v), op) ->
      ignore
        (Ir.Edit.split_edge f ~src:u ~dst:v ~role:Lir.Orig ~instrs:[ mk op ]))
    edges;
  f

let exhaustive spec f =
  let f = instrument_in_place ~mk:(fun op -> Lir.Instrument op) spec f in
  Ir.Verify.check_exn f;
  mk_result f

(* ------------------------------------------------------------------ *)
(* No-Duplication (section 3.2)                                        *)
(* ------------------------------------------------------------------ *)

let no_dup spec f =
  let f = instrument_in_place ~mk:(fun op -> Lir.Guarded_instrument op) spec f in
  Ir.Verify.check_exn f;
  mk_result f

(* ------------------------------------------------------------------ *)
(* Checks only (Table 2 breakdown)                                     *)
(* ------------------------------------------------------------------ *)

let checks_only ~entries ~backedges f =
  let f = Lir.copy_func f in
  let bedges = Ir.Loops.retreating_edges f in
  if backedges then
    List.iter
      (fun (u, v) ->
        let c =
          Lir.add_block f
            {
              Lir.instrs = [||];
              term = Lir.Check { on_sample = v; fall = v };
              role = Lir.Check_block;
            }
        in
        let bu = Lir.block f u in
        Lir.set_block f u
          { bu with Lir.term = Ir.Edit.retarget_term bu.Lir.term ~from_:v ~to_:c })
      bedges;
  let f =
    if entries then begin
      let e =
        Lir.add_block f
          {
            Lir.instrs = [||];
            term = Lir.Check { on_sample = f.Lir.entry; fall = f.Lir.entry };
            role = Lir.Check_block;
          }
      in
      { f with Lir.entry = e }
    end
    else f
  in
  Ir.Verify.check_exn f;
  mk_result f

(* ------------------------------------------------------------------ *)
(* Full-Duplication (section 2)                                        *)
(* ------------------------------------------------------------------ *)

(* Returns the transformed function plus the orig<->dup correspondence
   needed by Partial-Duplication. *)
let full_dup_core spec f0 =
  let plan = Spec.plan_for spec f0 in
  let f = Lir.copy_func f0 in
  let bedges = Ir.Loops.retreating_edges f in
  let n_orig = Lir.num_blocks f in
  let mapping = Ir.Edit.clone_blocks f ~role:Lir.Dup (fun _ -> true) in
  let dup_of = Array.make n_orig (-1) in
  List.iter (fun (o, d) -> dup_of.(o) <- d) mapping;
  let orig_of = Hashtbl.create 16 in
  List.iter (fun (o, d) -> Hashtbl.replace orig_of d o) mapping;
  let entry_ops, before, edges = split_plan plan in
  (* all instrumentation goes into the duplicated code *)
  insert_before_ops f
    ~relabel:(fun l -> dup_of.(l))
    ~mk:(fun op -> Lir.Instrument op)
    before;
  insert_entry_ops f ~at:dup_of.(f.Lir.entry)
    ~mk:(fun op -> Lir.Instrument op)
    entry_ops;
  let backedge_ops, normal_edge_ops =
    List.partition (fun (e, _) -> List.mem e bedges) edges
  in
  List.iter
    (fun ((u, v), op) ->
      ignore
        (Ir.Edit.split_edge f ~src:dup_of.(u) ~dst:dup_of.(v) ~role:Lir.Dup
           ~instrs:[ Lir.Instrument op ]))
    normal_edge_ops;
  (* every backedge — in the checking code AND in the duplicated code —
     routes through one shared check: on a sample the next iteration runs
     in the duplicated code, otherwise in the checking code.  Routing the
     duplicated-code backedge through the check too means sample interval
     1 keeps execution in instrumented code permanently, so the Always
     trigger reproduces the perfect profile exactly.  Backedge-associated
     ops are attached to the transfer edge out of the duplicated code
     (section 2: "the instrumentation can be attached to the edge
     transferring control from the duplicated code to the checking
     code"). *)
  List.iter
    (fun (u, v) ->
      let du = dup_of.(u) and dv = dup_of.(v) in
      let c =
        Lir.add_block f
          {
            Lir.instrs = [||];
            term = Lir.Check { on_sample = dup_of.(v); fall = v };
            role = Lir.Check_block;
          }
      in
      let bu = Lir.block f u in
      Lir.set_block f u
        { bu with Lir.term = Ir.Edit.retarget_term bu.Lir.term ~from_:v ~to_:c };
      let ops =
        List.filter_map
          (fun (e, op) -> if e = (u, v) then Some (Lir.Instrument op) else None)
          backedge_ops
      in
      let target =
        if ops = [] then c
        else
          Lir.add_block f
            { Lir.instrs = Array.of_list ops; term = Lir.Goto c; role = Lir.Dup }
      in
      let bdu = Lir.block f du in
      Lir.set_block f du
        {
          bdu with
          Lir.term = Ir.Edit.retarget_term bdu.Lir.term ~from_:dv ~to_:target;
        })
    bedges;
  (* check on method entry *)
  let e =
    Lir.add_block f
      {
        Lir.instrs = [||];
        term = Lir.Check { on_sample = dup_of.(f.Lir.entry); fall = f.Lir.entry };
        role = Lir.Check_block;
      }
  in
  let f = { f with Lir.entry = e } in
  (f, dup_of, orig_of)

let full_dup spec f0 =
  let f, _, _ = full_dup_core spec f0 in
  Ir.Verify.check_exn f;
  mk_result f

(* ------------------------------------------------------------------ *)
(* Yieldpoint optimization (section 4.5)                               *)
(* ------------------------------------------------------------------ *)

let full_dup_yieldpoint_opt spec f0 =
  let f, _, _ = full_dup_core spec f0 in
  (* strip yieldpoints from the checking code (Orig and Check blocks);
     the duplicated code keeps its copies, and a finite sample interval
     keeps the distance between executed yieldpoints finite *)
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    match b.Lir.role with
    | Lir.Orig | Lir.Check_block ->
        Ir.Edit.filter_instrs f l (function
          | Lir.Yieldpoint _ -> false
          | _ -> true)
    | Lir.Dup | Lir.Dead -> ()
  done;
  Ir.Verify.check_exn f;
  mk_result f

(* ------------------------------------------------------------------ *)
(* Partial-Duplication (section 3.1)                                   *)
(* ------------------------------------------------------------------ *)

let partial_dup spec f0 =
  let f, _, orig_of = full_dup_core spec f0 in
  let n = Lir.num_blocks f in
  let is_dup l = (Lir.block f l).Lir.role = Lir.Dup in
  let is_instr l = is_dup l && Lir.is_instrumented_block (Lir.block f l) in
  let dup_succs l = List.filter is_dup (Ir.Cfg.succs f l) in
  let preds = Ir.Cfg.predecessors f in
  let dup_preds l = List.filter is_dup preds.(l) in
  (* forward reachability from instrumented nodes within the dup DAG *)
  let flood next seeds =
    let seen = Array.make n false in
    let rec go l =
      if not seen.(l) then begin
        seen.(l) <- true;
        List.iter go (next l)
      end
    in
    List.iter go seeds;
    seen
  in
  let instr_nodes =
    List.filter is_instr (List.init n Fun.id)
  in
  let after_instr = flood dup_succs instr_nodes in
  let before_instr = flood dup_preds instr_nodes in
  let is_top l = is_dup l && (not (is_instr l)) && not after_instr.(l) in
  let is_bottom l = is_dup l && (not (is_instr l)) && not before_instr.(l) in
  let removed l = is_top l || is_bottom l in
  (* the checking-code counterpart of a dup node; instrumented edge-op
     blocks have none and are resolved through their successor chain *)
  let rec checking_target l =
    match Hashtbl.find_opt orig_of l with
    | Some o -> o
    | None ->
        if is_dup l then
          match Ir.Cfg.succs f l with
          | [ s ] -> checking_target s
          | _ -> invalid_arg "Partial_dup: unresolvable dup block"
        else l
  in
  (* rule: checks branching to a removed node are themselves removed *)
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    match b.Lir.term with
    | Lir.Check { on_sample; fall } when b.Lir.role <> Lir.Dead && removed on_sample ->
        Lir.set_block f l { b with Lir.term = Lir.Goto fall }
    | _ -> ()
  done;
  (* edges from kept dup nodes into bottom nodes return to checking code *)
  for l = 0 to n - 1 do
    if is_dup l && not (removed l) then begin
      let b = Lir.block f l in
      let term =
        Lir.map_term_labels
          (fun t -> if is_dup t && removed t then checking_target t else t)
          b.Lir.term
      in
      Lir.set_block f l { b with Lir.term }
    end
  done;
  (* edges top-node -> kept dup node get a check on the corresponding
     checking-code edge; several such additions on one checking edge chain *)
  let additions = Hashtbl.create 8 in
  (* (u, ct) -> sample targets *)
  for t = 0 to n - 1 do
    if is_top t then
      List.iter
        (fun s ->
          if not (removed s) then begin
            let u = checking_target t and ct = checking_target s in
            let key = (u, ct) in
            Hashtbl.replace additions key
              (s :: Option.value ~default:[] (Hashtbl.find_opt additions key))
          end)
        (dup_succs t)
  done;
  Hashtbl.iter
    (fun (u, ct) targets ->
      let first =
        List.fold_left
          (fun fall s ->
            Lir.add_block f
              {
                Lir.instrs = [||];
                term = Lir.Check { on_sample = s; fall };
                role = Lir.Check_block;
              })
          ct (List.rev targets)
      in
      let bu = Lir.block f u in
      Lir.set_block f u
        { bu with Lir.term = Ir.Edit.retarget_term bu.Lir.term ~from_:ct ~to_:first })
    additions;
  (* kill the removed nodes *)
  for l = 0 to n - 1 do
    if is_dup l && removed l then Lir.set_block f l Lir.dead_block
  done;
  ignore (Ir.Cfg.remove_unreachable f);
  Ir.Verify.check_exn f;
  mk_result f
