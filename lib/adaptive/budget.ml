(* Overhead-budget governor: the pure decision core of the adaptive
   loop (DESIGN.md §9).

   The governor watches one number — the cumulative instrumentation
   overhead, [100 * icycles / (cycles - icycles)] — and steers it toward
   a user-supplied budget by pulling two reversible levers:

   - per-method instrumentation on/off ([Strip] / [Restore]): the
     controller swaps a method between its instrumented lineage and a
     version with the unconditional [Instrument] ops removed;

   - sampling dilation ([Dilate] / [Narrow]): the simulated timer
     period and the sampler's counter interval are scaled by a bounded
     power of two, trading profile freshness for fewer samples.

   What the governor can NEVER do — by construction, the action type
   has no arm for it — is disable the paper-mandated sampling checks:
   [Check] terminators, [Guarded_instrument] checks and yieldpoints
   survive every action, so Property 1 (samples see intact
   instrumentation) holds at every operating point.

   The policy is a hysteresis band: outside [budget ± hysteresis] it
   sheds (strip first — the big lever — then dilate) or regains
   (narrow first — the cheap undo — then restore); inside the band it
   holds.  Each [step] returns at most one action, so the controller
   applies one reversible change per poll and the cumulative metric has
   a chance to respond before the next decision.  Everything here is
   deterministic: no clocks, no randomness — decisions depend only on
   the observed (cycles, icycles) trace. *)

type action =
  | Strip  (** turn instrumentation off for one more (hot) method *)
  | Restore  (** turn it back on for the most recently stripped one *)
  | Dilate of int  (** new scale: timer period and sampler interval x scale *)
  | Narrow of int  (** new (smaller) scale *)
  | Hold

type t = {
  budget : float;
  hysteresis : float;
  max_scale : int;
  mutable scale : int;
}

let create ?(hysteresis = 1.0) ?(max_scale = 8) ~budget_pct () =
  if budget_pct <= 0.0 then invalid_arg "Budget.create: budget_pct <= 0";
  if hysteresis < 0.0 then invalid_arg "Budget.create: hysteresis < 0";
  if max_scale < 1 then invalid_arg "Budget.create: max_scale < 1";
  { budget = budget_pct; hysteresis; max_scale; scale = 1 }

let overhead ~cycles ~icycles =
  if icycles <= 0 then 0.0
  else 100.0 *. float_of_int icycles /. float_of_int (max 1 (cycles - icycles))

let scale t = t.scale
let budget_pct t = t.budget

let step t ~overhead ~can_strip ~can_restore =
  if overhead > t.budget +. t.hysteresis then
    if can_strip then Strip
    else if t.scale < t.max_scale then begin
      t.scale <- t.scale * 2;
      Dilate t.scale
    end
    else Hold
  else if overhead < t.budget -. t.hysteresis then
    if t.scale > 1 then begin
      t.scale <- t.scale / 2;
      Narrow t.scale
    end
    else if can_restore then Restore
    else Hold
  else Hold
