(** Online adaptive controller (DESIGN.md §9): closes the FDO loop
    inside the VM.

    Attach to a run with [Vm.Interp.run ~on_init:(Controller.on_init c)]
    — the controller then wakes at natural safepoints (timer checks and
    yieldpoints; no on-stack replacement), runs the overhead-budget
    governor ({!Budget}) and recompiles from the live sampled profile:
    hot sampled call edges are inlined and hot methods block-reordered
    through {!Opt.Fdo}, with new versions installed via
    {!Vm.Engine.hot_swap} at the next safepoint.

    Profile transparency: cloned edge/field ops keep their resolved
    slots and cloned call-edge ops are re-keyed through
    {!Profiles.Slots.mint_call_edge}, so with the governor off the
    decoded profile of an adaptive run is identical to the uninlined
    run's.  Decisions are deterministic — same (program, seed, config)
    gives the same decision log and final versions on both engines. *)

type config = {
  poll_period : int;  (** cycles between adaptive polls *)
  budget_pct : float option;  (** overhead budget in points; [None] = off *)
  fdo : bool;  (** inline + reorder from the live profile *)
  inline_threshold : int;  (** min sampled call-edge count to inline *)
  max_inline_size : int;  (** max callee size, in instruction words *)
  reorder_threshold : int;  (** min summed edge count to reorder a method *)
  hysteresis : float;  (** governor dead-band half-width, in points *)
}

val default : config

val config_digest : config -> string
(** Canonical one-line rendering, for run-cache keys. *)

type t

val create : ?config:config -> ?sampler:Core.Sampler.t -> Profiles.Slots.t -> t
(** The controller reads the live profile from the given slot-resolution
    instance (the run must record through its {!Profiles.Slots.recorder}).
    [sampler], when given, lets the governor dilate the sampling
    interval alongside the timer period. *)

val on_init : t -> Vm.Machine.state -> unit
(** Pass as [Vm.Interp.run]'s [?on_init].  Arms the machine's adaptive
    poll; until then (and whenever no controller is attached) the only
    cost is one always-false compare per safepoint. *)

val decisions : t -> string list
(** The decision log, oldest first — one rendered line per action
    (inline/reorder/strip/restore/dilate/narrow).  Equal logs across
    two runs witness identical adaptive behavior (test_adaptive.ml). *)

val polls : t -> int
