(** Overhead-budget governor: the pure decision core of the adaptive
    loop (DESIGN.md §9).

    Steers the cumulative instrumentation overhead — {!overhead}, the
    instrumentation cycles as a percentage of application cycles —
    toward a budget with a hysteresis-band policy over two reversible
    levers: per-method instrumentation on/off and bounded power-of-two
    sampling dilation.  The action type has no arm for disabling the
    sampling checks themselves, so the paper's Property 1 machinery
    survives every operating point by construction.

    Pure and deterministic: decisions depend only on the observed
    (cycles, icycles) trace, never on clocks or randomness — the same
    trace always produces the same action sequence (test/test_budget.ml
    drives synthetic traces through it). *)

type action =
  | Strip  (** turn instrumentation off for one more (hot) method *)
  | Restore  (** turn it back on for the most recently stripped one *)
  | Dilate of int
      (** scale the timer period and sampler interval by this (new) factor *)
  | Narrow of int  (** new, smaller scale *)
  | Hold

type t

val create : ?hysteresis:float -> ?max_scale:int -> budget_pct:float -> unit -> t
(** [hysteresis] (default 1.0 point) is the half-width of the dead band
    around the budget; [max_scale] (default 8) bounds dilation.  Raises
    [Invalid_argument] on a non-positive budget. *)

val overhead : cycles:int -> icycles:int -> float
(** [100 * icycles / (cycles - icycles)]: instrumentation cost relative
    to the application cycles that remain after subtracting it — the
    quantity the budget is expressed in. *)

val step : t -> overhead:float -> can_strip:bool -> can_restore:bool -> action
(** One decision.  Above the band: [Strip] while the controller has
    candidates, then [Dilate] up to [max_scale].  Below the band:
    [Narrow] back to scale 1 first (the cheap undo), then [Restore].
    Inside the band: [Hold].  At most one action per call, so the
    cumulative metric can respond between decisions. *)

val scale : t -> int
(** Current dilation factor (1 when not dilated). *)

val budget_pct : t -> float
