(* Online adaptive controller (DESIGN.md §9): closes the FDO loop
   inside the VM.

   Attached to a run via [Vm.Interp.run ?on_init], the controller arms
   the machine's adaptive poll ([Machine.state.next_adaptive] /
   [adaptive_poll]) and from then on wakes at natural safepoints — the
   timer check and the yieldpoints, where no frame is mid-instruction
   and the paper's invariants already hold, so no on-stack replacement
   is ever needed.  Each poll it

   1. runs the overhead-budget governor ({!Budget}) against the live
      (cycles, icycles) counters and applies at most one action:
      swapping a hot method to/from a stripped version
      ({!Opt.Fdo.strip_instrumentation}) or dilating/narrowing the
      timer period and sampler interval;

   2. reads the live sampled profile from the flat-slot recorder
      ({!Profiles.Slots.live_call_edges} / [live_edge_counts]) and
      recompiles: hot sampled call edges are inlined
      ({!Opt.Fdo.inline_static_call}, with cloned call-edge ops re-keyed
      through {!Profiles.Slots.mint_call_edge} so the decoded profile is
      indistinguishable from the uninlined run), and methods with hot
      edge profiles get a hot-first block layout ({!Opt.Fdo.hot_layout}).

   New versions are verified ([Ir.Verify.check_exn]), laid out at fresh
   code addresses (a bump cursor starting at the program's
   [total_code_words], so no version ever aliases another in the
   i-cache model) and installed with {!Vm.Engine.hot_swap}: future
   calls run the new version, activations alive at the swap finish on
   the version their frame pins.

   Controller work itself is not metered by the simulated cost model —
   it stands in for the JVM's concurrent recompilation thread; what IS
   metered, and what the governor steers, is the instrumentation cost
   the installed code pays.

   Determinism: polls happen at deterministic cycle counts, the live
   profile reads return first-touch/first-event order, and ranking ties
   break by method id — so the same (program, seed, config) produces
   the identical decision log and final method versions on both
   engines.  With the controller absent, the only residue is one
   always-false integer compare per safepoint. *)

module Lir = Ir.Lir
module Program = Vm.Program
module Machine = Vm.Machine
module Fdo = Opt.Fdo
module Slots = Profiles.Slots

type config = {
  poll_period : int;  (* cycles between polls *)
  budget_pct : float option;  (* None: governor off *)
  fdo : bool;  (* inline + reorder from the live profile *)
  inline_threshold : int;  (* min sampled call-edge count *)
  max_inline_size : int;  (* max callee size, in instruction words *)
  reorder_threshold : int;  (* min summed edge count per method *)
  hysteresis : float;  (* governor dead-band half-width, in points *)
}

let default =
  {
    poll_period = 2_000;
    budget_pct = None;
    fdo = true;
    inline_threshold = 4;
    max_inline_size = 48;
    reorder_threshold = 16;
    hysteresis = 1.0;
  }

(* canonical rendering for run-cache keys (Harness.Digest) *)
let config_digest c =
  Printf.sprintf "poll=%d;budget=%s;fdo=%b;inline=%d;size=%d;reorder=%d;hyst=%g"
    c.poll_period
    (match c.budget_pct with None -> "none" | Some b -> Printf.sprintf "%g" b)
    c.fdo c.inline_threshold c.max_inline_size c.reorder_threshold c.hysteresis

(* Per-method version lineage.  [lineage] is the current instrumented
   version (base program code, plus any inlining/reordering applied);
   [stripped] caches its instrumentation-free twin and is invalidated
   whenever the lineage changes. *)
type mstate = {
  mutable lineage : Program.meth;
  mutable stripped : Program.meth option;
  mutable is_stripped : bool;
  mutable reordered : bool;
  mutable has_instr : bool;  (* lineage has plain Instrument ops *)
}

type t = {
  cfg : config;
  slots : Slots.t;
  sampler : Core.Sampler.t option;
  gov : Budget.t option;
  mutable ms : mstate array;  (* by method id; set at attach *)
  mutable cursor : int;  (* fresh code-address base *)
  mutable base_timer : int;  (* timer period at attach *)
  mutable base_interval : int option;  (* sampler interval at attach *)
  mutable strip_stack : int list;  (* stripped method ids, newest first *)
  inlined : (int * int * int, unit) Hashtbl.t;  (* (caller, site, callee) *)
  mutable log : string list;  (* decision log, newest first *)
  mutable polls : int;
  mutable swapped : bool;  (* a hot_swap happened during this poll *)
  mutable trace_saved : int option;  (* threshold of a paused trace tier *)
}

let create ?(config = default) ?sampler slots =
  {
    cfg = config;
    slots;
    sampler;
    gov =
      Option.map
        (fun budget_pct ->
          Budget.create ~hysteresis:config.hysteresis ~budget_pct ())
        config.budget_pct;
    ms = [||];
    cursor = 0;
    base_timer = 0;
    base_interval = None;
    strip_stack = [];
    inlined = Hashtbl.create 16;
    log = [];
    polls = 0;
    swapped = false;
    trace_saved = None;
  }

let decisions t = List.rev t.log
let polls t = t.polls
let logd t fmt = Printf.ksprintf (fun s -> t.log <- s :: t.log) fmt

(* ------------------------------------------------------------------ *)
(* Version installation                                                 *)
(* ------------------------------------------------------------------ *)

let layout_fresh t f =
  let addr, next = Program.layout_func f t.cursor in
  t.cursor <- next;
  addr

(* Rebuild [stripped] from the current lineage on demand. *)
let stripped_version t (ms : mstate) =
  match ms.stripped with
  | Some m -> m
  | None ->
      let sf = Fdo.strip_instrumentation ms.lineage.Program.func in
      Ir.Verify.check_exn sf;
      let m =
        { ms.lineage with Program.func = sf; code_addr = layout_fresh t sf }
      in
      ms.stripped <- Some m;
      m

(* Swap in whichever variant the strip state selects. *)
let activate t st (ms : mstate) =
  let m = if ms.is_stripped then stripped_version t ms else ms.lineage in
  t.swapped <- true;
  Vm.Engine.hot_swap st m

(* Replace the instrumented lineage (after inlining) and re-install. *)
let install_lineage t st (ms : mstate) nf =
  Ir.Verify.check_exn nf;
  ms.lineage <-
    { ms.lineage with Program.func = nf; code_addr = layout_fresh t nf };
  ms.stripped <- None;
  ms.has_instr <- Fdo.has_plain_instrument nf;
  activate t st ms

(* ------------------------------------------------------------------ *)
(* Live profile aggregation                                             *)
(* ------------------------------------------------------------------ *)

(* (method, dst label) -> summed incoming edge count, and per-method
   totals used to rank methods hottest-first (ties by id: deterministic). *)
let edge_weights t =
  let into = Hashtbl.create 64 in
  let total = Hashtbl.create 16 in
  List.iter
    (fun (mid, _src, dst, c) ->
      let bump tbl k =
        Hashtbl.replace tbl k
          (c + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      in
      bump into (mid, dst);
      bump total mid)
    (Slots.live_edge_counts t.slots);
  (into, total)

let hottest_first t total =
  let ids = List.init (Array.length t.ms) Fun.id in
  let w mid = Option.value ~default:0 (Hashtbl.find_opt total mid) in
  List.stable_sort (fun a b -> compare (w b) (w a)) ids

(* ------------------------------------------------------------------ *)
(* Governor actions                                                     *)
(* ------------------------------------------------------------------ *)

let apply_scale t st scale =
  Machine.set_timer_period st (t.base_timer * scale);
  match (t.sampler, t.base_interval) with
  | Some s, Some i -> Core.Sampler.set_interval s (i * scale)
  | _ -> ()

let governor_step t st gov =
  let oh =
    Budget.overhead ~cycles:st.Machine.cycles ~icycles:st.Machine.icycles
  in
  (* fast path: inside the dead band nothing can happen *)
  if Float.abs (oh -. Budget.budget_pct gov) > t.cfg.hysteresis then begin
    let strip_candidates =
      ref
        (List.filter
           (fun mid ->
             let ms = t.ms.(mid) in
             (not ms.is_stripped) && ms.has_instr)
           (hottest_first t (snd (edge_weights t))))
    in
    let apply = function
      | Budget.Hold -> ()
      | Budget.Strip ->
          let mid = List.hd !strip_candidates in
          strip_candidates := List.tl !strip_candidates;
          let ms = t.ms.(mid) in
          ms.is_stripped <- true;
          t.strip_stack <- mid :: t.strip_stack;
          activate t st ms;
          logd t "strip m%d oh=%.1f" mid oh
      | Budget.Restore ->
          let mid = List.hd t.strip_stack in
          t.strip_stack <- List.tl t.strip_stack;
          let ms = t.ms.(mid) in
          ms.is_stripped <- false;
          activate t st ms;
          logd t "restore m%d oh=%.1f" mid oh
      | Budget.Dilate scale ->
          apply_scale t st scale;
          logd t "dilate x%d oh=%.1f" scale oh
      | Budget.Narrow scale ->
          apply_scale t st scale;
          logd t "narrow x%d oh=%.1f" scale oh
    in
    (* Proportional shedding: the cumulative metric can't move within a
       poll, so when far over budget one action per poll converges too
       slowly for short runs — allow roughly (overhead / budget) actions
       per poll.  Regaining stays gentle (one per poll): undershoot is
       cheap, overshoot is the thing the budget exists to prevent. *)
    let max_actions =
      if oh > Budget.budget_pct gov then
        max 1 (int_of_float (oh /. Budget.budget_pct gov))
      else 1
    in
    let rec drive n =
      if n > 0 then
        match
          Budget.step gov ~overhead:oh
            ~can_strip:(!strip_candidates <> [])
            ~can_restore:(t.strip_stack <> [])
        with
        | Budget.Hold -> ()
        | act ->
            apply act;
            drive (n - 1)
    in
    drive max_actions
  end

(* ------------------------------------------------------------------ *)
(* Feedback-directed recompilation                                      *)
(* ------------------------------------------------------------------ *)

(* Inline every surviving copy of call site [site] (the transforms
   duplicate call instructions into Dup blocks under the same site id;
   the callee is a leaf, so no new copies can appear). *)
let inline_site t (ms : mstate) ~caller ~site ~callee callee_f =
  let mint op =
    let op' = { op with Lir.slot = -1 } in
    Slots.mint_call_edge t.slots ~caller ~site ~callee op';
    op'
  in
  let rec go f n =
    if n >= 8 then f
    else
      match Fdo.find_call_site f ~site ~target:callee_f.Lir.fname with
      | None -> f
      | Some at ->
          go (Fdo.inline_static_call f ~callee:callee_f ~at ~mint) (n + 1)
  in
  let f0 = ms.lineage.Program.func in
  let f = go f0 0 in
  if f == f0 then None else Some f

let fdo_step t st =
  (* inline hot sampled call edges *)
  List.iter
    (fun (caller, site, callee, count) ->
      if
        caller >= 0 && caller <> callee
        && count >= t.cfg.inline_threshold
        && not (Hashtbl.mem t.inlined (caller, site, callee))
      then begin
        (* decided once per edge, inlinable or not: the decision log is
           the determinism witness and retrying can't change the answer *)
        Hashtbl.add t.inlined (caller, site, callee) ();
        let ms = t.ms.(caller) in
        let callee_f = t.ms.(callee).lineage.Program.func in
        if Fdo.inlinable ~max_size:t.cfg.max_inline_size callee_f then
          match inline_site t ms ~caller ~site ~callee callee_f with
          | None -> ()
          | Some nf ->
              install_lineage t st ms nf;
              logd t "inline m%d@%d <- m%d n=%d" caller site callee count
      end)
    (Slots.live_call_edges t.slots);
  (* hot-first block layout for methods with hot edge profiles *)
  let into, total = edge_weights t in
  List.iter
    (fun mid ->
      let ms = t.ms.(mid) in
      if
        (not ms.reordered)
        && Option.value ~default:0 (Hashtbl.find_opt total mid)
           >= t.cfg.reorder_threshold
      then begin
        ms.reordered <- true;
        let weight l =
          Option.value ~default:0 (Hashtbl.find_opt into (mid, l))
        in
        let relayout (m : Program.meth) =
          let addr, next = Fdo.hot_layout m.Program.func ~weight t.cursor in
          t.cursor <- next;
          { m with Program.code_addr = addr }
        in
        ms.lineage <- relayout ms.lineage;
        ms.stripped <- Option.map relayout ms.stripped;
        activate t st ms;
        logd t "reorder m%d w=%d" mid
          (Option.value ~default:0 (Hashtbl.find_opt total mid))
      end)
    (hottest_first t total)

(* ------------------------------------------------------------------ *)
(* The poll                                                             *)
(* ------------------------------------------------------------------ *)

let poll t st =
  t.polls <- t.polls + 1;
  (* Trace tier as a governor actuation: a poll that installed new code
     pauses tracing until the next poll — hot_swap already invalidated
     every trace in the swapped methods (Vm.Trace), so this only stops
     the tier from re-recording loops the controller is still actively
     reshaping.  The controller writes the threshold knob and never
     reads trace state: decisions depend only on the knob's value, which
     is set identically under both engines (Ref simply never consults
     it), so decision logs stay engine-invariant. *)
  (match t.trace_saved with
  | Some thr ->
      t.trace_saved <- None;
      st.Machine.trace_threshold <- thr;
      logd t "trace-resume thr=%d" thr
  | None -> ());
  t.swapped <- false;
  (match t.gov with Some g -> governor_step t st g | None -> ());
  if t.cfg.fdo then fdo_step t st;
  if t.swapped && st.Machine.trace_threshold < max_int then begin
    t.trace_saved <- Some st.Machine.trace_threshold;
    st.Machine.trace_threshold <- max_int;
    logd t "trace-pause"
  end;
  st.Machine.next_adaptive <- st.Machine.cycles + t.cfg.poll_period

let on_init t (st : Machine.state) =
  let prog = st.Machine.prog in
  t.ms <-
    Array.map
      (fun m ->
        {
          lineage = m;
          stripped = None;
          is_stripped = false;
          reordered = false;
          has_instr = Fdo.has_plain_instrument m.Program.func;
        })
      prog.Program.methods;
  t.cursor <- prog.Program.total_code_words;
  t.base_timer <- st.Machine.timer_period;
  t.base_interval <- Option.join (Option.map Core.Sampler.interval t.sampler);
  st.Machine.adaptive_poll <- poll t;
  st.Machine.next_adaptive <- st.Machine.cycles + t.cfg.poll_period;
  (* arm on-stack frame migration: long-running activations re-pin to
     freshly-installed versions at their next yieldpoint, so stripping
     and inlining reach the benchmark main loop too (no OSR needed) *)
  st.Machine.migration <- true
