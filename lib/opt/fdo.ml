(* Feedback-directed transforms for the adaptive tier (lib/adaptive).

   Three profile-guided rewrites over instrumented LIR, applied mid-run
   by the adaptive controller and hot-swapped into the method table at a
   safepoint:

   - [inline_static_call]: splice a (leaf) callee body into a static
     call site.  Unlike the ahead-of-time [Inline] pass this variant is
     profile-preserving: cloned blocks keep the callee's block roles
     (so sampling checks stay out of duplicated code), cloned
     instrumentation ops keep their resolved slots (edge and field
     events keep recording into the callee's original counters), and
     call-edge ops — whose recording key is the frame's caller/site,
     wrong once the frame is gone — are rewritten through the caller's
     [mint] callback to a fresh event with the statically-known key.

   - [strip_instrumentation]: remove unconditional [Instrument] ops.
     The paper-mandated sampling machinery — [Check] terminators,
     [Guarded_instrument] checks and yieldpoints — is never removed, so
     the sample/fire sequence (and therefore scheduling and any
     remaining profile) is untouched; only the per-event recording cost
     disappears.  This is the overhead-budget governor's big lever.

   - [hot_layout]: a layout-only block reorder from live edge counts —
     hot blocks first, so the simulated i-cache sees the dense hot
     path.  Returns a fresh per-label address array; the function body
     is untouched (observables other than cycles/i-cache cannot move).

   Every rewrite returns a fresh func (callers hold the old version for
   frames that still run it) and is followed by [Ir.Verify.check_exn]
   in the controller and the property suite. *)

module Lir = Ir.Lir

let live_iter f g =
  for l = 0 to Lir.num_blocks f - 1 do
    let b = Lir.block f l in
    if b.Lir.role <> Lir.Dead then g l b
  done

(* ------------------------------------------------------------------ *)
(* Inline gates                                                         *)
(* ------------------------------------------------------------------ *)

let is_leaf (f : Lir.func) =
  let ok = ref true in
  live_iter f (fun _ b ->
      Array.iter
        (function Lir.Call _ -> ok := false | _ -> ())
        b.Lir.instrs);
  !ok

(* Ops whose recording survives relocation into another method: edge and
   field events are statically keyed (the slot already names the method
   they were resolved in), call-edge events can be re-keyed by minting.
   Value/path/receiver/CCT events read the frame or a per-site table in
   ways a splice would corrupt, so their presence rejects the callee. *)
let relocatable_op (op : Lir.instrument_op) =
  match (op.Lir.hook, op.Lir.payload) with
  | "edge", Lir.P_edge _ -> true
  | "field_access", Lir.P_field _ -> true
  | "call_edge", Lir.P_unit -> true
  | _ -> false

let relocatable_only (f : Lir.func) =
  let ok = ref true in
  live_iter f (fun _ b ->
      Array.iter
        (function
          | Lir.Instrument op | Lir.Guarded_instrument op ->
              if not (relocatable_op op) then ok := false
          | _ -> ())
        b.Lir.instrs);
  !ok

let func_size (f : Lir.func) =
  let n = ref 0 in
  live_iter f (fun _ b -> n := !n + Array.length b.Lir.instrs + 1);
  !n

let inlinable ~max_size (callee : Lir.func) =
  is_leaf callee && func_size callee <= max_size && relocatable_only callee

(* First static call to [target] at bytecode site [site] in a live block
   of [f], as [(block, index)]. *)
let find_call_site (f : Lir.func) ~site ~target =
  let found = ref None in
  (try
     live_iter f (fun l b ->
         Array.iteri
           (fun i instr ->
             match instr with
             | Lir.Call { kind = Lir.Static; target = t; site = s; _ }
               when s = site && Lir.method_ref_equal t target ->
                 found := Some (l, i);
                 raise Exit
             | _ -> ())
           b.Lir.instrs)
   with Exit -> ());
  !found

(* ------------------------------------------------------------------ *)
(* Profile-preserving inline                                            *)
(* ------------------------------------------------------------------ *)

let inline_static_call (f : Lir.func) ~(callee : Lir.func) ~at:(bl, idx)
    ~(mint : Lir.instrument_op -> Lir.instrument_op) =
  let f = Lir.copy_func f in
  let b = Lir.block f bl in
  let dst, args, target =
    match b.Lir.instrs.(idx) with
    | Lir.Call { dst; kind = Lir.Static; target; args; _ } -> (dst, args, target)
    | _ -> invalid_arg "Fdo.inline_static_call: not a static call"
  in
  if not (Lir.method_ref_equal target callee.Lir.fname) then
    invalid_arg "Fdo.inline_static_call: callee mismatch";
  let reg_base = f.Lir.next_reg in
  f.Lir.next_reg <- f.Lir.next_reg + callee.Lir.next_reg;
  let rename_reg r = reg_base + r in
  let rename_op = function
    | Lir.Reg r -> Lir.Reg (rename_reg r)
    | Lir.Imm n -> Lir.Imm n
  in
  (* continuation: instructions after the call + the original terminator *)
  let n = Array.length b.Lir.instrs in
  let cont_instrs = Array.sub b.Lir.instrs (idx + 1) (n - idx - 1) in
  let cont =
    Lir.add_block f { Lir.instrs = cont_instrs; term = b.Lir.term; role = b.Lir.role }
  in
  (* clone callee blocks, keeping each block's own role: sampling checks
     stay in non-duplicated code wherever the call site lives *)
  let nblocks = Lir.num_blocks callee in
  let label_map = Array.make nblocks (-1) in
  for l = 0 to nblocks - 1 do
    let cb = Lir.block callee l in
    if cb.Lir.role <> Lir.Dead then label_map.(l) <- Lir.add_block f cb
  done;
  let rename_label l =
    assert (label_map.(l) >= 0);
    label_map.(l)
  in
  let rename_instr i =
    let mr r = rename_reg r in
    let mo = rename_op in
    match i with
    | Lir.Move (r, a) -> Lir.Move (mr r, mo a)
    | Lir.Unop (r, op, a) -> Lir.Unop (mr r, op, mo a)
    | Lir.Binop (r, op, a, c) -> Lir.Binop (mr r, op, mo a, mo c)
    | Lir.Get_field (r, o, fl) -> Lir.Get_field (mr r, mo o, fl)
    | Lir.Put_field (o, fl, v) -> Lir.Put_field (mo o, fl, mo v)
    | Lir.Get_static (r, fl) -> Lir.Get_static (mr r, fl)
    | Lir.Put_static (fl, v) -> Lir.Put_static (fl, mo v)
    | Lir.New_object (r, c) -> Lir.New_object (mr r, c)
    | Lir.New_array (r, nn) -> Lir.New_array (mr r, mo nn)
    | Lir.Array_load (r, a, ix) -> Lir.Array_load (mr r, mo a, mo ix)
    | Lir.Array_store (a, ix, v) -> Lir.Array_store (mo a, mo ix, mo v)
    | Lir.Array_length (r, a) -> Lir.Array_length (mr r, mo a)
    | Lir.Call { dst; kind; target; args; site } ->
        Lir.Call
          { dst = Option.map mr dst; kind; target; args = List.map mo args; site }
    | Lir.Intrinsic { dst; name; args } ->
        Lir.Intrinsic { dst = Option.map mr dst; name; args = List.map mo args }
    | Lir.Instance_test (r, o, c) -> Lir.Instance_test (mr r, mo o, c)
    | Lir.Yieldpoint k -> Lir.Yieldpoint k
    | Lir.Instrument op -> (
        match (op.Lir.hook, op.Lir.payload) with
        | "call_edge", Lir.P_unit -> Lir.Instrument (mint op)
        | _, Lir.P_value (v, site) ->
            (* defensive renaming: the adaptive gate rejects these, but a
               direct caller of this pass still gets well-formed IR *)
            Lir.Instrument
              { op with Lir.payload = Lir.P_value (mo v, site); slot = -1 }
        | _, Lir.P_operand v ->
            Lir.Instrument
              { op with Lir.payload = Lir.P_operand (mo v); slot = -1 }
        | _ -> Lir.Instrument op (* shared record: slot (and counter) kept *))
    | Lir.Guarded_instrument op -> (
        match (op.Lir.hook, op.Lir.payload) with
        | "call_edge", Lir.P_unit -> Lir.Guarded_instrument (mint op)
        | _, Lir.P_value (v, site) ->
            Lir.Guarded_instrument
              { op with Lir.payload = Lir.P_value (mo v, site); slot = -1 }
        | _, Lir.P_operand v ->
            Lir.Guarded_instrument
              { op with Lir.payload = Lir.P_operand (mo v); slot = -1 }
        | _ -> Lir.Guarded_instrument op)
  in
  for l = 0 to nblocks - 1 do
    if label_map.(l) >= 0 then begin
      let orig = Lir.block callee l in
      let instrs = Array.map rename_instr orig.Lir.instrs in
      match orig.Lir.term with
      | Lir.Return v ->
          let extra =
            match (v, dst) with
            | Some v, Some d -> [| Lir.Move (d, rename_op v) |]
            | _ -> [||]
          in
          Lir.set_block f label_map.(l)
            {
              Lir.instrs = Array.append instrs extra;
              term = Lir.Goto cont;
              role = orig.Lir.role;
            }
      | t ->
          let t =
            match t with
            | Lir.If { cond; if_true; if_false } ->
                Lir.If { cond = rename_op cond; if_true; if_false }
            | Lir.Switch { scrut; cases; default } ->
                Lir.Switch { scrut = rename_op scrut; cases; default }
            | t -> t
          in
          Lir.set_block f label_map.(l)
            {
              Lir.instrs;
              term = Lir.map_term_labels rename_label t;
              role = orig.Lir.role;
            }
    end
  done;
  (* rewrite the call site: prefix + parameter moves + goto inlined entry *)
  let param_moves =
    List.map2 (fun p a -> Lir.Move (rename_reg p, a)) callee.Lir.params args
  in
  let prefix = Array.sub b.Lir.instrs 0 idx in
  Lir.set_block f bl
    {
      b with
      Lir.instrs = Array.append prefix (Array.of_list param_moves);
      term = Lir.Goto (rename_label callee.Lir.entry);
    };
  f

(* ------------------------------------------------------------------ *)
(* Instrumentation strip (budget governor)                              *)
(* ------------------------------------------------------------------ *)

let strip_instrumentation (f : Lir.func) =
  let f = Lir.copy_func f in
  live_iter f (fun l b ->
      if
        Array.exists
          (function Lir.Instrument _ -> true | _ -> false)
          b.Lir.instrs
      then
        Lir.set_block f l
          {
            b with
            Lir.instrs =
              Array.of_list
                (List.filter
                   (function Lir.Instrument _ -> false | _ -> true)
                   (Array.to_list b.Lir.instrs));
          });
  f

let has_plain_instrument (f : Lir.func) =
  let found = ref false in
  live_iter f (fun _ b ->
      Array.iter
        (function Lir.Instrument _ -> found := true | _ -> ())
        b.Lir.instrs);
  !found

(* ------------------------------------------------------------------ *)
(* Profile-guided block layout                                          *)
(* ------------------------------------------------------------------ *)

(* [hot_layout f ~weight base]: per-label code addresses with live
   blocks placed in descending [weight] order (stable by label, so ties
   — including a cold all-zero profile — keep a deterministic order),
   starting at address [base].  Dead blocks get address -1.  Returns the
   address array and the next free address.  Pure layout: block indices,
   bodies and terminators are untouched. *)
let hot_layout (f : Lir.func) ~(weight : int -> int) base =
  let n = Lir.num_blocks f in
  let live = ref [] in
  for l = n - 1 downto 0 do
    if (Lir.block f l).Lir.role <> Lir.Dead then live := l :: !live
  done;
  let order =
    List.stable_sort (fun a b -> compare (weight b) (weight a)) !live
  in
  let addr = Array.make n (-1) in
  let cursor = ref base in
  List.iter
    (fun l ->
      addr.(l) <- !cursor;
      cursor := !cursor + Array.length (Lir.block f l).Lir.instrs + 1)
    order;
  (addr, !cursor)
