(* Public entry point of the VM.  The machine itself — state, heap,
   threads, semantic helpers and the reference [step] — lives in
   Machine; the closure-compiled engine in Engine executes the same
   machine and must stay bit-identical to [Machine.step], which is the
   oracle the differential suite tests the fast engine against (and the
   per-method fallback the fast engine degrades to when compilation
   fails). *)

module Lir = Ir.Lir
open Machine

type counters = Machine.counters = {
  mutable entries : int;
  mutable backedge_yps : int;
  mutable entry_yps : int;
  mutable checks : int;
  mutable samples : int;
  mutable thread_switches : int;
  mutable instrument_ops : int;
}

type ctx = Machine.ctx = {
  cur : Lir.method_ref;
  caller : (Lir.method_ref * int) option;
  eval : Lir.operand -> int;
  frame_id : int;
  class_of : int -> string option;
  stack : unit -> (Lir.method_ref * int) list;
}

type hooks = Machine.hooks = {
  fire : int -> bool;
  on_timer_tick : unit -> unit;
  on_instrument : ctx -> Lir.instrument_op -> unit;
  instr_cost : Lir.instrument_op -> int;
}

let null_hooks = Machine.null_hooks

exception Runtime_error = Machine.Runtime_error

type result = Machine.result = {
  return_value : int option;
  cycles : int;
  instructions : int;
  counters : counters;
  icache_misses : int;
  dcache_misses : int;
  output : string;
  fallbacks : (string * string) list;
  instr_cycles : int;
}

let step = Machine.step

let run ?(engine = `Fast) ?fuel ?use_icache ?use_dcache ?costs ?timer_period
    ?seed ?faults ?label ?deadline ?deadline_poll ?recorder ?trace_threshold
    ?on_init prog ~entry ~args hooks =
  let st =
    Machine.init_state ?fuel ?use_icache ?use_dcache ?costs ?timer_period ?seed
      ?faults ?label ?deadline ?deadline_poll ?recorder prog hooks
  in
  (* trace tier (Fast engine only; the reference stepper never consults
     it): number of backedge executions before a loop is recorded *)
  (match trace_threshold with
  | Some t -> st.trace_threshold <- max 1 t
  | None -> ());
  let m = Program.method_by_ref prog entry in
  ignore (spawn_thread st m args);
  (* adaptive tier attachment point: lets a controller capture the state
     and arm [next_adaptive] before the first instruction runs *)
  (match on_init with Some f -> f st | None -> ());
  (match engine with
  | `Ref ->
      while st.alive > 0 do
        fuel_check st;
        step st
      done
  | `Fast -> Engine.exec st);
  Machine.result_of st
