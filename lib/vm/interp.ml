(* Reference interpreter: re-matches each LIR instruction on every
   dynamic execution.  The shared machine (state, heap, threads,
   semantic helpers) lives in Machine; the closure-compiled engine in
   Engine executes the same machine and must stay bit-identical to the
   [step] below — it is the oracle the differential suite tests the
   fast engine against. *)

module Lir = Ir.Lir
open Machine

type counters = Machine.counters = {
  mutable entries : int;
  mutable backedge_yps : int;
  mutable entry_yps : int;
  mutable checks : int;
  mutable samples : int;
  mutable thread_switches : int;
  mutable instrument_ops : int;
}

type ctx = Machine.ctx = {
  cur : Lir.method_ref;
  caller : (Lir.method_ref * int) option;
  eval : Lir.operand -> int;
  frame_id : int;
  class_of : int -> string option;
  stack : unit -> (Lir.method_ref * int) list;
}

type hooks = Machine.hooks = {
  fire : int -> bool;
  on_timer_tick : unit -> unit;
  on_instrument : ctx -> Lir.instrument_op -> unit;
  instr_cost : Lir.instrument_op -> int;
}

let null_hooks = Machine.null_hooks

exception Runtime_error = Machine.Runtime_error

type result = Machine.result = {
  return_value : int option;
  cycles : int;
  instructions : int;
  counters : counters;
  icache_misses : int;
  dcache_misses : int;
  output : string;
}

(* Execute one instruction or terminator of the current thread. *)
let step st =
  let th = st.threads.(st.current) in
  match th.top with
  | None -> rotate_thread st
  | Some fr ->
      st.instructions <- st.instructions + 1;
      (match st.icache with
      | Some ic ->
          if Icache.access ic (fr.base_addr + fr.idx) then
            charge st st.costs.Costs.icache_miss
      | None -> ());
      if fr.idx < Array.length fr.instrs then begin
        let i = fr.instrs.(fr.idx) in
        fr.idx <- fr.idx + 1;
        let c = st.costs in
        match i with
        | Lir.Move (r, a) ->
            charge st c.Costs.move;
            fr.regs.(r) <- eval fr a
        | Lir.Unop (r, op, a) ->
            charge st c.Costs.alu;
            let v = eval fr a in
            fr.regs.(r) <- (match op with Lir.Neg -> -v | Lir.Not -> (if v = 0 then 1 else 0))
        | Lir.Binop (r, op, a, b) ->
            charge st c.Costs.alu;
            fr.regs.(r) <- exec_binop op (eval fr a) (eval fr b)
        | Lir.Get_field (r, o, fld) ->
            charge st c.Costs.mem;
            let obj = eval fr o in
            let fields = obj_fields st obj (* null check first *) in
            let off = field_off st fld in
            data_access st (cell_addr st obj + off);
            fr.regs.(r) <- fields.(off)
        | Lir.Put_field (o, fld, v) ->
            charge st c.Costs.mem;
            let obj = eval fr o in
            let fields = obj_fields st obj in
            let off = field_off st fld in
            data_access st (cell_addr st obj + off);
            fields.(off) <- eval fr v
        | Lir.Get_static (r, fld) ->
            charge st c.Costs.mem;
            let off = static_off st fld in
            data_access st off;
            fr.regs.(r) <- st.globals.(off)
        | Lir.Put_static (fld, v) ->
            charge st c.Costs.mem;
            let off = static_off st fld in
            data_access st off;
            st.globals.(off) <- eval fr v
        | Lir.New_object (r, cname) ->
            let cid =
              match Hashtbl.find_opt st.prog.Program.class_id_of_name cname with
              | Some id -> id
              | None -> rt_err "unknown class %s" cname
            in
            let n = st.prog.Program.classes.(cid).Program.n_fields in
            charge st (c.Costs.alloc_base + (c.Costs.alloc_per_slot * n));
            fr.regs.(r) <- alloc st (Obj { cls = cid; fields = Array.make (max n 1) 0 })
        | Lir.New_array (r, len) ->
            let n = eval fr len in
            if n < 0 then rt_err "negative array length %d" n;
            charge st (c.Costs.alloc_base + (c.Costs.alloc_per_slot * n));
            fr.regs.(r) <- alloc st (Arr (Array.make (max n 1) 0))
        | Lir.Array_load (r, a, i) ->
            charge st c.Costs.mem;
            let arr = eval fr a in
            let cells = arr_cells st arr in
            let i = eval fr i in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i
                (Lir.string_of_method_ref fr.m.Program.mref);
            data_access st (cell_addr st arr + i);
            fr.regs.(r) <- cells.(i)
        | Lir.Array_store (a, i, v) ->
            charge st c.Costs.mem;
            let arr = eval fr a in
            let cells = arr_cells st arr in
            let i = eval fr i in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i
                (Lir.string_of_method_ref fr.m.Program.mref);
            data_access st (cell_addr st arr + i);
            cells.(i) <- eval fr v
        | Lir.Array_length (r, a) ->
            charge st c.Costs.mem;
            fr.regs.(r) <- Array.length (arr_cells st (eval fr a))
        | Lir.Instance_test (r, o, cname) ->
            charge st (c.Costs.mem + c.Costs.alu);
            let v = eval fr o in
            fr.regs.(r) <-
              (if v <= 0 || v > Ir.Vec.length st.heap then 0
               else
                 match Ir.Vec.get st.heap (v - 1) with
                 | Obj obj ->
                     if
                       String.equal
                         st.prog.Program.classes.(obj.cls).Program.cls_name
                         cname
                     then 1
                     else 0
                 | Arr _ -> 0)
        | Lir.Call { dst; kind; target; args; site } ->
            invoke st th fr dst kind target args site
        | Lir.Intrinsic { dst; name; args } -> intrinsic st th fr dst name args
        | Lir.Yieldpoint k ->
            charge st c.Costs.yieldpoint;
            (match k with
            | Lir.Yp_entry ->
                st.counters.entry_yps <- st.counters.entry_yps + 1
            | Lir.Yp_backedge ->
                st.counters.backedge_yps <- st.counters.backedge_yps + 1);
            if st.switch_bit then begin
              st.switch_bit <- false;
              rotate_thread st
            end
        | Lir.Instrument op -> run_instrument st th fr op
        | Lir.Guarded_instrument op ->
            (* No-Duplication: the check guards this single op *)
            st.counters.checks <- st.counters.checks + 1;
            charge st c.Costs.check;
            if st.hooks.fire th.tid then begin
              st.counters.samples <- st.counters.samples + 1;
              run_instrument st th fr op
            end
      end
      else begin
        (* terminator *)
        timer_check st;
        let c = st.costs in
        match fr.term with
        | Lir.Goto l ->
            charge st c.Costs.branch;
            set_block st fr l
        | Lir.If { cond; if_true; if_false } ->
            charge st c.Costs.branch;
            set_block st fr (if eval fr cond <> 0 then if_true else if_false)
        | Lir.Switch { scrut; cases; default } ->
            charge st c.Costs.switch;
            let v = eval fr scrut in
            let target =
              match List.assoc_opt v cases with Some l -> l | None -> default
            in
            set_block st fr target
        | Lir.Return v -> do_return st th (Option.map (eval fr) v)
        | Lir.Check { on_sample; fall } ->
            st.counters.checks <- st.counters.checks + 1;
            charge st c.Costs.check;
            if st.hooks.fire th.tid then begin
              st.counters.samples <- st.counters.samples + 1;
              charge st c.Costs.sample_jump;
              set_block st fr on_sample
            end
            else set_block st fr fall
      end

let run ?(engine = `Fast) ?fuel ?use_icache ?use_dcache ?costs ?timer_period
    ?seed prog ~entry ~args hooks =
  let st =
    Machine.init_state ?fuel ?use_icache ?use_dcache ?costs ?timer_period
      ?seed prog hooks
  in
  let m = Program.method_by_ref prog entry in
  ignore (spawn_thread st m args);
  (match engine with
  | `Ref ->
      while st.alive > 0 do
        fuel_check st;
        step st
      done
  | `Fast -> Engine.exec st);
  Machine.result_of st
