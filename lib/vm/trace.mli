(** Trace-recording JIT tier: hot-loop traces compiled to fused
    superinstruction closures (ROADMAP item 2, DESIGN.md §10).

    When a backedge's per-run counter crosses
    {!Machine.state.trace_threshold}, one loop iteration is recorded
    through the reference stepper and compiled into a fused closure
    chain: pc chaining constant-folded, cycle costs and flat-slot
    recorder charges pre-summed per straight-line segment, guards at
    every conditional side-exiting back to per-method closure code at
    the precise pc/register state.  Recording traces through calls
    (bounded depth), replaying the engine's call/return machinery with
    a receiver-class guard at virtual sites.  An entry precheck (worst-case
    iteration cost against fuel gate, timer, adaptive safepoint, switch
    bit and method version) makes the elision of per-word checks sound,
    so traced execution is bit-identical to the reference on every
    observable.  Hot side exits are themselves recorded and spliced
    into their guard as branch traces keyed by divergence target
    (switch target, branch direction, receiver class — a polymorphic
    inline cache at virtual sites), growing a trace tree whose
    worst-case path bound is raised before any patch becomes visible.
    Recording runs at reference speed, so the tier is governed by
    length caps, per-site attempt caps, a per-run waste budget for
    aborted recordings, and a retirement heuristic that de-installs
    traces whose entries exit too early to pay for their prechecks.
    [trace_threshold = max_int] (the default) disables the tier
    entirely. *)

val backedge : Machine.state -> int -> int -> bool
(** [backedge st site ni]: the trace gate, called from the engine's
    compiled backedge yieldpoint once every cheaper duty (adaptive poll,
    migration, thread switch) has declined, with [ni] the resume index
    just past the yieldpoint.  Runs the site's compiled trace while the
    precheck admits iterations, or records and compiles one when the
    site turns hot.  Returns true when execution advanced (the caller
    returns to the dispatcher, the frame position having been written
    back); false when nothing ran and the caller should continue into
    its own compiled continuation. *)

val invalidate : Machine.state -> int -> unit
(** Invalidate every installed trace; called by {!Engine.hot_swap} when
    the adaptive tier installs a new version of method [id].  Traces
    record through calls and so may inline any method's code, which
    makes per-method invalidation unsound — invalidation is global, and
    sites re-record against the current world.  No-op on runs without
    trace state. *)

val tier_on : Machine.state -> bool
(** Whether the trace tier is armed for this run. *)

(** {1 Event taxonomy} — diagnostic counters modeled on lambdachine's
    Stats.h: process-wide, cross-run, never part of simulated
    observables.  Dumped by [isf --stats]. *)

val stats : unit -> (string * int) list
(** [(event name, count)] for EV_RECORD, EV_ABORT_TRACE, EV_COMPILE,
    EV_TRACE (trace entries), EV_EXIT (guard side exits),
    EV_INVALIDATE. *)

val reset_stats : unit -> unit
