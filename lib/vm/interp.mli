(** Deterministic LIR interpreter with a cycle-cost model.

    Executes a linked {!Program.t} under green threads with
    yieldpoint-driven scheduling and a simulated timer device, counting
    cycles per the {!Costs} model (plus i-cache misses when enabled).

    Instrumentation is dispatched through {!hooks}: the VM never interprets
    instrumentation payloads itself, keeping this library independent of
    the sampling framework (the [core] library supplies the hooks).

    Two execution engines share one machine ({!Machine}): [`Ref], the
    reference interpreter (this module's [step]), and [`Fast], the
    closure-compiled engine ({!Engine}).  They are observationally
    bit-identical — same results, counters, cache misses, hook call
    sequence and errors — which test/test_engine.ml enforces
    differentially; [`Fast] is the default. *)

type counters = Machine.counters = {
  mutable entries : int; (* method invocations + thread entries *)
  mutable backedge_yps : int; (* backedge yieldpoints executed *)
  mutable entry_yps : int; (* entry yieldpoints executed *)
  mutable checks : int; (* sampling checks executed (incl. guarded ops) *)
  mutable samples : int; (* checks whose sample condition fired *)
  mutable thread_switches : int;
  mutable instrument_ops : int; (* instrumentation operations executed *)
}

(** Context handed to the instrumentation hook. *)
type ctx = Machine.ctx = {
  cur : Ir.Lir.method_ref; (* method containing the op *)
  caller : (Ir.Lir.method_ref * int) option; (* caller and its call site *)
  eval : Ir.Lir.operand -> int; (* evaluate an operand in the frame *)
  frame_id : int; (* unique id of the activation (per-frame profile state) *)
  class_of : int -> string option;
      (* runtime class of a reference value ([None] for null/arrays) *)
  stack : unit -> (Ir.Lir.method_ref * int) list;
      (* the current calling context, innermost first: each entry is a
         method and the call site in ITS caller (-1 for thread roots);
         used by stack-walking instrumentation such as calling-context
         trees *)
}

type hooks = Machine.hooks = {
  fire : int -> bool;
      (* [fire tid]: the sample condition of the paper's check (Figure 3).
         Called once per executed check; a [true] result diverts execution
         into the duplicated code / runs the guarded op. *)
  on_timer_tick : unit -> unit;
      (* called on every timer interrupt (time-based trigger support) *)
  on_instrument : ctx -> Ir.Lir.instrument_op -> unit;
  instr_cost : Ir.Lir.instrument_op -> int;
}

val null_hooks : hooks
(** Never samples, ignores instrumentation (cost 0). *)

exception Runtime_error of string

type result = Machine.result = {
  return_value : int option; (* of the initial thread's entry method *)
  cycles : int;
  instructions : int;
  counters : counters;
  icache_misses : int;
  dcache_misses : int;
  output : string; (* everything printed, for semantic comparisons *)
  fallbacks : (string * string) list;
      (* methods the fast engine degraded to the interpreter for, with the
         reason; [] on [`Ref] and whenever every method compiled *)
  instr_cycles : int;
      (* cycles charged by instrumentation machinery (checks, sample
         jumps, yieldpoints, instrument ops); included in [cycles].  The
         adaptive governor steers this against its overhead budget. *)
}

val run :
  ?engine:[ `Ref | `Fast ] ->
  ?fuel:int ->
  ?use_icache:bool ->
  ?use_dcache:bool ->
  ?costs:Costs.t ->
  ?timer_period:int ->
  ?seed:int ->
  ?faults:Fault.plan ->
  ?label:string ->
  ?deadline:float ->
  ?deadline_poll:int ->
  ?recorder:Machine.flat_recorder ->
  ?trace_threshold:int ->
  ?on_init:(Machine.state -> unit) ->
  Program.t ->
  entry:Ir.Lir.method_ref ->
  args:int list ->
  hooks ->
  result
(** [engine] selects the execution engine (default [`Fast], the
    closure-compiled {!Engine}; [`Ref] is the reference interpreter kept
    as the differential oracle — both produce bit-identical results).
    [fuel] bounds executed cycles (default 4e9; exceeding it raises
    {!Runtime_error}).  [timer_period] is the simulated timer-interrupt
    period in cycles (default 100_000 — "10ms" at the DESIGN.md scale of
    10k cycles/ms).  [seed] seeds the deterministic [rand] intrinsic.

    Robustness knobs: [faults] (default {!Fault.none}) schedules
    deterministic fault injection — both engines apply plan events at
    identical cycle counts, and methods the plan fails compilation for
    make [`Fast] degrade per-method to the interpreter while staying
    bit-identical.  [label] names the benchmark/config in error
    messages.  [deadline] is an absolute [Unix.gettimeofday] time after
    which the run aborts with a watchdog {!Runtime_error}, polled every
    [deadline_poll] cycles (default 5e7); without [deadline] the clock
    is never read and runs stay deterministic.

    [recorder] enables flat-slot recording ({!Machine.flat_recorder},
    built by [Profiles.Slots]): instrument ops whose [slot] is resolved
    record through preallocated buffers instead of [hooks.on_instrument];
    unresolved ops still use the hooks.  Both engines share the recording
    path, and the decoded profiles are bit-identical to the legacy
    event-by-event collector.

    [trace_threshold] arms the trace-recording tier ({!Trace}) on the
    [`Fast] engine: a loop whose backedge executes that many times is
    recorded and compiled to a fused superinstruction closure.  Traced
    execution stays bit-identical on every observable.  Default
    [max_int] (tier off); ignored by [`Ref]. *)
