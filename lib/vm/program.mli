(** Linked program: symbolic references resolved to dense ids, virtual
    dispatch tables built, code addresses assigned.

    Linking takes the class metadata plus the (possibly optimized and/or
    instrumented) LIR bodies, so the same classes can be linked against
    different transformed code — exactly how the experiments compare
    baseline vs. instrumented executions of one program. *)

type meth = {
  id : int;
  mref : Ir.Lir.method_ref;
  func : Ir.Lir.func;
  n_args : int; (* receiver included for virtual methods *)
  code_addr : int array; (* per-label start address; -1 for dead blocks *)
}

type cls = {
  cid : int;
  cls_name : string;
  super : int option;
  n_fields : int;
  vtable : (string, int) Hashtbl.t; (* method name -> method id *)
}

type cache_slot = ..
(** Extension point for per-program derived data; {!Vm.Engine} hangs its
    compiled-code cache here so it is dropped with the program. *)

type t = {
  classes : cls array;
  methods : meth array;
  class_id_of_name : (string, int) Hashtbl.t;
  static_method : (string, int) Hashtbl.t; (* "C.m" -> method id *)
  field_offset : (string, int) Hashtbl.t; (* "C.f" -> object slot *)
  static_offset : (string, int) Hashtbl.t; (* "C.f" -> globals slot *)
  n_statics : int;
  total_code_words : int; (* code size after layout, in instruction words *)
  mutable engine_cache : cache_slot option; (* see {!cache_slot} *)
}

exception Link_error of string

val link :
  ?layout_override:(string * string list) list ->
  Bytecode.Classfile.program ->
  funcs:Ir.Lir.func list ->
  t
(** Raises {!Link_error} on unresolved references or missing bodies.

    [layout_override] reorders the instance fields a class itself declares
    (e.g. hot-first, from a sampled field-access profile): fields listed
    come first in the given order, the rest keep their declaration order.
    Subclass layouts stay consistent because each class only permutes its
    own segment. *)

val method_by_ref : t -> Ir.Lir.method_ref -> meth
(** Static lookup ("C.m"); raises {!Link_error} when absent. *)

val code_size_words : Ir.Lir.func -> int
(** Size in instruction words of a single function (live blocks only,
    terminator counted as one word). *)

val layout_func : Ir.Lir.func -> int -> int array * int
(** [layout_func f base]: assign per-label code addresses starting at
    [base] — original and check blocks first, duplicated blocks after
    ("out of the common path"), dead blocks -1.  Returns the address
    array and the next free address.  Exposed for the adaptive tier,
    which lays out recompiled method versions at fresh addresses. *)
