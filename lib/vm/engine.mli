(** Closure-compiled execution engine.

    Translates each {!Program.meth} once into flat arrays of preallocated
    closures — operands resolved to register indices/immediates, field and
    static offsets, class ids, call targets and switch tables looked up at
    compile time, straight-line runs fused into a single dispatch — and
    runs the same {!Machine.state} as the reference interpreter.

    The engine is observationally {e bit-identical} to [Interp.step]'s
    loop: same return value, cycles, instruction count, event counters,
    i-/d-cache misses, instrumentation-hook call sequence, and the same
    errors at the same points (see DESIGN.md §5 and test/test_engine.ml
    for the equivalence argument and its differential enforcement).

    Compiled code is cached on the program ({!Program.engine_cache})
    behind a per-method {!Sync.Memo}, so concurrent domains compile each
    method exactly once and runs after the first reuse it.

    Degradation: a method whose compilation raises — or that the run's
    {!Fault.plan} says must fail to compile — falls back {e per method}
    to the reference [Machine.step], preserving bit-identical results;
    each degraded method is recorded once in the result's [fallbacks]. *)

val exec : Machine.state -> unit
(** Run the machine to completion ([st.alive = 0]), exactly like the
    reference interpreter's driver loop.  Raises {!Machine.Runtime_error}
    on the same faults (including fuel exhaustion) with identical
    messages. *)

val hot_swap : Machine.state -> Program.meth -> unit
(** Adaptive hot-swap (DESIGN.md §9): install a recompiled version of a
    method as the current one.  The new version must keep the old [id],
    [mref] and [n_args]; only [func] and [code_addr] may differ.  Future
    calls and dispatches run the new version; activations alive at the
    swap finish on the version their frame pins (old compiled code is
    kept in the program's compiled image).  Must be called from a
    safepoint — the adaptive poll ({!Machine.state.adaptive_poll}) — on
    a single-domain run.  Works on both engines: with no compiled image
    (reference engine) the method-table write is the whole swap. *)
