(* Closure-compiled execution engine.

   Each method is translated once into flat arrays of preallocated
   closures: operands are resolved to register indices or immediates,
   field/static offsets, class ids, call targets, switch tables and the
   cost table's cycle charges are looked up at compile time, and
   straight-line instruction runs are fused so that one dispatch executes
   the whole run.  Closures are unary ([state -> unit], the cheapest
   indirect call OCaml native code can make — no caml_apply arity check);
   the running thread and frame travel in the [cur_th]/[cur_fr] scratch
   fields of the state, written by the dispatcher.  The dispatch loop
   itself is a mirror image of [Interp.step]: per executed instruction it
   performs exactly the same fuel check, instruction count, i-cache
   access, timer check and cycle charges, in the same order, so results
   are bit-identical to the reference interpreter (the differential
   suite in test/test_engine.ml holds it to that).

   Unresolvable references (an unknown field, class or call target) are
   compiled into closures that reproduce the reference interpreter's
   error — same exception, same message, raised after the same observable
   effects — rather than failing at compile time, because the reference
   only faults when the instruction is actually executed.

   Compiled code is cached on the program itself (Program.engine_cache)
   behind a per-method Sync.Memo, so the domain-parallel harness compiles
   each method exactly once no matter how many domains run it. *)

module Lir = Ir.Lir
open Machine

type k = state -> unit

(* [code] has one entry per instruction plus a final entry for the
   terminator; [code.(i)] executes the block from instruction [i] to the
   next suspension point, with per-instruction accounting fused in, and
   chains through intra-method control flow by tail call. *)
type cblock = { code : k array }
type cmeth = cblock array

(* Per-method activation template: everything [Machine.new_frame] derives
   from the callee, precomputed once. *)
type tmpl = {
  t_meth : Program.meth;
  t_params : int array;
  t_nregs : int;
  t_entry_blk : int;
  t_entry_instrs : Lir.instr array;
  t_entry_term : Lir.terminator;
  t_entry_base : int;
  t_name : string;
}

type cprog = {
  memo : (int, cmeth) Sync.Memo.t;
  templates : tmpl array;
  by_id : cmeth Atomic.t array;
      (* resolved compiled code per method id ([empty_cmeth] until first
         touch): one atomic load on the hot path, the memo behind it
         keeps compilation once-per-method across domains *)
  c_costs : Costs.t;
      (* cost table the closures were specialized against: every cycle
         charge is baked in as an immediate, so a state running a
         different table (e.g. the hardware-count-register ablation)
         forces a recompile rather than a wrong charge *)
  mutable retired : (Program.meth * cmeth) list;
      (* compiled code of hot-swapped-out method versions, keyed by the
         exact [meth] record frames pin ([==]): activations alive across
         an adaptive swap finish on the version they started in.  Only
         the adaptive tier appends here (single VM, at a safepoint), so
         no synchronization is needed. *)
  n_sites : int Atomic.t;
      (* trace-anchor site ids, minted per compiled backedge yieldpoint
         (atomic: distinct methods may compile concurrently).  Site ids
         name code locations; the per-run hotness counters and traces
         they index live in each state's [trace] slot (see Trace). *)
}

type Program.cache_slot += Compiled of cprog

let empty_cmeth : cmeth = [||]

(* ------------------------------------------------------------------ *)
(* Operand and instruction compilation                                 *)
(* ------------------------------------------------------------------ *)

let cop = function
  | Lir.Reg r -> fun (fr : frame) -> fr.regs.(r)
  | Lir.Imm n -> fun (_ : frame) -> n

let binop_fn = function
  | Lir.Add -> ( + )
  | Lir.Sub -> ( - )
  | Lir.Mul -> ( * )
  | Lir.Div -> fun a b -> if b = 0 then rt_err "division by zero" else a / b
  | Lir.Rem -> fun a b -> if b = 0 then rt_err "division by zero" else a mod b
  | Lir.And -> ( land )
  | Lir.Or -> ( lor )
  | Lir.Xor -> ( lxor )
  | Lir.Shl -> fun a b -> a lsl (b land 31)
  | Lir.Shr -> fun a b -> a asr (b land 31)
  | Lir.Lt -> fun a b -> if a < b then 1 else 0
  | Lir.Le -> fun a b -> if a <= b then 1 else 0
  | Lir.Gt -> fun a b -> if a > b then 1 else 0
  | Lir.Ge -> fun a b -> if a >= b then 1 else 0
  | Lir.Eq -> fun a b -> if a = b then 1 else 0
  | Lir.Ne -> fun a b -> if a <> b then 1 else 0

(* Build the callee frame from a template and push it; the counterpart
   of [Machine.new_frame] + the tail of [Machine.invoke], with the
   argument registers filled from precompiled evaluators.  Split in two
   around the argument fill so the frame (and its register array) comes
   from the state's frame pool instead of a fresh allocation per call:
   [alloc_frame] takes a pooled frame and stamps the template-derived
   fields; the call site fills [callee.regs]; [link_frame] assigns the
   activation id and pushes. *)
let alloc_frame st (t : tmpl) =
  let callee = take_frame st t.t_meth t.t_nregs in
  callee.blk <- t.t_entry_blk;
  callee.idx <- 0;
  callee.instrs <- t.t_entry_instrs;
  callee.term <- t.t_entry_term;
  callee.base_addr <- t.t_entry_base;
  callee

let link_frame st th fr callee ~ret_dst ~from_meth ~from_site =
  let fid = st.next_frame_id in
  st.next_frame_id <- fid + 1;
  callee.ret_dst <- ret_dst;
  callee.from_meth <- from_meth;
  callee.from_site <- from_site;
  callee.fid <- fid;
  st.counters.entries <- st.counters.entries + 1;
  th.parents <- fr :: th.parents;
  th.top <- Some callee

(* Compile one instruction into its complete dispatch step.  [nxt] is the
   already-compiled remainder of the block; straight-line instructions
   run their own body, perform the dispatcher's preamble for the next
   word ([naddr]) and tail-call [nxt], so a chain of instructions costs
   one indirect call each.  Instructions that can suspend or reschedule
   the current frame (calls, intrinsics that yield or spawn) first store
   the resume index [ni] — exactly where the reference leaves idx — and
   return to the dispatcher when done.  Yieldpoints only do so when a
   switch actually happens. *)
(* compile-time line geometry the straight-line fusion (below) computes
   its line-head set for; the fused entry verifies the running cache
   matches (Machine states always build the default geometry, so this
   is one guaranteed-true compare per run of the fast path) *)
let fused_line_words = 8

(* instructions eligible for straight-line fusion: nothing that can
   suspend, reschedule, switch threads, hand control to the dispatcher,
   or charge a cycle amount with no static bound *)
let fusable = function
  | Lir.Move _ | Lir.Unop _ | Lir.Binop _ | Lir.Get_field _ | Lir.Put_field _
  | Lir.Get_static _ | Lir.Put_static _ | Lir.New_object _ | Lir.Array_load _
  | Lir.Array_store _ | Lir.Array_length _ | Lir.Instance_test _
  | Lir.Instrument _ | Lir.Guarded_instrument _ ->
      true
  | Lir.Intrinsic { name; args; _ } -> (
      match (name, args) with ("print" | "rand"), [ _ ] -> true | _ -> false)
  | Lir.New_array _ (* dynamic length: no static charge bound *)
  | Lir.Call _ | Lir.Yieldpoint _ ->
      false

let rec compile_instr (cp : cprog) (prog : Program.t) (m : Program.meth)
    ~(nxt : k) ~(naddr : int) ~(ni : int) (ins : Lir.instr) : k =
  let cont st =
    fuel_check st;
    st.instructions <- st.instructions + 1;
    icache_access st naddr;
    nxt st
  in
  let costs = cp.c_costs in
  let cc_mem = costs.Costs.mem in
  let cc_move = costs.Costs.move in
  let cc_alu = costs.Costs.alu in
  let c_mem st = charge st cc_mem in
  match ins with
  | Lir.Move (r, Lir.Imm n) ->
      fun st ->
        charge st cc_move;
        st.cur_fr.regs.(r) <- n;
        cont st
  | Lir.Move (r, Lir.Reg s) ->
      fun st ->
        charge st cc_move;
        let regs = st.cur_fr.regs in
        regs.(r) <- regs.(s);
        cont st
  | Lir.Unop (r, op, a) -> (
      match (op, a) with
      | Lir.Neg, Lir.Reg s ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- -regs.(s);
            cont st
      | Lir.Not, Lir.Reg s ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(s) = 0 then 1 else 0);
            cont st
      | Lir.Neg, Lir.Imm n ->
          let v = -n in
          fun st ->
            charge st cc_alu;
            st.cur_fr.regs.(r) <- v;
            cont st
      | Lir.Not, Lir.Imm n ->
          let v = if n = 0 then 1 else 0 in
          fun st ->
            charge st cc_alu;
            st.cur_fr.regs.(r) <- v;
            cont st)
  | Lir.Binop (r, op, a, b) -> (
      match (op, a, b) with
      (* hand-specialized hot operators: without flambda a shared
         [binop_fn] closure costs an indirect call per ALU op *)
      | Lir.Add, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) + regs.(y);
            cont st
      | Lir.Add, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) + n;
            cont st
      | Lir.Sub, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) - regs.(y);
            cont st
      | Lir.Sub, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) - n;
            cont st
      | Lir.Mul, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) * regs.(y);
            cont st
      | Lir.Mul, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) * n;
            cont st
      | Lir.And, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) land regs.(y);
            cont st
      | Lir.And, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) land n;
            cont st
      | Lir.Or, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) lor regs.(y);
            cont st
      | Lir.Or, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) lor n;
            cont st
      | Lir.Xor, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) lxor regs.(y);
            cont st
      | Lir.Xor, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(x) lxor n;
            cont st
      | Lir.Lt, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) < regs.(y) then 1 else 0);
            cont st
      | Lir.Lt, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) < n then 1 else 0);
            cont st
      | Lir.Le, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) <= regs.(y) then 1 else 0);
            cont st
      | Lir.Le, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) <= n then 1 else 0);
            cont st
      | Lir.Gt, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) > regs.(y) then 1 else 0);
            cont st
      | Lir.Gt, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) > n then 1 else 0);
            cont st
      | Lir.Ge, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) >= regs.(y) then 1 else 0);
            cont st
      | Lir.Ge, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) >= n then 1 else 0);
            cont st
      | Lir.Eq, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) = regs.(y) then 1 else 0);
            cont st
      | Lir.Eq, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) = n then 1 else 0);
            cont st
      | Lir.Ne, Lir.Reg x, Lir.Reg y ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) <> regs.(y) then 1 else 0);
            cont st
      | Lir.Ne, Lir.Reg x, Lir.Imm n ->
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- (if regs.(x) <> n then 1 else 0);
            cont st
      (* the rest (shifts, division, Imm-first shapes) through the
         shared operator table *)
      | _, Lir.Reg x, Lir.Reg y ->
          let f = binop_fn op in
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- f regs.(x) regs.(y);
            cont st
      | _, Lir.Reg x, Lir.Imm n ->
          let f = binop_fn op in
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- f regs.(x) n;
            cont st
      | _, Lir.Imm n, Lir.Reg y ->
          let f = binop_fn op in
          fun st ->
            charge st cc_alu;
            let regs = st.cur_fr.regs in
            regs.(r) <- f n regs.(y);
            cont st
      | _, Lir.Imm n, Lir.Imm p ->
          let f = binop_fn op in
          fun st ->
            charge st cc_alu;
            st.cur_fr.regs.(r) <- f n p;
            cont st)
  | Lir.Get_field (r, o, fld) -> (
      match
        Hashtbl.find_opt prog.Program.field_offset (Lir.string_of_field_ref fld)
      with
      | Some off -> (
          match o with
          | Lir.Reg ro ->
              fun st ->
                c_mem st;
                let regs = st.cur_fr.regs in
                let obj = regs.(ro) in
                let fields = obj_fields st obj in
                data_access st (cell_addr st obj + off);
                regs.(r) <- fields.(off);
                cont st
          | Lir.Imm _ as o ->
              let eo = cop o in
              fun st ->
                c_mem st;
                let fr = st.cur_fr in
                let obj = eo fr in
                let fields = obj_fields st obj in
                data_access st (cell_addr st obj + off);
                fr.regs.(r) <- fields.(off);
                cont st)
      | None ->
          let eo = cop o in
          let fstr = Lir.string_of_field_ref fld in
          fun st ->
            c_mem st;
            ignore (obj_fields st (eo st.cur_fr) : int array);
            rt_err "unresolved field %s" fstr)
  | Lir.Put_field (o, fld, v) -> (
      let eo = cop o in
      match
        Hashtbl.find_opt prog.Program.field_offset (Lir.string_of_field_ref fld)
      with
      | Some off -> (
          match (o, v) with
          | Lir.Reg ro, Lir.Reg rv ->
              fun st ->
                c_mem st;
                let regs = st.cur_fr.regs in
                let obj = regs.(ro) in
                let fields = obj_fields st obj in
                data_access st (cell_addr st obj + off);
                fields.(off) <- regs.(rv);
                cont st
          | _ ->
              let ev = cop v in
              fun st ->
                c_mem st;
                let fr = st.cur_fr in
                let obj = eo fr in
                let fields = obj_fields st obj in
                data_access st (cell_addr st obj + off);
                fields.(off) <- ev fr;
                cont st)
      | None ->
          let fstr = Lir.string_of_field_ref fld in
          fun st ->
            c_mem st;
            ignore (obj_fields st (eo st.cur_fr) : int array);
            rt_err "unresolved field %s" fstr)
  | Lir.Get_static (r, fld) -> (
      match
        Hashtbl.find_opt prog.Program.static_offset
          (Lir.string_of_field_ref fld)
      with
      | Some off ->
          fun st ->
            c_mem st;
            data_access st off;
            st.cur_fr.regs.(r) <- st.globals.(off);
            cont st
      | None ->
          let fstr = Lir.string_of_field_ref fld in
          fun st ->
            c_mem st;
            rt_err "unresolved static field %s" fstr)
  | Lir.Put_static (fld, v) -> (
      let ev = cop v in
      match
        Hashtbl.find_opt prog.Program.static_offset
          (Lir.string_of_field_ref fld)
      with
      | Some off ->
          fun st ->
            c_mem st;
            data_access st off;
            st.globals.(off) <- ev st.cur_fr;
            cont st
      | None ->
          let fstr = Lir.string_of_field_ref fld in
          fun st ->
            c_mem st;
            rt_err "unresolved static field %s" fstr)
  | Lir.New_object (r, cname) -> (
      match Hashtbl.find_opt prog.Program.class_id_of_name cname with
      | Some cid ->
          let n = prog.Program.classes.(cid).Program.n_fields in
          let slots = max n 1 in
          let cc_alloc =
            costs.Costs.alloc_base + (costs.Costs.alloc_per_slot * n)
          in
          fun st ->
            charge st cc_alloc;
            st.cur_fr.regs.(r) <-
              alloc st (Obj { cls = cid; fields = Array.make slots 0 });
            cont st
      | None -> fun _ -> rt_err "unknown class %s" cname)
  | Lir.New_array (r, len) ->
      let el = cop len in
      let cc_base = costs.Costs.alloc_base in
      let cc_slot = costs.Costs.alloc_per_slot in
      fun st ->
        let fr = st.cur_fr in
        let n = el fr in
        if n < 0 then rt_err "negative array length %d" n;
        charge st (cc_base + (cc_slot * n));
        fr.regs.(r) <- alloc st (Arr (Array.make (max n 1) 0));
        cont st
  | Lir.Array_load (r, a, i) -> (
      let mstr = Lir.string_of_method_ref m.Program.mref in
      match (a, i) with
      | Lir.Reg ra, Lir.Reg ri ->
          fun st ->
            c_mem st;
            let regs = st.cur_fr.regs in
            let arr = regs.(ra) in
            let cells = arr_cells st arr in
            let i = regs.(ri) in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i mstr;
            data_access st (cell_addr st arr + i);
            regs.(r) <- cells.(i);
            cont st
      | _ ->
          let ea = cop a in
          let ei = cop i in
          fun st ->
            c_mem st;
            let fr = st.cur_fr in
            let arr = ea fr in
            let cells = arr_cells st arr in
            let i = ei fr in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i mstr;
            data_access st (cell_addr st arr + i);
            fr.regs.(r) <- cells.(i);
            cont st)
  | Lir.Array_store (a, i, v) -> (
      let mstr = Lir.string_of_method_ref m.Program.mref in
      match (a, i, v) with
      | Lir.Reg ra, Lir.Reg ri, Lir.Reg rv ->
          fun st ->
            c_mem st;
            let regs = st.cur_fr.regs in
            let arr = regs.(ra) in
            let cells = arr_cells st arr in
            let i = regs.(ri) in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i mstr;
            data_access st (cell_addr st arr + i);
            cells.(i) <- regs.(rv);
            cont st
      | _ ->
          let ea = cop a in
          let ei = cop i in
          let ev = cop v in
          fun st ->
            c_mem st;
            let fr = st.cur_fr in
            let arr = ea fr in
            let cells = arr_cells st arr in
            let i = ei fr in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i mstr;
            data_access st (cell_addr st arr + i);
            cells.(i) <- ev fr;
            cont st)
  | Lir.Array_length (r, a) ->
      let ea = cop a in
      fun st ->
        c_mem st;
        let fr = st.cur_fr in
        fr.regs.(r) <- Array.length (arr_cells st (ea fr));
        cont st
  | Lir.Instance_test (r, o, cname) ->
      let eo = cop o in
      let cid =
        match Hashtbl.find_opt prog.Program.class_id_of_name cname with
        | Some cid -> cid
        | None -> -1 (* never matches: class names in the heap are linked *)
      in
      let cc_test = cc_mem + cc_alu in
      fun st ->
        charge st cc_test;
        let fr = st.cur_fr in
        let v = eo fr in
        fr.regs.(r) <-
          (if v <= 0 || v > Ir.Vec.length st.heap then 0
           else
             match Ir.Vec.unsafe_get st.heap (v - 1) with
             | Obj obj -> if obj.cls = cid then 1 else 0
             | Arr _ -> 0);
        cont st
  | Lir.Call { dst; kind; target; args; site } -> (
      let nargs = List.length args in
      let aev = Array.of_list (List.map cop args) in
      let ret_dst = match dst with Some r -> r | None -> -1 in
      let from_meth = m.Program.id in
      let cc_call =
        costs.Costs.call_base + (costs.Costs.call_per_arg * nargs)
      in
      let slow st =
        let fr = st.cur_fr in
        fr.idx <- ni;
        invoke st st.cur_th fr dst kind target args site
      in
      match kind with
      | Lir.Static -> (
          match
            Hashtbl.find_opt prog.Program.static_method
              (Lir.string_of_method_ref target)
          with
          | Some id ->
              (* arity and name are version-invariant, so the error
                 branch can specialize against the link-time template;
                 the call branch re-reads [cp.templates.(id)] at run
                 time because the adaptive tier hot-swaps versions *)
              let t0 = cp.templates.(id) in
              if nargs > Array.length t0.t_params then
                fun st ->
                  st.cur_fr.idx <- ni;
                  charge st cc_call;
                  rt_err "too many arguments to %s" t0.t_name
              else
                fun st ->
                  let fr = st.cur_fr in
                  fr.idx <- ni;
                  charge st cc_call;
                  let t = cp.templates.(id) in
                  let callee = alloc_frame st t in
                  let regs = callee.regs in
                  for k = 0 to nargs - 1 do
                    regs.(t.t_params.(k)) <- aev.(k) fr
                  done;
                  link_frame st st.cur_th fr callee ~ret_dst ~from_meth
                    ~from_site:site;
                  let cm = fetch_or_fallback st cp prog id in
                  if cm == empty_cmeth then ()
                    (* fallback callee: return to the dispatcher, which
                       interprets the pushed frame (Machine.step performs
                       the same per-word preamble itself) *)
                  else begin
                    (* chain straight into the callee: the same preamble
                       the dispatcher would run for its first instruction *)
                    st.cur_fr <- callee;
                    fuel_check st;
                    st.instructions <- st.instructions + 1;
                    icache_access st t.t_entry_base;
                    cm.(t.t_entry_blk).code.(0) st
                  end
          | None ->
              (* unresolved: the shared slow path raises the identical
                 Link_error at the identical execution point *)
              slow)
      | Lir.Virtual ->
          if nargs = 0 then slow
          else
            let mname = target.Lir.mname in
            (* per-site dispatch table, indexed by class id *)
            let vtab =
              Array.map
                (fun (c : Program.cls) ->
                  match Hashtbl.find_opt c.Program.vtable mname with
                  | Some id -> id
                  | None -> -1)
                prog.Program.classes
            in
            fun st ->
              let fr = st.cur_fr in
              fr.idx <- ni;
              charge st cc_call;
              let vals = Array.make nargs 0 in
              for k = 0 to nargs - 1 do
                vals.(k) <- aev.(k) fr
              done;
              let recv = vals.(0) in
              if recv = 0 then rt_err "null receiver for %s" mname;
              let cls =
                match heap_get st recv with
                | Obj o -> o.cls
                | Arr _ -> rt_err "virtual call on array"
              in
              let id = vtab.(cls) in
              if id < 0 then
                rt_err "class %s has no method %s"
                  st.prog.Program.classes.(cls).Program.cls_name mname;
              let t = cp.templates.(id) in
              let np = Array.length t.t_params in
              if nargs > np then rt_err "too many arguments to %s" t.t_name;
              let callee = alloc_frame st t in
              let regs = callee.regs in
              for k = 0 to nargs - 1 do
                regs.(t.t_params.(k)) <- vals.(k)
              done;
              link_frame st st.cur_th fr callee ~ret_dst ~from_meth
                ~from_site:site;
              let cm = fetch_or_fallback st cp prog id in
              if cm == empty_cmeth then ()
              else begin
                st.cur_fr <- callee;
                fuel_check st;
                st.instructions <- st.instructions + 1;
                icache_access st t.t_entry_base;
                cm.(t.t_entry_blk).code.(0) st
              end)
  | Lir.Intrinsic { dst; name; args } -> (
      let nargs = List.length args in
      let cc_intr = costs.Costs.intrinsic in
      match (name, nargs) with
      | "print", 1 ->
          let e = cop (List.hd args) in
          fun st ->
            charge st cc_intr;
            Buffer.add_string st.out (string_of_int (e st.cur_fr));
            Buffer.add_char st.out '\n';
            cont st
      | "rand", 1 -> (
          match (List.hd args, dst) with
          | Lir.Reg s, Some r ->
              fun st ->
                charge st cc_intr;
                let fr = st.cur_fr in
                fr.regs.(r) <- next_rand st fr.regs.(s);
                cont st
          | a, Some r ->
              let e = cop a in
              fun st ->
                charge st cc_intr;
                let fr = st.cur_fr in
                fr.regs.(r) <- next_rand st (e fr);
                cont st
          | a, None ->
              (* the reference advances the RNG even with no destination *)
              let e = cop a in
              fun st ->
                charge st cc_intr;
                ignore (next_rand st (e st.cur_fr) : int);
                cont st)
      | "yield", 0 ->
          fun st ->
            st.cur_fr.idx <- ni;
            charge st cc_intr;
            rotate_thread st
      | _ ->
          (* spawn/malformed/unknown: rare, shared slow path keeps both
             the late link-error behaviour and the thread bookkeeping *)
          fun st ->
            let fr = st.cur_fr in
            fr.idx <- ni;
            intrinsic st st.cur_th fr dst name args)
  | Lir.Yieldpoint yp -> (
      (* conditional break: only an actual thread switch returns to the
         dispatcher; the common (no-switch) case keeps going.  The
         counter bump is inlined per kind (an indirect call otherwise). *)
      let cc_yp = costs.Costs.yieldpoint in
      match yp with
      | Lir.Yp_entry ->
          fun st ->
            charge st cc_yp;
            st.counters.entry_yps <- st.counters.entry_yps + 1;
            adaptive_check st;
            if st.migration && try_migrate st st.cur_fr ni then begin
              (* frame re-pinned to the freshly-installed version:
                 return to the dispatcher, which re-fetches its compiled
                 code and resumes at the migrated index (same
                 fuel/preamble sequence the reference performs) *)
              if st.switch_bit then begin
                st.switch_bit <- false;
                rotate_thread st
              end
            end
            else if st.switch_bit then begin
              st.cur_fr.idx <- ni;
              st.switch_bit <- false;
              rotate_thread st
            end
            else cont st
      | Lir.Yp_backedge ->
          (* trace-tier anchor: every compiled backedge carries a site
             id; the gate below is a single always-false compare until
             a run arms [trace_threshold] *)
          let site = Atomic.fetch_and_add cp.n_sites 1 in
          fun st ->
            charge st cc_yp;
            st.counters.backedge_yps <- st.counters.backedge_yps + 1;
            adaptive_check st;
            if st.migration && try_migrate st st.cur_fr ni then begin
              if st.switch_bit then begin
                st.switch_bit <- false;
                rotate_thread st
              end
            end
            else if st.switch_bit then begin
              st.cur_fr.idx <- ni;
              st.switch_bit <- false;
              rotate_thread st
            end
            else if st.trace_threshold < max_int && Trace.backedge st site ni
            then ()
              (* a compiled trace ran (or a recording stepped the
                 machine): back to the dispatcher, which resumes at the
                 written-back frame position with the standard preamble *)
            else cont st)
  | Lir.Instrument op ->
      (* Flat-slot recording compiles to a direct buffer bump (the
         [record_flat] body): no ctx allocation, no hook-name match, no
         string building.  [op.slot] is read at run time, not captured,
         because the compiled method cache can outlive slot assignment;
         assignment is deterministic per program (Profiles.Slots). *)
      fun st ->
        st.counters.instrument_ops <- st.counters.instrument_ops + 1;
        (match st.recorder with
        | Some r when op.Lir.slot >= 0 ->
            record_flat st st.cur_th st.cur_fr r op.Lir.slot
        | _ ->
            icharge st (st.hooks.instr_cost op);
            st.hooks.on_instrument (make_ctx st st.cur_th st.cur_fr) op);
        cont st
  | Lir.Guarded_instrument op ->
      let cc_check = costs.Costs.check in
      fun st ->
        st.counters.checks <- st.counters.checks + 1;
        icharge st cc_check;
        if st.hooks.fire st.cur_th.tid then begin
          st.counters.samples <- st.counters.samples + 1;
          run_instrument st st.cur_th st.cur_fr op
        end;
        cont st

(* ------------------------------------------------------------------ *)
(* Straight-line fusion                                                 *)
(* ------------------------------------------------------------------ *)

(* A maximal run of instructions none of which can suspend, reschedule,
   or hand control to the dispatcher is compiled into ONE closure that
   executes all the bodies behind a single guard-gate precheck:

     cycles_at_entry + delta_max > guard_gate  ->  word-by-word slow path

   [delta_max] is a static upper bound on every cycle that can be
   charged inside the run (body charges, worst-case i-cache and d-cache
   misses, worst-case instrumentation).  When the precheck passes, the
   cycle counter stays at or below the gate for the whole run, so every
   elided per-word [fuel_check] is provably the no-op the reference
   would have performed: no fault event, watchdog poll, or fuel stop
   can fire inside the run, on either path.  That makes the batching
   bit-identical by construction:

   - instruction counts are added in bulk (nothing inside the run
     observes [st.instructions]);
   - i-cache probes are issued only at line-head addresses.  The
     skipped probes are for words on an already-probed line, and
     nothing else can touch the i-cache inside the run (data traffic
     goes to the separate d-cache instance, flushes only arrive via
     [guard_trip]), so each skipped probe is a guaranteed hit — a hit
     changes no tag and charges nothing;
   - every cycle charge, counter bump, register/heap/output effect and
     raise happens in the bodies, verbatim, in reference order.

   Runs containing instrumentation enter the fast path only when the
   flat recorder is armed and every op has a resolved slot (the
   per-event charge is then the recorder's pre-resolved [ev_cost],
   which bounds the dynamic part of [delta_max]); legacy hook runs take
   the slow path, whose closures dispatch exactly as before. *)

(* The fast-path step for one fusable instruction: the matching
   [compile_instr] arm with the same body but a bare [next st] in place
   of the per-word preamble continuation.  Returns the step, a static
   worst-case cycle bound (including the instruction's possible
   cache-miss charges), and its instrument op if it has one (the fused
   entry adds the op's resolved [ev_cost] to the bound at run time). *)
and compile_body (cp : cprog) (prog : Program.t) (m : Program.meth)
    ~(next : k) (ins : Lir.instr) : k * int * Lir.instrument_op option =
  let costs = cp.c_costs in
  let cc_mem = costs.Costs.mem in
  let cc_move = costs.Costs.move in
  let cc_alu = costs.Costs.alu in
  let cc_miss = costs.Costs.icache_miss in
  let c_mem st = charge st cc_mem in
  let pure k bound = (k, bound, None) in
  match ins with
  | Lir.Move (r, Lir.Imm n) ->
      pure
        (fun st ->
          charge st cc_move;
          st.cur_fr.regs.(r) <- n;
          next st)
        cc_move
  | Lir.Move (r, Lir.Reg s) ->
      pure
        (fun st ->
          charge st cc_move;
          let regs = st.cur_fr.regs in
          regs.(r) <- regs.(s);
          next st)
        cc_move
  | Lir.Unop (r, op, a) ->
      let body =
        match (op, a) with
        | Lir.Neg, Lir.Reg s ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- -regs.(s);
              next st
        | Lir.Not, Lir.Reg s ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(s) = 0 then 1 else 0);
              next st
        | Lir.Neg, Lir.Imm n ->
            let v = -n in
            fun st ->
              charge st cc_alu;
              st.cur_fr.regs.(r) <- v;
              next st
        | Lir.Not, Lir.Imm n ->
            let v = if n = 0 then 1 else 0 in
            fun st ->
              charge st cc_alu;
              st.cur_fr.regs.(r) <- v;
              next st
      in
      pure body cc_alu
  | Lir.Binop (r, op, a, b) ->
      let body =
        match (op, a, b) with
        (* the same hand-specialized hot operators as [compile_instr] *)
        | Lir.Add, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) + regs.(y);
              next st
        | Lir.Add, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) + n;
              next st
        | Lir.Sub, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) - regs.(y);
              next st
        | Lir.Sub, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) - n;
              next st
        | Lir.Mul, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) * regs.(y);
              next st
        | Lir.Mul, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) * n;
              next st
        | Lir.And, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) land regs.(y);
              next st
        | Lir.And, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) land n;
              next st
        | Lir.Or, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) lor regs.(y);
              next st
        | Lir.Or, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) lor n;
              next st
        | Lir.Xor, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) lxor regs.(y);
              next st
        | Lir.Xor, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- regs.(x) lxor n;
              next st
        | Lir.Lt, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) < regs.(y) then 1 else 0);
              next st
        | Lir.Lt, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) < n then 1 else 0);
              next st
        | Lir.Le, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) <= regs.(y) then 1 else 0);
              next st
        | Lir.Le, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) <= n then 1 else 0);
              next st
        | Lir.Gt, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) > regs.(y) then 1 else 0);
              next st
        | Lir.Gt, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) > n then 1 else 0);
              next st
        | Lir.Ge, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) >= regs.(y) then 1 else 0);
              next st
        | Lir.Ge, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) >= n then 1 else 0);
              next st
        | Lir.Eq, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) = regs.(y) then 1 else 0);
              next st
        | Lir.Eq, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) = n then 1 else 0);
              next st
        | Lir.Ne, Lir.Reg x, Lir.Reg y ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) <> regs.(y) then 1 else 0);
              next st
        | Lir.Ne, Lir.Reg x, Lir.Imm n ->
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- (if regs.(x) <> n then 1 else 0);
              next st
        | _, Lir.Reg x, Lir.Reg y ->
            let f = binop_fn op in
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- f regs.(x) regs.(y);
              next st
        | _, Lir.Reg x, Lir.Imm n ->
            let f = binop_fn op in
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- f regs.(x) n;
              next st
        | _, Lir.Imm n, Lir.Reg y ->
            let f = binop_fn op in
            fun st ->
              charge st cc_alu;
              let regs = st.cur_fr.regs in
              regs.(r) <- f n regs.(y);
              next st
        | _, Lir.Imm n, Lir.Imm p ->
            let f = binop_fn op in
            fun st ->
              charge st cc_alu;
              st.cur_fr.regs.(r) <- f n p;
              next st
      in
      pure body cc_alu
  | Lir.Get_field (r, o, fld) -> (
      match
        Hashtbl.find_opt prog.Program.field_offset (Lir.string_of_field_ref fld)
      with
      | Some off ->
          let body =
            match o with
            | Lir.Reg ro ->
                fun st ->
                  c_mem st;
                  let regs = st.cur_fr.regs in
                  let obj = regs.(ro) in
                  let fields = obj_fields st obj in
                  data_access st (cell_addr st obj + off);
                  regs.(r) <- fields.(off);
                  next st
            | Lir.Imm _ as o ->
                let eo = cop o in
                fun st ->
                  c_mem st;
                  let fr = st.cur_fr in
                  let obj = eo fr in
                  let fields = obj_fields st obj in
                  data_access st (cell_addr st obj + off);
                  fr.regs.(r) <- fields.(off);
                  next st
          in
          pure body (cc_mem + cc_miss)
      | None ->
          let eo = cop o in
          let fstr = Lir.string_of_field_ref fld in
          pure
            (fun st ->
              c_mem st;
              ignore (obj_fields st (eo st.cur_fr) : int array);
              rt_err "unresolved field %s" fstr)
            cc_mem)
  | Lir.Put_field (o, fld, v) -> (
      let eo = cop o in
      match
        Hashtbl.find_opt prog.Program.field_offset (Lir.string_of_field_ref fld)
      with
      | Some off ->
          let body =
            match (o, v) with
            | Lir.Reg ro, Lir.Reg rv ->
                fun st ->
                  c_mem st;
                  let regs = st.cur_fr.regs in
                  let obj = regs.(ro) in
                  let fields = obj_fields st obj in
                  data_access st (cell_addr st obj + off);
                  fields.(off) <- regs.(rv);
                  next st
            | _ ->
                let ev = cop v in
                fun st ->
                  c_mem st;
                  let fr = st.cur_fr in
                  let obj = eo fr in
                  let fields = obj_fields st obj in
                  data_access st (cell_addr st obj + off);
                  fields.(off) <- ev fr;
                  next st
          in
          pure body (cc_mem + cc_miss)
      | None ->
          let fstr = Lir.string_of_field_ref fld in
          pure
            (fun st ->
              c_mem st;
              ignore (obj_fields st (eo st.cur_fr) : int array);
              rt_err "unresolved field %s" fstr)
            cc_mem)
  | Lir.Get_static (r, fld) -> (
      match
        Hashtbl.find_opt prog.Program.static_offset
          (Lir.string_of_field_ref fld)
      with
      | Some off ->
          pure
            (fun st ->
              c_mem st;
              data_access st off;
              st.cur_fr.regs.(r) <- st.globals.(off);
              next st)
            (cc_mem + cc_miss)
      | None ->
          let fstr = Lir.string_of_field_ref fld in
          pure
            (fun st ->
              c_mem st;
              rt_err "unresolved static field %s" fstr)
            cc_mem)
  | Lir.Put_static (fld, v) -> (
      let ev = cop v in
      match
        Hashtbl.find_opt prog.Program.static_offset
          (Lir.string_of_field_ref fld)
      with
      | Some off ->
          pure
            (fun st ->
              c_mem st;
              data_access st off;
              st.globals.(off) <- ev st.cur_fr;
              next st)
            (cc_mem + cc_miss)
      | None ->
          let fstr = Lir.string_of_field_ref fld in
          pure
            (fun st ->
              c_mem st;
              rt_err "unresolved static field %s" fstr)
            cc_mem)
  | Lir.New_object (r, cname) -> (
      match Hashtbl.find_opt prog.Program.class_id_of_name cname with
      | Some cid ->
          let n = prog.Program.classes.(cid).Program.n_fields in
          let slots = max n 1 in
          let cc_alloc =
            costs.Costs.alloc_base + (costs.Costs.alloc_per_slot * n)
          in
          pure
            (fun st ->
              charge st cc_alloc;
              st.cur_fr.regs.(r) <-
                alloc st (Obj { cls = cid; fields = Array.make slots 0 });
              next st)
            cc_alloc
      | None -> pure (fun _ -> rt_err "unknown class %s" cname) 0)
  | Lir.Array_load (r, a, i) ->
      let mstr = Lir.string_of_method_ref m.Program.mref in
      let body =
        match (a, i) with
        | Lir.Reg ra, Lir.Reg ri ->
            fun st ->
              c_mem st;
              let regs = st.cur_fr.regs in
              let arr = regs.(ra) in
              let cells = arr_cells st arr in
              let i = regs.(ri) in
              if i < 0 || i >= Array.length cells then
                rt_err "array index %d out of bounds (%s)" i mstr;
              data_access st (cell_addr st arr + i);
              regs.(r) <- cells.(i);
              next st
        | _ ->
            let ea = cop a in
            let ei = cop i in
            fun st ->
              c_mem st;
              let fr = st.cur_fr in
              let arr = ea fr in
              let cells = arr_cells st arr in
              let i = ei fr in
              if i < 0 || i >= Array.length cells then
                rt_err "array index %d out of bounds (%s)" i mstr;
              data_access st (cell_addr st arr + i);
              fr.regs.(r) <- cells.(i);
              next st
      in
      pure body (cc_mem + cc_miss)
  | Lir.Array_store (a, i, v) ->
      let mstr = Lir.string_of_method_ref m.Program.mref in
      let body =
        match (a, i, v) with
        | Lir.Reg ra, Lir.Reg ri, Lir.Reg rv ->
            fun st ->
              c_mem st;
              let regs = st.cur_fr.regs in
              let arr = regs.(ra) in
              let cells = arr_cells st arr in
              let i = regs.(ri) in
              if i < 0 || i >= Array.length cells then
                rt_err "array index %d out of bounds (%s)" i mstr;
              data_access st (cell_addr st arr + i);
              cells.(i) <- regs.(rv);
              next st
        | _ ->
            let ea = cop a in
            let ei = cop i in
            let ev = cop v in
            fun st ->
              c_mem st;
              let fr = st.cur_fr in
              let arr = ea fr in
              let cells = arr_cells st arr in
              let i = ei fr in
              if i < 0 || i >= Array.length cells then
                rt_err "array index %d out of bounds (%s)" i mstr;
              data_access st (cell_addr st arr + i);
              cells.(i) <- ev fr;
              next st
      in
      pure body (cc_mem + cc_miss)
  | Lir.Array_length (r, a) ->
      let ea = cop a in
      pure
        (fun st ->
          c_mem st;
          let fr = st.cur_fr in
          fr.regs.(r) <- Array.length (arr_cells st (ea fr));
          next st)
        cc_mem
  | Lir.Instance_test (r, o, cname) ->
      let eo = cop o in
      let cid =
        match Hashtbl.find_opt prog.Program.class_id_of_name cname with
        | Some cid -> cid
        | None -> -1
      in
      let cc_test = cc_mem + cc_alu in
      pure
        (fun st ->
          charge st cc_test;
          let fr = st.cur_fr in
          let v = eo fr in
          fr.regs.(r) <-
            (if v <= 0 || v > Ir.Vec.length st.heap then 0
             else
               match Ir.Vec.unsafe_get st.heap (v - 1) with
               | Obj obj -> if obj.cls = cid then 1 else 0
               | Arr _ -> 0);
          next st)
        cc_test
  | Lir.Intrinsic { dst; name; args } -> (
      let cc_intr = costs.Costs.intrinsic in
      match (name, args) with
      | "print", [ a ] ->
          let e = cop a in
          pure
            (fun st ->
              charge st cc_intr;
              Buffer.add_string st.out (string_of_int (e st.cur_fr));
              Buffer.add_char st.out '\n';
              next st)
            cc_intr
      | "rand", [ a ] ->
          let body =
            match (a, dst) with
            | Lir.Reg s, Some r ->
                fun st ->
                  charge st cc_intr;
                  let fr = st.cur_fr in
                  fr.regs.(r) <- next_rand st fr.regs.(s);
                  next st
            | a, Some r ->
                let e = cop a in
                fun st ->
                  charge st cc_intr;
                  let fr = st.cur_fr in
                  fr.regs.(r) <- next_rand st (e fr);
                  next st
            | a, None ->
                let e = cop a in
                fun st ->
                  charge st cc_intr;
                  ignore (next_rand st (e st.cur_fr) : int);
                  next st
          in
          pure body cc_intr
      | _ -> assert false (* not [fusable] *))
  | Lir.Instrument op ->
      (* fast path guarantees recorder armed and slot resolved; the
         dynamic charge bound is the entry's ev_cost lookup *)
      ( (fun st ->
          st.counters.instrument_ops <- st.counters.instrument_ops + 1;
          (match st.recorder with
          | Some r -> record_flat st st.cur_th st.cur_fr r op.Lir.slot
          | None -> assert false);
          next st),
        0,
        Some op )
  | Lir.Guarded_instrument op ->
      let cc_check = costs.Costs.check in
      ( (fun st ->
          st.counters.checks <- st.counters.checks + 1;
          icharge st cc_check;
          if st.hooks.fire st.cur_th.tid then begin
            st.counters.samples <- st.counters.samples + 1;
            run_instrument st st.cur_th st.cur_fr op
          end;
          next st),
        cc_check,
        Some op )
  | Lir.New_array _ | Lir.Call _ | Lir.Yieldpoint _ ->
      assert false (* not [fusable] *)

(* One closure for the fusable run [a..b] of a block.  [slow] is the
   run's ordinary word-by-word chain (taken near the guard gate, with a
   legacy recorder, or on an unexpected cache geometry); [tail] is the
   compiled continuation at word [b+1].  The fast path is itself a
   chain of tail calls — one monomorphic indirect call per word, like
   the slow chain, but with no per-word preamble — ending in a step
   that adds the elided instruction counts in bulk and performs the
   final word's preamble verbatim. *)
and compile_fused (cp : cprog) (prog : Program.t) (m : Program.meth)
    ~(instrs : Lir.instr array) ~(a : int) ~(b : int) ~(base : int) ~(slow : k)
    ~(tail : k) : k =
  let costs = cp.c_costs in
  let cc_miss = costs.Costs.icache_miss in
  let n_mid = b - a in
  let tail_addr = base + b + 1 in
  let exit_step st =
    st.instructions <- st.instructions + n_mid;
    fuel_check st;
    st.instructions <- st.instructions + 1;
    icache_access st tail_addr;
    tail st
  in
  let chain = ref exit_step in
  let delta = ref 0 in
  let rops = ref [] in
  for j = b downto a do
    let body, bound, iop = compile_body cp prog m ~next:!chain instrs.(j) in
    delta := !delta + bound;
    (match iop with Some op -> rops := op :: !rops | None -> ());
    (* the reference probes word [j]'s address before executing it
       (word [a]'s probe belongs to the predecessor); within the run
       only line heads can miss, so only they are probed *)
    if j > a && (base + j) mod fused_line_words = 0 then begin
      let addr = base + j in
      delta := !delta + cc_miss;
      chain :=
        fun st ->
          icache_access st addr;
          body st
    end
    else chain := body
  done;
  let fast = !chain in
  let delta_static = !delta in
  let geometry_ok st =
    match st.icache with
    | Some ic -> Icache.line_words ic = fused_line_words
    | None -> true
  in
  match Array.of_list !rops with
  | [||] ->
      fun st ->
        if st.cycles + delta_static > st.guard_gate || not (geometry_ok st)
        then slow st
        else fast st
  | ops ->
      let n_ops = Array.length ops in
      (* worst-case instrumentation charge from the recorder's resolved
         per-event costs; -1 while any slot is still unresolved *)
      let rec dsum (r : flat_recorder) i acc =
        if i >= n_ops then acc
        else
          let s = (Array.unsafe_get ops i).Lir.slot in
          if s < 0 then -1
          else dsum r (i + 1) (acc + Array.unsafe_get r.ev_cost s)
      in
      fun st -> (
        match st.recorder with
        | None -> slow st
        | Some r ->
            let d = dsum r 0 delta_static in
            if d < 0 || st.cycles + d > st.guard_gate || not (geometry_ok st)
            then slow st
            else fast st)

(* ------------------------------------------------------------------ *)
(* Terminator and block compilation                                    *)
(* ------------------------------------------------------------------ *)

(* [jump st fr l] transfers control to block [l] of the same method
   and keeps executing: it performs the dispatcher's step preamble (fuel,
   instruction count, i-cache) for the first word of the target block and
   tail-calls into its compiled chain, so intra-method control flow never
   returns to the dispatch loop.  It is local to [compile_term] (direct
   call — passing it in would make every taken branch a caml_apply).
   Returns likewise pop the frame exactly like [Machine.do_return] and
   chain into the caller's resume point; only a thread death falls back
   to the dispatcher. *)
and compile_term (cp : cprog) (prog : Program.t)
    ~(binstrs : Lir.instr array array) ~(bterm : Lir.terminator array)
    ~(baddr : int array) ~(codes : k array array) (t : Lir.terminator) : k =
  let costs = cp.c_costs in
  let cc_branch = costs.Costs.branch in
  let jump st (fr : frame) l =
    fr.blk <- l;
    fr.idx <- 0;
    fr.instrs <- binstrs.(l);
    fr.term <- bterm.(l);
    fr.base_addr <- baddr.(l);
    fuel_check st;
    st.instructions <- st.instructions + 1;
    icache_access st baddr.(l);
    codes.(l).(0) st
  in
  match t with
  | Lir.Goto l ->
      fun st ->
        charge st cc_branch;
        jump st st.cur_fr l
  | Lir.If { cond; if_true; if_false } -> (
      match cond with
      | Lir.Reg rc ->
          fun st ->
            charge st cc_branch;
            let fr = st.cur_fr in
            jump st fr (if fr.regs.(rc) <> 0 then if_true else if_false)
      | Lir.Imm n ->
          let l = if n <> 0 then if_true else if_false in
          fun st ->
            charge st cc_branch;
            jump st st.cur_fr l)
  | Lir.Switch { scrut; cases; default } -> (
      let cc_switch = costs.Costs.switch in
      let tbl = Hashtbl.create (max 4 (2 * List.length cases)) in
      (* first binding wins, like List.assoc_opt in the reference *)
      List.iter
        (fun (v, l) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v l)
        cases;
      let sel st (fr : frame) v =
        let target =
          match Hashtbl.find_opt tbl v with Some l -> l | None -> default
        in
        jump st fr target
      in
      match scrut with
      | Lir.Reg rs ->
          fun st ->
            charge st cc_switch;
            let fr = st.cur_fr in
            sel st fr fr.regs.(rs)
      | Lir.Imm n ->
          fun st ->
            charge st cc_switch;
            sel st st.cur_fr n)
  | Lir.Return None ->
      let cc_ret = costs.Costs.ret in
      fun st -> (
        let th = st.cur_th in
        (* cur_fr is the frame executing this return; once popped it is
           unreachable and goes back to the pool (the dispatcher always
           rewrites cur_fr before running any other code) *)
        let dead = st.cur_fr in
        charge st cc_ret;
        match th.parents with
        | [] ->
            th.top <- None;
            st.alive <- st.alive - 1;
            if th.tid = 0 then st.main_result <- None;
            release_frame st dead;
            if st.alive > 0 then rotate_thread st
        | parent :: rest ->
            th.parents <- rest;
            th.top <- Some parent;
            release_frame st dead;
            let cm = fetch_for_frame st cp prog parent in
            if cm == empty_cmeth then ()
            else begin
              st.cur_fr <- parent;
              fuel_check st;
              st.instructions <- st.instructions + 1;
              icache_access st (parent.base_addr + parent.idx);
              cm.(parent.blk).code.(parent.idx) st
            end)
  | Lir.Return (Some op) -> (
      let cc_ret = costs.Costs.ret in
      let finish st x =
        let th = st.cur_th in
        let dead = st.cur_fr in
        charge st cc_ret;
        match th.parents with
        | [] ->
            th.top <- None;
            st.alive <- st.alive - 1;
            if th.tid = 0 then st.main_result <- Some x;
            release_frame st dead;
            if st.alive > 0 then rotate_thread st
        | parent :: rest ->
            let dst = dead.ret_dst in
            th.parents <- rest;
            th.top <- Some parent;
            if dst >= 0 then parent.regs.(dst) <- x;
            release_frame st dead;
            let cm = fetch_for_frame st cp prog parent in
            if cm == empty_cmeth then ()
            else begin
              st.cur_fr <- parent;
              fuel_check st;
              st.instructions <- st.instructions + 1;
              icache_access st (parent.base_addr + parent.idx);
              cm.(parent.blk).code.(parent.idx) st
            end
      in
      match op with
      | Lir.Reg r -> fun st -> finish st st.cur_fr.regs.(r)
      | Lir.Imm n -> fun st -> finish st n)
  | Lir.Check { on_sample; fall } ->
      let cc_check = costs.Costs.check in
      let cc_sample = costs.Costs.sample_jump in
      fun st ->
        st.counters.checks <- st.counters.checks + 1;
        icharge st cc_check;
        if st.hooks.fire st.cur_th.tid then begin
          st.counters.samples <- st.counters.samples + 1;
          icharge st cc_sample;
          jump st st.cur_fr on_sample
        end
        else jump st st.cur_fr fall

and compile_method (cp : cprog) (prog : Program.t) (m : Program.meth) : cmeth =
  let f = m.Program.func in
  let n = Lir.num_blocks f in
  let binstrs = Array.init n (fun l -> (Lir.block f l).Lir.instrs) in
  let bterm = Array.init n (fun l -> (Lir.block f l).Lir.term) in
  let baddr = m.Program.code_addr in
  (* per-block chains, filled below; the terminators' [jump] dereferences
     [codes] at run time, by which point every block of the method is
     compiled *)
  let codes : k array array = Array.make n [||] in
  let compile_block l =
    let instrs = binstrs.(l) in
    let len = Array.length instrs in
    let base = baddr.(l) in
    let tk = compile_term cp prog ~binstrs ~bterm ~baddr ~codes bterm.(l) in
    (* ks.(i) runs the block from instruction i; ks.(len) is the
       terminator step (the timer is only consulted there, like the
       reference).  Built back to front so each closure captures its
       already-final successor: straight-line execution is a chain of
       tail calls with the per-word fuel/instruction/i-cache accounting
       the dispatcher would have performed fused in. *)
    let ks =
      Array.make (len + 1) (fun st ->
          timer_check st;
          tk st)
    in
    (* Right-to-left scan, fusing maximal runs of fusable words.  The
       run's plain word-by-word closures are built first (they are the
       slow path, and the only entry points for a frame resumed
       mid-block), then the fused closure replaces ks.(a) so every
       predecessor — the word at a-1, a jump, the dispatcher — lands on
       the batched version.  Compilation still visits words strictly
       from len-1 down to 0, so yieldpoint site ids are minted in
       exactly the order the unfused compiler minted them. *)
    let i = ref (len - 1) in
    while !i >= 0 do
      if not (fusable instrs.(!i)) then begin
        let ni = !i + 1 in
        ks.(!i) <-
          compile_instr cp prog m ~nxt:ks.(ni) ~naddr:(base + ni) ~ni
            instrs.(!i);
        decr i
      end
      else begin
        let b = !i in
        let a = ref b in
        while !a > 0 && fusable instrs.(!a - 1) do
          decr a
        done;
        let a = !a in
        for j = b downto a do
          let nj = j + 1 in
          ks.(j) <-
            compile_instr cp prog m ~nxt:ks.(nj) ~naddr:(base + nj) ~ni:nj
              instrs.(j)
        done;
        if b - a + 1 >= 2 then
          ks.(a) <-
            compile_fused cp prog m ~instrs ~a ~b ~base ~slow:ks.(a)
              ~tail:ks.(b + 1);
        i := a - 1
      end
    done;
    codes.(l) <- ks;
    { code = ks }
  in
  Array.init n compile_block

(* Resolved compiled code for method [id]: one atomic load once the
   method has been touched, with the cross-domain memo (compile exactly
   once) behind it.  Run-time only — never called while compiling, so
   call-graph cycles cannot recurse. *)
and fetch (cp : cprog) (prog : Program.t) (id : int) : cmeth =
  let slot = cp.by_id.(id) in
  let cm = Atomic.get slot in
  if cm != empty_cmeth then cm
  else begin
    let cm =
      Sync.Memo.get cp.memo id (fun () ->
          compile_method cp prog prog.Program.methods.(id))
    in
    Atomic.set slot cm;
    cm
  end

(* Like [fetch], but degrading gracefully: a method the fault plan fails
   compilation for, or whose compilation genuinely raises, is marked for
   per-method fallback to [Machine.step] and yields [empty_cmeth] (the
   physical-equality sentinel — real methods always have at least one
   block).  The fallback event is recorded once, at the first use, so
   [`Ref] runs — which never fetch — report no fallbacks. *)
and fetch_or_fallback st (cp : cprog) (prog : Program.t) (id : int) : cmeth =
  match fallback_state st id with
  | 0 -> (
      match fetch cp prog id with
      | cm -> cm
      | exception e ->
          record_fallback st id
            ("engine compilation failed: " ^ Printexc.to_string e);
          empty_cmeth)
  | 1 ->
      record_fallback st id "fault-injected compile failure";
      empty_cmeth
  | _ -> empty_cmeth

(* Compiled code for the exact version frame [fr] is pinned to.  Frames
   born before an adaptive hot-swap still reference the old [meth]
   record; their code lives in (or is lazily added to) [cp.retired].
   The common case — no swap ever happened — is one physical-equality
   compare on top of [fetch_or_fallback]. *)
and fetch_for_frame st (cp : cprog) (prog : Program.t) (fr : frame) : cmeth =
  let m = fr.m in
  let id = m.Program.id in
  if m == prog.Program.methods.(id) then fetch_or_fallback st cp prog id
  else if fallback_state st id <> 0 then empty_cmeth
  else
    match List.assq_opt m cp.retired with
    | Some cm -> cm
    | None -> (
        match compile_method cp prog m with
        | cm ->
            cp.retired <- (m, cm) :: cp.retired;
            cm
        | exception e ->
            record_fallback st id
              ("engine compilation failed: " ^ Printexc.to_string e);
            empty_cmeth)

(* ------------------------------------------------------------------ *)
(* Program cache and dispatch loop                                     *)
(* ------------------------------------------------------------------ *)

let tmpl_of_meth (m : Program.meth) =
  let f = m.Program.func in
  let entry = f.Lir.entry in
  let b = Lir.block f entry in
  {
    t_meth = m;
    t_params = Array.of_list f.Lir.params;
    t_nregs = max f.Lir.next_reg 1;
    t_entry_blk = entry;
    t_entry_instrs = b.Lir.instrs;
    t_entry_term = b.Lir.term;
    t_entry_base = m.Program.code_addr.(entry);
    t_name = Lir.string_of_method_ref m.Program.mref;
  }

let mk_templates (prog : Program.t) = Array.map tmpl_of_meth prog.Program.methods

let install_mutex = Mutex.create ()

(* One compiled image per (program, cost table).  The slot holds a single
   image; a run under a different cost table (the ablations swap tables,
   and the harness links a fresh program per measurement) recompiles and
   replaces it.  Cost tables are plain int records, so structural
   equality is the right cache key. *)
let cprog_of (prog : Program.t) (costs : Costs.t) =
  match prog.Program.engine_cache with
  | Some (Compiled cp) when cp.c_costs = costs -> cp
  | _ ->
      Mutex.lock install_mutex;
      let cp =
        match prog.Program.engine_cache with
        | Some (Compiled cp) when cp.c_costs = costs -> cp
        | _ ->
            let cp =
              {
                memo = Sync.Memo.create ();
                templates = mk_templates prog;
                by_id =
                  Array.init
                    (Array.length prog.Program.methods)
                    (fun _ -> Atomic.make empty_cmeth);
                c_costs = costs;
                retired = [];
                n_sites = Atomic.make 0;
              }
            in
            prog.Program.engine_cache <- Some (Compiled cp);
            cp
      in
      Mutex.unlock install_mutex;
      cp

(* Adaptive hot-swap: install [nm] as the current version of its method
   id.  Future calls and dispatches run the new version immediately;
   live activations finish on the version their frame pins (see
   [fetch_for_frame]).  Must be called from a safepoint — the adaptive
   poll — never from inside a compiled chain that will re-read the
   swapped state.  On the reference engine (no compiled image) the
   method-table write alone is the whole swap. *)
let hot_swap st (nm : Program.meth) =
  let prog = st.prog in
  let id = nm.Program.id in
  let old = prog.Program.methods.(id) in
  if old != nm then begin
    prog.Program.methods.(id) <- nm;
    (* traces recorded against the retired version must never run again
       (their precheck's version guard would reject them anyway; this
       makes the invalidation prompt and counted) *)
    Trace.invalidate st id;
    match prog.Program.engine_cache with
    | Some (Compiled cp) -> (
        let old_cm = Atomic.get cp.by_id.(id) in
        if old_cm != empty_cmeth && not (List.mem_assq old cp.retired) then
          cp.retired <- (old, old_cm) :: cp.retired;
        cp.templates.(id) <- tmpl_of_meth nm;
        match compile_method cp prog nm with
        | cm -> Atomic.set cp.by_id.(id) cm
        | exception e ->
            (* degrade to the interpreter for the new version rather than
               aborting the run: same contract as fetch_or_fallback *)
            record_fallback st id
              ("engine compilation failed: " ^ Printexc.to_string e);
            Atomic.set cp.by_id.(id) empty_cmeth)
    | _ -> ()
  end

let exec st =
  let prog = st.prog in
  let cp = cprog_of prog st.costs in
  while st.alive > 0 do
    fuel_check st;
    let th = st.threads.(st.current) in
    match th.top with
    | None -> rotate_thread st
    | Some fr ->
        let cm = fetch_for_frame st cp prog fr in
        if cm == empty_cmeth then
          (* degraded method: one reference step, which performs the
             instruction-count/i-cache preamble itself *)
          Machine.step st
        else begin
          st.instructions <- st.instructions + 1;
          icache_access st (fr.base_addr + fr.idx);
          st.cur_th <- th;
          st.cur_fr <- fr;
          (* code.(len) is the terminator step, so a frame suspended at
             any idx in [0, len] resumes with a single indexed dispatch *)
          cm.(fr.blk).code.(fr.idx) st
        end
  done
