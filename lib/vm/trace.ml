(* Trace-recording JIT tier (ROADMAP item 2).

   The sampling apparatus already finds hot loops for free: the backedge
   yieldpoints the engine compiles are exactly a trace JIT's hot-loop
   detector.  When a backedge's per-run counter crosses
   [state.trace_threshold], the loop is flipped into RECORD mode: one
   iteration is executed through the reference stepper ([Machine.step],
   so recording is observationally part of normal execution) while its
   linear instruction sequence is captured, then compiled into a single
   fused closure chain — pc chaining constant-folded away, cycle costs
   and flat-slot recorder charges pre-summed per straight-line segment
   and applied at segment granularity, guards at every conditional that
   side-exit back to the per-method closure code at the precise
   pc/register state.

   Cycle-accounting invariant.  Fusing is sound because nothing can
   observe the machine mid-segment: every point at which the reference
   interpreter consults [st.cycles] — the fuel guard, the timer device,
   the adaptive safepoint, the fault plan, the watchdog poll — is
   covered by the entry precheck, which admits an iteration only when
   its worst-case cost [max_cost] fits below
   min(guard_gate, next_timer - 1, next_adaptive - 1) with the switch
   bit clear and the anchor method still the installed version.  Under
   that precheck no fuel trip, timer tick, fault event, adaptive poll,
   thread switch or frame migration could have fired anywhere inside
   the iteration, so eliding the per-word checks and batching the
   charges produces bit-identical totals at every observable point.
   When the precheck fails the engine falls back to the per-method
   closure code, which performs every check at reference granularity.

   Side exits.  Guards sit at segment boundaries, after the pending
   segment sum (which includes the guarded terminator's own charge) has
   been applied — exactly the charges the reference would have applied
   executing the same words — so a side exit needs no rollback: it
   writes the precise target position with [set_block] and returns to
   the dispatcher.  Run-aborting errors raised mid-segment (division by
   zero, bounds, null) escape before the segment sum is applied, which
   is unobservable: the exception carries the same message at the same
   execution point, and no cycle count survives a failed run.

   Calls.  Traces record through calls: the recording stepper descends
   into the callee, and replay mirrors the engine's call/return
   machinery exactly — pooled frame allocation, argument fill,
   activation-id minting, parent push/pop — with the static accounting
   (call/return charges, entries counter, i-cache accesses) batched
   like any other word.  Virtual calls guard the receiver's class and
   side-exit to the call word itself on a mismatch, so the per-method
   code re-executes the full dispatch with its exact error semantics.

   Traces are per-run values (they capture the run's recorder, hooks
   and cache configuration), anchored at engine-minted site ids and
   stored in the state's [trace] slot; compiled code stays shareable
   across domains.  Because a trace may inline any method's code, an
   adaptive hot-swap of any method invalidates every installed trace
   ([invalidate]); sites then re-record against the current world.
   Frames pinned to a retired version are rejected by the precheck's
   version guard, which also keeps the migration elision sound
   ([Machine.try_migrate] no-ops when the frame already runs the
   installed version). *)

module Lir = Ir.Lir
open Machine

(* ------------------------------------------------------------------ *)
(* Event taxonomy (modeled on lambdachine's Stats.h)                   *)
(* ------------------------------------------------------------------ *)

let ev_record = 0 (* recordings started *)
let ev_abort_trace = 1 (* recordings or compilations abandoned *)
let ev_compile = 2 (* traces compiled and installed *)
let ev_trace = 3 (* entries into compiled-trace execution *)
let ev_exit = 4 (* guard side exits back to per-method code *)
let ev_invalidate = 5 (* traces invalidated by adaptive hot-swap *)
let n_events = 6

let event_names =
  [|
    "EV_RECORD";
    "EV_ABORT_TRACE";
    "EV_COMPILE";
    "EV_TRACE";
    "EV_EXIT";
    "EV_INVALIDATE";
  |]

(* Process-wide diagnostic counters (never simulated observables):
   cross-domain, surviving every run in the process, read by
   [isf --stats].  Bumped only at rare events — entries, exits,
   record/compile/invalidate — never per executed iteration. *)
let event_counters = Array.init n_events (fun _ -> Atomic.make 0)
let bump ev = Atomic.incr event_counters.(ev)

let stats () =
  Array.to_list
    (Array.mapi (fun i n -> (n, Atomic.get event_counters.(i))) event_names)

let reset_stats () = Array.iter (fun c -> Atomic.set c 0) event_counters

(* ------------------------------------------------------------------ *)
(* Per-run trace state                                                 *)
(* ------------------------------------------------------------------ *)

type itrace = {
  t_anchor_m : Program.meth; (* method version the trace was recorded in *)
  t_anchor_id : int;
  t_ablk : int; (* anchor position: block, resume index past the *)
  t_ni : int; (* backedge yieldpoint — where every chain rejoins *)
  mutable t_valid : bool; (* cleared by [invalidate] *)
  t_mc : int ref;
      (* static worst-case cost of one iteration along ANY path through
         the trace tree; raised before each branch chain is spliced so
         the entry precheck stays sound *)
  mutable t_fits : state -> bool; (* the entry precheck *)
  mutable t_head : state -> unit; (* head of the primary closure chain *)
  mutable t_loop : state -> unit;
      (* the shared tail of every chain: re-run the precheck and loop
         back through [t_head], or restore the anchor position and fall
         out to the engine's compiled continuation *)
  mutable t_nchains : int; (* chains compiled into this tree *)
  mutable t_ent : int; (* entries, for the retirement heuristic *)
  mutable t_words : int; (* instructions retired inside the tree *)
  mutable t_rsteps : int; (* reference steps spent recording branches *)
}

(* A guard's runtime state: where a divergence gets hot, a branch trace
   is recorded from the exit point back to the anchor and spliced in as
   a patch, keyed by the divergence target (switch target block,
   virtual receiver class) — trace trees, after TraceMonkey and
   lambdachine.  [g_prefix] is the static worst-case cost from trace
   entry to this guard, [g_depth] the static call depth (how many
   frames up the anchor frame sits at this point in the chain). *)
type guard = {
  g_root : itrace;
  g_depth : int;
  g_prefix : int;
  mutable g_hits : int; (* unpatched failures since last attempt *)
  mutable g_attempts : int;
  mutable g_patches : (int * (state -> unit)) list;
}

type site = {
  mutable s_hits : int; (* backedge executions since last reset *)
  mutable s_attempts : int; (* recording attempts spent *)
  mutable s_dead : bool; (* never record or run here again *)
  mutable s_tr : itrace option;
}

type tstate = {
  mutable sites : site array; (* indexed by engine-minted site id *)
  mutable installed : itrace list; (* for invalidation *)
  mutable exited : bool;
      (* communication channel between a running trace and [backedge]:
         set by side exits, left false when the trace leaves at the
         anchor (where the caller's own continuation resumes) *)
  mutable waste : int;
      (* reference steps spent on recordings that aborted — trace-
         hostile programs (deep recursion, allocation in loop bodies)
         abort most recordings, and each abort costs its steps at
         reference speed; past [waste_budget] the run stops recording *)
}

type trace_slot += Tier of tstate

let fresh_site () = { s_hits = 0; s_attempts = 0; s_dead = false; s_tr = None }

let tstate_of st =
  match st.trace with
  | Tier ts -> ts
  | _ ->
      let ts =
        {
          sites = Array.init 64 (fun _ -> fresh_site ());
          installed = [];
          exited = false;
          waste = 0;
        }
      in
      st.trace <- Tier ts;
      ts

let site_of ts id =
  let n = Array.length ts.sites in
  if id >= n then
    ts.sites <-
      Array.init
        (max (id + 1) (2 * n))
        (fun i -> if i < n then ts.sites.(i) else fresh_site ());
  ts.sites.(id)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

type item =
  | It_op of Program.meth * int * int * Lir.instr
      (* method, block, index, the word itself *)
  | It_term of Program.meth * int * Lir.terminator * int * bool
      (* method, block, terminator, taken successor block, check fired *)
  | It_call of {
      ic_caller : Program.meth; (* method version issuing the call *)
      ic_blk : int; (* position of the call word *)
      ic_idx : int;
      ic_ins : Lir.instr; (* the [Lir.Call] word itself *)
      ic_callee : Program.meth; (* method version the call dispatched to *)
      ic_recv_cls : int; (* receiver class id; -1 for static calls *)
    }
  | It_ret of Program.meth * int * Lir.terminator
      (* returning method version, block of the return, the terminator *)

(* Trace-unfriendly words abort recording *before* they execute, so the
   abort leaves the machine at a clean position for the per-method code
   to resume: dynamically-sized allocations (unbounded charge defeats
   the precheck's static cost bound) and intrinsics that reschedule or
   spawn.  Calls are traced through (the recording stepper descends
   into the callee naturally); only depth past [max_depth] aborts. *)
let untraceable = function
  | Lir.New_array _ -> true
  | Lir.Intrinsic { name = "print"; args = [ _ ]; _ } -> false
  | Lir.Intrinsic { name = "rand"; args = [ _ ]; _ } -> false
  | Lir.Intrinsic _ -> true
  | _ -> false

exception Abort

let max_trace_len = 2048
let max_attempts = 3
let max_depth = 16

let waste_budget = 4096
(* per-run cap on cumulative aborted-recording steps: successful
   recordings pay for themselves (their steps are real forward progress
   that also yields a chain), but an abort-heavy program would
   otherwise re-pay reference-speed recording attempts on every run *)

(* Execute one loop iteration from the anchor (block [ablk], index [ni],
   just past the backedge yieldpoint) back to the anchor, through
   [fuel_check]+[Machine.step] — the reference driver loop verbatim, so
   the recorded execution is bit-identical to not recording at all.
   Captures each word's position before stepping it and each
   terminator's taken successor after.  Calls are traced through: the
   stepper descends into the callee and a call item captures the
   dispatched method version (plus the receiver's class for virtual
   calls, guarded at replay); a return item marks the pop.  A method
   stack mirrors the frame stack so any mid-recording hot-swap or
   migration of any frame in the trace aborts.  Aborts (keeping
   whatever was legitimately executed) on trace-unfriendly words,
   thread switches, returns below the anchor, depth past [max_depth],
   and over-long traces.  Returns (loop_closed, items in execution
   order, any_step_executed).

   The recording need not start at the anchor: a branch recording
   starts at a hot guard's side-exit position — possibly in a callee
   frame above the anchor — and runs until control rejoins the anchor
   position in the anchor frame itself.  [anchor] is that frame;
   [require_step] is false for branches, whose exit point may already
   *be* the anchor position (the branch chain is then just the
   loopback).  [max_len] bounds the recording: aborted recordings still
   cost their reference-speed steps, so callers on speculative paths
   (branch extension) pass a tighter bound than the primary recording.
   Returns (loop_closed, items in execution order, steps_executed). *)
let record_core st ~anchor ~ablk ~ni ~require_step ~max_len =
  bump ev_record;
  let th = st.cur_th in
  (* Method stack from the current frame down to the anchor, current
     first; None when the anchor is not on this thread's chain. *)
  let mstack0 =
    let rec collect f ps =
      if f == anchor then Some [ f.Machine.m ]
      else
        match ps with
        | [] -> None
        | p :: rest -> (
            match collect p rest with
            | Some l -> Some (f.Machine.m :: l)
            | None -> None)
    in
    match th.top with Some f -> collect f th.parents | None -> None
  in
  let mstack = ref (match mstack0 with Some l -> l | None -> [ anchor.m ]) in
  let base_depth = List.length th.parents - (List.length !mstack - 1) in
  let items = ref [] in
  let n = ref 0 in
  let closed = ref false in
  (try
     if mstack0 = None then raise Abort;
     while not !closed do
       if st.threads.(st.current) != th then raise Abort;
       let f = match th.top with Some f -> f | None -> raise Abort in
       let depth = List.length th.parents - base_depth in
       if depth < 0 || depth <> List.length !mstack - 1 then raise Abort;
       (match !mstack with
       | m :: _ when f.m == m -> ()
       | _ -> raise Abort);
       if depth = 0 && f != anchor then raise Abort;
       if
         depth = 0
         && (!n > 0 || not require_step)
         && f.blk = ablk && f.idx = ni
       then closed := true
       else if !n >= max_len then raise Abort
       else if f.idx < Array.length f.instrs then begin
         let ins = f.instrs.(f.idx) in
         match ins with
         | Lir.Call { kind; args; _ } ->
             if depth + 1 >= max_depth then raise Abort;
             let pb = f.blk and pi = f.idx in
             let cm = f.m in
             let recv =
               match (kind, args) with
               | Lir.Virtual, a :: _ -> eval f a
               | _ -> 0
             in
             fuel_check st;
             Machine.step st;
             let callee =
               match th.top with Some c -> c | None -> raise Abort
             in
             let rcls =
               match kind with
               | Lir.Static -> -1
               | Lir.Virtual -> (
                   match heap_get st recv with
                   | Obj o -> o.cls
                   | Arr _ -> raise Abort)
             in
             items :=
               It_call
                 {
                   ic_caller = cm;
                   ic_blk = pb;
                   ic_idx = pi;
                   ic_ins = ins;
                   ic_callee = callee.m;
                   ic_recv_cls = rcls;
                 }
               :: !items;
             mstack := callee.m :: !mstack;
             incr n
         | _ ->
             if untraceable ins then raise Abort;
             let pb = f.blk and pi = f.idx in
             let m = f.m in
             fuel_check st;
             Machine.step st;
             items := It_op (m, pb, pi, ins) :: !items;
             incr n
       end
       else begin
         let pb = f.blk in
         let t = f.term in
         match t with
         | Lir.Return _ ->
             if depth = 0 then raise Abort;
             let m = f.m in
             fuel_check st;
             Machine.step st;
             items := It_ret (m, pb, t) :: !items;
             mstack := List.tl !mstack;
             incr n
         | _ ->
             let m = f.m in
             fuel_check st;
             let s0 = st.counters.samples in
             Machine.step st;
             items := It_term (m, pb, t, f.blk, st.counters.samples > s0) :: !items;
             incr n
       end
     done
   with Abort -> ());
  if not !closed then bump ev_abort_trace;
  (!closed, List.rev !items, !n)

(* Record one primary iteration: position the anchor frame just past
   the backedge yieldpoint and run back around to it. *)
let record st ni =
  let fr = st.cur_fr in
  let ablk = fr.blk in
  fr.idx <- ni;
  record_core st ~anchor:fr ~ablk ~ni ~require_step:true
    ~max_len:max_trace_len

(* ------------------------------------------------------------------ *)
(* Trace compilation                                                   *)
(* ------------------------------------------------------------------ *)

let binop_fn = function
  | Lir.Add -> ( + )
  | Lir.Sub -> ( - )
  | Lir.Mul -> ( * )
  | Lir.Div -> fun a b -> if b = 0 then rt_err "division by zero" else a / b
  | Lir.Rem -> fun a b -> if b = 0 then rt_err "division by zero" else a mod b
  | Lir.And -> ( land )
  | Lir.Or -> ( lor )
  | Lir.Xor -> ( lxor )
  | Lir.Shl -> fun a b -> a lsl (b land 31)
  | Lir.Shr -> fun a b -> a asr (b land 31)
  | Lir.Lt -> fun a b -> if a < b then 1 else 0
  | Lir.Le -> fun a b -> if a <= b then 1 else 0
  | Lir.Gt -> fun a b -> if a > b then 1 else 0
  | Lir.Ge -> fun a b -> if a >= b then 1 else 0
  | Lir.Eq -> fun a b -> if a = b then 1 else 0
  | Lir.Ne -> fun a b -> if a <> b then 1 else 0

(* Branch traces: a guard that keeps failing marks a hot alternate path
   through the loop.  After [branch_threshold] unpatched failures the
   exit point is re-recorded back to the anchor and the resulting chain
   spliced into the guard, keyed by the divergence target — so loops
   whose bodies branch data-dependently still run fused on every
   iteration instead of side-exiting almost every entry. *)
let max_patches = 4 (* per guard: switch targets / receiver classes *)
let max_branch_attempts = 4
let max_chains = 64 (* chains per trace tree *)
let max_branch_len = 512 (* tighter than the primary: aborts cost steps *)
let record_budget = 16384
(* total reference steps a root may spend on branch recordings,
   successful or aborted — speculative recording runs at reference
   speed, so unbounded retries on branch-hostile loops (deep recursion,
   allocation on the divergent path) would eat the trace's own win *)

let retire_words_per_entry = 12 (* minimum average fused work per entry *)
let retire_window = 128 (* entries between retirement checks (power of 2) *)

(* The anchor frame at a guard [d] call levels deep: the current frame
   at depth 0, else the (d-1)-th parent. *)
let anchor_up st d =
  if d = 0 then Some st.cur_fr
  else
    let rec go i = function
      | [] -> None
      | f :: rest -> if i = 0 then Some f else go (i - 1) rest
    in
    go (d - 1) st.cur_th.parents

(* Build a trace-tree root: the entry precheck (reading the tree-wide
   worst-case path bound, raised as branch chains are spliced) and the
   shared loopback every chain tails into — re-run the precheck and go
   around through the primary chain, or restore the anchor frame's
   position fields (call items update them mid-trace) and fall out to
   the engine's compiled continuation. *)
let mk_root (am : Program.meth) ~ablk ~ni =
  let aid = am.Program.id in
  let anchor_b = Lir.block am.Program.func ablk in
  let a_instrs = anchor_b.Lir.instrs
  and a_term = anchor_b.Lir.term
  and a_base = am.Program.code_addr.(ablk) in
  let root =
    {
      t_anchor_m = am;
      t_anchor_id = aid;
      t_ablk = ablk;
      t_ni = ni;
      t_valid = true;
      t_mc = ref 0;
      t_fits = (fun _ -> false);
      t_head = (fun _ -> ());
      t_loop = (fun _ -> ());
      t_nchains = 1;
      t_ent = 0;
      t_words = 0;
      t_rsteps = 0;
    }
  in
  let mcr = root.t_mc in
  let fits st =
    let lim = st.guard_gate in
    let lim =
      let t = st.next_timer - 1 in
      if t < lim then t else lim
    in
    let lim =
      let a = st.next_adaptive - 1 in
      if a < lim then a else lim
    in
    st.cycles + !mcr <= lim
    && (not st.switch_bit)
    && root.t_valid
    && st.prog.Program.methods.(root.t_anchor_id) == root.t_anchor_m
  in
  let loop st =
    if fits st then root.t_head st
    else begin
      let fr = st.cur_fr in
      fr.blk <- ablk;
      fr.idx <- ni;
      fr.instrs <- a_instrs;
      fr.term <- a_term;
      fr.base_addr <- a_base
    end
  in
  root.t_fits <- fits;
  root.t_loop <- loop;
  root

(* Compile a recorded chain into a fused closure sequence tailing into
   the root's loopback.  The chain is built from fragments;
   straight-line fragments carry only the instruction's semantic body
   (register file, heap, output, recorder buffers), while all static
   accounting — cycle charges, instrumentation cycles, instruction
   counts, counter bumps — accumulates into one pending sum flushed at
   segment boundaries (guards and dynamic-fire points).  I-cache
   accesses keep their per-word order at statically-known addresses
   when the i-cache is on, and are omitted entirely (bench
   configuration) when it is off.

   [base_cost] is the static worst-case cost from trace entry to this
   chain's start (0 for the primary chain, the splicing guard's prefix
   for a branch chain); [base_depth] the call depth of its first word
   relative to the anchor.  Returns the chain head and its own
   worst-case cost. *)
let rec compile_chain st (ts : tstate) (root : itrace) ~base_cost ~base_depth
    items =
  let costs = st.costs in
  let prog = st.prog in
  let icache_on = st.icache <> None in
  let dc = st.dcache <> None in
  let cc_miss = costs.Costs.icache_miss in
  (* pending static accounting for the current straight-line segment *)
  let p_cyc = ref 0
  and p_icyc = ref 0
  and p_instr = ref 0
  and p_iops = ref 0
  and p_checks = ref 0
  and p_byps = ref 0
  and p_eyps = ref 0
  and p_entries = ref 0 in
  (* static worst-case cost of this chain, for the precheck bound *)
  let maxc = ref 0 in
  (* call depth of the word being emitted, relative to the anchor *)
  let depth = ref base_depth in
  let frags : ((state -> unit) -> state -> unit) list ref = ref [] in
  let add f = frags := f :: !frags in
  let flush () =
    let cyc = !p_cyc
    and icyc = !p_icyc
    and ninstr = !p_instr
    and iops = !p_iops
    and checks = !p_checks
    and byps = !p_byps
    and eyps = !p_eyps
    and entries = !p_entries in
    if cyc <> 0 || ninstr <> 0 || iops <> 0 || checks <> 0 || byps <> 0
       || eyps <> 0 || entries <> 0
    then begin
      p_cyc := 0;
      p_icyc := 0;
      p_instr := 0;
      p_iops := 0;
      p_checks := 0;
      p_byps := 0;
      p_eyps := 0;
      p_entries := 0;
      add (fun next st ->
          st.cycles <- st.cycles + cyc;
          if icyc <> 0 then st.icycles <- st.icycles + icyc;
          st.instructions <- st.instructions + ninstr;
          let c = st.counters in
          if iops <> 0 then c.instrument_ops <- c.instrument_ops + iops;
          if checks <> 0 then c.checks <- c.checks + checks;
          if byps <> 0 then c.backedge_yps <- c.backedge_yps + byps;
          if eyps <> 0 then c.entry_yps <- c.entry_yps + eyps;
          if entries <> 0 then c.entries <- c.entries + entries;
          next st)
    end
  in
  let stat c =
    p_cyc := !p_cyc + c;
    maxc := !maxc + c
  in
  let istat c =
    stat c;
    p_icyc := !p_icyc + c
  in
  (* per-word accounting: instruction count (batched) + ordered i-cache
     access at the word's statically-known address *)
  let word addr =
    incr p_instr;
    if icache_on then begin
      maxc := !maxc + cc_miss;
      add (fun next st ->
          icache_access st addr;
          next st)
    end
  in
  (* a fresh guard for the word being emitted: prefix = worst-case cost
     from trace entry to here (charges for the word itself are stat'ed
     and flushed before its guard frag is added) *)
  let mk_guard () =
    {
      g_root = root;
      g_depth = !depth;
      g_prefix = base_cost + !maxc;
      g_hits = 0;
      g_attempts = 0;
      g_patches = [];
    }
  in
  let ev = function
    | Lir.Reg r -> fun (fr : frame) -> fr.regs.(r)
    | Lir.Imm n -> fun (_ : frame) -> n
  in
  (* the flat-recorder bump of [Machine.record_flat], minus the cycle
     charge (batched when unconditional, dynamic when guarded) *)
  let flat_bump (r : flat_recorder) e st =
    let c = Array.unsafe_get r.ev_counter e in
    if c >= 0 then begin
      let v = Array.unsafe_get r.counts c in
      Array.unsafe_set r.counts c (v + 1);
      if v = 0 then begin
        r.touch.(r.n_touch) <- c;
        r.n_touch <- r.n_touch + 1
      end
    end
    else (Array.unsafe_get r.dyn e) st st.cur_th st.cur_fr
  in
  let emit_instrument op =
    incr p_iops;
    match st.recorder with
    | Some r when op.Lir.slot >= 0 ->
        let e = op.Lir.slot in
        (* event costs are stable per id (adaptive minting only grows
           the tables), so the charge batches statically *)
        istat r.ev_cost.(e);
        add (fun next st ->
            flat_bump r e st;
            next st)
    | _ ->
        (* legacy event-by-event path: every in-tree hook's [instr_cost]
           is pure per op, so the charge batches; the hook call itself
           stays dynamic with a fresh position-insensitive ctx *)
        istat (st.hooks.instr_cost op);
        let h = st.hooks.on_instrument in
        add (fun next st ->
            h (make_ctx st st.cur_th st.cur_fr) op;
            next st)
  in
  let emit_guarded op =
    incr p_checks;
    istat costs.Costs.check;
    flush ();
    let fire = st.hooks.fire in
    let fired_body =
      match st.recorder with
      | Some r when op.Lir.slot >= 0 ->
          let e = op.Lir.slot in
          let cost = r.ev_cost.(e) in
          maxc := !maxc + cost;
          fun st ->
            st.counters.instrument_ops <- st.counters.instrument_ops + 1;
            st.cycles <- st.cycles + cost;
            st.icycles <- st.icycles + cost;
            flat_bump r e st
      | _ ->
          let cost = st.hooks.instr_cost op in
          maxc := !maxc + cost;
          let h = st.hooks.on_instrument in
          fun st ->
            st.counters.instrument_ops <- st.counters.instrument_ops + 1;
            st.cycles <- st.cycles + cost;
            st.icycles <- st.icycles + cost;
            h (make_ctx st st.cur_th st.cur_fr) op
    in
    add (fun next st ->
        if fire st.cur_th.tid then begin
          st.counters.samples <- st.counters.samples + 1;
          fired_body st
        end;
        next st)
  in
  let emit_instr mstr ins =
    match ins with
    | Lir.Move (r, Lir.Imm n) ->
        stat costs.Costs.move;
        add (fun next st ->
            st.cur_fr.regs.(r) <- n;
            next st)
    | Lir.Move (r, Lir.Reg s) ->
        stat costs.Costs.move;
        add (fun next st ->
            let regs = st.cur_fr.regs in
            regs.(r) <- regs.(s);
            next st)
    | Lir.Unop (r, op, a) -> (
        stat costs.Costs.alu;
        match (op, a) with
        | Lir.Neg, Lir.Reg s ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- -regs.(s);
                next st)
        | Lir.Not, Lir.Reg s ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(s) = 0 then 1 else 0);
                next st)
        | Lir.Neg, Lir.Imm n ->
            let v = -n in
            add (fun next st ->
                st.cur_fr.regs.(r) <- v;
                next st)
        | Lir.Not, Lir.Imm n ->
            let v = if n = 0 then 1 else 0 in
            add (fun next st ->
                st.cur_fr.regs.(r) <- v;
                next st))
    | Lir.Binop (r, op, a, b) -> (
        stat costs.Costs.alu;
        match (op, a, b) with
        (* hand-specialized hot operators, like the engine: without
           flambda a shared operator closure is an indirect call per op *)
        | Lir.Add, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) + regs.(y);
                next st)
        | Lir.Add, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) + n;
                next st)
        | Lir.Sub, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) - regs.(y);
                next st)
        | Lir.Sub, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) - n;
                next st)
        | Lir.Mul, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) * regs.(y);
                next st)
        | Lir.Mul, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) * n;
                next st)
        | Lir.And, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) land regs.(y);
                next st)
        | Lir.Or, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) lor regs.(y);
                next st)
        | Lir.Xor, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- regs.(x) lxor regs.(y);
                next st)
        | Lir.Lt, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) < regs.(y) then 1 else 0);
                next st)
        | Lir.Lt, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) < n then 1 else 0);
                next st)
        | Lir.Le, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) <= regs.(y) then 1 else 0);
                next st)
        | Lir.Le, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) <= n then 1 else 0);
                next st)
        | Lir.Gt, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) > regs.(y) then 1 else 0);
                next st)
        | Lir.Gt, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) > n then 1 else 0);
                next st)
        | Lir.Ge, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) >= regs.(y) then 1 else 0);
                next st)
        | Lir.Ge, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) >= n then 1 else 0);
                next st)
        | Lir.Eq, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) = regs.(y) then 1 else 0);
                next st)
        | Lir.Eq, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) = n then 1 else 0);
                next st)
        | Lir.Ne, Lir.Reg x, Lir.Reg y ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) <> regs.(y) then 1 else 0);
                next st)
        | Lir.Ne, Lir.Reg x, Lir.Imm n ->
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- (if regs.(x) <> n then 1 else 0);
                next st)
        | _, Lir.Reg x, Lir.Reg y ->
            let f = binop_fn op in
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- f regs.(x) regs.(y);
                next st)
        | _, Lir.Reg x, Lir.Imm n ->
            let f = binop_fn op in
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- f regs.(x) n;
                next st)
        | _, Lir.Imm n, Lir.Reg y ->
            let f = binop_fn op in
            add (fun next st ->
                let regs = st.cur_fr.regs in
                regs.(r) <- f n regs.(y);
                next st)
        | _, Lir.Imm n, Lir.Imm p ->
            let f = binop_fn op in
            add (fun next st ->
                st.cur_fr.regs.(r) <- f n p;
                next st))
    | Lir.Get_field (r, o, fld) -> (
        stat costs.Costs.mem;
        if dc then maxc := !maxc + cc_miss;
        let eo = ev o in
        match
          Hashtbl.find_opt prog.Program.field_offset
            (Lir.string_of_field_ref fld)
        with
        | Some off ->
            add (fun next st ->
                let fr = st.cur_fr in
                let obj = eo fr in
                let fields = obj_fields st obj in
                if dc then data_access st (cell_addr st obj + off);
                fr.regs.(r) <- fields.(off);
                next st)
        | None ->
            let fstr = Lir.string_of_field_ref fld in
            add (fun _next st ->
                ignore (obj_fields st (eo st.cur_fr) : int array);
                rt_err "unresolved field %s" fstr))
    | Lir.Put_field (o, fld, v) -> (
        stat costs.Costs.mem;
        if dc then maxc := !maxc + cc_miss;
        let eo = ev o in
        match
          Hashtbl.find_opt prog.Program.field_offset
            (Lir.string_of_field_ref fld)
        with
        | Some off ->
            let evv = ev v in
            add (fun next st ->
                let fr = st.cur_fr in
                let obj = eo fr in
                let fields = obj_fields st obj in
                if dc then data_access st (cell_addr st obj + off);
                fields.(off) <- evv fr;
                next st)
        | None ->
            let fstr = Lir.string_of_field_ref fld in
            add (fun _next st ->
                ignore (obj_fields st (eo st.cur_fr) : int array);
                rt_err "unresolved field %s" fstr))
    | Lir.Get_static (r, fld) -> (
        stat costs.Costs.mem;
        if dc then maxc := !maxc + cc_miss;
        match
          Hashtbl.find_opt prog.Program.static_offset
            (Lir.string_of_field_ref fld)
        with
        | Some off ->
            add (fun next st ->
                if dc then data_access st off;
                st.cur_fr.regs.(r) <- st.globals.(off);
                next st)
        | None ->
            let fstr = Lir.string_of_field_ref fld in
            add (fun _next _st -> rt_err "unresolved static field %s" fstr))
    | Lir.Put_static (fld, v) -> (
        stat costs.Costs.mem;
        if dc then maxc := !maxc + cc_miss;
        let evv = ev v in
        match
          Hashtbl.find_opt prog.Program.static_offset
            (Lir.string_of_field_ref fld)
        with
        | Some off ->
            add (fun next st ->
                if dc then data_access st off;
                st.globals.(off) <- evv st.cur_fr;
                next st)
        | None ->
            let fstr = Lir.string_of_field_ref fld in
            add (fun _next _st -> rt_err "unresolved static field %s" fstr))
    | Lir.New_object (r, cname) -> (
        match Hashtbl.find_opt prog.Program.class_id_of_name cname with
        | Some cid ->
            let n = prog.Program.classes.(cid).Program.n_fields in
            let slots = max n 1 in
            stat (costs.Costs.alloc_base + (costs.Costs.alloc_per_slot * n));
            add (fun next st ->
                st.cur_fr.regs.(r) <-
                  alloc st (Obj { cls = cid; fields = Array.make slots 0 });
                next st)
        | None -> add (fun _next _st -> rt_err "unknown class %s" cname))
    | Lir.Array_load (r, a, i) ->
        stat costs.Costs.mem;
        if dc then maxc := !maxc + cc_miss;
        let ea = ev a in
        let ei = ev i in
        add (fun next st ->
            let fr = st.cur_fr in
            let arr = ea fr in
            let cells = arr_cells st arr in
            let i = ei fr in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i mstr;
            if dc then data_access st (cell_addr st arr + i);
            fr.regs.(r) <- cells.(i);
            next st)
    | Lir.Array_store (a, i, v) ->
        stat costs.Costs.mem;
        if dc then maxc := !maxc + cc_miss;
        let ea = ev a in
        let ei = ev i in
        let evv = ev v in
        add (fun next st ->
            let fr = st.cur_fr in
            let arr = ea fr in
            let cells = arr_cells st arr in
            let i = ei fr in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i mstr;
            if dc then data_access st (cell_addr st arr + i);
            cells.(i) <- evv fr;
            next st)
    | Lir.Array_length (r, a) ->
        stat costs.Costs.mem;
        let ea = ev a in
        add (fun next st ->
            let fr = st.cur_fr in
            fr.regs.(r) <- Array.length (arr_cells st (ea fr));
            next st)
    | Lir.Instance_test (r, o, cname) ->
        stat (costs.Costs.mem + costs.Costs.alu);
        let eo = ev o in
        let cid =
          match Hashtbl.find_opt prog.Program.class_id_of_name cname with
          | Some cid -> cid
          | None -> -1
        in
        add (fun next st ->
            let fr = st.cur_fr in
            let v = eo fr in
            fr.regs.(r) <-
              (if v <= 0 || v > Ir.Vec.length st.heap then 0
               else
                 match Ir.Vec.unsafe_get st.heap (v - 1) with
                 | Obj obj -> if obj.cls = cid then 1 else 0
                 | Arr _ -> 0);
            next st)
    | Lir.Intrinsic { dst = _; name = "print"; args = [ a ] } ->
        stat costs.Costs.intrinsic;
        let e = ev a in
        add (fun next st ->
            Buffer.add_string st.out (string_of_int (e st.cur_fr));
            Buffer.add_char st.out '\n';
            next st)
    | Lir.Intrinsic { dst; name = "rand"; args = [ a ] } -> (
        stat costs.Costs.intrinsic;
        let e = ev a in
        match dst with
        | Some r ->
            add (fun next st ->
                let fr = st.cur_fr in
                fr.regs.(r) <- next_rand st (e fr);
                next st)
        | None ->
            add (fun next st ->
                ignore (next_rand st (e st.cur_fr) : int);
                next st))
    | Lir.Yieldpoint k ->
        (* the precheck guarantees no timer tick, fault, adaptive poll
           or pending switch anywhere in the iteration, and the version
           guard keeps [try_migrate] a no-op, so the yieldpoint reduces
           to its charge and counter bump — both batched *)
        stat costs.Costs.yieldpoint;
        (match k with
        | Lir.Yp_backedge -> incr p_byps
        | Lir.Yp_entry -> incr p_eyps)
    | Lir.Instrument op -> emit_instrument op
    | Lir.Guarded_instrument op -> emit_guarded op
    | Lir.Call _ | Lir.New_array _ | Lir.Intrinsic _ ->
        (* calls are recorded as [It_call] items; [record] aborts before
           the rest — none of them can be here *)
        rt_err "untraceable word recorded in %s" mstr
  in
  let emit_term t taken fired =
    match t with
    | Lir.Goto _ -> stat costs.Costs.branch
    | Lir.If { cond; if_true; if_false } -> (
        stat costs.Costs.branch;
        match cond with
        | Lir.Imm _ -> () (* direction is static: recording took the only path *)
        | Lir.Reg rc ->
            if if_true = if_false then ()
            else begin
              flush ();
              let g = mk_guard () in
              if taken = if_true then
                add (fun next st ->
                    if st.cur_fr.regs.(rc) <> 0 then next st
                    else guard_fail st ts g ~key:if_false ~blk:if_false ~idx:0)
              else
                add (fun next st ->
                    if st.cur_fr.regs.(rc) = 0 then next st
                    else guard_fail st ts g ~key:if_true ~blk:if_true ~idx:0)
            end)
    | Lir.Switch { scrut; cases; default } -> (
        stat costs.Costs.switch;
        match scrut with
        | Lir.Imm _ -> ()
        | Lir.Reg rs ->
            flush ();
            let tbl = Hashtbl.create (max 4 (2 * List.length cases)) in
            List.iter
              (fun (v, l) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v l)
              cases;
            let g = mk_guard () in
            add (fun next st ->
                let v = st.cur_fr.regs.(rs) in
                let t =
                  match Hashtbl.find_opt tbl v with
                  | Some l -> l
                  | None -> default
                in
                if t = taken then next st
                else guard_fail st ts g ~key:t ~blk:t ~idx:0))
    | Lir.Check { on_sample; fall } ->
        (* the timer consultation the reference performs before a
           terminator is precheck-elided; the check sequence itself is
           charged here and the sampler consulted live — on a divergence
           from the recorded direction the fired path's effects are
           applied and the trace side-exits at the actual target *)
        incr p_checks;
        istat costs.Costs.check;
        maxc := !maxc + costs.Costs.sample_jump;
        flush ();
        let fire = st.hooks.fire in
        let cc_sample = costs.Costs.sample_jump in
        let g = mk_guard () in
        if fired then
          add (fun next st ->
              if fire st.cur_th.tid then begin
                st.counters.samples <- st.counters.samples + 1;
                st.cycles <- st.cycles + cc_sample;
                st.icycles <- st.icycles + cc_sample;
                next st
              end
              else guard_fail st ts g ~key:fall ~blk:fall ~idx:0)
        else
          add (fun next st ->
              if fire st.cur_th.tid then begin
                st.counters.samples <- st.counters.samples + 1;
                st.cycles <- st.cycles + cc_sample;
                st.icycles <- st.icycles + cc_sample;
                guard_fail st ts g ~key:on_sample ~blk:on_sample ~idx:0
              end
              else next st)
    | Lir.Return _ ->
        (* returns are recorded as [It_ret] items; this cannot be here *)
        rt_err "corrupt trace: return recorded as a plain terminator"
  in
  (* Mirror of the engine's call compilation ([Engine.compile_instr],
     [Lir.Call] case): the static accounting — call charge, instruction
     count, i-cache access at the call word, entries counter — batches
     into the pending segment; the dynamic part evaluates the arguments,
     takes a pooled frame stamped with the callee's entry block, mints
     the activation id and pushes.  The caller's position fields are
     restored to the resume point before the push (the trace maintains
     them lazily), so a side exit anywhere inside the callee returns
     through per-method code that resumes the caller correctly.  Virtual
     calls guard the receiver's class: a different class would dispatch
     elsewhere, so the guard side-exits to the call word itself — before
     any of its accounting — and the per-method code re-executes the
     full dispatch, including its null/array/missing-method errors.
     Static calls need no guard: any hot-swap invalidates every trace
     ([invalidate]), so the recorded callee version is the installed one
     for as long as the trace runs. *)
  let emit_call ~ic_caller ~ic_blk ~ic_idx ~ic_ins ~ic_callee ~ic_recv_cls =
    match ic_ins with
    | Lir.Call { dst; kind; target = _; args; site } ->
        let nargs = List.length args in
        let aev = Array.of_list (List.map ev args) in
        (match kind with
        | Lir.Virtual ->
            flush ();
            let e0 = match args with a :: _ -> ev a | [] -> fun _ -> 0 in
            let g = mk_guard () in
            add (fun next st ->
                let recv = e0 st.cur_fr in
                let cls =
                  if recv > 0 && recv <= Ir.Vec.length st.heap then
                    match Ir.Vec.unsafe_get st.heap (recv - 1) with
                    | Obj o -> o.cls
                    | Arr _ -> -1
                  else -1
                in
                if cls = ic_recv_cls then next st
                else
                  (* keyed by the observed class, this grows into a
                     polymorphic inline cache: each hot receiver class
                     gets its own branch chain whose first item is the
                     same call with its own class guard.  Invalid
                     receivers (cls = -1) exit to the call word, whose
                     per-method dispatch raises the real error. *)
                  guard_fail st ts g ~key:cls ~blk:ic_blk ~idx:ic_idx)
        | Lir.Static -> ());
        word (ic_caller.Program.code_addr.(ic_blk) + ic_idx);
        stat (costs.Costs.call_base + (costs.Costs.call_per_arg * nargs));
        incr p_entries;
        let cb = Lir.block ic_caller.Program.func ic_blk in
        let c_instrs = cb.Lir.instrs
        and c_term = cb.Lir.term
        and c_base = ic_caller.Program.code_addr.(ic_blk) in
        let c_ni = ic_idx + 1 in
        let cf = ic_callee.Program.func in
        let entry = cf.Lir.entry in
        let eb = Lir.block cf entry in
        let e_instrs = eb.Lir.instrs
        and e_term = eb.Lir.term
        and e_base = ic_callee.Program.code_addr.(entry) in
        let nregs = max cf.Lir.next_reg 1 in
        let params = Array.of_list cf.Lir.params in
        let ret_dst = match dst with Some r -> r | None -> -1 in
        let from_meth = ic_caller.Program.id in
        add (fun next st ->
            let fr = st.cur_fr in
            fr.blk <- ic_blk;
            fr.idx <- c_ni;
            fr.instrs <- c_instrs;
            fr.term <- c_term;
            fr.base_addr <- c_base;
            let callee = take_frame st ic_callee nregs in
            callee.blk <- entry;
            callee.idx <- 0;
            callee.instrs <- e_instrs;
            callee.term <- e_term;
            callee.base_addr <- e_base;
            let regs = callee.regs in
            for k = 0 to nargs - 1 do
              regs.(params.(k)) <- aev.(k) fr
            done;
            let fid = st.next_frame_id in
            st.next_frame_id <- fid + 1;
            callee.ret_dst <- ret_dst;
            callee.from_meth <- from_meth;
            callee.from_site <- site;
            callee.fid <- fid;
            let th = st.cur_th in
            th.parents <- fr :: th.parents;
            th.top <- Some callee;
            st.cur_fr <- callee;
            next st)
    | _ -> rt_err "corrupt trace: call item without a call word"
  in
  (* Mirror of the engine's return compilation: the charge batches; the
     dynamic part pops the frame exactly like [Machine.do_return] —
     evaluate the operand in the dying frame, write the caller's return
     register, recycle the frame.  A trace never returns below its
     anchor ([record] aborts there), so the thread-death arm cannot be
     reached. *)
  let emit_ret t =
    stat costs.Costs.ret;
    match t with
    | Lir.Return None ->
        add (fun next st ->
            let th = st.cur_th in
            let dead = st.cur_fr in
            (match th.parents with
            | parent :: rest ->
                th.parents <- rest;
                th.top <- Some parent;
                release_frame st dead;
                st.cur_fr <- parent
            | [] -> rt_err "corrupt trace: return below the anchor");
            next st)
    | Lir.Return (Some op) ->
        let e = ev op in
        add (fun next st ->
            let th = st.cur_th in
            let dead = st.cur_fr in
            let x = e dead in
            (match th.parents with
            | parent :: rest ->
                th.parents <- rest;
                th.top <- Some parent;
                if dead.ret_dst >= 0 then parent.regs.(dead.ret_dst) <- x;
                release_frame st dead;
                st.cur_fr <- parent
            | [] -> rt_err "corrupt trace: return below the anchor");
            next st)
    | _ -> rt_err "corrupt trace: ret item without a return terminator"
  in
  List.iter
    (fun item ->
      match item with
      | It_op (m, pb, pi, ins) ->
          word (m.Program.code_addr.(pb) + pi);
          emit_instr (Lir.string_of_method_ref m.Program.mref) ins
      | It_term (m, pb, t, taken, fired) ->
          word
            (m.Program.code_addr.(pb)
            + Array.length (Lir.block m.Program.func pb).Lir.instrs);
          emit_term t taken fired
      | It_call { ic_caller; ic_blk; ic_idx; ic_ins; ic_callee; ic_recv_cls }
        ->
          emit_call ~ic_caller ~ic_blk ~ic_idx ~ic_ins ~ic_callee ~ic_recv_cls;
          incr depth
      | It_ret (m, pb, t) ->
          word
            (m.Program.code_addr.(pb)
            + Array.length (Lir.block m.Program.func pb).Lir.instrs);
          emit_ret t;
          decr depth)
    items;
  flush ();
  let chain = List.fold_left (fun next f -> f next) root.t_loop !frags in
  (chain, !maxc)

(* Runtime guard failure: run the patch for this divergence key if one
   is spliced in; otherwise write back the reference-accurate exit
   position, maybe grow the tree from here, and side-exit. *)
and guard_fail st (ts : tstate) (g : guard) ~key ~blk ~idx =
  match List.assoc_opt key g.g_patches with
  | Some k -> k st
  | None ->
      let fr = st.cur_fr in
      set_block st fr blk;
      if idx > 0 then fr.idx <- idx;
      extend st ts g ~key;
      bump ev_exit;
      ts.exited <- true

(* A hot unpatched exit: record from the exit position (real execution,
   through the reference stepper) until control rejoins the anchor,
   compile the branch chain, raise the tree's worst-case path bound,
   and only then splice the patch — so the entry precheck has always
   admitted the worst-case path through every visible patch.  A
   recording that aborts (or raises the program's own error, for
   invalid-receiver exits) just leaves the machine wherever real
   execution took it; the side exit then proceeds normally. *)
and extend st (ts : tstate) (g : guard) ~key =
  let root = g.g_root in
  g.g_hits <- g.g_hits + 1;
  let bt = if st.trace_threshold < 32 then st.trace_threshold else 32 in
  if
    g.g_hits >= bt
    && g.g_attempts < max_branch_attempts
    && List.length g.g_patches < max_patches
    && root.t_nchains < max_chains
    && root.t_rsteps < record_budget
    && ts.waste < waste_budget
    && root.t_valid
  then begin
    g.g_hits <- 0;
    g.g_attempts <- g.g_attempts + 1;
    match anchor_up st g.g_depth with
    | None -> ()
    | Some anchor ->
        let closed, items, nsteps =
          record_core st ~anchor ~ablk:root.t_ablk ~ni:root.t_ni
            ~require_step:false ~max_len:max_branch_len
        in
        root.t_rsteps <- root.t_rsteps + nsteps;
        if not closed then ts.waste <- ts.waste + nsteps;
        if closed then (
          match
            compile_chain st ts root ~base_cost:g.g_prefix
              ~base_depth:g.g_depth items
          with
          | chain, mc ->
              root.t_mc := max !(root.t_mc) (g.g_prefix + mc);
              root.t_nchains <- root.t_nchains + 1;
              g.g_patches <- (key, chain) :: g.g_patches;
              bump ev_compile
          | exception _ -> bump ev_abort_trace)
  end

(* ------------------------------------------------------------------ *)
(* The backedge gate                                                   *)
(* ------------------------------------------------------------------ *)

(* Called from the engine's compiled backedge yieldpoint (after its
   charge, counter bump, adaptive/migration/switch handling all found
   nothing to do), with [ni] the resume index just past the yieldpoint.
   Returns true when execution advanced here — a compiled trace ran, or
   a recording stepped the machine — in which case the caller returns
   to the dispatcher, whose resume at the written-back frame position
   performs the standard per-word preamble.  Returns false when nothing
   ran (cold site, failed precheck, loop-around ending exactly at the
   anchor), in which case the caller continues into its own fused
   continuation for the word at the anchor. *)
let backedge st site ni =
  let ts = tstate_of st in
  let s = site_of ts site in
  if s.s_dead then false
  else
    match s.s_tr with
    | Some tr ->
        if not tr.t_valid then begin
          (* invalidated by a hot-swap: drop the compiled code and let
             the site re-record against the current world (the trace may
             have inlined any method's code, so invalidation is global —
             this site's own loop is usually still hot and well-formed) *)
          s.s_tr <- None;
          s.s_hits <- 0;
          s.s_attempts <- 0;
          false
        end
        else if tr.t_fits st then begin
          bump ev_trace;
          ts.exited <- false;
          let i0 = st.instructions in
          tr.t_head st;
          (* Retirement: a tree whose entries fuse only a handful of
             words each — early guard exits on almost every entry, no
             viable branch chains — costs more in entry/exit overhead
             than it saves.  Fused-work-per-entry is measured directly
             (segment flushes keep [st.instructions] current at every
             guard); trees below the bar after a settling window are
             retired and the site goes dead, so the loop runs at full
             engine speed again. *)
          tr.t_ent <- tr.t_ent + 1;
          tr.t_words <- tr.t_words + st.instructions - i0;
          if
            tr.t_ent land (retire_window - 1) = 0
            && tr.t_words / tr.t_ent < retire_words_per_entry
          then begin
            tr.t_valid <- false;
            s.s_tr <- None;
            s.s_dead <- true
          end;
          ts.exited
        end
        else false
    | None ->
        s.s_hits <- s.s_hits + 1;
        if s.s_hits < st.trace_threshold || ts.waste >= waste_budget then false
        else begin
          s.s_hits <- 0;
          s.s_attempts <- s.s_attempts + 1;
          if s.s_attempts >= max_attempts then s.s_dead <- true;
          let am = st.cur_fr.m in
          let ablk = st.cur_fr.blk in
          let closed, items, nsteps = record st ni in
          if not closed then ts.waste <- ts.waste + nsteps;
          (if closed then
             let root = mk_root am ~ablk ~ni in
             match compile_chain st ts root ~base_cost:0 ~base_depth:0 items with
             | chain, mc ->
                 root.t_mc := mc;
                 root.t_head <- chain;
                 bump ev_compile;
                 s.s_tr <- Some root;
                 s.s_dead <- false;
                 ts.installed <- root :: ts.installed
             | exception _ -> bump ev_abort_trace);
          nsteps > 0
        end

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

(* Adaptive hot-swap of any method: every installed trace may have
   inlined the swapped method's code (traces record through calls), so
   invalidation is global — cheap, prompt, and observable in the event
   counters.  The backedge gate then drops each dead trace and lets its
   site re-record against the current world; sites anchored in the
   swapped method itself are orphaned (the engine mints fresh sites
   when it compiles the new version). *)
let invalidate st _id =
  match st.trace with
  | Tier ts ->
      List.iter
        (fun tr ->
          if tr.t_valid then begin
            tr.t_valid <- false;
            bump ev_invalidate
          end)
        ts.installed;
      ts.installed <- []
  | _ -> ()

let tier_on st = st.trace_threshold < max_int
