type t = {
  tags : int array;
  line_words : int;
  shift : int; (* log2 line_words when a power of two, else -1 *)
  mask : int; (* lines - 1 when a power of two, else -1 *)
  mutable miss_count : int;
  mutable access_count : int;
}

let log2_pow2 n =
  if n > 0 && n land (n - 1) = 0 then begin
    let k = ref 0 in
    while 1 lsl !k < n do
      incr k
    done;
    Some !k
  end
  else None

let create ?(lines = 1024) ?(line_words = 8) () =
  {
    tags = Array.make lines (-1);
    line_words;
    shift = (match log2_pow2 line_words with Some k -> k | None -> -1);
    mask = (if log2_pow2 lines <> None then lines - 1 else -1);
    miss_count = 0;
    access_count = 0;
  }

(* Addresses are non-negative, so the shift/mask fast path (taken for the
   default power-of-two geometries) computes exactly the same line number
   and index as the division/modulo slow path. *)
let access t addr =
  t.access_count <- t.access_count + 1;
  let line_no =
    if t.shift >= 0 then addr lsr t.shift else addr / t.line_words
  in
  let idx =
    if t.mask >= 0 then line_no land t.mask
    else line_no mod Array.length t.tags
  in
  if t.tags.(idx) = line_no then false
  else begin
    t.tags.(idx) <- line_no;
    t.miss_count <- t.miss_count + 1;
    true
  end

let misses t = t.miss_count
let accesses t = t.access_count
let line_words t = t.line_words

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.miss_count <- 0;
  t.access_count <- 0

(* Invalidate without rewriting history: every line becomes cold again
   but the miss/access counts stand, so an injected flush perturbs only
   the future of a run. *)
let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
