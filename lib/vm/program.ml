module Lir = Ir.Lir
module Classfile = Bytecode.Classfile

type meth = {
  id : int;
  mref : Lir.method_ref;
  func : Lir.func;
  n_args : int;
  code_addr : int array;
}

type cls = {
  cid : int;
  cls_name : string;
  super : int option;
  n_fields : int;
  vtable : (string, int) Hashtbl.t;
}

(* Extension point for per-program caches (the compiled-code cache of
   the closure engine lives here, so its lifetime is tied to the linked
   program rather than a global table). *)
type cache_slot = ..

type t = {
  classes : cls array;
  methods : meth array;
  class_id_of_name : (string, int) Hashtbl.t;
  static_method : (string, int) Hashtbl.t;
  field_offset : (string, int) Hashtbl.t;
  static_offset : (string, int) Hashtbl.t;
  n_statics : int;
  total_code_words : int;
  mutable engine_cache : cache_slot option;
}

exception Link_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Link_error m)) fmt

let code_size_words (f : Lir.func) =
  let n = ref 0 in
  Ir.Vec.iter
    (fun (b : Lir.block) ->
      if b.Lir.role <> Lir.Dead then n := !n + Array.length b.Lir.instrs + 1)
    f.Lir.blocks;
  !n

(* Lay out one function starting at [base]: original and check blocks first
   (the hot path), duplicated blocks after them ("out of the common path",
   paper section 3).  Returns (per-label addresses, next free address). *)
let layout_func (f : Lir.func) base =
  let n = Lir.num_blocks f in
  let addr = Array.make n (-1) in
  let cursor = ref base in
  let place l (b : Lir.block) =
    addr.(l) <- !cursor;
    cursor := !cursor + Array.length b.Lir.instrs + 1
  in
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    match b.Lir.role with
    | Lir.Orig | Lir.Check_block -> place l b
    | Lir.Dup | Lir.Dead -> ()
  done;
  for l = 0 to n - 1 do
    let b = Lir.block f l in
    if b.Lir.role = Lir.Dup then place l b
  done;
  (addr, !cursor)

let apply_layout_override overrides (cf : Classfile.program) =
  match overrides with
  | [] -> cf
  | _ ->
      List.map
        (fun (c : Classfile.cls) ->
          match List.assoc_opt c.Classfile.cname overrides with
          | None -> c
          | Some hot_first ->
              let hot =
                List.filter (fun f -> List.mem f c.Classfile.fields) hot_first
              in
              let rest =
                List.filter (fun f -> not (List.mem f hot)) c.Classfile.fields
              in
              { c with Classfile.fields = hot @ rest })
        cf

let link ?(layout_override = []) (cf : Classfile.program) ~funcs =
  let cf = apply_layout_override layout_override cf in
  (* classes *)
  let class_id_of_name = Hashtbl.create 16 in
  List.iteri
    (fun i (c : Classfile.cls) ->
      if Hashtbl.mem class_id_of_name c.Classfile.cname then
        err "duplicate class %s" c.Classfile.cname;
      Hashtbl.add class_id_of_name c.Classfile.cname i)
    cf;
  (* field layout: instance fields get per-class object offsets; the offset
     of a field is fixed by its declaring class, shared by all subclasses *)
  let field_offset = Hashtbl.create 64 in
  let static_offset = Hashtbl.create 64 in
  let n_statics = ref 0 in
  let n_fields_of = Hashtbl.create 16 in
  List.iter
    (fun (c : Classfile.cls) ->
      let layout = Classfile.instance_layout cf c in
      Hashtbl.replace n_fields_of c.Classfile.cname (List.length layout);
      List.iteri
        (fun i (decl_cls, fname) ->
          let key = decl_cls ^ "." ^ fname in
          match Hashtbl.find_opt field_offset key with
          | Some off ->
              if off <> i then
                err "inconsistent layout for field %s (offsets %d and %d)" key
                  off i
          | None -> Hashtbl.add field_offset key i)
        layout;
      List.iter
        (fun fname ->
          let key = c.Classfile.cname ^ "." ^ fname in
          Hashtbl.add static_offset key !n_statics;
          incr n_statics)
        c.Classfile.static_fields)
    cf;
  (* methods: id per (class, name) as declared; funcs provide the bodies *)
  let func_of = Hashtbl.create 64 in
  List.iter
    (fun (f : Lir.func) ->
      Hashtbl.replace func_of (Lir.string_of_method_ref f.Lir.fname) f)
    funcs;
  let methods = ref [] in
  let static_method = Hashtbl.create 64 in
  let next_meth = ref 0 in
  let cursor = ref 0 in
  List.iter
    (fun (c : Classfile.cls) ->
      List.iter
        (fun (m : Classfile.meth) ->
          let key = c.Classfile.cname ^ "." ^ m.Classfile.mname in
          let func =
            match Hashtbl.find_opt func_of key with
            | Some f -> f
            | None -> err "no LIR body for method %s" key
          in
          let addr, next = layout_func func !cursor in
          cursor := next;
          let n_args =
            m.Classfile.n_args + if m.Classfile.static then 0 else 1
          in
          let id = !next_meth in
          incr next_meth;
          Hashtbl.add static_method key id;
          methods :=
            {
              id;
              mref = { Lir.mclass = c.Classfile.cname; mname = m.Classfile.mname };
              func;
              n_args;
              code_addr = addr;
            }
            :: !methods)
        c.Classfile.methods)
    cf;
  let methods = Array.of_list (List.rev !methods) in
  (* vtables: walk ancestry most-derived first; first definition wins *)
  let classes =
    Array.of_list
      (List.mapi
         (fun i (c : Classfile.cls) ->
           let vtable = Hashtbl.create 8 in
           List.iter
             (fun (a : Classfile.cls) ->
               List.iter
                 (fun (m : Classfile.meth) ->
                   if not (Hashtbl.mem vtable m.Classfile.mname) then
                     Hashtbl.add vtable m.Classfile.mname
                       (Hashtbl.find static_method
                          (a.Classfile.cname ^ "." ^ m.Classfile.mname)))
                 a.Classfile.methods)
             (Classfile.ancestry cf c);
           let super =
             match c.Classfile.super with
             | None -> None
             | Some s -> (
                 match Hashtbl.find_opt class_id_of_name s with
                 | Some id -> Some id
                 | None -> err "unknown superclass %s of %s" s c.Classfile.cname)
           in
           {
             cid = i;
             cls_name = c.Classfile.cname;
             super;
             n_fields = Hashtbl.find n_fields_of c.Classfile.cname;
             vtable;
           })
         cf)
  in
  {
    classes;
    methods;
    class_id_of_name;
    static_method;
    field_offset;
    static_offset;
    n_statics = !n_statics;
    total_code_words = !cursor;
    engine_cache = None;
  }

let method_by_ref t (mref : Lir.method_ref) =
  match Hashtbl.find_opt t.static_method (Lir.string_of_method_ref mref) with
  | Some id -> t.methods.(id)
  | None -> err "unresolved method %s" (Lir.string_of_method_ref mref)
