(* Shared VM machinery: the state, heap, threads, frames and every
   semantic helper, factored out of the original interpreter so that the
   reference interpreter (Interp) and the closure-compiled engine
   (Engine) execute the *same* machine and differ only in how they
   dispatch instructions.  Anything observable — cycle charges, counter
   increments, error messages and their ordering — lives here or is
   reproduced bit-for-bit by both engines. *)

module Lir = Ir.Lir

type counters = {
  mutable entries : int;
  mutable backedge_yps : int;
  mutable entry_yps : int;
  mutable checks : int;
  mutable samples : int;
  mutable thread_switches : int;
  mutable instrument_ops : int;
}

type ctx = {
  cur : Lir.method_ref;
  caller : (Lir.method_ref * int) option;
  eval : Lir.operand -> int;
  frame_id : int;
  class_of : int -> string option;
  stack : unit -> (Lir.method_ref * int) list;
}

type hooks = {
  fire : int -> bool;
  on_timer_tick : unit -> unit;
  on_instrument : ctx -> Lir.instrument_op -> unit;
  instr_cost : Lir.instrument_op -> int;
}

let null_hooks =
  {
    fire = (fun _ -> false);
    on_timer_tick = ignore;
    on_instrument = (fun _ _ -> ());
    instr_cost = (fun _ -> 0);
  }

exception Runtime_error of string

let rt_err fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type result = {
  return_value : int option;
  cycles : int;
  instructions : int;
  counters : counters;
  icache_misses : int;
  dcache_misses : int;
  output : string;
  fallbacks : (string * string) list;
      (* methods the fast engine degraded to the interpreter for, with
         the reason, in first-degraded order; [] on the reference engine
         and whenever every method compiled *)
  instr_cycles : int;
      (* cycles charged by instrumentation machinery (checks, sample
         jumps, instrument ops) — the overhead the adaptive governor
         steers; part of [cycles], not in addition to it.  Yieldpoints
         are excluded: the uninstrumented build pays them too. *)
}

(* Heap cells.  Values are plain ints: references are heap indices >= 1,
   null is 0 (the typechecker keeps ints and references apart). *)
type cell = Obj of { cls : int; fields : int array } | Arr of int array

(* Every field is mutable so returning frames can be recycled through
   the per-size pool (see [take_frame]).  [regs] is only ever replaced
   by frame migration (see [try_migrate]), which grows it when the
   target method version needs more registers; the pool buckets by the
   array's length at release time, so grown frames simply re-enter a
   larger bucket. *)
type frame = {
  mutable m : Program.meth;
  mutable regs : int array;
  mutable blk : int;
  mutable idx : int;
  mutable instrs : Lir.instr array; (* cache of current block's body *)
  mutable term : Lir.terminator;
  mutable base_addr : int; (* code address of current block *)
  mutable ret_dst : int; (* caller register for the result; -1 = none *)
  mutable from_meth : int; (* caller method id; -1 for thread entries *)
  mutable from_site : int; (* call site in the caller; -1 for thread entries *)
  mutable fid : int; (* unique activation id *)
}

type thread = {
  tid : int;
  mutable parents : frame list; (* suspended caller frames *)
  mutable top : frame option; (* running frame; None = dead *)
}

(* Flat-slot recording (Profiles.Slots).  A pre-pass resolves every
   instrument op of the linked program to a dense event id (stored in
   [op.Lir.slot]) and builds this recorder: per-event cycle charge and
   either a counter index into [counts] (statically-keyed events) or a
   closure over preallocated int-keyed structures (dynamically-keyed
   events).  The hot path is then an array increment — no [ctx]
   allocation, no hook-name dispatch, no string building.  [touch] logs
   counter slots in first-increment order so the end-of-run decoder can
   rebuild the legacy hashtables with the exact insertion order the
   event-by-event collector would have produced (hashtable iteration
   order is observable through report tie-breaking). *)
type flat_recorder = {
  mutable ev_cost : int array; (* per event id: resolved cycle charge *)
  mutable ev_counter : int array;
      (* per event id: counter index, -1 = dynamic.  The three event
         arrays are mutable so the adaptive tier can mint additional
         events mid-run (inlined call edges record under a fresh id);
         they only ever grow, and existing ids keep their meaning. *)
  counts : int array; (* statically-keyed counters *)
  touch : int array; (* counter indices in first-touch order *)
  mutable n_touch : int;
  mutable dyn : (state -> thread -> frame -> unit) array; (* dynamic events *)
}

and state = {
  prog : Program.t;
  costs : Costs.t;
  hooks : hooks;
  counters : counters;
  heap : cell Ir.Vec.t;
  heap_addrs : int Ir.Vec.t; (* base data address of each cell *)
  mutable heap_words : int; (* bump allocator for data addresses *)
  globals : int array;
  mutable threads : thread array;
  mutable current : int;
  mutable alive : int;
  mutable cycles : int;
  mutable instructions : int;
  mutable icycles : int;
      (* cycles charged through [icharge]: instrumentation overhead *)
  mutable switch_bit : bool;
  mutable timer_period : int;
  mutable next_timer : int;
  mutable rng : int;
  icache : Icache.t option;
  dcache : Icache.t option;
  out : Buffer.t;
  fuel : int;
  mutable main_result : int option;
  mutable next_frame_id : int;
  frame_pool : frame list array; (* returned frames, by Array.length regs *)
  (* Robustness layer.  [guard_gate] is the only value the hot path
     compares against: the minimum of the fuel limit, the next fault
     event's trigger cycle and the next wall-clock poll, so runs without
     faults or watchdog pay exactly the old single-compare fuel check. *)
  faults : Fault.plan;
  mutable fault_cursor : int; (* next unapplied event in faults.events *)
  mutable guard_gate : int;
  deadline : float; (* absolute Unix time; infinity = no watchdog *)
  deadline_poll : int; (* cycles between wall-clock polls *)
  mutable next_poll : int;
  label : string; (* benchmark/config context for error messages *)
  mutable engine_fallback : int array;
      (* per-method engine degradation: 0 = compile normally, 1 = fault
         plan says compilation must fail (event not yet recorded), 2 =
         degraded and recorded.  [||] when no plan can fail anything. *)
  mutable fallbacks : (string * string) list; (* (method, reason), newest first *)
  (* Engine scratch: the closure-compiled engine passes only [state]
     between instruction closures (a unary indirect call is the cheapest
     OCaml can make); the running thread and frame travel here, written
     by its dispatcher.  The reference interpreter never reads them. *)
  mutable cur_th : thread;
  mutable cur_fr : frame;
  recorder : flat_recorder option;
      (* flat-slot recording; [None] = legacy event-by-event hooks *)
  (* Adaptive tier (lib/adaptive).  [next_adaptive] = max_int keeps the
     poll a single always-false compare when the loop is off, so the
     byte-identity of non-adaptive runs is untouched. *)
  mutable next_adaptive : int;
  mutable adaptive_poll : state -> unit;
  mutable migration : bool;
      (* frame migration at yieldpoints armed (see [try_migrate]);
         false unless the adaptive loop is on *)
  (* Trace tier (lib/vm/trace.ml).  Extensible like [Program.cache_slot]
     so Machine stays below Trace in the build order; [No_trace] keeps
     non-trace runs at a single immediate field. *)
  mutable trace : trace_slot;
  mutable trace_threshold : int;
      (* backedge executions before a loop is recorded; max_int = trace
         tier off (the engine's hot-site counter can never reach it) *)
}

and trace_slot = ..

type trace_slot += No_trace

let charge st c = st.cycles <- st.cycles + c

(* Instrumentation charge: same cycle accounting as [charge] plus the
   overhead meter the adaptive governor reads. *)
let[@inline] icharge st c =
  st.cycles <- st.cycles + c;
  st.icycles <- st.icycles + c

let out_of_fuel st =
  let where =
    if Array.length st.threads = 0 then ""
    else
      match st.threads.(st.current).top with
      | Some fr ->
          (* the fast engine only writes [fr.idx] back at suspension
             points, so the pc is exact on `Ref and approximate on `Fast *)
          Printf.sprintf " in %s (block %d, pc %d)"
            (Lir.string_of_method_ref fr.m.Program.mref)
            fr.blk (fr.base_addr + fr.idx)
      | None -> ""
  in
  let ctx = if st.label = "" then "" else " while running " ^ st.label in
  rt_err "out of fuel after %d cycles%s%s (likely non-termination)" st.cycles
    where ctx

let recompute_guard st =
  let g = st.fuel in
  let g =
    if st.fault_cursor < Array.length st.faults.Fault.events then
      min g (st.faults.Fault.events.(st.fault_cursor).Fault.at_cycle - 1)
    else g
  in
  let g = if st.deadline < infinity then min g st.next_poll else g in
  st.guard_gate <- g

let apply_fault st (e : Fault.event) =
  match e.Fault.action with
  | Fault.Trap ->
      rt_err "injected fault: trap at cycle %d (plan seed %d)" e.Fault.at_cycle
        st.faults.Fault.seed
  | Fault.Spurious_timer ->
      (* an interrupt the device never scheduled: same observable effects
         as a real tick, but the device's own schedule is untouched *)
      st.switch_bit <- true;
      st.hooks.on_timer_tick ()
  | Fault.Corrupt_sample_counter d ->
      st.counters.samples <- st.counters.samples + d
  | Fault.Flush_icache -> (
      match st.icache with Some c -> Icache.flush c | None -> ())
  | Fault.Flush_dcache -> (
      match st.dcache with Some c -> Icache.flush c | None -> ())

(* Cold path of [fuel_check]: apply every due fault event, poll the
   wall-clock watchdog, check fuel, then rearm the gate.  Both engines
   reach fuel checks at identical cycle counts (one per executed word,
   before its charges), so fault events fire at identical points and
   their effects are bit-identical across engines. *)
let guard_trip st =
  let evs = st.faults.Fault.events in
  while
    st.fault_cursor < Array.length evs
    && st.cycles > evs.(st.fault_cursor).Fault.at_cycle - 1
  do
    let e = evs.(st.fault_cursor) in
    st.fault_cursor <- st.fault_cursor + 1;
    apply_fault st e
  done;
  if st.deadline < infinity && st.cycles > st.next_poll then begin
    st.next_poll <- st.cycles + st.deadline_poll;
    if Unix.gettimeofday () > st.deadline then
      rt_err "wall-clock watchdog expired after %d cycles%s" st.cycles
        (if st.label = "" then "" else " while running " ^ st.label)
  end;
  if st.cycles > st.fuel then out_of_fuel st;
  recompute_guard st

let fuel_check st = if st.cycles > st.guard_gate then guard_trip st

(* Adaptive safepoint: when armed (next_adaptive < max_int) and due,
   disarm and hand control to the controller.  The controller re-arms by
   writing [next_adaptive] itself; with the loop off this is one
   always-false compare. *)
let[@inline] adaptive_check st =
  if st.cycles >= st.next_adaptive then begin
    st.next_adaptive <- max_int;
    st.adaptive_poll st
  end

(* The timer device fires at block boundaries, exactly where the
   reference step consults it (before executing a terminator).  The
   adaptive poll piggybacks on the same safepoint, so both engines poll
   at identical cycle counts. *)
let timer_check st =
  if st.cycles >= st.next_timer then begin
    st.next_timer <- st.next_timer + st.timer_period;
    st.switch_bit <- true;
    st.hooks.on_timer_tick ()
  end;
  adaptive_check st

(* Mid-run timer retune (adaptive governor).  Pulls an already-scheduled
   far-away tick closer so a shortened period takes effect immediately;
   a lengthened period lets the pending tick fire first. *)
let set_timer_period st p =
  let p = max 1 p in
  st.timer_period <- p;
  if st.next_timer - st.cycles > p then st.next_timer <- st.cycles + p

let icache_access st addr =
  match st.icache with
  | Some ic ->
      if Icache.access ic addr then charge st st.costs.Costs.icache_miss
  | None -> ()

let set_block st (fr : frame) l =
  let b = Lir.block fr.m.Program.func l in
  fr.blk <- l;
  fr.idx <- 0;
  fr.instrs <- b.Lir.instrs;
  fr.term <- b.Lir.term;
  fr.base_addr <- fr.m.Program.code_addr.(l);
  ignore st

(* ------------------------------------------------------------------ *)
(* On-stack frame migration (adaptive tier)                            *)
(* ------------------------------------------------------------------ *)

(* Re-pin a frame suspended at a yieldpoint to the method version
   currently installed in the method table.  Without this, a
   long-running activation (a benchmark's main loop) executes its
   original instrumented code forever no matter what the adaptive
   controller installs — hot-swap only reaches future calls, and there
   is no OSR.

   The map is purely structural: the frame has just executed the k-th
   yieldpoint of block [blk] ([ni] is the resume index right after it);
   if the new version still has a block [blk] with the same role whose
   k-th yieldpoint exists and has the same kind, execution resumes right
   after that yieldpoint.  Every transform the controller applies
   (strip/restore of plain instrument ops, hot block reordering,
   call-site inlining) preserves the yieldpoint prefix of every
   surviving block, so the map succeeds exactly where it is
   semantically safe and declines the rest — e.g. a frame parked past an
   inlined-away call site finds no k-th yieldpoint in the rewritten
   block and simply stays on its pinned version.

   Migration costs zero simulated cycles and both engines attempt it at
   the same safepoint with the same outcome, so engine bit-identity is
   preserved; [st.migration] stays false unless the adaptive loop is on,
   so non-adaptive runs pay one always-false test per yieldpoint and
   remain byte-identical. *)
let try_migrate st (fr : frame) ni =
  let id = fr.m.Program.id in
  let nm = st.prog.Program.methods.(id) in
  nm != fr.m
  &&
  let f = nm.Program.func in
  let l = fr.blk in
  l < Lir.num_blocks f
  &&
  let nb = Lir.block f l in
  let ob = Lir.block fr.m.Program.func l in
  nb.Lir.role = ob.Lir.role
  &&
  match fr.instrs.(ni - 1) with
  | Lir.Yieldpoint kind -> (
      (* ordinal of the yieldpoint just executed within its block *)
      let k = ref 0 in
      for i = 0 to ni - 1 do
        match fr.instrs.(i) with Lir.Yieldpoint _ -> incr k | _ -> ()
      done;
      let k = !k in
      (* resume index right after the k-th yieldpoint of the new block,
         if it exists and the kinds agree *)
      let ninstrs = nb.Lir.instrs in
      let n = Array.length ninstrs in
      let rec find i seen =
        if i >= n then -1
        else
          match ninstrs.(i) with
          | Lir.Yieldpoint kind' ->
              if seen + 1 = k then if kind' = kind then i + 1 else -1
              else find (i + 1) (seen + 1)
          | _ -> find (i + 1) seen
      in
      match find 0 0 with
      | -1 -> false
      | p ->
          (* an inlined version may address registers past the old
             frame's file; grow it (fresh registers are always written
             before read — the inliner emits parameter moves first) *)
          let need = max f.Lir.next_reg 1 in
          if Array.length fr.regs < need then begin
            let regs = Array.make need 0 in
            Array.blit fr.regs 0 regs 0 (Array.length fr.regs);
            fr.regs <- regs
          end;
          fr.m <- nm;
          fr.instrs <- ninstrs;
          fr.term <- nb.Lir.term;
          fr.base_addr <- nm.Program.code_addr.(l);
          fr.idx <- p;
          true)
  | _ -> false

(* Frame pool: returning frames are recycled per exact register-array
   size, so steady-state calls allocate nothing.  Bit-identity is
   unaffected: a recycled frame is indistinguishable from a fresh one —
   [regs] is re-zeroed on take, every other field is overwritten before
   the frame runs, and activation ids keep their original allocation
   order.  A frame abandoned by an exception simply never re-enters the
   pool; frames larger than [pool_buckets] registers are never pooled. *)
let pool_buckets = 512

let take_frame st (m : Program.meth) nregs =
  match if nregs < pool_buckets then st.frame_pool.(nregs) else [] with
  | fr :: rest ->
      st.frame_pool.(nregs) <- rest;
      Array.fill fr.regs 0 nregs 0;
      fr.m <- m;
      fr
  | [] ->
      {
        m;
        regs = Array.make nregs 0;
        blk = 0;
        idx = 0;
        instrs = [||];
        term = Lir.Return None;
        base_addr = 0;
        ret_dst = -1;
        from_meth = -1;
        from_site = -1;
        fid = -1;
      }

let release_frame st (fr : frame) =
  let n = Array.length fr.regs in
  if n < pool_buckets then st.frame_pool.(n) <- fr :: st.frame_pool.(n)

let new_frame st (m : Program.meth) ~args ~ret_dst ~from_meth ~from_site =
  let fr = take_frame st m (max m.Program.func.Lir.next_reg 1) in
  let regs = fr.regs in
  let rec fill i = function
    | [] -> ()
    | a :: rest ->
        (match List.nth_opt m.Program.func.Lir.params i with
        | Some r -> regs.(r) <- a
        | None -> rt_err "too many arguments to %s"
                    (Lir.string_of_method_ref m.Program.mref));
        fill (i + 1) rest
  in
  fill 0 args;
  let fid = st.next_frame_id in
  st.next_frame_id <- fid + 1;
  fr.ret_dst <- ret_dst;
  fr.from_meth <- from_meth;
  fr.from_site <- from_site;
  fr.fid <- fid;
  set_block st fr m.Program.func.Lir.entry;
  st.counters.entries <- st.counters.entries + 1;
  fr

let spawn_thread st (m : Program.meth) args =
  let fr = new_frame st m ~args ~ret_dst:(-1) ~from_meth:(-1) ~from_site:(-1) in
  let th =
    { tid = Array.length st.threads; parents = []; top = Some fr }
  in
  st.threads <- Array.append st.threads [| th |];
  st.alive <- st.alive + 1;
  th

let heap_get st r =
  if r <= 0 then rt_err "null dereference"
  else if r > Ir.Vec.length st.heap then rt_err "dangling reference %d" r
  else Ir.Vec.unsafe_get st.heap (r - 1)

let data_access st addr =
  match st.dcache with
  | Some dc -> if Icache.access dc addr then charge st st.costs.Costs.icache_miss
  | None -> ()

let alloc st cell =
  let slots =
    match cell with Obj o -> Array.length o.fields | Arr a -> Array.length a
  in
  ignore (Ir.Vec.push st.heap_addrs st.heap_words);
  st.heap_words <- st.heap_words + max slots 1;
  Ir.Vec.push st.heap cell + 1

(* Only ever called after [heap_get]/[obj_fields]/[arr_cells] validated
   [r]; [heap_addrs] grows in lockstep with [heap]. *)
let cell_addr st r = Ir.Vec.unsafe_get st.heap_addrs (r - 1)

let next_rand st bound =
  (* SplitMix-style deterministic generator on OCaml's 63-bit ints *)
  st.rng <- (st.rng + 0x1E3779B97F4A7C15) land max_int;
  let z = st.rng in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  let z = z lxor (z lsr 31) in
  if bound <= 0 then 0 else z mod bound

let eval (fr : frame) = function Lir.Reg r -> fr.regs.(r) | Lir.Imm n -> n

let exec_binop op a b =
  match op with
  | Lir.Add -> a + b
  | Lir.Sub -> a - b
  | Lir.Mul -> a * b
  | Lir.Div -> if b = 0 then rt_err "division by zero" else a / b
  | Lir.Rem -> if b = 0 then rt_err "division by zero" else a mod b
  | Lir.And -> a land b
  | Lir.Or -> a lor b
  | Lir.Xor -> a lxor b
  | Lir.Shl -> a lsl (b land 31)
  | Lir.Shr -> a asr (b land 31)
  | Lir.Lt -> if a < b then 1 else 0
  | Lir.Le -> if a <= b then 1 else 0
  | Lir.Gt -> if a > b then 1 else 0
  | Lir.Ge -> if a >= b then 1 else 0
  | Lir.Eq -> if a = b then 1 else 0
  | Lir.Ne -> if a <> b then 1 else 0

let field_off st (fld : Lir.field_ref) =
  match Hashtbl.find_opt st.prog.Program.field_offset (Lir.string_of_field_ref fld) with
  | Some off -> off
  | None -> rt_err "unresolved field %s" (Lir.string_of_field_ref fld)

let static_off st (fld : Lir.field_ref) =
  match
    Hashtbl.find_opt st.prog.Program.static_offset (Lir.string_of_field_ref fld)
  with
  | Some off -> off
  | None -> rt_err "unresolved static field %s" (Lir.string_of_field_ref fld)

let obj_fields st r =
  match heap_get st r with
  | Obj o -> o.fields
  | Arr _ -> rt_err "expected object, found array"

let arr_cells st r =
  match heap_get st r with
  | Arr a -> a
  | Obj _ -> rt_err "expected array, found object"

let rotate_thread st =
  let n = Array.length st.threads in
  if st.alive > 0 then begin
    let rec next i =
      let i = (i + 1) mod n in
      match st.threads.(i).top with Some _ -> i | None -> next i
    in
    let nxt = next st.current in
    if nxt <> st.current then begin
      st.counters.thread_switches <- st.counters.thread_switches + 1;
      st.current <- nxt
    end
  end

let make_ctx st th (fr : frame) =
  let caller =
    if fr.from_meth >= 0 then
      Some (st.prog.Program.methods.(fr.from_meth).Program.mref, fr.from_site)
    else None
  in
  let class_of r =
    if r <= 0 || r > Ir.Vec.length st.heap then None
    else
      match Ir.Vec.get st.heap (r - 1) with
      | Obj o -> Some st.prog.Program.classes.(o.cls).Program.cls_name
      | Arr _ -> None
  in
  let stack () =
    let entry (g : frame) = (g.m.Program.mref, g.from_site) in
    entry fr :: List.map entry th.parents
  in
  {
    cur = fr.m.Program.mref;
    caller;
    eval = eval fr;
    frame_id = fr.fid;
    class_of;
    stack;
  }

(* Flat-path event: charge the pre-resolved cost, then either bump the
   event's counter (logging its first touch) or run its dynamic-key
   closure.  Shared verbatim by both engines. *)
let[@inline] record_flat st th fr (r : flat_recorder) ev =
  icharge st (Array.unsafe_get r.ev_cost ev);
  let c = Array.unsafe_get r.ev_counter ev in
  if c >= 0 then begin
    let v = Array.unsafe_get r.counts c in
    Array.unsafe_set r.counts c (v + 1);
    if v = 0 then begin
      r.touch.(r.n_touch) <- c;
      r.n_touch <- r.n_touch + 1
    end
  end
  else (Array.unsafe_get r.dyn ev) st th fr

let run_instrument st th fr op =
  st.counters.instrument_ops <- st.counters.instrument_ops + 1;
  match st.recorder with
  | Some r when op.Lir.slot >= 0 -> record_flat st th fr r op.Lir.slot
  | _ ->
      icharge st (st.hooks.instr_cost op);
      st.hooks.on_instrument (make_ctx st th fr) op

let do_return st th v =
  (match th.top with
  | None -> ()
  | Some fr ->
      charge st st.costs.Costs.ret;
      (match th.parents with
      | [] ->
          th.top <- None;
          st.alive <- st.alive - 1;
          if th.tid = 0 then st.main_result <- v;
          if st.alive > 0 then rotate_thread st
      | parent :: rest ->
          th.parents <- rest;
          th.top <- Some parent;
          (match (v, fr.ret_dst) with
          | Some x, dst when dst >= 0 -> parent.regs.(dst) <- x
          | _ -> ()));
      release_frame st fr);
  ()

let invoke st th (fr : frame) dst kind target args site =
  charge st
    (st.costs.Costs.call_base + (st.costs.Costs.call_per_arg * List.length args));
  let vals = List.map (eval fr) args in
  let m =
    match kind with
    | Lir.Static -> Program.method_by_ref st.prog target
    | Lir.Virtual -> (
        match vals with
        | recv :: _ -> (
            if recv = 0 then rt_err "null receiver for %s" target.Lir.mname;
            let cls =
              match heap_get st recv with
              | Obj o -> o.cls
              | Arr _ -> rt_err "virtual call on array"
            in
            match
              Hashtbl.find_opt st.prog.Program.classes.(cls).Program.vtable
                target.Lir.mname
            with
            | Some id -> st.prog.Program.methods.(id)
            | None ->
                rt_err "class %s has no method %s"
                  st.prog.Program.classes.(cls).Program.cls_name
                  target.Lir.mname)
        | [] -> rt_err "virtual call with no receiver")
  in
  let dst_reg = match dst with Some r -> r | None -> -1 in
  let callee =
    new_frame st m ~args:vals ~ret_dst:dst_reg ~from_meth:fr.m.Program.id
      ~from_site:site
  in
  th.parents <- fr :: th.parents;
  th.top <- Some callee

let intrinsic st th (fr : frame) dst name args =
  charge st st.costs.Costs.intrinsic;
  let vals = List.map (eval fr) args in
  let set v = match dst with Some r -> fr.regs.(r) <- v | None -> () in
  match (name, vals) with
  | "print", [ v ] ->
      Buffer.add_string st.out (string_of_int v);
      Buffer.add_char st.out '\n'
  | "rand", [ bound ] -> set (next_rand st bound)
  | "yield", [] -> rotate_thread st
  | _ when String.length name > 6 && String.sub name 0 6 = "spawn:" -> (
      let full = String.sub name 6 (String.length name - 6) in
      match String.index_opt full '.' with
      | Some i ->
          let mref =
            {
              Lir.mclass = String.sub full 0 i;
              mname = String.sub full (i + 1) (String.length full - i - 1);
            }
          in
          let m = Program.method_by_ref st.prog mref in
          ignore (spawn_thread st m vals);
          ignore th
      | None -> rt_err "malformed spawn intrinsic %s" name)
  | _ -> rt_err "unknown intrinsic %s/%d" name (List.length vals)

(* Placeholder activation seeding the engine-scratch fields before any
   thread runs; never executed (the engine dispatcher overwrites both
   fields before invoking any compiled code). *)
let dummy_frame =
  let fname = { Lir.mclass = "<none>"; Lir.mname = "<none>" } in
  let func =
    {
      Lir.fname;
      params = [];
      blocks = Ir.Vec.of_list [ Lir.dead_block ];
      entry = 0;
      next_reg = 0;
    }
  in
  let m =
    { Program.id = -1; mref = fname; func; n_args = 0; code_addr = [| 0 |] }
  in
  {
    m;
    regs = [||];
    blk = 0;
    idx = 0;
    instrs = [||];
    term = Lir.Return None;
    base_addr = 0;
    ret_dst = -1;
    from_meth = -1;
    from_site = -1;
    fid = -1;
  }

let dummy_thread = { tid = -1; parents = []; top = None }

let init_state ?(fuel = 4_000_000_000) ?(use_icache = false)
    ?(use_dcache = false) ?(costs = Costs.default) ?(timer_period = 100_000)
    ?(seed = 0x5EED) ?(faults = Fault.none) ?(label = "") ?deadline
    ?(deadline_poll = 50_000_000) ?recorder prog hooks =
  let counters =
    {
      entries = 0;
      backedge_yps = 0;
      entry_yps = 0;
      checks = 0;
      samples = 0;
      thread_switches = 0;
      instrument_ops = 0;
    }
  in
  let engine_fallback =
    if Fault.is_none faults then [||]
    else
      let marks =
        Array.map
          (fun (m : Program.meth) ->
            if Fault.fail_compile faults (Lir.string_of_method_ref m.Program.mref)
            then 1
            else 0)
          prog.Program.methods
      in
      if Array.exists (fun v -> v > 0) marks then marks else [||]
  in
  let st =
  {
    prog;
    costs;
    hooks;
    counters;
    heap = Ir.Vec.create ();
    heap_addrs = Ir.Vec.create ();
    (* data addresses: statics first, then the heap *)
    heap_words = prog.Program.n_statics + 64;
    globals = Array.make (max prog.Program.n_statics 1) 0;
    threads = [||];
    current = 0;
    alive = 0;
    cycles = 0;
    instructions = 0;
    icycles = 0;
    switch_bit = false;
    timer_period;
    next_timer = timer_period;
    rng = seed;
    icache = (if use_icache then Some (Icache.create ()) else None);
    dcache =
      (if use_dcache then Some (Icache.create ~lines:512 ~line_words:8 ())
       else None);
    out = Buffer.create 256;
    fuel;
    main_result = None;
    next_frame_id = 0;
    frame_pool = Array.make pool_buckets [];
    faults;
    fault_cursor = 0;
    guard_gate = fuel;
    deadline = (match deadline with Some d -> d | None -> infinity);
    deadline_poll;
    next_poll = deadline_poll;
    label;
    engine_fallback;
    fallbacks = [];
    cur_th = dummy_thread;
    cur_fr = dummy_frame;
    recorder;
    next_adaptive = max_int;
    adaptive_poll = ignore;
    migration = false;
    trace = No_trace;
    trace_threshold = max_int;
  }
  in
  recompute_guard st;
  st

(* ---- per-method engine degradation (used by Engine only) ---- *)

let fallback_state st id =
  if Array.length st.engine_fallback = 0 then 0 else st.engine_fallback.(id)

let record_fallback st id reason =
  if Array.length st.engine_fallback = 0 then
    st.engine_fallback <- Array.make (Array.length st.prog.Program.methods) 0;
  st.engine_fallback.(id) <- 2;
  st.fallbacks <-
    ( Lir.string_of_method_ref st.prog.Program.methods.(id).Program.mref,
      reason )
    :: st.fallbacks

let result_of st =
  {
    return_value = st.main_result;
    cycles = st.cycles;
    instructions = st.instructions;
    counters = st.counters;
    icache_misses = (match st.icache with Some ic -> Icache.misses ic | None -> 0);
    dcache_misses = (match st.dcache with Some dc -> Icache.misses dc | None -> 0);
    output = Buffer.contents st.out;
    fallbacks = List.rev st.fallbacks;
    instr_cycles = st.icycles;
  }

(* ------------------------------------------------------------------ *)
(* The reference step                                                  *)
(* ------------------------------------------------------------------ *)

(* Execute one instruction or terminator of the current thread,
   re-matching the LIR on every dynamic execution.  This is the
   observational oracle both engines answer to: Interp's driver loop is
   [fuel_check; step] until no thread is alive, and Engine reproduces
   the exact effect sequence below in compiled form — and falls back to
   this very function, word by word, for any method it could not (or
   was fault-injected not to) compile.  Living in Machine rather than
   Interp keeps that fallback a direct call instead of a forward
   reference. *)
let step st =
  let th = st.threads.(st.current) in
  match th.top with
  | None -> rotate_thread st
  | Some fr ->
      st.instructions <- st.instructions + 1;
      (match st.icache with
      | Some ic ->
          if Icache.access ic (fr.base_addr + fr.idx) then
            charge st st.costs.Costs.icache_miss
      | None -> ());
      if fr.idx < Array.length fr.instrs then begin
        let i = fr.instrs.(fr.idx) in
        fr.idx <- fr.idx + 1;
        let c = st.costs in
        match i with
        | Lir.Move (r, a) ->
            charge st c.Costs.move;
            fr.regs.(r) <- eval fr a
        | Lir.Unop (r, op, a) ->
            charge st c.Costs.alu;
            let v = eval fr a in
            fr.regs.(r) <- (match op with Lir.Neg -> -v | Lir.Not -> (if v = 0 then 1 else 0))
        | Lir.Binop (r, op, a, b) ->
            charge st c.Costs.alu;
            fr.regs.(r) <- exec_binop op (eval fr a) (eval fr b)
        | Lir.Get_field (r, o, fld) ->
            charge st c.Costs.mem;
            let obj = eval fr o in
            let fields = obj_fields st obj (* null check first *) in
            let off = field_off st fld in
            data_access st (cell_addr st obj + off);
            fr.regs.(r) <- fields.(off)
        | Lir.Put_field (o, fld, v) ->
            charge st c.Costs.mem;
            let obj = eval fr o in
            let fields = obj_fields st obj in
            let off = field_off st fld in
            data_access st (cell_addr st obj + off);
            fields.(off) <- eval fr v
        | Lir.Get_static (r, fld) ->
            charge st c.Costs.mem;
            let off = static_off st fld in
            data_access st off;
            fr.regs.(r) <- st.globals.(off)
        | Lir.Put_static (fld, v) ->
            charge st c.Costs.mem;
            let off = static_off st fld in
            data_access st off;
            st.globals.(off) <- eval fr v
        | Lir.New_object (r, cname) ->
            let cid =
              match Hashtbl.find_opt st.prog.Program.class_id_of_name cname with
              | Some id -> id
              | None -> rt_err "unknown class %s" cname
            in
            let n = st.prog.Program.classes.(cid).Program.n_fields in
            charge st (c.Costs.alloc_base + (c.Costs.alloc_per_slot * n));
            fr.regs.(r) <- alloc st (Obj { cls = cid; fields = Array.make (max n 1) 0 })
        | Lir.New_array (r, len) ->
            let n = eval fr len in
            if n < 0 then rt_err "negative array length %d" n;
            charge st (c.Costs.alloc_base + (c.Costs.alloc_per_slot * n));
            fr.regs.(r) <- alloc st (Arr (Array.make (max n 1) 0))
        | Lir.Array_load (r, a, i) ->
            charge st c.Costs.mem;
            let arr = eval fr a in
            let cells = arr_cells st arr in
            let i = eval fr i in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i
                (Lir.string_of_method_ref fr.m.Program.mref);
            data_access st (cell_addr st arr + i);
            fr.regs.(r) <- cells.(i)
        | Lir.Array_store (a, i, v) ->
            charge st c.Costs.mem;
            let arr = eval fr a in
            let cells = arr_cells st arr in
            let i = eval fr i in
            if i < 0 || i >= Array.length cells then
              rt_err "array index %d out of bounds (%s)" i
                (Lir.string_of_method_ref fr.m.Program.mref);
            data_access st (cell_addr st arr + i);
            cells.(i) <- eval fr v
        | Lir.Array_length (r, a) ->
            charge st c.Costs.mem;
            fr.regs.(r) <- Array.length (arr_cells st (eval fr a))
        | Lir.Instance_test (r, o, cname) ->
            charge st (c.Costs.mem + c.Costs.alu);
            let v = eval fr o in
            fr.regs.(r) <-
              (if v <= 0 || v > Ir.Vec.length st.heap then 0
               else
                 match Ir.Vec.get st.heap (v - 1) with
                 | Obj obj ->
                     if
                       String.equal
                         st.prog.Program.classes.(obj.cls).Program.cls_name
                         cname
                     then 1
                     else 0
                 | Arr _ -> 0)
        | Lir.Call { dst; kind; target; args; site } ->
            invoke st th fr dst kind target args site
        | Lir.Intrinsic { dst; name; args } -> intrinsic st th fr dst name args
        | Lir.Yieldpoint k ->
            (* plain charge: yieldpoints are safepoint machinery the
               uninstrumented build pays too, not a sheddable
               instrumentation cost, so they stay out of the governor's
               overhead meter *)
            charge st c.Costs.yieldpoint;
            (match k with
            | Lir.Yp_entry ->
                st.counters.entry_yps <- st.counters.entry_yps + 1
            | Lir.Yp_backedge ->
                st.counters.backedge_yps <- st.counters.backedge_yps + 1);
            adaptive_check st;
            (* fr.idx is already the resume index after this yieldpoint;
               a successful migration rewrites it for the new version *)
            if st.migration then ignore (try_migrate st fr fr.idx : bool);
            if st.switch_bit then begin
              st.switch_bit <- false;
              rotate_thread st
            end
        | Lir.Instrument op -> run_instrument st th fr op
        | Lir.Guarded_instrument op ->
            (* No-Duplication: the check guards this single op *)
            st.counters.checks <- st.counters.checks + 1;
            icharge st c.Costs.check;
            if st.hooks.fire th.tid then begin
              st.counters.samples <- st.counters.samples + 1;
              run_instrument st th fr op
            end
      end
      else begin
        (* terminator *)
        timer_check st;
        let c = st.costs in
        match fr.term with
        | Lir.Goto l ->
            charge st c.Costs.branch;
            set_block st fr l
        | Lir.If { cond; if_true; if_false } ->
            charge st c.Costs.branch;
            set_block st fr (if eval fr cond <> 0 then if_true else if_false)
        | Lir.Switch { scrut; cases; default } ->
            charge st c.Costs.switch;
            let v = eval fr scrut in
            let target =
              match List.assoc_opt v cases with Some l -> l | None -> default
            in
            set_block st fr target
        | Lir.Return v -> do_return st th (Option.map (eval fr) v)
        | Lir.Check { on_sample; fall } ->
            st.counters.checks <- st.counters.checks + 1;
            icharge st c.Costs.check;
            if st.hooks.fire th.tid then begin
              st.counters.samples <- st.counters.samples + 1;
              icharge st c.Costs.sample_jump;
              set_block st fr on_sample
            end
            else set_block st fr fall
      end
