(** Direct-mapped instruction-cache model.

    Models the indirect cost of code duplication the paper discusses in
    section 3 ("the increase in code size could increase the number of
    instruction cache misses") and the cost of jumping into cold duplicated
    code when a sample is taken. *)

type t

val create : ?lines:int -> ?line_words:int -> unit -> t
(** Default geometry: 1024 lines of 8 instructions (8K-instruction cache,
    roughly a 32KB L1i with 4-byte instructions). *)

val access : t -> int -> bool
(** [access t addr] touches the line holding instruction address [addr];
    returns [true] on a miss. *)

val misses : t -> int
val accesses : t -> int

val line_words : t -> int
(** Instance geometry — lets compiled code that reasons about line
    boundaries (engine straight-line fusion) verify its compile-time
    assumption against the cache it is actually running on. *)

val reset : t -> unit
(** Cold caches and zeroed counts. *)

val flush : t -> unit
(** Invalidate every line but keep the miss/access counts — the effect of
    a fault-injected cache flush mid-run. *)
