(** Profiling jobs: the unit of work [isf serve] accepts from clients.

    A job is pure data — benchmark, scale, instrumentation variant and
    specs, sampling trigger, engine, recording path — with a canonical
    one-line rendering that doubles as the wire format, the job-file
    format and the journal format.  [parse] and [render] are exact
    inverses on canonical lines, and {!digest} (the MD5 of the
    rendering) is the job's content identity: the quarantine keys on
    it, and a resubmitted job digests equal iff it would perform the
    identical measurement.

    Execution goes through {!Harness.Measure}, so every job is
    content-cached ({!Harness.Runcache}) exactly like a one-shot run —
    serve-mode results are byte-identical to [isf profile] by
    construction. *)

type trigger =
  | Counter of { interval : int; jitter : int }
  | Counter_per_thread of { interval : int }
  | Timer_bit
  | Always
  | Never

type t = {
  bench : string;
  scale : int option;  (** [None] = the benchmark's default scale *)
  variant : string;  (** key into {!variants} *)
  specs : string list;  (** non-empty; keys into {!instr_kinds} *)
  trigger : trigger;
  engine : [ `Ref | `Fast ];
  recording : [ `Slots | `Legacy ];
  poison : bool;
      (** deliberately broken: {!execute} raises a bug-classified
          failure instead of running — the injection hook chaos fleets
          and quarantine tests use *)
}

val instr_kinds : (string * Core.Spec.t) list
(** CLI-name table for instrumentations, shared with [bin/isf.ml]. *)

val variants : (string * (Core.Spec.t -> Ir.Lir.func -> Core.Transform.result)) list
(** CLI-name table for transformation variants, shared with [bin/isf.ml]. *)

val spec_of_names : string list -> Core.Spec.t
(** Combine named specs; [[]] defaults to call-edge + field-access. *)

val transform_of_variant :
  Core.Spec.t -> string -> Ir.Lir.func -> Core.Transform.result

val render : t -> string
(** The canonical line: every field present, fixed order. *)

val parse : string -> t
(** Inverse of {!render}; raises [Failure "bad job ..."] on anything
    malformed (unknown variant/spec/trigger/engine, bad scale).  An
    unknown {e benchmark} parses fine and fails at execution time,
    classified ["bug"] — a poison job, exactly what the quarantine is
    for. *)

val digest : t -> string
(** MD5 hex of {!render} — the job's content identity (client-free). *)

type summary = {
  cycles : int;
  instructions : int;
  checks : int;
  samples : int;
  output_md5 : string;
  profile_md5 : string;
      (** MD5 over the decoded collector's CSV rendering — deterministic
          and engine/recording-invariant (PR 4) *)
}

val execute : t -> summary
(** Run the job through {!Harness.Measure.run_transformed} (content
    cached).  Raises on failure; {!Harness.Robust.classify} applies. *)

val execute_full : t -> summary * Profiles.Merge.t
(** {!execute}, plus the canonical aggregate form of the decoded
    profile — the payload of the daemon's [PROFILE] frames and the
    unit {!Fleet} merges.  A warm run-cache hit still yields it (the
    cached metrics carry the collector), so nothing re-runs. *)

type status =
  | Done of summary
  | Failed of { classification : string; message : string }
  | Quarantined of { message : string }

val result_line : id:int -> t -> status -> string
(** The canonical result line ["<id> <digest> OK ..."].  Free of
    attempt counts, timestamps and worker ids, so a fleet's sorted
    result lines are byte-identical however jobs were scheduled,
    retried, or resumed after a crash. *)
