(* Bounded multi-client fair queue: admission control + round-robin
   scheduling for the daemon.

   Admission is a single shared bound: once [capacity] items are queued
   across all clients, further submits are shed with an explicit
   rejection (the daemon answers SHED) instead of queuing unboundedly.
   Scheduling is round-robin across client queues in first-seen order —
   each pop resumes the rotation one past the client served last, so a
   client flooding thousands of jobs advances the others' queues at the
   same per-client rate and can never starve them. *)

type 'a t = {
  mu : Mutex.t;
  cond : Condition.t;
  capacity : int;
  queues : (string, 'a Queue.t) Hashtbl.t;
  mutable rotation : string array; (* clients in first-seen order *)
  mutable cursor : int; (* rotation index served last *)
  mutable occupancy : int;
  mutable closed : bool;
  mutable shed : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Fairq.create: capacity < 1";
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    capacity;
    queues = Hashtbl.create 16;
    rotation = [||];
    cursor = -1;
    occupancy = 0;
    closed = false;
    shed = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let enqueue_locked t ~client x =
  let q =
    match Hashtbl.find_opt t.queues client with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.queues client q;
        t.rotation <- Array.append t.rotation [| client |];
        q
  in
  Queue.push x q;
  t.occupancy <- t.occupancy + 1;
  Condition.broadcast t.cond

let submit t ~client x =
  locked t (fun () ->
      if t.closed then `Closed
      else if t.occupancy >= t.capacity then begin
        t.shed <- t.shed + 1;
        `Shed
      end
      else begin
        enqueue_locked t ~client x;
        `Accepted
      end)

(* Blocking submit, for sources that must lose nothing (the job-file
   reader): waits for a worker to free a slot instead of shedding. *)
let submit_wait t ~client x =
  locked t (fun () ->
      while (not t.closed) && t.occupancy >= t.capacity do
        Condition.wait t.cond t.mu
      done;
      if t.closed then `Closed
      else begin
        enqueue_locked t ~client x;
        `Accepted
      end)

(* Serving a client's last queued item retires its queue and rotation
   slot: a long-lived daemon sees an unbounded stream of one-shot
   connection names, and keeping an empty queue per past client
   forever would leak memory and make every rotation scan O(clients
   ever seen).  A returning client is re-admitted at the back of the
   rotation, which keeps the round-robin guarantee. *)
let retire_locked t i =
  let n = Array.length t.rotation in
  Hashtbl.remove t.queues t.rotation.(i);
  t.rotation <-
    Array.init (n - 1) (fun k -> t.rotation.(if k < i then k else k + 1));
  if t.cursor >= i then t.cursor <- t.cursor - 1

let pop_locked t =
  let n = Array.length t.rotation in
  let rec scan k =
    if k > n then None
    else
      let i = (t.cursor + k) mod n in
      let q = Hashtbl.find t.queues t.rotation.(i) in
      match Queue.take_opt q with
      | Some x ->
          t.cursor <- i;
          t.occupancy <- t.occupancy - 1;
          if Queue.is_empty q then retire_locked t i;
          (* wake submitters blocked on a full queue *)
          Condition.broadcast t.cond;
          Some x
      | None -> scan (k + 1)
  in
  if n = 0 || t.occupancy = 0 then None else scan 1

let pop t = locked t (fun () -> pop_locked t)

let pop_wait t =
  locked t (fun () ->
      let rec wait () =
        match pop_locked t with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.cond t.mu;
              wait ()
            end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond)

(* Close and drop everything still queued: workers finish only their
   current job.  Returns the dropped items (the daemon leaves them
   incomplete in the journal, so a restart resumes exactly them). *)
let close_now t =
  locked t (fun () ->
      t.closed <- true;
      let dropped = ref [] in
      (* collect in rotation order so the drop report is deterministic *)
      Array.iter
        (fun client ->
          let q = Hashtbl.find t.queues client in
          Queue.iter (fun x -> dropped := x :: !dropped) q)
        t.rotation;
      Hashtbl.reset t.queues;
      t.rotation <- [||];
      t.cursor <- -1;
      t.occupancy <- 0;
      Condition.broadcast t.cond;
      List.rev !dropped)

let length t = locked t (fun () -> t.occupancy)
let shed_count t = locked t (fun () -> t.shed)
let clients t = locked t (fun () -> Array.length t.rotation)
