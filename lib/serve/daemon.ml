(* The serve-mode engine: a persistent pool of worker domains
   (Pool.Service) draining a bounded fair queue (Fairq) of jobs (Job),
   journaling every state transition (Journal) so a SIGKILL at any
   point loses nothing, quarantining poison jobs (Quarantine), and
   circuit-breaking a corrupting disk cache tier down to the memory
   tier.  Front-ends (the Unix-socket server, the job-file drain mode,
   the in-process fleet driver and the tests) all run on this module;
   none of the robustness lives in the front-ends. *)

module Robust = Harness.Robust
module Runcache = Harness.Runcache
module Pool = Harness.Pool

type config = {
  workers : int;
  capacity : int;
  retries : int;
  quarantine_after : int;
  breaker_after : int;
}

let default =
  {
    workers = Pool.default_jobs ();
    capacity = 64;
    retries = 2;
    quarantine_after = 3;
    breaker_after = 3;
  }

type stats = {
  accepted : int;
  completed : int;
  shed : int;
  quarantined : int;
  replayed : int;
  breaker_tripped : bool;
  per_worker : int array;
  uncaught : int;
  queue_depth : int;
}

type t = {
  config : config;
  q : (int * string * Job.t) Fairq.t;
  journal : Journal.t option;
  quarantine : Quarantine.t;
  on_result : (int -> string -> Job.t -> string -> string option -> unit) option;
  mutable service : Pool.Service.t option;
  (* id assignment + journal-submit ordering *)
  idm : Mutex.t;
  mutable next_id : int;
  (* results + completion tracking (accepted/completed share resm so
     [drain]'s wait condition is consistent) *)
  resm : Mutex.t;
  rescond : Condition.t;
  results : (int, string) Hashtbl.t;
  profiles : (int, string) Hashtbl.t; (* id -> Profiles.Merge.render *)
  accepted_ids : (int, unit) Hashtbl.t;
  mutable accepted : int;
  mutable completed : int;
  mutable quarantined_jobs : int;
  mutable replayed : int;
  (* cache circuit breaker *)
  mutable breaker_tripped : bool;
  mutable loud_cache_failures : int;
}

let message_of = function
  | Vm.Interp.Runtime_error m -> m
  | Robust.Transient m -> "transient: " ^ m
  | Failure m -> m
  | e -> Printexc.to_string e

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

(* Corruption events come in two flavors: silent (Runcache counted a
   torn/foreign entry and recomputed — the job still succeeded) and
   loud (a collision or version Failure escaped into the job runner).
   Either kind accumulating past the threshold means the disk tier is
   doing more harm than good: drop to the memory tier and keep
   serving.  One-way: a tripped breaker stays tripped for the daemon's
   lifetime — the operator fixes the directory and restarts. *)
let check_breaker t =
  if (not t.breaker_tripped) && Runcache.dir () <> None then begin
    let events = Runcache.corruptions () + t.loud_cache_failures in
    if events >= t.config.breaker_after then begin
      Mutex.lock t.resm;
      let trip = not t.breaker_tripped in
      if trip then t.breaker_tripped <- true;
      Mutex.unlock t.resm;
      if trip then begin
        Runcache.set_dir None;
        Printf.eprintf
          "[serve] cache circuit breaker tripped after %d corruption \
           event(s): disk tier disabled, serving from memory\n\
           %!"
          events
      end
    end
  end

let note_loud_cache_failure t =
  Mutex.lock t.resm;
  t.loud_cache_failures <- t.loud_cache_failures + 1;
  Mutex.unlock t.resm;
  check_breaker t

(* ------------------------------------------------------------------ *)
(* The job runner                                                      *)
(* ------------------------------------------------------------------ *)

(* Returns the job's status plus, for a completed job, the canonical
   rendering of its profile — journaled and kept for the fleet merge. *)
let run_job t job =
  let dg = Job.digest job in
  match Quarantine.find t.quarantine ~digest:dg with
  | Some report -> (Job.Quarantined { message = report }, None)
  | None ->
      (* transient retries are bounded by config.retries; cache-tier
         failures get at most breaker_after extra attempts (by then the
         breaker has tripped and the memory tier serves); bug failures
         are bounded by the quarantine threshold *)
      let rec attempt ~transient_left ~cache_left =
        match Job.execute_full job with
        | s, merge -> (Job.Done s, Some (Profiles.Merge.render merge))
        | exception e ->
            let msg = message_of e in
            if has_prefix "run cache" msg && cache_left > 0 then begin
              note_loud_cache_failure t;
              attempt ~transient_left ~cache_left:(cache_left - 1)
            end
            else begin
              match Robust.classify e with
              | "transient" when transient_left > 0 ->
                  Unix.sleepf
                    (0.05
                    *. float_of_int
                         (1 lsl (t.config.retries - transient_left)));
                  attempt ~transient_left:(transient_left - 1) ~cache_left
              | "bug" -> (
                  let report =
                    Printf.sprintf
                      "quarantined after %d bug-classified failure(s): %s"
                      (Quarantine.threshold t.quarantine)
                      msg
                  in
                  match
                    Quarantine.record_failure t.quarantine ~digest:dg ~report
                  with
                  | `Retry _ -> attempt ~transient_left ~cache_left
                  | `Quarantined ->
                      (match t.journal with
                      | Some j ->
                          Journal.append j
                            (Journal.Quarantined { digest = dg; report })
                      | None -> ());
                      Mutex.lock t.resm;
                      t.quarantined_jobs <- t.quarantined_jobs + 1;
                      Mutex.unlock t.resm;
                      (Job.Quarantined { message = report }, None))
              | classification ->
                  (Job.Failed { classification; message = msg }, None)
            end
      in
      attempt ~transient_left:t.config.retries
        ~cache_left:t.config.breaker_after

let record_result t id client job line payload =
  (* profile before completion: a kill between the two appends leaves
     the job incomplete, so the restart re-runs it and writes a fresh
     pair — a Completed record therefore always has its payload *)
  (match t.journal with
  | Some j ->
      (match payload with
      | Some p -> Journal.append j (Journal.Profile { id; payload = p })
      | None -> ());
      Journal.append j (Journal.Completed { id; result = line })
  | None -> ());
  Mutex.lock t.resm;
  Hashtbl.replace t.results id line;
  (match payload with
  | Some p -> Hashtbl.replace t.profiles id p
  | None -> ());
  t.completed <- t.completed + 1;
  Condition.broadcast t.rescond;
  Mutex.unlock t.resm;
  (match t.on_result with Some f -> f id client job line payload | None -> ())

let process t (id, client, job) =
  let status, payload = run_job t job in
  check_breaker t;
  record_result t id client job (Job.result_line ~id job status) payload

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(config = default) ?journal:journal_path ?(meta = "") ?on_result ()
    =
  let journal, recovered =
    match journal_path with
    | None -> (None, None)
    | Some p ->
        let j, r = Journal.open_ ~meta p in
        (Some j, Some r)
  in
  let t =
    {
      config;
      q = Fairq.create ~capacity:config.capacity ();
      journal;
      quarantine = Quarantine.create ~threshold:config.quarantine_after ();
      on_result;
      service = None;
      idm = Mutex.create ();
      next_id = 1;
      resm = Mutex.create ();
      rescond = Condition.create ();
      results = Hashtbl.create 256;
      profiles = Hashtbl.create 256;
      accepted_ids = Hashtbl.create 256;
      accepted = 0;
      completed = 0;
      quarantined_jobs = 0;
      replayed = 0;
      breaker_tripped = false;
      loud_cache_failures = 0;
    }
  in
  (* recovery before the workers start: completed results replay
     verbatim, the quarantine list is restored, and every in-flight job
     of the previous life is queued again *)
  let pending =
    match recovered with
    | None -> []
    | Some r ->
        Quarantine.restore t.quarantine r.Journal.quarantined;
        List.iter
          (fun (id, line) ->
            Hashtbl.replace t.results id line;
            t.replayed <- t.replayed + 1)
          r.Journal.completed;
        List.iter
          (fun (id, p) -> Hashtbl.replace t.profiles id p)
          r.Journal.profiles;
        t.next_id <- r.Journal.next_id;
        r.Journal.pending
  in
  t.service <-
    Some
      (Pool.Service.start ~workers:config.workers ~next:(fun () ->
           match Fairq.pop_wait t.q with
           | None -> None
           | Some item -> Some (fun () -> process t item)));
  List.iter
    (fun (id, client, line) ->
      let job = Job.parse line in
      Mutex.lock t.resm;
      t.accepted <- t.accepted + 1;
      Hashtbl.replace t.accepted_ids id ();
      Mutex.unlock t.resm;
      match Fairq.submit_wait t.q ~client (id, client, job) with
      | `Accepted -> ()
      | `Closed -> assert false)
    pending;
  t

(* Non-blocking admission (the socket path): shed when full. *)
let submit t ~client job =
  Mutex.lock t.idm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.idm)
    (fun () ->
      let id = t.next_id in
      match Fairq.submit t.q ~client (id, client, job) with
      | `Accepted ->
          t.next_id <- id + 1;
          Mutex.lock t.resm;
          t.accepted <- t.accepted + 1;
          Hashtbl.replace t.accepted_ids id ();
          Mutex.unlock t.resm;
          (match t.journal with
          | Some j ->
              Journal.append j
                (Journal.Submitted { id; client; line = Job.render job })
          | None -> ());
          `Accepted id
      | `Shed -> `Shed
      | `Closed -> `Closed)

(* Blocking admission with a caller-pinned id (the job-file path, where
   id = line number): waits for queue space instead of shedding, so a
   drain loses nothing.  [journaled] is false when the job's Submitted
   record already exists (journal recovery handled it). *)
let submit_pinned t ~id ~client job =
  Mutex.lock t.idm;
  if id >= t.next_id then t.next_id <- id + 1;
  Mutex.lock t.resm;
  t.accepted <- t.accepted + 1;
  Hashtbl.replace t.accepted_ids id ();
  Mutex.unlock t.resm;
  (match t.journal with
  | Some j ->
      Journal.append j
        (Journal.Submitted { id; client; line = Job.render job })
  | None -> ());
  Mutex.unlock t.idm;
  match Fairq.submit_wait t.q ~client (id, client, job) with
  | `Accepted -> ()
  | `Closed -> failwith "Daemon.submit_pinned: daemon is stopping"

let has_result t ~id =
  Mutex.lock t.resm;
  let r = Hashtbl.mem t.results id in
  Mutex.unlock t.resm;
  r

(* An id is known if it already has a result (journal replay) or was
   accepted this life (journal-pending resubmission in [start]) — the
   job-file front-end skips known ids so recovery never double-runs. *)
let is_known t ~id =
  Mutex.lock t.resm;
  let r = Hashtbl.mem t.results id || Hashtbl.mem t.accepted_ids id in
  Mutex.unlock t.resm;
  r

(* Wait until every accepted job has a result. *)
let drain t =
  Mutex.lock t.resm;
  while t.completed < t.accepted do
    Condition.wait t.rescond t.resm
  done;
  Mutex.unlock t.resm

let results t =
  Mutex.lock t.resm;
  let l = Hashtbl.fold (fun id line acc -> (id, line) :: acc) t.results [] in
  Mutex.unlock t.resm;
  List.sort compare l

let profiles t =
  Mutex.lock t.resm;
  let l = Hashtbl.fold (fun id p acc -> (id, p) :: acc) t.profiles [] in
  Mutex.unlock t.resm;
  List.sort compare l

let profile_of t ~id =
  Mutex.lock t.resm;
  let p = Hashtbl.find_opt t.profiles id in
  Mutex.unlock t.resm;
  p

let stats t =
  Mutex.lock t.resm;
  let accepted = t.accepted
  and completed = t.completed
  and quarantined = t.quarantined_jobs
  and replayed = t.replayed
  and breaker_tripped = t.breaker_tripped in
  Mutex.unlock t.resm;
  let per_worker, uncaught =
    match t.service with
    | Some s -> (Pool.Service.stats s, Pool.Service.uncaught s)
    | None -> ([||], 0)
  in
  {
    accepted;
    completed;
    shed = Fairq.shed_count t.q;
    quarantined;
    replayed;
    breaker_tripped;
    per_worker;
    uncaught;
    queue_depth = Fairq.length t.q;
  }

let service_stats t =
  match t.service with Some s -> Pool.Service.stats s | None -> [||]

(* Graceful stop.  [drain = true] (the default) lets queued jobs run
   to completion; [drain = false] (signal shutdown) drops the backlog —
   workers finish only their current job, and the dropped jobs stay
   incomplete in the journal, so a restart resumes exactly them. *)
let stop ?(drain = true) t =
  if drain then Fairq.close t.q
  else begin
    let dropped = Fairq.close_now t.q in
    if dropped <> [] then
      Printf.eprintf
        "[serve] shutdown: %d queued job(s) left journaled for resume\n%!"
        (List.length dropped)
  end;
  (match t.service with
  | Some s ->
      Pool.Service.join s;
      t.service <- None
  | None -> ());
  match t.journal with Some j -> Journal.close j | None -> ()
