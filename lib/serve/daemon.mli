(** The serve-mode engine: persistent workers over a bounded fair
    queue, with journaled crash recovery, poison-job quarantine and a
    cache circuit breaker.

    Every front-end — the Unix-socket server ({!Server}), the job-file
    drain mode, the in-process fleet driver ({!Fleet}) and the tests —
    runs on this module; none of the robustness lives in front-ends.

    {b Admission.}  {!submit} is bounded by [config.capacity] and sheds
    with an explicit [`Shed] when saturated; {!submit_pinned} (the
    job-file path, where the id is the line number) blocks for space
    instead, so a drain loses nothing.

    {b Fairness.}  Jobs are scheduled round-robin across client queues
    ({!Fairq}), so one flooding client cannot starve the others.

    {b Failure handling.}  Transient failures retry with exponential
    backoff ([config.retries]); injected-fault / fuel / watchdog
    failures are reported with their {!Harness.Robust.classify}
    classification; bug-classified failures feed the {!Quarantine} —
    after [config.quarantine_after] attempts the job's digest and
    report are quarantined (journaled, so restarts remember) and the
    job is never run again.  A worker survives anything a job throws.

    {b Cache breaker.}  [config.breaker_after] cache-corruption events
    (silent recomputes counted by {!Harness.Runcache.corruptions} or
    loud collision/version failures) trip a one-way breaker: the disk
    tier is disabled ({!Harness.Runcache.set_dir}[ None]) and the
    daemon keeps serving from the memory tier.

    {b Crash recovery.}  With a journal armed, every submission and
    completion is appended (flushed, torn-tail tolerant); on restart,
    completed results replay verbatim, in-flight jobs of the previous
    life re-run, and the quarantine list is restored.  Job execution is
    deterministic and content-cached, so a resumed fleet's sorted
    result lines are byte-identical to an uninterrupted run. *)

type config = {
  workers : int;  (** worker domains ({!Harness.Pool.Service}) *)
  capacity : int;  (** admission bound across all clients *)
  retries : int;  (** transient retries per job *)
  quarantine_after : int;  (** bug failures before quarantine *)
  breaker_after : int;  (** corruption events before the breaker trips *)
}

val default : config

type stats = {
  accepted : int;
  completed : int;
  shed : int;
  quarantined : int;  (** jobs quarantined by this daemon instance *)
  replayed : int;  (** results served verbatim from the journal *)
  breaker_tripped : bool;
  per_worker : int array;  (** jobs executed per worker domain *)
  uncaught : int;  (** exceptions that escaped a job wrapper — always 0 *)
  queue_depth : int;  (** jobs admitted but not yet popped by a worker *)
}

type t

val start :
  ?config:config ->
  ?journal:string ->
  ?meta:string ->
  ?on_result:(int -> string -> Job.t -> string -> string option -> unit) ->
  unit ->
  t
(** Start the workers.  [journal] arms crash recovery ([meta]
    fingerprints the configuration; a mismatched journal raises
    [Failure]).  [on_result id client job line payload] fires on every
    fresh completion (not on replays) from a worker domain — it must be
    domain-safe.  [payload] is the canonical profile rendering of a
    completed job ([None] for failures and quarantines). *)

val submit : t -> client:string -> Job.t -> [ `Accepted of int | `Shed | `Closed ]
(** Non-blocking admission (the socket path). *)

val submit_pinned : t -> id:int -> client:string -> Job.t -> unit
(** Blocking admission with a caller-pinned id (the job-file path).
    Raises [Failure] if the daemon is stopping. *)

val drain : t -> unit
(** Block until every accepted job has a result. *)

val has_result : t -> id:int -> bool

val is_known : t -> id:int -> bool
(** The id has a result already (journal replay) or was accepted this
    life (recovery resubmission) — the job-file front-end skips known
    ids so recovery never double-runs a job. *)

val results : t -> (int * string) list
(** All result lines (replayed + fresh), sorted by id. *)

val profiles : t -> (int * string) list
(** Canonical profile renderings of every completed job (fresh runs and
    journal replays alike), sorted by id — the fleet merge's input.
    Failures and quarantines have no entry. *)

val profile_of : t -> id:int -> string option

val stats : t -> stats

val service_stats : t -> int array
(** Per-worker executed-job counters (see {!Harness.Pool.Service.stats}). *)

val stop : ?drain:bool -> t -> unit
(** Graceful: close admissions, let queued jobs finish ([drain],
    default true) or drop them for restart-resume ([drain:false] — the
    signal-shutdown path), join the workers, close the journal. *)
