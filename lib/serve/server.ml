(* Unix-domain socket front-end for the daemon.

   Line protocol (newline-terminated, text):
     client -> server
       HELLO <name>          name this connection's client queue
       SUBMIT <job-line>     canonical Job line
       STATS                 one-line daemon stats
       PING
       QUIT
     server -> client
       OK hello <name> | OK accepted <id> | OK pong | OK stats <k=v ...>
       SHED                  admission queue saturated; try again later
       ERR <message>         malformed request (job parse errors included)
       RESULT <result-line>  pushed asynchronously on job completion

   A single select loop owns every fd (listen socket, connections, and
   a self-pipe the worker domains poke after queueing a RESULT), so
   reads and accepts never block the daemon and a flooding connection
   cannot wedge the loop.  Replies to a connection's requests are
   written in request order; RESULT lines interleave as jobs finish. *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbox : string Queue.t; (* guarded by the server mutex *)
  mutable outtail : string; (* written only by the select-loop thread *)
  mutable client : string;
  mutable alive : bool;
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mu : Mutex.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  routes : (int, conn) Hashtbl.t; (* job id -> submitting connection *)
  unrouted : (int, string) Hashtbl.t; (* completions racing registration *)
  mutable conn_seq : int;
}

let create ~socket:socket_path =
  (* a client vanishing mid-write must surface as EPIPE on that one
     connection (closed below), not SIGPIPE-kill the whole daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let pipe_r, pipe_w = Unix.pipe () in
  {
    socket_path;
    listen_fd;
    pipe_r;
    pipe_w;
    mu = Mutex.create ();
    conns = Hashtbl.create 16;
    routes = Hashtbl.create 64;
    unrouted = Hashtbl.create 16;
    conn_seq = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let poke t = ignore (try Unix.write t.pipe_w (Bytes.of_string "x") 0 1 with Unix.Unix_error _ -> 0)

let push t conn line =
  locked t (fun () -> if conn.alive then Queue.push line conn.outbox)

(* Called from worker domains on every completion: route the result
   line to whichever connection submitted the job, then wake select.
   A job can finish before the submitting thread has registered the
   id -> conn route (quarantine answer, warm run cache, poison job
   failing instantly): such completions are buffered in [unrouted] and
   flushed by the SUBMIT handler when it registers the route, so the
   RESULT line is delivered, never dropped. *)
let on_result t id _client _job line =
  let routed =
    locked t (fun () ->
        match Hashtbl.find_opt t.routes id with
        | Some c ->
            Hashtbl.remove t.routes id;
            if c.alive then Queue.push ("RESULT " ^ line) c.outbox;
            true
        | None ->
            Hashtbl.replace t.unrouted id line;
            false)
  in
  if routed then poke t

let stats_line d =
  let s = Daemon.stats d in
  Printf.sprintf
    "OK stats accepted=%d completed=%d shed=%d quarantined=%d replayed=%d \
     breaker=%s uncaught=%d"
    s.Daemon.accepted s.Daemon.completed s.Daemon.shed s.Daemon.quarantined
    s.Daemon.replayed
    (if s.Daemon.breaker_tripped then "tripped" else "closed")
    s.Daemon.uncaught

let handle_line t d conn line =
  let line = String.trim line in
  let reply = push t conn in
  if String.equal line "" then ()
  else if String.equal line "PING" then reply "OK pong"
  else if String.equal line "QUIT" then conn.alive <- false
  else if String.equal line "STATS" then reply (stats_line d)
  else
    match String.index_opt line ' ' with
    | Some i when String.equal (String.sub line 0 i) "HELLO" ->
        let name =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        if not (String.equal name "") && not (String.contains name ' ') then begin
          conn.client <- name;
          reply ("OK hello " ^ name)
        end
        else reply "ERR bad client name"
    | Some i when String.equal (String.sub line 0 i) "SUBMIT" -> (
        let body = String.sub line (i + 1) (String.length line - i - 1) in
        match Job.parse body with
        | exception Failure m -> reply ("ERR " ^ String.escaped m)
        | job -> (
            match Daemon.submit d ~client:conn.client job with
            | `Accepted id ->
                (* register the route and take any completion that beat
                   us to it in one critical section: the result either
                   lands in [unrouted] before this block (flushed here)
                   or finds the route after it — no window drops it *)
                locked t (fun () ->
                    if conn.alive then
                      Queue.push (Printf.sprintf "OK accepted %d" id)
                        conn.outbox;
                    match Hashtbl.find_opt t.unrouted id with
                    | Some line ->
                        Hashtbl.remove t.unrouted id;
                        if conn.alive then
                          Queue.push ("RESULT " ^ line) conn.outbox
                    | None -> Hashtbl.replace t.routes id conn)
            | `Shed -> reply "SHED"
            | `Closed -> reply "ERR daemon is stopping"))
    | _ -> reply ("ERR unknown request " ^ String.escaped line)

let close_conn t conn =
  locked t (fun () ->
      conn.alive <- false;
      Hashtbl.remove t.conns conn.fd);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Write as much of each connection's queued output as its socket
   accepts right now.  Connection fds are non-blocking: a partial
   write or EAGAIN (slow reader, full send buffer) leaves the
   remaining bytes in [outtail] — retried when select reports the fd
   writable — instead of dropping them mid-line or wedging the loop.
   Only the select-loop thread touches [outtail]. *)
let flush_outboxes t =
  let pending =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ c acc ->
            if Queue.is_empty c.outbox && String.equal c.outtail "" then acc
            else begin
              let lines = List.of_seq (Queue.to_seq c.outbox) in
              Queue.clear c.outbox;
              (c, lines) :: acc
            end)
          t.conns [])
  in
  List.iter
    (fun (c, lines) ->
      let s =
        c.outtail ^ String.concat "" (List.map (fun l -> l ^ "\n") lines)
      in
      let b = Bytes.of_string s in
      let len = Bytes.length b in
      (* single_write, not write: Unix.write retries internally and can
         raise EAGAIN after writing part of the buffer, which would
         make the retry resend bytes the client already received *)
      let rec write_from off =
        if off >= len then c.outtail <- ""
        else
          match Unix.single_write c.fd b off (len - off) with
          | n -> write_from (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_from off
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              c.outtail <- Bytes.sub_string b off (len - off)
          | exception Unix.Unix_error _ -> close_conn t c
      in
      write_from 0)
    pending

let read_conn t d conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.fd buf 0 4096 with
  | 0 -> close_conn t conn
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn
  | n ->
      Buffer.add_subbytes conn.inbuf buf 0 n;
      let data = Buffer.contents conn.inbuf in
      let rec consume start =
        match String.index_from_opt data start '\n' with
        | None ->
            Buffer.clear conn.inbuf;
            Buffer.add_string conn.inbuf
              (String.sub data start (String.length data - start))
        | Some nl ->
            handle_line t d conn (String.sub data start (nl - start));
            consume (nl + 1)
      in
      consume 0;
      if not conn.alive then close_conn t conn

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      let conn =
        {
          fd;
          inbuf = Buffer.create 256;
          outbox = Queue.create ();
          outtail = "";
          client = (locked t (fun () ->
              t.conn_seq <- t.conn_seq + 1;
              Printf.sprintf "conn-%d" t.conn_seq));
          alive = true;
        }
      in
      locked t (fun () -> Hashtbl.replace t.conns fd conn)

(* The main loop: select over listen + conns + self-pipe, poll [stop]
   between iterations (signal handlers set the flag; EINTR from the
   signal just restarts the select). *)
let run t d ~stop =
  let drain_pipe () =
    let buf = Bytes.create 64 in
    ignore (try Unix.read t.pipe_r buf 0 64 with Unix.Unix_error _ -> 0)
  in
  while not (stop ()) do
    flush_outboxes t;
    let fds, wfds =
      locked t (fun () ->
          ( t.listen_fd :: t.pipe_r
            :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [],
            (* unflushed tails wait for writability, not the timeout *)
            Hashtbl.fold
              (fun fd c acc ->
                if String.equal c.outtail "" then acc else fd :: acc)
              t.conns [] ))
    in
    match Unix.select fds wfds [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_conn t
            else if fd = t.pipe_r then drain_pipe ()
            else
              match locked t (fun () -> Hashtbl.find_opt t.conns fd) with
              | Some conn -> read_conn t d conn
              | None -> ())
          readable
  done;
  flush_outboxes t;
  locked t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  |> List.iter (fun c -> close_conn t c);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

(* Fleet client: submit every entry over one connection (so daemon job
   ids follow submission order), retrying sheds with a short backoff —
   client-side backpressure — then wait for the outstanding RESULT
   lines.  Returns (results sorted by id, sheds observed).

   Failure is loud, never a hang: an ERR while results are outstanding
   (daemon shutting down mid-fleet) and a receive timeout (a RESULT
   lost to a daemon kill) both raise instead of waiting forever. *)
let client_run ?(timeout = 120.0) ~socket:path entries =
  (* a daemon dying mid-fleet must fail this call loudly (EPIPE below),
     not SIGPIPE-kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  let ic = Unix.in_channel_of_descr fd in
  let results = ref [] in
  let sheds = ref 0 in
  let outstanding = ref 0 in
  let send line =
    let b = Bytes.of_string (line ^ "\n") in
    match Unix.write fd b 0 (Bytes.length b) with
    | _ -> ()
    | exception Unix.Unix_error _ ->
        failwith
          (Printf.sprintf
             "fleet client: connection lost while submitting (%d job(s) \
              outstanding)"
             !outstanding)
  in
  let read_line_exn ~while_ () =
    match input_line ic with
    | line -> line
    | exception (End_of_file | Sys_error _) ->
        failwith
          (Printf.sprintf
             "fleet client: connection lost or no reply within %.0fs while \
              %s (%d job(s) outstanding)"
             timeout while_ !outstanding)
  in
  let rec read_until_reply () =
    let line = read_line_exn ~while_:"awaiting a reply" () in
    match String.split_on_char ' ' line with
    | "RESULT" :: rest ->
        let r = String.concat " " rest in
        (match String.split_on_char ' ' r with
        | id :: _ -> results := (int_of_string id, r) :: !results
        | [] -> ());
        decr outstanding;
        read_until_reply ()
    | _ -> line
  in
  let submit_one client job =
    send (Printf.sprintf "HELLO %s" client);
    (match read_until_reply () with
    | l when String.length l >= 2 && String.sub l 0 2 = "OK" -> ()
    | l -> failwith ("fleet client: HELLO rejected: " ^ l));
    let rec attempt () =
      send ("SUBMIT " ^ Job.render job);
      match String.split_on_char ' ' (read_until_reply ()) with
      | [ "OK"; "accepted"; _id ] -> incr outstanding
      | [ "SHED" ] ->
          incr sheds;
          Unix.sleepf 0.02;
          attempt ()
      | l -> failwith ("fleet client: SUBMIT rejected: " ^ String.concat " " l)
    in
    attempt ()
  in
  List.iter (fun (client, job) -> submit_one client job) entries;
  while !outstanding > 0 do
    let line = read_line_exn ~while_:"awaiting results" () in
    match String.split_on_char ' ' line with
    | "RESULT" :: rest ->
        let r = String.concat " " rest in
        (match String.split_on_char ' ' r with
        | id :: _ -> results := (int_of_string id, r) :: !results
        | [] -> ());
        decr outstanding
    | "ERR" :: rest ->
        failwith
          ("fleet client: daemon error with results outstanding: "
          ^ String.concat " " rest)
    | _ -> ()
  done;
  send "QUIT";
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (List.sort compare !results, !sheds)
