(* Unix-domain socket front-end for the daemon.

   Line control plane (newline-terminated, text) plus length-prefixed
   payload frames for profile data:
     client -> server
       HELLO <name>          name this connection's client queue
       SUBMIT <job-line>     canonical Job line
       SUBMIT* <k>           batch: the next k lines are each
                             "<client> <canonical job line>" — many
                             submissions per syscall, one reply line
       PROFILES on|off       opt into PROFILE payload frames
       STATS                 one-line daemon stats
       PING
       QUIT
     server -> client
       OK hello <name> | OK accepted <id> | OK pong | OK stats <k=v ...>
       OK batch <k> <tok ...> one token per batch line, in order:
                             the accepted id, "shed", "closed" or "err"
       OK profiles on|off
       SHED                  admission queue saturated; try again later
       ERR <message>         malformed request (job parse errors included)
       RESULT <result-line>  pushed asynchronously on job completion
       RESULT* <k>           corked batch: the next k lines are result
                             lines — completions that were queued
                             together leave in one write
       PROFILE <id> <len>    followed by exactly len payload bytes and
                             a newline: the completed job's canonical
                             profile rendering (only when PROFILES on)

   A single select loop owns every fd (listen socket, connections, and
   a self-pipe the worker domains poke after queueing a RESULT), so
   reads and accepts never block the daemon and a flooding connection
   cannot wedge the loop.  Replies to a connection's requests are
   written in request order; RESULT lines interleave as jobs finish.
   The flush path has always concatenated every queued line into one
   write; RESULT* makes the framing itself cheaper too (one header per
   run of completions instead of one per line). *)

(* what sits in a connection's outbox: control replies, result lines
   (corked into RESULT* runs at flush time), and profile payloads *)
type entry = Ctl of string | Res of string | Prof of int * string

let max_batch = 1024

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbox : entry Queue.t; (* guarded by the server mutex *)
  mutable outtail : string; (* written only by the select-loop thread *)
  mutable client : string;
  mutable want_profiles : bool;
  (* SUBMIT* parsing state: lines of the current batch still expected,
     and the reply tokens accumulated so far (reversed) *)
  mutable batch_left : int;
  mutable batch_toks : string list;
  mutable alive : bool;
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mu : Mutex.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  routes : (int, conn) Hashtbl.t; (* job id -> submitting connection *)
  unrouted : (int, string * string option) Hashtbl.t;
      (* completions racing registration: result line + profile payload *)
  mutable conn_seq : int;
  (* batch observability for STATS *)
  mutable submit_batches : int;
  mutable submit_batch_max : int;
  mutable result_batches : int;
  mutable result_batch_max : int;
}

let create ~socket:socket_path =
  (* a client vanishing mid-write must surface as EPIPE on that one
     connection (closed below), not SIGPIPE-kill the whole daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let pipe_r, pipe_w = Unix.pipe () in
  {
    socket_path;
    listen_fd;
    pipe_r;
    pipe_w;
    mu = Mutex.create ();
    conns = Hashtbl.create 16;
    routes = Hashtbl.create 64;
    unrouted = Hashtbl.create 16;
    conn_seq = 0;
    submit_batches = 0;
    submit_batch_max = 0;
    result_batches = 0;
    result_batch_max = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let poke t = ignore (try Unix.write t.pipe_w (Bytes.of_string "x") 0 1 with Unix.Unix_error _ -> 0)

let push t conn line =
  locked t (fun () -> if conn.alive then Queue.push (Ctl line) conn.outbox)

(* deliver one completion into a connection's outbox (mutex held) *)
let push_result conn id line payload =
  if conn.alive then begin
    Queue.push (Res line) conn.outbox;
    match payload with
    | Some p when conn.want_profiles -> Queue.push (Prof (id, p)) conn.outbox
    | _ -> ()
  end

(* Called from worker domains on every completion: route the result
   line to whichever connection submitted the job, then wake select.
   A job can finish before the submitting thread has registered the
   id -> conn route (quarantine answer, warm run cache, poison job
   failing instantly): such completions are buffered in [unrouted] and
   flushed by the SUBMIT handler when it registers the route, so the
   RESULT line is delivered, never dropped. *)
let on_result t id _client _job line payload =
  let routed =
    locked t (fun () ->
        match Hashtbl.find_opt t.routes id with
        | Some c ->
            Hashtbl.remove t.routes id;
            push_result c id line payload;
            true
        | None ->
            Hashtbl.replace t.unrouted id (line, payload);
            false)
  in
  if routed then poke t

let stats_line t d =
  let s = Daemon.stats d in
  let c = Harness.Runcache.stats () in
  let sb, sbm, rb, rbm =
    locked t (fun () ->
        (t.submit_batches, t.submit_batch_max, t.result_batches,
         t.result_batch_max))
  in
  Printf.sprintf
    "OK stats accepted=%d completed=%d shed=%d quarantined=%d replayed=%d \
     breaker=%s uncaught=%d queue=%d submit_batches=%d submit_batch_max=%d \
     result_batches=%d result_batch_max=%d merges=%d merge_inputs=%d \
     cache_mem_hits=%d cache_disk_hits=%d cache_misses=%d cache_stores=%d \
     cache_corrupt=%d"
    s.Daemon.accepted s.Daemon.completed s.Daemon.shed s.Daemon.quarantined
    s.Daemon.replayed
    (if s.Daemon.breaker_tripped then "tripped" else "closed")
    s.Daemon.uncaught s.Daemon.queue_depth sb sbm rb rbm
    (Harness.Aggregate.merge_count ())
    (Harness.Aggregate.input_count ())
    c.Harness.Runcache.mem_hits c.Harness.Runcache.disk_hits
    c.Harness.Runcache.misses c.Harness.Runcache.stores
    c.Harness.Runcache.corrupt

(* Submit one job on behalf of [conn], registering the id -> conn route
   and taking any completion that beat the registration in one critical
   section: the result either lands in [unrouted] before this block
   (flushed here) or finds the route after it — no window drops it.
   [ack] builds the control reply queued in the same section, so the
   ack always precedes the RESULT even for an instant completion. *)
let submit_routed t d conn ~client ~ack job =
  match Daemon.submit d ~client job with
  | `Accepted id ->
      locked t (fun () ->
          (match ack with
          | Some mk ->
              if conn.alive then Queue.push (Ctl (mk id)) conn.outbox
          | None -> ());
          match Hashtbl.find_opt t.unrouted id with
          | Some (line, payload) ->
              Hashtbl.remove t.unrouted id;
              push_result conn id line payload
          | None -> Hashtbl.replace t.routes id conn);
      `Accepted id
  | (`Shed | `Closed) as r -> r

(* One line of a SUBMIT* batch: "<client> <canonical job line>".  The
   reply is a single token accumulated into the batch ack — the
   accepted id, or "shed"/"closed"/"err". *)
let handle_batch_item t d conn raw =
  let token =
    let line = String.trim raw in
    match String.index_opt line ' ' with
    | None -> "err"
    | Some i -> (
        let client = String.sub line 0 i in
        let body = String.sub line (i + 1) (String.length line - i - 1) in
        match Job.parse body with
        | exception Failure _ -> "err"
        | job -> (
            match submit_routed t d conn ~client ~ack:None job with
            | `Accepted id -> string_of_int id
            | `Shed -> "shed"
            | `Closed -> "closed"))
  in
  conn.batch_toks <- token :: conn.batch_toks;
  conn.batch_left <- conn.batch_left - 1;
  if conn.batch_left = 0 then begin
    let toks = List.rev conn.batch_toks in
    conn.batch_toks <- [];
    let k = List.length toks in
    locked t (fun () ->
        t.submit_batches <- t.submit_batches + 1;
        if k > t.submit_batch_max then t.submit_batch_max <- k);
    push t conn
      (Printf.sprintf "OK batch %d %s" k (String.concat " " toks))
  end

let handle_line t d conn line =
  if conn.batch_left > 0 then handle_batch_item t d conn line
  else
    let line = String.trim line in
    let reply = push t conn in
    if String.equal line "" then ()
    else if String.equal line "PING" then reply "OK pong"
    else if String.equal line "QUIT" then conn.alive <- false
    else if String.equal line "STATS" then reply (stats_line t d)
    else
      match String.index_opt line ' ' with
      | Some i when String.equal (String.sub line 0 i) "HELLO" ->
          let name =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          if not (String.equal name "") && not (String.contains name ' ')
          then begin
            conn.client <- name;
            reply ("OK hello " ^ name)
          end
          else reply "ERR bad client name"
      | Some i when String.equal (String.sub line 0 i) "PROFILES" -> (
          match
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          with
          | "on" ->
              conn.want_profiles <- true;
              reply "OK profiles on"
          | "off" ->
              conn.want_profiles <- false;
              reply "OK profiles off"
          | s -> reply ("ERR bad profiles mode " ^ String.escaped s))
      | Some i when String.equal (String.sub line 0 i) "SUBMIT*" -> (
          let arg =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          match int_of_string_opt arg with
          | Some k when k >= 1 && k <= max_batch ->
              conn.batch_left <- k;
              conn.batch_toks <- []
          | _ ->
              reply
                (Printf.sprintf "ERR bad batch size %s (1..%d)"
                   (String.escaped arg) max_batch))
      | Some i when String.equal (String.sub line 0 i) "SUBMIT" -> (
          let body = String.sub line (i + 1) (String.length line - i - 1) in
          match Job.parse body with
          | exception Failure m -> reply ("ERR " ^ String.escaped m)
          | job -> (
              match
                submit_routed t d conn ~client:conn.client
                  ~ack:(Some (Printf.sprintf "OK accepted %d"))
                  job
              with
              | `Accepted _ -> ()
              | `Shed -> reply "SHED"
              | `Closed -> reply "ERR daemon is stopping"))
      | _ -> reply ("ERR unknown request " ^ String.escaped line)

let close_conn t conn =
  locked t (fun () ->
      conn.alive <- false;
      Hashtbl.remove t.conns conn.fd);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Write as much of each connection's queued output as its socket
   accepts right now.  Connection fds are non-blocking: a partial
   write or EAGAIN (slow reader, full send buffer) leaves the
   remaining bytes in [outtail] — retried when select reports the fd
   writable — instead of dropping them mid-line or wedging the loop.
   Only the select-loop thread touches [outtail]. *)
(* Render a drained outbox to wire bytes, corking consecutive result
   lines: a run of >= 2 leaves as one "RESULT* <k>" header plus the bare
   lines, a singleton stays a plain "RESULT <line>" (back-compatible).
   Returns the rendering plus the RESULT* runs emitted (for STATS). *)
let render_entries entries =
  let buf = Buffer.create 256 in
  let batches = ref 0 and batch_max = ref 0 in
  let flush_run run =
    match List.rev run with
    | [] -> ()
    | [ line ] ->
        Buffer.add_string buf "RESULT ";
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
    | lines ->
        let k = List.length lines in
        incr batches;
        if k > !batch_max then batch_max := k;
        Buffer.add_string buf (Printf.sprintf "RESULT* %d\n" k);
        List.iter
          (fun l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n')
          lines
  in
  let run =
    List.fold_left
      (fun run e ->
        match e with
        | Res line -> line :: run
        | Ctl line ->
            flush_run run;
            Buffer.add_string buf line;
            Buffer.add_char buf '\n';
            []
        | Prof (id, payload) ->
            flush_run run;
            Buffer.add_string buf
              (Printf.sprintf "PROFILE %d %d\n" id (String.length payload));
            Buffer.add_string buf payload;
            Buffer.add_char buf '\n';
            [])
      [] entries
  in
  flush_run run;
  (Buffer.contents buf, !batches, !batch_max)

let flush_outboxes t =
  let pending =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ c acc ->
            if Queue.is_empty c.outbox && String.equal c.outtail "" then acc
            else begin
              let entries = List.of_seq (Queue.to_seq c.outbox) in
              Queue.clear c.outbox;
              (c, entries) :: acc
            end)
          t.conns [])
  in
  List.iter
    (fun (c, entries) ->
      let body, batches, batch_max = render_entries entries in
      if batches > 0 then
        locked t (fun () ->
            t.result_batches <- t.result_batches + batches;
            if batch_max > t.result_batch_max then
              t.result_batch_max <- batch_max);
      let s = c.outtail ^ body in
      let b = Bytes.of_string s in
      let len = Bytes.length b in
      (* single_write, not write: Unix.write retries internally and can
         raise EAGAIN after writing part of the buffer, which would
         make the retry resend bytes the client already received *)
      let rec write_from off =
        if off >= len then c.outtail <- ""
        else
          match Unix.single_write c.fd b off (len - off) with
          | n -> write_from (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_from off
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              c.outtail <- Bytes.sub_string b off (len - off)
          | exception Unix.Unix_error _ -> close_conn t c
      in
      write_from 0)
    pending

let read_conn t d conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.fd buf 0 4096 with
  | 0 -> close_conn t conn
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn
  | n ->
      Buffer.add_subbytes conn.inbuf buf 0 n;
      let data = Buffer.contents conn.inbuf in
      let rec consume start =
        match String.index_from_opt data start '\n' with
        | None ->
            Buffer.clear conn.inbuf;
            Buffer.add_string conn.inbuf
              (String.sub data start (String.length data - start))
        | Some nl ->
            handle_line t d conn (String.sub data start (nl - start));
            consume (nl + 1)
      in
      consume 0;
      if not conn.alive then close_conn t conn

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      let conn =
        {
          fd;
          inbuf = Buffer.create 256;
          outbox = Queue.create ();
          outtail = "";
          client = (locked t (fun () ->
              t.conn_seq <- t.conn_seq + 1;
              Printf.sprintf "conn-%d" t.conn_seq));
          want_profiles = false;
          batch_left = 0;
          batch_toks = [];
          alive = true;
        }
      in
      locked t (fun () -> Hashtbl.replace t.conns fd conn)

(* The main loop: select over listen + conns + self-pipe, poll [stop]
   between iterations (signal handlers set the flag; EINTR from the
   signal just restarts the select). *)
let run t d ~stop =
  let drain_pipe () =
    let buf = Bytes.create 64 in
    ignore (try Unix.read t.pipe_r buf 0 64 with Unix.Unix_error _ -> 0)
  in
  while not (stop ()) do
    flush_outboxes t;
    let fds, wfds =
      locked t (fun () ->
          ( t.listen_fd :: t.pipe_r
            :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [],
            (* unflushed tails wait for writability, not the timeout *)
            Hashtbl.fold
              (fun fd c acc ->
                if String.equal c.outtail "" then acc else fd :: acc)
              t.conns [] ))
    in
    match Unix.select fds wfds [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_conn t
            else if fd = t.pipe_r then drain_pipe ()
            else
              match locked t (fun () -> Hashtbl.find_opt t.conns fd) with
              | Some conn -> read_conn t d conn
              | None -> ())
          readable
  done;
  flush_outboxes t;
  locked t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  |> List.iter (fun c -> close_conn t c);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

(* Fleet client: pipeline every entry over one connection as SUBMIT*
   frames of [batch] lines — all batches go out before any ack is
   awaited, so submission costs one write per batch instead of one
   round-trip per job.  Each batch line carries its own client name, so
   fairness attribution needs no HELLO interleaving.  Shed tokens are
   collected and resubmitted in fresh batches after a short backoff —
   client-side backpressure.  With [profiles], the daemon streams each
   completed job's canonical profile rendering as a PROFILE frame.

   A RESULT can arrive before its batch ack (a warm-cache job finishes
   while the daemon is still parsing the rest of the batch), so
   completion is tracked with expected/received counters, not a
   per-submission wait.  Batch acks do arrive in submission order —
   one select loop serves requests serially — hence the ack FIFO.

   Returns (results sorted by id, sheds observed, profiles sorted by
   id).  Failure is loud, never a hang: an ERR reply, a rejected batch
   line and a receive timeout (a RESULT lost to a daemon kill) all
   raise instead of waiting forever. *)
let client_run ?(timeout = 120.0) ?(batch = 32) ?(profiles = false)
    ~socket:path entries =
  (* a daemon dying mid-fleet must fail this call loudly (EPIPE below),
     not SIGPIPE-kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let batch = max 1 (min max_batch batch) in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  let ic = Unix.in_channel_of_descr fd in
  let results = ref [] in
  let profs = ref [] in
  let sheds = ref 0 in
  let expected = ref 0 in (* submissions accepted so far *)
  let received = ref 0 in (* result lines received so far *)
  let ok_count = ref 0 in (* received results with OK status *)
  let prof_count = ref 0 in
  let retries = ref [] in (* shed entries awaiting resubmission *)
  let pending_acks = Queue.create () in (* batches awaiting OK batch *)
  let send s =
    let b = Bytes.of_string s in
    let len = Bytes.length b in
    let rec go off =
      if off < len then
        match Unix.write fd b off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error _ ->
            failwith "fleet client: connection lost while submitting"
    in
    go 0
  in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
          | rest -> (List.rev acc, rest)
        in
        let c, rest = take batch [] l in
        c :: chunks rest
  in
  let submit_chunk chunk =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "SUBMIT* %d\n" (List.length chunk));
    List.iter
      (fun (client, job) ->
        Buffer.add_string buf client;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Job.render job);
        Buffer.add_char buf '\n')
      chunk;
    Queue.push chunk pending_acks;
    send (Buffer.contents buf)
  in
  let read_line_exn ~while_ () =
    match input_line ic with
    | line -> line
    | exception (End_of_file | Sys_error _) ->
        failwith
          (Printf.sprintf
             "fleet client: connection lost or no reply within %.0fs while \
              %s (%d of %d result(s) received)"
             timeout while_ !received !expected)
  in
  let note_result r =
    (match String.split_on_char ' ' r with
    | id :: _digest :: status :: _ ->
        results := (int_of_string id, r) :: !results;
        if String.equal status "OK" then incr ok_count
    | id :: _ -> results := (int_of_string id, r) :: !results
    | [] -> ());
    incr received
  in
  let handle line =
    match String.split_on_char ' ' line with
    | [ "RESULT*"; k ] ->
        let k = int_of_string k in
        for _ = 1 to k do
          note_result (read_line_exn ~while_:"reading a result batch" ())
        done
    | "RESULT" :: rest -> note_result (String.concat " " rest)
    | [ "PROFILE"; id; len ] ->
        let id = int_of_string id and len = int_of_string len in
        let b = Bytes.create len in
        (try
           really_input ic b 0 len;
           match input_char ic with
           | '\n' -> ()
           | _ -> raise Exit
         with End_of_file | Exit | Sys_error _ ->
           failwith "fleet client: malformed or truncated PROFILE frame");
        profs := (id, Bytes.to_string b) :: !profs;
        incr prof_count
    | "OK" :: "batch" :: _k :: toks ->
        let chunk =
          match Queue.take_opt pending_acks with
          | Some c -> c
          | None -> failwith "fleet client: unexpected batch ack"
        in
        if List.length chunk <> List.length toks then
          failwith "fleet client: batch ack token count mismatch";
        List.iter2
          (fun entry tok ->
            match tok with
            | "shed" ->
                incr sheds;
                retries := entry :: !retries
            | "closed" -> failwith "fleet client: daemon is stopping"
            | "err" ->
                failwith
                  ("fleet client: job rejected: "
                  ^ Job.render (snd entry))
            | _ -> (
                match int_of_string_opt tok with
                | Some _ -> incr expected
                | None ->
                    failwith ("fleet client: bad batch ack token " ^ tok)))
          chunk toks
    | "OK" :: "profiles" :: _ -> ()
    | "ERR" :: rest ->
        failwith ("fleet client: daemon error: " ^ String.concat " " rest)
    | _ -> ()
  in
  if profiles then send "PROFILES on\n";
  List.iter submit_chunk (chunks entries);
  (* Done when every batch is acked, nothing awaits resubmission, every
     accepted job has a result, and (with profiles on) every OK result's
     PROFILE frame has arrived — the frame follows its RESULT in-stream,
     so the count converges. *)
  let finished () =
    Queue.is_empty pending_acks
    && !retries = []
    && !received >= !expected
    && ((not profiles) || !prof_count >= !ok_count)
  in
  while not (finished ()) do
    if Queue.is_empty pending_acks && !retries <> [] then begin
      Unix.sleepf 0.02;
      let rs = List.rev !retries in
      retries := [];
      List.iter submit_chunk (chunks rs)
    end
    else handle (read_line_exn ~while_:"awaiting replies" ())
  done;
  send "QUIT\n";
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (List.sort compare !results, !sheds, List.sort compare !profs)
