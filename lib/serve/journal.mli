(** Append-only job journal — the daemon's crash-recovery log.

    Same discipline as {!Harness.Robust}'s checkpoints (PR 3): each
    record is marshaled, appended and flushed individually, so a
    SIGKILL can at worst truncate the record being written; the loader
    tolerates that torn tail and every fully written record survives.
    Opening a journal whose meta fingerprint differs from this
    daemon's configuration raises [Failure] — resume must be exact or
    refused.

    Recovery semantics: a job with a [Submitted] record but no
    [Completed] record was in flight (queued or running) when the
    daemon died and is re-run on restart; a [Completed] record carries
    the canonical result line and is replayed verbatim; [Quarantined]
    records persist the poison list across restarts so a quarantined
    job is never retried, even by a fresh daemon. *)

type record =
  | Meta of string
  | Submitted of { id : int; client : string; line : string }
  | Completed of { id : int; result : string }
  | Quarantined of { digest : string; report : string }
  | Profile of { id : int; payload : string }
      (** canonical {!Profiles.Merge.render} of a completed job's
          profile, written immediately before its [Completed] record so
          a resumed fleet can still be merged without re-running
          anything.  Appended last in the variant: journals written
          before profile capture still decode. *)

type recovered = {
  pending : (int * string * string) list;
      (** submitted but not completed — (id, client, job line), by id *)
  completed : (int * string) list;  (** (id, result line), by id *)
  quarantined : (string * string) list;  (** (job digest, report) *)
  profiles : (int * string) list;
      (** (id, profile rendering) for completed ids whose [Profile]
          record survived — ids completed by a pre-profile journal are
          absent, and the merge path recomputes them through the run
          cache *)
  next_id : int;  (** 1 + highest id seen *)
}

type t

val open_ : ?meta:string -> string -> t * recovered
(** Open (creating if missing) and replay the journal.  Raises
    [Failure] when the existing journal's meta record differs from
    [meta], and when the file is non-empty but holds no decodable
    records at all (it is some other file — truncating it to "fix" the
    tail would destroy it). *)

val append : t -> record -> unit
(** Marshal, append, flush.  Domain-safe. *)

val close : t -> unit
val path : t -> string
