(** Fleet driver: deterministic generation and accounting for large
    batches of mixed-scale jobs.

    Generation is a pure function of the seed, so the same fleet can be
    emitted to a job file, run sequentially as the byte-identity
    reference, run concurrently through the daemon, killed mid-flight
    and resumed — every path must produce the same sorted result
    lines. *)

type fleet_stats = {
  jobs : int;
  ok : int;
  failed : int;  (** ERR results (classified: fault/fuel/timeout/transient) *)
  quarantined : int;
  shed : int;
  replayed : int;  (** results served verbatim from the journal *)
  uncaught : int;  (** exceptions that escaped a worker's job wrapper — must be 0 *)
  wall_seconds : float;
  jobs_per_sec : float;
  p50_ms : float;  (** submit-to-result latency percentiles *)
  p99_ms : float;
}

val jobs :
  ?engine:[ `Ref | `Fast ] ->
  ?recording:[ `Slots | `Legacy ] ->
  ?poison:int ->
  seed:int ->
  n:int ->
  unit ->
  Job.t list
(** [n] mixed-scale jobs over six benchmarks × three scales × four
    variants × six spec sets × five triggers, deterministically mixed
    from [seed]; [poison] extra deliberately-broken jobs are woven
    through the fleet (distinct digests, each exercising its own
    quarantine entry). *)

val client_of : clients:int -> int -> string
(** Round-robin client name for submission index [i]. *)

val write_job_file : string -> (string * Job.t) list -> unit
(** One ["<client> <canonical job line>"] per line; the 1-based line
    number is the job id everywhere (daemon, journal, results), which
    is what makes kill/restart/resume line up. *)

val read_job_file : string -> (string * Job.t) list
(** Raises [Failure] on a malformed line. *)

val write_results : string -> (int * string) list -> unit

val run_daemon :
  ?config:Daemon.config ->
  ?journal:string ->
  ?meta:string ->
  (string * Job.t) list ->
  fleet_stats * (int * string) list
(** Start a daemon, submit every entry with pinned ids 1..n (skipping
    ids the journal already completed), drain, and account
    jobs/sec + latency percentiles.  Returns the sorted result lines. *)

val run_sequential : (string * Job.t) list -> (int * string) list
(** The byte-identity reference: one worker, submission order. *)

val unclassified : (int * string) list -> (int * string) list
(** Result lines whose failure carries no known classification — the
    "no unclassified crashes" acceptance gate requires this empty.
    (Bug-classified failures never surface as ERR: the quarantine
    absorbs them.) *)
