(** Fleet driver: deterministic generation and accounting for large
    batches of mixed-scale jobs.

    Generation is a pure function of the seed, so the same fleet can be
    emitted to a job file, run sequentially as the byte-identity
    reference, run concurrently through the daemon, killed mid-flight
    and resumed — every path must produce the same sorted result
    lines. *)

type fleet_stats = {
  jobs : int;
  ok : int;
  failed : int;  (** ERR results (classified: fault/fuel/timeout/transient) *)
  quarantined : int;
  shed : int;
  replayed : int;  (** results served verbatim from the journal *)
  uncaught : int;  (** exceptions that escaped a worker's job wrapper — must be 0 *)
  wall_seconds : float;
  jobs_per_sec : float;
  p50_ms : float;  (** submit-to-result latency percentiles *)
  p99_ms : float;
}

val jobs :
  ?engine:[ `Ref | `Fast ] ->
  ?recording:[ `Slots | `Legacy ] ->
  ?poison:int ->
  seed:int ->
  n:int ->
  unit ->
  Job.t list
(** [n] mixed-scale jobs over six benchmarks × three scales × four
    variants × six spec sets × five triggers, deterministically mixed
    from [seed]; [poison] extra deliberately-broken jobs are woven
    through the fleet (distinct digests, each exercising its own
    quarantine entry). *)

val client_of : clients:int -> int -> string
(** Round-robin client name for submission index [i]. *)

val write_job_file : string -> (string * Job.t) list -> unit
(** One ["<client> <canonical job line>"] per line; the 1-based line
    number is the job id everywhere (daemon, journal, results), which
    is what makes kill/restart/resume line up. *)

val read_job_file : string -> (string * Job.t) list
(** Raises [Failure] on a malformed line. *)

val write_results : string -> (int * string) list -> unit

val run_daemon :
  ?config:Daemon.config ->
  ?journal:string ->
  ?meta:string ->
  ?window:int ->
  (string * Job.t) list ->
  fleet_stats * (int * string) list * (int * string) list
(** Start a daemon, submit every entry with pinned ids 1..n (skipping
    ids the journal already completed), drain, and account
    jobs/sec + latency percentiles.  Returns
    [(stats, sorted result lines, sorted profile payloads)] — one
    canonical {!Profiles.Merge} rendering per completed job.

    [window] switches submission from open loop (all n upfront) to
    closed loop: at most [window] jobs outstanding, the next submitted
    on each completion.  The latency percentiles then measure per-job
    service latency rather than backlog age.  Clamped to
    [1 .. capacity] so a worker-domain submission can never block on a
    full queue and wedge the pool.  Result lines and payloads are
    byte-identical either way — only the timing accounting differs. *)

val run_sequential :
  (string * Job.t) list -> (int * string) list * (int * string) list
(** The byte-identity reference: one worker, submission order.
    Returns [(sorted result lines, sorted profile payloads)]. *)

val merge_profiles :
  ?jobs:int ->
  entries:(string * Job.t) list ->
  results:(int * string) list ->
  (int * string) list ->
  Profiles.Merge.t
(** Merge a fleet's per-job profile payloads into one aggregate via the
    parallel merge tree, cached by {!Harness.Aggregate} under the
    sorted multiset of payload digests.  Only OK results contribute.
    An OK result whose payload is missing (pre-profile journal replay,
    socket run without PROFILES) is recomputed through
    {!Job.execute_full} — a run-cache lookup when warm, and
    deterministic either way — so the merge is always lossless.  The
    output is byte-identical however the fleet was sharded, ordered or
    parallelised. *)

val unclassified : (int * string) list -> (int * string) list
(** Result lines whose failure carries no known classification — the
    "no unclassified crashes" acceptance gate requires this empty.
    (Bug-classified failures never surface as ERR: the quarantine
    absorbs them.) *)
