(** Bounded multi-client fair queue: the daemon's admission control and
    per-client scheduler.

    One shared capacity bound across all clients — a submit beyond it
    is {e shed} with an explicit rejection, never queued unboundedly.
    Pops are round-robin over client queues in first-seen order,
    resuming one past the client served last, so a flooding client
    cannot starve the others: with [k] active clients each is served
    every [k]-th pop regardless of queue depths.

    Domain-safe; [pop_wait]/[submit_wait] block on a condition
    variable and are released by {!close}. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val submit : 'a t -> client:string -> 'a -> [ `Accepted | `Shed | `Closed ]
(** Non-blocking admission: [`Shed] when the queue holds [capacity]
    items (counted, see {!shed_count}), [`Closed] after {!close}. *)

val submit_wait : 'a t -> client:string -> 'a -> [ `Accepted | `Closed ]
(** Blocking admission for sources that must lose nothing (the job-file
    reader): waits for a free slot instead of shedding. *)

val pop : 'a t -> 'a option
(** Non-blocking round-robin pop; [None] when empty. *)

val pop_wait : 'a t -> 'a option
(** Blocking pop; [None] only after {!close} with the queue drained —
    the worker-exit signal. *)

val close : 'a t -> unit
(** No further admissions; blocked waiters wake.  Already-queued items
    continue to pop (graceful drain). *)

val close_now : 'a t -> 'a list
(** {!close}, but drop and return everything still queued — the
    signal-shutdown path: workers finish only their current job, and
    the dropped jobs (still journaled as submitted) resume on
    restart. *)

val length : 'a t -> int
val shed_count : 'a t -> int

val clients : 'a t -> int
(** Distinct clients currently holding queued items.  A client whose
    queue empties is retired (queue and rotation slot dropped), so a
    long-lived daemon does not accumulate state per past client. *)
