(* Fleet driver: generate, submit and account for large batches of
   mixed-scale jobs — the "millions of users" simulation.  Job
   generation is deterministic from a seed, so the same fleet can be
   emitted to a job file, run sequentially as the byte-identity
   reference, run concurrently through the daemon, killed mid-flight
   and resumed — and every path must produce the same sorted result
   lines. *)

type fleet_stats = {
  jobs : int;
  ok : int;
  failed : int;
  quarantined : int;
  shed : int;
  replayed : int;
  uncaught : int;
  wall_seconds : float;
  jobs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Deterministic generation                                            *)
(* ------------------------------------------------------------------ *)

(* Small benchmarks at small scales: a fleet simulates many cheap
   client requests, not few expensive table cells. *)
let fleet_benches = [ "compress"; "jess"; "db"; "javac"; "mtrt"; "jack" ]
let fleet_scales = [ 1; 2; 3 ]
let fleet_variants = [ "full-dup"; "no-dup"; "partial-dup"; "yp-opt" ]

let fleet_specs =
  [
    [ "call-edge" ];
    [ "field-access" ];
    [ "call-edge"; "field-access" ];
    [ "edge" ];
    [ "path" ];
    [ "receiver"; "cct" ];
  ]

let fleet_triggers =
  [
    Job.Counter { interval = 100; jitter = 0 };
    Job.Counter { interval = 1000; jitter = 0 };
    Job.Counter { interval = 10; jitter = 0 };
    Job.Always;
    Job.Never;
  ]

let nth_mod l i = List.nth l (i mod List.length l)

(* Multiplicative-congruential mixing keeps neighboring indices from
   walking the option lists in lockstep, while staying reproducible
   across OCaml versions (no Random.State dependency). *)
let mix seed i k =
  let h = (seed * 1_000_003) + (i * 8_191) + (k * 131) in
  let h = h lxor (h lsr 13) in
  let h = h * 97_001 in
  abs (h lxor (h lsr 7))

let job ~seed ~engine ~recording i =
  {
    Job.bench = nth_mod fleet_benches (mix seed i 1);
    scale = Some (nth_mod fleet_scales (mix seed i 2));
    variant = nth_mod fleet_variants (mix seed i 3);
    specs = nth_mod fleet_specs (mix seed i 4);
    trigger = nth_mod fleet_triggers (mix seed i 5);
    engine;
    recording;
    poison = false;
  }

let poison_job i =
  {
    Job.bench = "compress";
    scale = Some 1;
    variant = "full-dup";
    specs = [ "call-edge" ];
    trigger = Job.Counter { interval = 100 + i; jitter = 0 };
    engine = `Fast;
    recording = `Slots;
    poison = true;
  }

let jobs ?(engine = `Fast) ?(recording = `Slots) ?(poison = 0) ~seed ~n () =
  let normal = List.init n (fun i -> job ~seed ~engine ~recording i) in
  if poison <= 0 then normal
  else begin
    (* poison jobs are spread through the fleet, distinct by trigger so
       each digests differently and exercises its own quarantine entry *)
    let step = max 1 (n / (poison + 1)) in
    let rec weave i taken rest =
      match rest with
      | [] -> List.init (poison - taken) (fun k -> poison_job (taken + k))
      | x :: tl ->
          if taken < poison && i > 0 && i mod step = 0 then
            poison_job taken :: x :: weave (i + 1) (taken + 1) tl
          else x :: weave (i + 1) taken tl
    in
    weave 0 0 normal
  end

let client_of ~clients i = Printf.sprintf "client-%d" (i mod max 1 clients)

(* ------------------------------------------------------------------ *)
(* Job files                                                           *)
(* ------------------------------------------------------------------ *)

(* One submission per line: "<client> <canonical job line>".  The line
   number (1-based) is the job id everywhere — daemon, journal,
   results — which is what makes kill/restart/resume line up. *)
let write_job_file path entries =
  let oc = open_out path in
  List.iter
    (fun (client, j) ->
      if String.contains client ' ' then
        invalid_arg "Fleet.write_job_file: client names cannot contain spaces";
      Printf.fprintf oc "%s %s\n" client (Job.render j))
    entries;
  close_out oc

let read_job_file path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if not (String.equal line "") then
         match String.index_opt line ' ' with
         | None -> failwith (Printf.sprintf "bad job-file line %S" line)
         | Some i ->
             let client = String.sub line 0 i in
             let rest =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             entries := (client, Job.parse rest) :: !entries
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let write_results path results =
  let oc = open_out path in
  List.iter (fun (_, line) -> output_string oc (line ^ "\n")) results;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Running a fleet                                                     *)
(* ------------------------------------------------------------------ *)

let percentile p sorted =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) i))

let count_status results =
  List.fold_left
    (fun (ok, failed, quarantined) (_, line) ->
      match String.split_on_char ' ' line with
      | _ :: _ :: "OK" :: _ -> (ok + 1, failed, quarantined)
      | _ :: _ :: "ERR" :: _ -> (ok, failed + 1, quarantined)
      | _ :: _ :: "QUARANTINED" :: _ -> (ok, failed, quarantined + 1)
      | _ -> (ok, failed, quarantined))
    (0, 0, 0) results

(* Submit [entries] (client, job) with pinned ids 1..n, wait for every
   result, and account latencies from submission to completion.

   [window] switches to closed-loop submission: at most [window] jobs
   outstanding, the next one submitted from the completion callback.
   Latency percentiles then measure true per-job service latency
   (queue wait + execution) instead of the age of the whole backlog,
   which is what the open-loop default reports when all n submit times
   are stamped upfront.  The window is clamped to [1 .. capacity]: a
   submission is then always preceded by more pops than worker
   submissions, so the fair queue can never be full when a worker
   domain submits — no submit_wait can wedge the pool. *)
let run_daemon ?(config = Daemon.default) ?journal ?(meta = "") ?window
    entries =
  let n = List.length entries in
  let arr = Array.of_list entries in
  let submit_times = Array.make (n + 1) 0.0 in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let latencies = ref [] in
  let next = ref 1 in (* next id to consider submitting (windowed mode) *)
  let outstanding = ref 0 in (* our submissions without a result yet *)
  let d_cell = Atomic.make None in
  (* claim the next id the journal doesn't already know; counts it
     outstanding in the same critical section so the drain condition
     below never sees a gap between a completion and its follow-on *)
  let next_id d =
    Mutex.lock mu;
    let rec pick () =
      if !next > n then None
      else begin
        let id = !next in
        incr next;
        if Daemon.is_known d ~id then pick ()
        else begin
          incr outstanding;
          Some id
        end
      end
    in
    let r = pick () in
    (* the generator running dry (possibly by skipping known ids) is
       itself a wakeup-worthy event for the windowed drain loop *)
    Condition.broadcast cond;
    Mutex.unlock mu;
    r
  in
  let submit_id d id =
    let client, j = arr.(id - 1) in
    submit_times.(id) <- Unix.gettimeofday ();
    Daemon.submit_pinned d ~id ~client j
  in
  let on_result id _client _job _line _payload =
    (* jobs resubmitted by journal recovery inside Daemon.start complete
       before we stamped a submit time; they carry no latency sample *)
    let mine = id <= n && submit_times.(id) > 0.0 in
    if mine then begin
      let dt = Unix.gettimeofday () -. submit_times.(id) in
      Mutex.lock mu;
      latencies := dt :: !latencies;
      decr outstanding;
      Condition.broadcast cond;
      Mutex.unlock mu
    end;
    if window <> None then
      match Atomic.get d_cell with
      | Some d -> (
          match next_id d with Some id -> submit_id d id | None -> ())
      | None -> ()
  in
  let t0 = Unix.gettimeofday () in
  let d = Daemon.start ~config ?journal ~meta ~on_result () in
  Atomic.set d_cell (Some d);
  (match window with
  | None ->
      (* open loop: everything submitted upfront.  Recovery may have
         replayed completed results or requeued in-flight jobs; only
         unknown ids are submitted, mirroring the job-file front-end. *)
      List.iteri
        (fun i (client, j) ->
          let id = i + 1 in
          if not (Daemon.is_known d ~id) then begin
            submit_times.(id) <- Unix.gettimeofday ();
            Daemon.submit_pinned d ~id ~client j
          end)
        entries
  | Some w ->
      let w = max 1 (min w config.Daemon.capacity) in
      let rec prime k =
        if k > 0 then
          match next_id d with
          | Some id ->
              submit_id d id;
              prime (k - 1)
          | None -> ()
      in
      prime w;
      (* completions drive the rest; Daemon.drain alone could return in
         the gap between a completion being counted and its follow-on
         submission, so wait for the closed loop to empty first *)
      Mutex.lock mu;
      while !next <= n || !outstanding > 0 do
        Condition.wait cond mu
      done;
      Mutex.unlock mu);
  Daemon.drain d;
  let wall = Unix.gettimeofday () -. t0 in
  let results = Daemon.results d in
  let profiles = Daemon.profiles d in
  let dstats = Daemon.stats d in
  Daemon.stop d;
  let ok, failed, quarantined = count_status results in
  let lat =
    let l = Array.of_list (List.map (fun s -> s *. 1000.0) !latencies) in
    Array.sort compare l;
    l
  in
  ( {
      jobs = n;
      ok;
      failed;
      quarantined;
      shed = dstats.Daemon.shed;
      replayed = dstats.Daemon.replayed;
      uncaught = dstats.Daemon.uncaught;
      wall_seconds = wall;
      jobs_per_sec = (if wall > 0.0 then float_of_int n /. wall else 0.0);
      p50_ms = percentile 50.0 lat;
      p99_ms = percentile 99.0 lat;
    },
    results,
    profiles )

(* The byte-identity reference: one worker, in submission order. *)
let run_sequential entries =
  let config = { Daemon.default with workers = 1; capacity = 1 } in
  let _, results, profiles = run_daemon ~config entries in
  (results, profiles)

(* ------------------------------------------------------------------ *)
(* Cross-shard merge                                                   *)
(* ------------------------------------------------------------------ *)

(* Merge a fleet's per-job profile payloads into one aggregate, cached
   under the sorted multiset of payload digests (Harness.Aggregate).
   An OK result whose payload is missing — a journal written before
   Profile records existed, or a socket run without PROFILES on — is
   recomputed through Job.execute_full: the run cache makes that a
   lookup and determinism makes the payload identical, so the merge is
   lossless either way. *)
let merge_profiles ?jobs ~entries ~results profiles =
  let arr = Array.of_list entries in
  let tbl = Hashtbl.create (max 16 (List.length profiles)) in
  List.iter (fun (id, p) -> Hashtbl.replace tbl id p) profiles;
  let payloads =
    List.filter_map
      (fun (id, line) ->
        match String.split_on_char ' ' line with
        | _ :: _ :: "OK" :: _ -> (
            match Hashtbl.find_opt tbl id with
            | Some p -> Some p
            | None when id >= 1 && id <= Array.length arr ->
                let _, j = arr.(id - 1) in
                Some (Profiles.Merge.render (snd (Job.execute_full j)))
            | None -> None)
        | _ -> None)
      results
  in
  let digests = List.map Harness.Digest.hex payloads in
  Harness.Aggregate.merge_cached ?jobs ~digests (fun () ->
      List.map Profiles.Merge.parse payloads)

(* Every failure a fleet reports must carry a known classification —
   the "no unclassified crashes" acceptance gate.  Bug-classified
   failures never surface as ERR: the quarantine absorbs them. *)
let unclassified results =
  let known = [ "fault"; "fuel"; "timeout"; "transient" ] in
  List.filter
    (fun (_, line) ->
      match String.split_on_char ' ' line with
      | _ :: _ :: "OK" :: _ | _ :: _ :: "QUARANTINED" :: _ -> false
      | _ :: _ :: "ERR" :: cls :: _ -> not (List.mem cls known)
      | _ -> true)
    results
