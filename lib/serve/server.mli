(** Unix-domain socket front-end for {!Daemon}, plus the fleet client.

    Line protocol (newline-terminated):
    {v
    client -> server                    server -> client
      HELLO <name>                       OK hello <name>
      SUBMIT <canonical job line>        OK accepted <id> | SHED | ERR <msg>
      STATS                              OK stats accepted=... shed=...
      PING                               OK pong
      QUIT
                                         RESULT <result-line>   (async push)
    v}

    One select loop owns every fd — the listen socket, the
    connections, and a self-pipe the worker domains poke after queueing
    a RESULT — so a flooding or half-dead connection can never wedge
    the daemon.  [SHED] is the admission-control rejection: explicit
    backpressure the client retries on, never an unbounded queue. *)

type t

val create : socket:string -> t
(** Bind and listen on the Unix-domain socket path (an existing stale
    socket file is replaced). *)

val on_result : t -> int -> string -> Job.t -> string -> unit
(** Pass to {!Daemon.start} as its [on_result]: routes each completion
    to the connection that submitted the job.  A completion that beats
    the route registration (instant quarantine answer, warm run cache)
    is buffered and delivered when the SUBMIT handler registers the
    route; only a completion whose connection is gone is dropped — the
    journal still has it. *)

val run : t -> Daemon.t -> stop:(unit -> bool) -> unit
(** The select loop; returns once [stop ()] is true (polled between
    iterations, so a signal handler setting a flag ends the loop within
    a quarter second), closing every connection and unlinking the
    socket.  The caller then stops the daemon gracefully. *)

val client_run :
  ?timeout:float ->
  socket:string ->
  (string * Job.t) list ->
  (int * string) list * int
(** Fleet client: submit every [(client, job)] over one connection,
    retrying [SHED] with a short backoff, then wait for all RESULT
    lines.  Returns (results sorted by id, shed responses observed).
    Raises [Failure] instead of hanging when the daemon answers ERR
    while results are outstanding, the connection drops, or nothing
    arrives within [timeout] seconds (default 120). *)
