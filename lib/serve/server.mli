(** Unix-domain socket front-end for {!Daemon}, plus the fleet client.

    Line protocol (newline-terminated):
    {v
    client -> server                    server -> client
      HELLO <name>                       OK hello <name>
      SUBMIT <canonical job line>        OK accepted <id> | SHED | ERR <msg>
      STATS                              OK stats accepted=... shed=...
      PING                               OK pong
      QUIT
                                         RESULT <result-line>   (async push)
    v}

    One select loop owns every fd — the listen socket, the
    connections, and a self-pipe the worker domains poke after queueing
    a RESULT — so a flooding or half-dead connection can never wedge
    the daemon.  [SHED] is the admission-control rejection: explicit
    backpressure the client retries on, never an unbounded queue. *)

type t

val create : socket:string -> t
(** Bind and listen on the Unix-domain socket path (an existing stale
    socket file is replaced). *)

val on_result : t -> int -> string -> Job.t -> string -> unit
(** Pass to {!Daemon.start} as its [on_result]: routes each completion
    to the connection that submitted the job (dropped silently if that
    connection is gone — the journal still has it). *)

val run : t -> Daemon.t -> stop:(unit -> bool) -> unit
(** The select loop; returns once [stop ()] is true (polled between
    iterations, so a signal handler setting a flag ends the loop within
    a quarter second), closing every connection and unlinking the
    socket.  The caller then stops the daemon gracefully. *)

val client_run :
  socket:string -> (string * Job.t) list -> (int * string) list * int
(** Fleet client: submit every [(client, job)] over one connection,
    retrying [SHED] with a short backoff, then wait for all RESULT
    lines.  Returns (results sorted by id, shed responses observed). *)
