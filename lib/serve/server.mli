(** Unix-domain socket front-end for {!Daemon}, plus the fleet client.

    Line control plane (newline-terminated) with length-prefixed payload
    frames for profile data:
    {v
    client -> server                    server -> client
      HELLO <name>                       OK hello <name>
      SUBMIT <canonical job line>        OK accepted <id> | SHED | ERR <msg>
      SUBMIT* <k>                        OK batch <k> <tok ...>
        (then k lines, each                (one token per line, in order:
         "<client> <job line>")             accepted id, shed, closed, err)
      PROFILES on|off                    OK profiles on|off
      STATS                              OK stats accepted=... shed=...
      PING                               OK pong
      QUIT
                                         RESULT <result-line>   (async push)
                                         RESULT* <k>            (then k
                                           result lines: completions queued
                                           together leave in one write)
                                         PROFILE <id> <len>     (then len
                                           payload bytes + newline: the
                                           job's canonical profile
                                           rendering, when PROFILES on)
    v}

    One select loop owns every fd — the listen socket, the
    connections, and a self-pipe the worker domains poke after queueing
    a RESULT — so a flooding or half-dead connection can never wedge
    the daemon.  [SHED] is the admission-control rejection: explicit
    backpressure the client retries on, never an unbounded queue.

    [SUBMIT*] is the batched data plane: many submissions per syscall
    and one ack line per batch instead of one round-trip per job.  Each
    batch line names its own client, so round-robin fairness
    attribution needs no HELLO interleaving.  On the way back, runs of
    consecutive completions are corked into [RESULT*] batches at flush
    time; a singleton stays a plain [RESULT], so pre-batch clients keep
    working unchanged. *)

type t

val max_batch : int
(** Upper bound on [SUBMIT*] batch size (larger requests get [ERR]). *)

val create : socket:string -> t
(** Bind and listen on the Unix-domain socket path (an existing stale
    socket file is replaced). *)

val on_result : t -> int -> string -> Job.t -> string -> string option -> unit
(** Pass to {!Daemon.start} as its [on_result]: routes each completion
    (result line plus optional profile payload) to the connection that
    submitted the job.  A completion that beats the route registration
    (instant quarantine answer, warm run cache) is buffered and
    delivered when the submit handler registers the route; only a
    completion whose connection is gone is dropped — the journal still
    has it. *)

val run : t -> Daemon.t -> stop:(unit -> bool) -> unit
(** The select loop; returns once [stop ()] is true (polled between
    iterations, so a signal handler setting a flag ends the loop within
    a quarter second), closing every connection and unlinking the
    socket.  The caller then stops the daemon gracefully. *)

val client_run :
  ?timeout:float ->
  ?batch:int ->
  ?profiles:bool ->
  socket:string ->
  (string * Job.t) list ->
  (int * string) list * int * (int * string) list
(** Fleet client: pipeline every [(client, job)] over one connection as
    [SUBMIT*] frames of [batch] lines (default 32, clamped to
    [1..max_batch]) — all batches are written before any ack is
    awaited, so submission costs one write per batch rather than one
    round-trip per job.  Shed lines are resubmitted in fresh batches
    after a short backoff.  With [profiles] (default false), the daemon
    streams each completed job's canonical {!Profiles.Merge} rendering
    as a PROFILE frame.  Returns
    [(results sorted by id, shed responses observed,
      profiles sorted by id)].
    Raises [Failure] instead of hanging when the daemon answers ERR, a
    batch line is rejected, the connection drops, or nothing arrives
    within [timeout] seconds (default 120). *)
