(** Poison-job quarantine: bounded patience for bug-classified jobs.

    A job whose failure classifies as ["bug"] ({!Harness.Robust.classify})
    gets [threshold] attempts in total, counted by job {!Job.digest}
    across submissions; at the threshold the digest and its error
    report are quarantined and the job is {e never} run again — the
    daemon answers resubmissions from the quarantine immediately.
    Fault/fuel/timeout failures never feed the quarantine (they are
    environmental, not poison), and the quarantine list persists across
    daemon restarts via {!Journal.record.Quarantined} records. *)

type t

val create : ?threshold:int -> unit -> t
(** [threshold] defaults to 3; [< 1] raises [Invalid_argument]. *)

val threshold : t -> int

val find : t -> digest:string -> string option
(** The quarantine report for [digest], if quarantined. *)

val record_failure :
  t -> digest:string -> report:string -> [ `Retry of int | `Quarantined ]
(** Record one bug-classified failure.  [`Retry n] while attempts
    remain ([n] failures so far); [`Quarantined] at (or after) the
    threshold. *)

val restore : t -> (string * string) list -> unit
(** Reload persisted entries on journal recovery. *)

val entries : t -> (string * string) list
(** [(digest, report)] sorted by digest. *)

val size : t -> int
