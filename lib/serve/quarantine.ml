(* Poison-job quarantine.

   A job whose failures classify as "bug" (Harness.Robust.classify:
   not an injected fault, not fuel, not the watchdog, not transient)
   is given [threshold] attempts in total; at the threshold its digest
   and error report are quarantined and the job is never run again —
   resubmissions are answered from the quarantine immediately.  This
   is what keeps one poison job from wedging a worker forever: the
   daemon spends a bounded number of attempts on it, then serves its
   report from memory. *)

type t = {
  mu : Mutex.t;
  threshold : int;
  counts : (string, int) Hashtbl.t; (* bug failures per job digest *)
  entries : (string, string) Hashtbl.t; (* digest -> report, once quarantined *)
}

let create ?(threshold = 3) () =
  if threshold < 1 then invalid_arg "Quarantine.create: threshold < 1";
  {
    mu = Mutex.create ();
    threshold;
    counts = Hashtbl.create 16;
    entries = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let threshold t = t.threshold

let find t ~digest = locked t (fun () -> Hashtbl.find_opt t.entries digest)

(* One bug-classified failure of [digest].  Returns [`Retry n] while
   attempts remain (n = failures so far) or [`Quarantined] exactly once,
   at the crossing — the caller journals and reports it then. *)
let record_failure t ~digest ~report =
  locked t (fun () ->
      if Hashtbl.mem t.entries digest then `Quarantined
      else begin
        let n = (try Hashtbl.find t.counts digest with Not_found -> 0) + 1 in
        Hashtbl.replace t.counts digest n;
        if n >= t.threshold then begin
          Hashtbl.replace t.entries digest report;
          `Quarantined
        end
        else `Retry n
      end)

(* Reload a persisted quarantine (journal recovery): entries are
   authoritative, counts start over — a re-run job gets fresh attempts,
   which is deterministic because poison jobs fail deterministically. *)
let restore t entries =
  locked t (fun () ->
      List.iter
        (fun (digest, report) -> Hashtbl.replace t.entries digest report)
        entries)

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun d r acc -> (d, r) :: acc) t.entries []
      |> List.sort compare)

let size t = locked t (fun () -> Hashtbl.length t.entries)
