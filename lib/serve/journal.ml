(* Append-only job journal: the daemon's crash-recovery log, following
   the checkpoint discipline of Harness.Robust (PR 3): marshaled
   records appended and flushed one at a time, so a kill can at worst
   truncate the final record; the loader stops at the first
   undecodable tail and every fully written record survives.  A
   journal written under a different meta fingerprint (different job
   file, engine, recording, cache setting) is refused loudly rather
   than resumed into inconsistent results. *)

type record =
  | Meta of string
  | Submitted of { id : int; client : string; line : string }
  | Completed of { id : int; result : string }
  | Quarantined of { digest : string; report : string }
  | Profile of { id : int; payload : string }
      (* appended after this variant's original constructors so the
         Marshal tags of old journals still decode: a journal written
         before profile capture replays fine, its completed jobs just
         carry no payload *)

type recovered = {
  pending : (int * string * string) list; (* id, client, canonical job line *)
  completed : (int * string) list; (* id, canonical result line *)
  quarantined : (string * string) list; (* job digest, report *)
  profiles : (int * string) list; (* id, canonical profile rendering *)
  next_id : int;
}

type t = { mu : Mutex.t; oc : out_channel; path : string }

(* Returns the records and the byte offset of the clean prefix: the
   caller truncates the torn tail away before appending, otherwise new
   records would land after undecodable garbage and be unreachable on
   the next load. *)
let load path =
  let records = ref [] in
  let clean = ref 0 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    (try
       while true do
         records := (Marshal.from_channel ic : record) :: !records;
         clean := pos_in ic
       done
     with End_of_file | Failure _ -> ());
    close_in_noerr ic
  end;
  (List.rev !records, !clean)

let recover records =
  let submitted = Hashtbl.create 64 in
  let completed = Hashtbl.create 64 in
  let profiles = Hashtbl.create 64 in
  let quarantined = ref [] in
  let next_id = ref 1 in
  List.iter
    (fun r ->
      match r with
      | Meta _ -> ()
      | Submitted { id; client; line } ->
          Hashtbl.replace submitted id (client, line);
          if id >= !next_id then next_id := id + 1
      | Completed { id; result } ->
          Hashtbl.replace completed id result;
          if id >= !next_id then next_id := id + 1
      | Profile { id; payload } -> Hashtbl.replace profiles id payload
      | Quarantined { digest; report } ->
          if not (List.mem_assoc digest !quarantined) then
            quarantined := (digest, report) :: !quarantined)
    records;
  let pending =
    Hashtbl.fold
      (fun id (client, line) acc ->
        if Hashtbl.mem completed id then acc else (id, client, line) :: acc)
      submitted []
    |> List.sort compare
  in
  let completed =
    Hashtbl.fold (fun id result acc -> (id, result) :: acc) completed []
    |> List.sort compare
  in
  (* only payloads whose Completed record made it to disk: a Profile
     followed by a torn Completed means the job re-runs and appends a
     fresh pair (execution is deterministic, so the bytes agree) *)
  let profiles =
    List.filter_map
      (fun (id, _) ->
        match Hashtbl.find_opt profiles id with
        | Some p -> Some (id, p)
        | None -> None)
      completed
  in
  {
    pending;
    completed;
    quarantined = List.rev !quarantined;
    profiles;
    next_id = !next_id;
  }

let open_ ?(meta = "") path =
  let records, clean = load path in
  (match records with
  | Meta prev :: _ ->
      if not (String.equal prev meta) then
        failwith
          (Printf.sprintf
             "job journal %s was written by a different daemon configuration \
              (%S, this daemon is %S); delete it or point --journal elsewhere"
             path prev meta)
  | _ :: _ ->
      failwith
        (Printf.sprintf "job journal %s does not start with a meta record" path)
  | [] ->
      (* an empty (or absent) file is a fresh journal, but a non-empty
         file yielding zero decodable records is some other file
         entirely — refuse rather than truncate it to nothing *)
      if Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 then
        failwith
          (Printf.sprintf
             "job journal %s is non-empty but contains no journal records; \
              refusing to truncate it — delete it or point --journal \
              elsewhere"
             path));
  (* drop the torn tail a kill may have left, so appends continue the
     clean record stream *)
  if Sys.file_exists path && (Unix.stat path).Unix.st_size > clean then
    Unix.truncate path clean;
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  let t = { mu = Mutex.create (); oc; path } in
  if records = [] then begin
    Marshal.to_channel oc (Meta meta) [];
    flush oc
  end;
  (t, recover records)

let append t r =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      Marshal.to_channel t.oc r [];
      flush t.oc)

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () -> try close_out t.oc with Sys_error _ -> ())

let path t = t.path
