(* A profiling job: the pure-data description of one measurement a
   client asks the daemon to perform, with a canonical single-line
   rendering that is simultaneously the wire format (SUBMIT lines), the
   job-file format, the journal format and the input to the job digest.
   Canonical means: every field present, fixed order, fixed spellings —
   [parse (render j) = j] and two jobs render equal iff they would
   perform the identical measurement. *)

type trigger =
  | Counter of { interval : int; jitter : int }
  | Counter_per_thread of { interval : int }
  | Timer_bit
  | Always
  | Never

type t = {
  bench : string;
  scale : int option;
  variant : string;
  specs : string list;
  trigger : trigger;
  engine : [ `Ref | `Fast ];
  recording : [ `Slots | `Legacy ];
  poison : bool;
      (* a deliberately broken job (raises a bug-classified failure
         instead of running): the fault-injection hook chaos fleets and
         the quarantine tests use to exercise the poison-job path *)
}

(* The CLI-name tables for instrumentations and variants.  These are
   the single source of truth — bin/isf.ml parses its --instr/--variant
   arguments against the same lists, so the daemon accepts exactly the
   vocabulary of the one-shot verbs. *)
let instr_kinds =
  [
    ("call-edge", Core.Spec.call_edge);
    ("field-access", Core.Spec.field_access);
    ("edge", Core.Spec.edge_profile);
    ("value", Core.Spec.value_profile);
    ("path", Profiles.Specs.path_profile);
    ("receiver", Profiles.Specs.receiver_profile);
    ("cct", Profiles.Specs.cct_profile);
  ]

let variants =
  [
    ("full-dup", Core.Transform.full_dup);
    ("no-dup", Core.Transform.no_dup);
    ("partial-dup", Core.Transform.partial_dup);
    ("yp-opt", Core.Transform.full_dup_yieldpoint_opt);
    ("exhaustive", Core.Transform.exhaustive);
  ]

let spec_of_names names =
  match names with
  | [] -> Core.Spec.combine [ Core.Spec.call_edge; Core.Spec.field_access ]
  | l -> Core.Spec.combine (List.map (fun n -> List.assoc n instr_kinds) l)

let transform_of_variant spec v = (List.assoc v variants) spec

(* ------------------------------------------------------------------ *)
(* Canonical line                                                      *)
(* ------------------------------------------------------------------ *)

let trigger_str = function
  | Counter { interval; jitter } -> Printf.sprintf "counter:%d:%d" interval jitter
  | Counter_per_thread { interval } -> Printf.sprintf "cpt:%d" interval
  | Timer_bit -> "timer-bit"
  | Always -> "always"
  | Never -> "never"

let engine_str = function `Ref -> "ref" | `Fast -> "fast"
let recording_str = function `Slots -> "slots" | `Legacy -> "legacy"

let render j =
  Printf.sprintf
    "bench=%s scale=%s variant=%s specs=%s trigger=%s engine=%s recording=%s \
     poison=%s"
    j.bench
    (match j.scale with Some s -> string_of_int s | None -> "default")
    j.variant
    (String.concat "," j.specs)
    (trigger_str j.trigger) (engine_str j.engine) (recording_str j.recording)
    (if j.poison then "yes" else "no")

let digest j = Harness.Digest.hex (render j)

let bad line fmt =
  Printf.ksprintf
    (fun m -> failwith (Printf.sprintf "bad job %S: %s" line m))
    fmt

let parse_trigger line s =
  match String.split_on_char ':' s with
  | [ "counter"; i; j ] -> (
      match (int_of_string_opt i, int_of_string_opt j) with
      | Some interval, Some jitter when interval >= 1 && jitter >= 0 ->
          Counter { interval; jitter }
      | _ -> bad line "bad counter trigger %s" s)
  | [ "cpt"; i ] -> (
      match int_of_string_opt i with
      | Some interval when interval >= 1 -> Counter_per_thread { interval }
      | _ -> bad line "bad per-thread trigger %s" s)
  | [ "timer-bit" ] -> Timer_bit
  | [ "always" ] -> Always
  | [ "never" ] -> Never
  | _ -> bad line "unknown trigger %s" s

let parse line =
  let fields =
    List.filter_map
      (fun tok ->
        if String.equal tok "" then None
        else
          match String.index_opt tok '=' with
          | None -> bad line "token %S is not key=value" tok
          | Some i ->
              Some
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) ))
      (String.split_on_char ' ' (String.trim line))
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> bad line "missing field %s" k
  in
  List.iter
    (fun (k, _) ->
      if
        not
          (List.mem k
             [
               "bench"; "scale"; "variant"; "specs"; "trigger"; "engine";
               "recording"; "poison";
             ])
      then bad line "unknown field %s" k)
    fields;
  let bench = get "bench" in
  (* an unknown benchmark parses fine and fails at execution time,
     classified "bug" — that is exactly what makes it a poison job *)
  let scale =
    match get "scale" with
    | "default" -> None
    | s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some n
        | _ -> bad line "bad scale %s" s)
  in
  let variant = get "variant" in
  if not (List.mem_assoc variant variants) then
    bad line "unknown variant %s" variant;
  let specs =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (get "specs"))
  in
  if specs = [] then bad line "empty specs";
  List.iter
    (fun s ->
      if not (List.mem_assoc s instr_kinds) then
        bad line "unknown instrumentation %s" s)
    specs;
  let trigger = parse_trigger line (get "trigger") in
  let engine =
    match get "engine" with
    | "ref" -> `Ref
    | "fast" -> `Fast
    | s -> bad line "unknown engine %s" s
  in
  let recording =
    match get "recording" with
    | "slots" -> `Slots
    | "legacy" -> `Legacy
    | s -> bad line "unknown recording %s" s
  in
  let poison =
    match get "poison" with
    | "yes" -> true
    | "no" -> false
    | s -> bad line "bad poison flag %s" s
  in
  { bench; scale; variant; specs; trigger; engine; recording; poison }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  cycles : int;
  instructions : int;
  checks : int;
  samples : int;
  output_md5 : string;
  profile_md5 : string;
}

let sampler_trigger = function
  | Counter { interval; jitter } -> Core.Sampler.Counter { interval; jitter }
  | Counter_per_thread { interval } ->
      Core.Sampler.Counter_per_thread { interval }
  | Timer_bit -> Core.Sampler.Timer_bit
  | Always -> Core.Sampler.Always
  | Never -> Core.Sampler.Never

(* Profile digest over the collector's CSV rendering: deterministic
   (PR 4 pinned decode order), engine- and recording-invariant, and
   cheap to compare across fleets. *)
let profile_md5 collector =
  Harness.Digest.hex
    (String.concat "\000"
       (List.map
          (fun (kind, text) -> kind ^ "\001" ^ text)
          (Profiles.Report.to_csv collector)))

(* [execute_full] also returns the canonical aggregate form of the
   job's profile (Profiles.Merge) — the payload of the daemon's PROFILE
   frames and the unit the fleet merge combines.  The cached
   Measure.metrics carry the collector, so a warm run-cache hit still
   yields the payload without re-running anything. *)
let execute_full j =
  if j.poison then
    failwith (Printf.sprintf "injected poison job (bench=%s)" j.bench);
  let bench =
    match Workloads.Suite.find j.bench with
    | b -> b
    | exception Not_found ->
        failwith (Printf.sprintf "unknown benchmark %s" j.bench)
  in
  let build = Harness.Measure.prepare ?scale:j.scale bench in
  let spec = spec_of_names j.specs in
  let transform = transform_of_variant spec j.variant in
  let m =
    Harness.Measure.run_transformed ~engine:j.engine ~recording:j.recording
      ~trigger:(sampler_trigger j.trigger) ~transform build
  in
  ( {
      cycles = m.Harness.Measure.cycles;
      instructions = m.Harness.Measure.instructions;
      checks = m.Harness.Measure.checks;
      samples = m.Harness.Measure.samples;
      output_md5 = Harness.Digest.hex m.Harness.Measure.output;
      profile_md5 = profile_md5 m.Harness.Measure.collector;
    },
    Profiles.Merge.of_collector m.Harness.Measure.collector )

let execute j = fst (execute_full j)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type status =
  | Done of summary
  | Failed of { classification : string; message : string }
  | Quarantined of { message : string }

let summary_str s =
  Printf.sprintf "cycles=%d instr=%d checks=%d samples=%d output=%s profile=%s"
    s.cycles s.instructions s.checks s.samples s.output_md5 s.profile_md5

(* One canonical result line per job.  Deliberately free of attempt
   counts, timestamps and worker ids: a fleet's sorted result lines must
   be byte-identical however the jobs were scheduled, retried or
   resumed after a daemon crash. *)
let result_line ~id j status =
  Printf.sprintf "%06d %s %s" id (digest j)
    (match status with
    | Done s -> "OK " ^ summary_str s
    | Failed { classification; message } ->
        Printf.sprintf "ERR %s %s" classification (String.escaped message)
    | Quarantined { message } ->
        Printf.sprintf "QUARANTINED %s" (String.escaped message))
