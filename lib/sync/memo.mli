(** Domain-safe, per-key memoization.

    [get t k f] returns the cached value for [k], computing it with [f]
    exactly once even when several domains ask for the same key
    concurrently: the first caller computes while later callers block on
    a condition variable until the value is published.  Distinct keys
    compute in parallel — the table lock is held only for state
    transitions, never during [f].

    A computation that raises publishes nothing: the exception
    propagates to the computing caller, waiters are woken, and the next
    caller retries [f].  Values are never recomputed after a successful
    publish, so callers may treat the result as immutable shared data. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table capacity (default 16). *)

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Peek without computing; [None] also while a computation is in
    flight. *)

val clear : ('k, 'v) t -> unit
(** Drop every published value.  In-flight computations still publish
    (into the cleared table) when they finish. *)
