type 'v state = Computing | Done of 'v

type ('k, 'v) t = {
  mu : Mutex.t;
  published : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
}

let create ?(size = 16) () =
  { mu = Mutex.create (); published = Condition.create (); tbl = Hashtbl.create size }

let get t k f =
  Mutex.lock t.mu;
  let rec await () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) ->
        Mutex.unlock t.mu;
        v
    | Some Computing ->
        Condition.wait t.published t.mu;
        await ()
    | None -> (
        Hashtbl.replace t.tbl k Computing;
        Mutex.unlock t.mu;
        match f () with
        | v ->
            Mutex.lock t.mu;
            Hashtbl.replace t.tbl k (Done v);
            Condition.broadcast t.published;
            Mutex.unlock t.mu;
            v
        | exception e ->
            (* un-publish so a later caller can retry; wake waiters so they
               race for the Computing slot instead of sleeping forever *)
            Mutex.lock t.mu;
            (match Hashtbl.find_opt t.tbl k with
            | Some Computing -> Hashtbl.remove t.tbl k
            | _ -> ());
            Condition.broadcast t.published;
            Mutex.unlock t.mu;
            raise e)
  in
  await ()

let find_opt t k =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl k with Some (Done v) -> Some v | _ -> None
  in
  Mutex.unlock t.mu;
  r

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  Condition.broadcast t.published;
  Mutex.unlock t.mu
