(** Value profile: per-site top-value tables in the style of Calder,
    Feller and Eustace's TNV tables, maintained with the Misra–Gries
    heavy-hitters update so frequent values survive streams of cold
    ones. *)

type t

val create : unit -> t
val record : t -> meth:string -> site:int -> value:int -> unit

val set_site :
  t -> meth:string -> site:int -> entries:(int * int) list -> total:int -> unit
(** Decode path: install a site's final TNV table wholesale, [entries]
    in the order [record] would have left them (most recently bumped
    first).  Sites must be installed in first-event order. *)

val top_value : t -> meth:string -> site:int -> (int * int) option
(** Most frequent value and its (approximate) count. *)

val invariance : t -> meth:string -> site:int -> float option
(** Fraction of the site's observations attributed to its top value —
    the "invariance" that value-specialization decisions key on. *)

val export_sites : t -> ((string * int) * ((int * int) list * int)) list
(** Aggregation path: every site's (entries, total), entries in table
    order (most recently bumped first), sites in unspecified order —
    {!Merge} canonicalizes both. *)

val sites : t -> (string * int) list
val n_sites : t -> int
val to_keyed : t -> (string * int) list
