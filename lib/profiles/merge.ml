(* Cross-shard profile aggregation (ROADMAP item 3).

   A fleet run produces one decoded profile per job; this module folds
   them into a single aggregate of all seven kinds.  The aggregate is a
   *canonical* pure-data form: every table is a key-sorted association
   list, every per-site histogram is ordered (count desc, then key asc),
   and the CCT's children are key-sorted — so two aggregates with the
   same content render to the same bytes no matter how many shards they
   passed through or in which order the shards were merged.

   Merge semantics, per kind:

   - call-edge / CFG-edge / field / Ball-Larus path tables are exact
     counters, merged by union and summation — associative and
     commutative by construction.
   - value profiles are Misra-Gries TNV summaries.  Summaries are
     merged by union-sum WITHOUT re-truncating to the table capacity:
     a truncating merge is order-dependent (which entries survive
     depends on which shard arrives first), while the union-sum is
     exact on the summaries and keeps the MG guarantee additively (the
     undercount of a surviving value is at most the sum of the
     per-shard MG errors).  Merged tables may therefore hold more than
     [Value_profile.table_capacity] entries; consumers already rank by
     count, so the extra cold entries are harmless.
   - receiver histograms are exact per-site counters (union-sum).
   - CCTs merge structurally: counts of identical contexts add, walk
     totals add.
   - path profiles aggregate the completed-path table only; regions
     still open at end of run are per-activation transients and are
     dropped at the aggregation boundary.

   [to_collector] rebuilds a Collector.t through the order-preserving
   decode entry points from the flat-slot work (PR 4), inserting in
   canonical order — so every report rendered from a merged aggregate
   is deterministic regardless of shard count, merge order, and worker
   count. *)

type cct_node = { count : int; children : ((string * int) * cct_node) list }

type t = {
  call_edges : ((string * int * string) * int) list; (* caller, site, callee *)
  fields : (string * int) list;
  reads : int;
  writes : int;
  edges : ((string * int * int) * int) list; (* meth, src, dst *)
  values : ((string * int) * ((int * int) list * int)) list;
      (* (meth, site) -> (entries (count desc, value asc), total) *)
  paths : ((string * int * int) * int) list; (* meth, start, path id *)
  receivers : ((string * int) * ((string * int) list * int)) list;
      (* (meth, site) -> (classes (count desc, class asc), total) *)
  walks : int;
  cct : cct_node;
}

let empty_node = { count = 0; children = [] }

let empty =
  {
    call_edges = [];
    fields = [];
    reads = 0;
    writes = 0;
    edges = [];
    values = [];
    paths = [];
    receivers = [];
    walks = 0;
    cct = empty_node;
  }

let is_empty t = t = empty

(* ---- canonical orderings ------------------------------------------- *)

let sort_by_key l = List.sort (fun (a, _) (b, _) -> compare a b) l

(* histogram order: hottest first, key breaks ties — total, not partial,
   so the canonical form is unique *)
let sort_hist l =
  List.sort (fun (ka, ca) (kb, cb) -> compare (cb, ka) (ca, kb)) l

let rec canon_node ~count ~children n =
  {
    count = count n;
    children =
      List.map (fun (key, c) -> (key, canon_node ~count ~children c)) (children n)
      |> sort_by_key;
  }

(* ---- import / export ----------------------------------------------- *)

let of_collector (c : Collector.t) =
  let call_edges =
    Call_edge.to_alist c.Collector.call_edges
    |> List.map (fun (e, n) ->
           ((e.Call_edge.caller, e.Call_edge.site, e.Call_edge.callee), n))
    |> sort_by_key
  in
  let fields = Field_access.to_alist c.Collector.fields |> sort_by_key in
  let values =
    Value_profile.export_sites c.Collector.values
    |> List.map (fun (site, (entries, total)) ->
           (site, (sort_hist entries, total)))
    |> sort_by_key
  in
  let receivers =
    Receiver_profile.export_sites c.Collector.receivers
    |> List.map (fun (site, (classes, total)) ->
           (site, (sort_hist classes, total)))
    |> sort_by_key
  in
  let walks, root = Cct.export c.Collector.cct in
  {
    call_edges;
    fields;
    reads = Field_access.reads c.Collector.fields;
    writes = Field_access.writes c.Collector.fields;
    edges = Edge_profile.to_alist c.Collector.edges |> sort_by_key;
    values;
    paths = Path_profile.to_alist c.Collector.paths |> sort_by_key;
    receivers;
    walks;
    cct =
      canon_node
        ~count:(fun v -> v.Cct.vcount)
        ~children:(fun v -> v.Cct.vchildren)
        root;
  }

let to_collector t =
  let c = Collector.create () in
  List.iter
    (fun ((caller, site, callee), n) ->
      Call_edge.bump c.Collector.call_edges ~caller ~site ~callee ~n)
    t.call_edges;
  List.iter
    (fun (field, n) ->
      Field_access.bump c.Collector.fields ~field ~is_write:false ~n)
    t.fields;
  Field_access.set_totals c.Collector.fields ~reads:t.reads ~writes:t.writes;
  List.iter
    (fun ((meth, src, dst), n) -> Edge_profile.bump c.Collector.edges ~meth ~src ~dst ~n)
    t.edges;
  List.iter
    (fun ((meth, site), (entries, total)) ->
      Value_profile.set_site c.Collector.values ~meth ~site ~entries ~total)
    t.values;
  List.iter
    (fun ((meth, start, path), n) ->
      Path_profile.bump c.Collector.paths ~meth ~start ~path ~n)
    t.paths;
  List.iter
    (fun ((meth, site), (classes, total)) ->
      Receiver_profile.set_site c.Collector.receivers ~meth ~site ~classes ~total)
    t.receivers;
  if t.walks > 0 || t.cct.children <> [] then
    Cct.import c.Collector.cct ~walks:t.walks ~root:t.cct
      ~children:(fun n -> n.children)
      ~count:(fun n -> n.count);
  c

(* ---- merge ---------------------------------------------------------- *)

(* merge-join of two key-sorted association lists, summing counts *)
let rec merge_counts a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, ca) :: ta, (kb, cb) :: tb ->
      let o = compare ka kb in
      if o < 0 then (ka, ca) :: merge_counts ta b
      else if o > 0 then (kb, cb) :: merge_counts a tb
      else (ka, ca + cb) :: merge_counts ta tb

(* merge-join of per-site histograms: entries union-sum (re-canonicalized
   to the total order), totals add *)
let rec merge_sites a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, (ea, ta)) :: resta, (kb, (eb, tb)) :: restb ->
      let o = compare ka kb in
      if o < 0 then (ka, (ea, ta)) :: merge_sites resta b
      else if o > 0 then (kb, (eb, tb)) :: merge_sites a restb
      else
        let entries =
          List.fold_left
            (fun acc (k, n) ->
              match List.assoc_opt k acc with
              | Some m -> (k, m + n) :: List.remove_assoc k acc
              | None -> (k, n) :: acc)
            ea eb
          |> sort_hist
        in
        (ka, (entries, ta + tb)) :: merge_sites resta restb

let rec merge_nodes a b =
  {
    count = a.count + b.count;
    children =
      (let rec go x y =
         match (x, y) with
         | [], l | l, [] -> l
         | (ka, ca) :: tx, (kb, cb) :: ty ->
             let o = compare ka kb in
             if o < 0 then (ka, ca) :: go tx y
             else if o > 0 then (kb, cb) :: go x ty
             else (ka, merge_nodes ca cb) :: go tx ty
       in
       go a.children b.children);
  }

let merge a b =
  {
    call_edges = merge_counts a.call_edges b.call_edges;
    fields = merge_counts a.fields b.fields;
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    edges = merge_counts a.edges b.edges;
    values = merge_sites a.values b.values;
    paths = merge_counts a.paths b.paths;
    receivers = merge_sites a.receivers b.receivers;
    walks = a.walks + b.walks;
    cct = merge_nodes a.cct b.cct;
  }

let merge_list = function [] -> empty | x :: rest -> List.fold_left merge x rest

(* ---- canonical serialization ---------------------------------------- *)

(* One deterministic text rendering per aggregate: section headers with
   entry counts, one record per line, strings in OCaml literal syntax
   (%S) so method/field/class names survive any characters.  This is
   both the on-disk format of [isf merge] inputs and the wire payload
   of the daemon's PROFILE frames. *)

let format_magic = "isf-profile 1"

let render t =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "%s\n" format_magic;
  p "call_edge %d\n" (List.length t.call_edges);
  List.iter
    (fun ((caller, site, callee), n) -> p "e %S %d %S %d\n" caller site callee n)
    t.call_edges;
  p "field %d reads %d writes %d\n" (List.length t.fields) t.reads t.writes;
  List.iter (fun (f, n) -> p "f %S %d\n" f n) t.fields;
  p "cfg_edge %d\n" (List.length t.edges);
  List.iter (fun ((m, s, d), n) -> p "g %S %d %d %d\n" m s d n) t.edges;
  p "value %d\n" (List.length t.values);
  List.iter
    (fun ((meth, site), (entries, total)) ->
      p "v %S %d %d %d" meth site total (List.length entries);
      List.iter (fun (v, n) -> p " %d %d" v n) entries;
      p "\n")
    t.values;
  p "path %d\n" (List.length t.paths);
  List.iter (fun ((m, s, pid), n) -> p "p %S %d %d %d\n" m s pid n) t.paths;
  p "receiver %d\n" (List.length t.receivers);
  List.iter
    (fun ((meth, site), (classes, total)) ->
      p "r %S %d %d %d" meth site total (List.length classes);
      List.iter (fun (cls, n) -> p " %S %d" cls n) classes;
      p "\n")
    t.receivers;
  (* CCT in pre-order, children already canonical; depth reconstructs
     the tree shape on parse *)
  let lines = ref 0 in
  let cbuf = Buffer.create 1024 in
  let rec walk depth node =
    List.iter
      (fun ((meth, site), child) ->
        incr lines;
        Buffer.add_string cbuf
          (Printf.sprintf "c %d %S %d %d\n" depth meth site child.count);
        walk (depth + 1) child)
      node.children
  in
  walk 1 t.cct;
  p "cct %d %d %d\n" t.walks t.cct.count !lines;
  Buffer.add_buffer buf cbuf;
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (render t))

exception Parse_error of string

let parse s =
  let lines = String.split_on_char '\n' s in
  let lines = ref lines in
  let next () =
    match !lines with
    | [] -> raise (Parse_error "truncated profile")
    | l :: rest ->
        lines := rest;
        l
  in
  let fail line = raise (Parse_error ("bad profile line: " ^ line)) in
  let scan line fmt k = try Scanf.sscanf line fmt k with _ -> fail line in
  let header line name =
    scan line "%s %d" (fun tag n -> if tag <> name then fail line else n)
  in
  let rep n f = List.init n (fun _ -> f (next ())) in
  (match next () with
  | l when String.trim l = format_magic -> ()
  | l -> raise (Parse_error ("not an isf profile: " ^ l)));
  let n = header (next ()) "call_edge" in
  let call_edges =
    rep n (fun l ->
        scan l "e %S %d %S %d" (fun caller site callee c ->
            ((caller, site, callee), c)))
  in
  let fields_n, reads, writes =
    let l = next () in
    scan l "field %d reads %d writes %d" (fun a b c -> (a, b, c))
  in
  let fields = rep fields_n (fun l -> scan l "f %S %d" (fun f c -> (f, c))) in
  let n = header (next ()) "cfg_edge" in
  let edges =
    rep n (fun l -> scan l "g %S %d %d %d" (fun m s d c -> ((m, s, d), c)))
  in
  let scan_pairs k sc =
    (* [k] trailing pairs on the line, read via a sub-scanner *)
    List.init k (fun _ -> sc ())
  in
  let n = header (next ()) "value" in
  let values =
    rep n (fun l ->
        scan l "v %S %d %d %d %[^\n]" (fun meth site total k rest ->
            let sb = Scanf.Scanning.from_string rest in
            let entries =
              scan_pairs k (fun () ->
                  try Scanf.bscanf sb " %d %d" (fun v c -> (v, c))
                  with _ -> fail l)
            in
            ((meth, site), (entries, total))))
  in
  let n = header (next ()) "path" in
  let paths =
    rep n (fun l -> scan l "p %S %d %d %d" (fun m s pid c -> ((m, s, pid), c)))
  in
  let n = header (next ()) "receiver" in
  let receivers =
    rep n (fun l ->
        scan l "r %S %d %d %d %[^\n]" (fun meth site total k rest ->
            let sb = Scanf.Scanning.from_string rest in
            let classes =
              scan_pairs k (fun () ->
                  try Scanf.bscanf sb " %S %d" (fun cls c -> (cls, c))
                  with _ -> fail l)
            in
            ((meth, site), (classes, total))))
  in
  let walks, root_count, cct_lines =
    let l = next () in
    scan l "cct %d %d %d" (fun w rc n -> (w, rc, n))
  in
  let rows =
    rep cct_lines (fun l ->
        scan l "c %d %S %d %d" (fun depth meth site count ->
            (depth, (meth, site), count)))
  in
  (* rebuild the tree from the depth-annotated pre-order listing *)
  let rec build depth rows =
    match rows with
    | (d, key, count) :: rest when d = depth ->
        let children, rest = build (depth + 1) rest in
        let siblings, rest = build depth rest in
        (((key, { count; children }) : (string * int) * cct_node) :: siblings, rest)
    | _ -> ([], rows)
  in
  let children, leftover = build 1 rows in
  if leftover <> [] then fail "cct structure";
  {
    call_edges;
    fields;
    reads;
    writes;
    edges;
    values;
    paths;
    receivers;
    walks;
    cct = { count = root_count; children };
  }
