(* Value profile: per call-site top-value tables in the style of Calder,
   Feller and Eustace's TNV tables.  Each site keeps a bounded table
   maintained with the Misra-Gries heavy-hitters update, so values seen a
   large fraction of the time are guaranteed to survive streams of cold
   values. *)

let table_capacity = 8

type site_table = {
  mutable entries : (int * int) list; (* value, count — small, bounded *)
  mutable site_total : int;
}

type t = { sites : (string * int, site_table) Hashtbl.t }

let create () = { sites = Hashtbl.create 64 }

let record t ~meth ~site ~value =
  let key = (meth, site) in
  let st =
    match Hashtbl.find_opt t.sites key with
    | Some st -> st
    | None ->
        let st = { entries = []; site_total = 0 } in
        Hashtbl.add t.sites key st;
        st
  in
  st.site_total <- st.site_total + 1;
  match List.assoc_opt value st.entries with
  | Some c -> st.entries <- (value, c + 1) :: List.remove_assoc value st.entries
  | None ->
      if List.length st.entries < table_capacity then
        st.entries <- (value, 1) :: st.entries
      else
        (* Misra-Gries update: decrement every counter, drop the zeros;
           heavy hitters lose at most one count per cold value seen *)
        st.entries <-
          List.filter_map
            (fun (v, c) -> if c > 1 then Some (v, c - 1) else None)
            st.entries

(* Decode path: install a site's final TNV table wholesale.  [entries]
   must be in the same order [record] would have left them (most recently
   bumped first); the site must not already exist. *)
let set_site t ~meth ~site ~entries ~total =
  Hashtbl.add t.sites (meth, site) { entries; site_total = total }

let top_value t ~meth ~site =
  match Hashtbl.find_opt t.sites (meth, site) with
  | None -> None
  | Some st ->
      List.fold_left
        (fun acc (v, c) ->
          match acc with
          | Some (_, bc) when bc >= c -> acc
          | _ -> Some (v, c))
        None st.entries

(* Fraction of a site's observations attributed to its top value. *)
let invariance t ~meth ~site =
  match (top_value t ~meth ~site, Hashtbl.find_opt t.sites (meth, site)) with
  | Some (_, c), Some st when st.site_total > 0 ->
      Some (float_of_int c /. float_of_int st.site_total)
  | _ -> None

(* Aggregation path (Profiles.Merge): the full per-site state, entries
   in table order (most recently bumped first).  Site order is the
   hashtable's fold order — callers canonicalize. *)
let export_sites t =
  Hashtbl.fold
    (fun key st acc -> (key, (st.entries, st.site_total)) :: acc)
    t.sites []

let sites t = Hashtbl.fold (fun k _ acc -> k :: acc) t.sites []
let n_sites t = Hashtbl.length t.sites

let to_keyed t =
  Hashtbl.fold
    (fun (m, s) st acc ->
      List.fold_left
        (fun acc (v, c) -> ((Printf.sprintf "%s@%d=%d" m s v), c) :: acc)
        acc st.entries)
    t.sites []
