(** Slot-resolution layer: compile-time event resolution for the
    instrumentation recording path.

    [create] runs a pre-pass over a linked program that interns method
    refs, field refs and per-site keys into dense integer ids and
    assigns every instrument op a slot (written into [op.Lir.slot]):
    statically-keyed events (edge, field_access) become indices into a
    preallocated counter array, dynamically-keyed ones (call_edge, value
    TNV, Ball–Larus path sums, receiver class, CCT) get closures over
    int-keyed open-addressing tables.  The VM's hot path is then an
    array increment — no ctx allocation, no hook-name dispatch, no
    string building — on both engines.

    [decode] rebuilds the exact {!Collector.t} the legacy event-by-event
    path would have produced, bit-identical including hashtable
    iteration order (first-touch logs replay the legacy key-insertion
    order).  Cycle charges are resolved once per op from
    {!Collector.op_cost}, so cycle counts match the legacy path too. *)

type t

val create : Vm.Program.t -> t
(** Resolve every instrument op of the linked program.  Deterministic
    and idempotent: resolving the same program again assigns identical
    slots. *)

val recorder : t -> Vm.Machine.flat_recorder
(** Pass to {!Vm.Interp.run}'s [?recorder] to activate flat recording. *)

val n_events : t -> int
(** Number of instrument ops resolved (one event id each). *)

val decode : t -> Collector.t
(** Rebuild the legacy collector structures from the flat buffers.
    Raises [Failure] if method-ref interning failed to preserve the
    number of distinct call edges. *)

val hooks : t -> Core.Sampler.t -> Vm.Interp.hooks
(** Checks fire through the sampler; any op that escaped slot
    resolution raises rather than being silently dropped. *)

val null_sampler_hooks : t -> Vm.Interp.hooks
(** Exhaustive instrumentation: no sampler involved. *)
