(** Slot-resolution layer: compile-time event resolution for the
    instrumentation recording path.

    [create] runs a pre-pass over a linked program that interns method
    refs, field refs and per-site keys into dense integer ids and
    assigns every instrument op a slot (written into [op.Lir.slot]):
    statically-keyed events (edge, field_access) become indices into a
    preallocated counter array, dynamically-keyed ones (call_edge, value
    TNV, Ball–Larus path sums, receiver class, CCT) get closures over
    int-keyed open-addressing tables.  The VM's hot path is then an
    array increment — no ctx allocation, no hook-name dispatch, no
    string building — on both engines.

    [decode] rebuilds the exact {!Collector.t} the legacy event-by-event
    path would have produced, bit-identical including hashtable
    iteration order (first-touch logs replay the legacy key-insertion
    order).  Cycle charges are resolved once per op from
    {!Collector.op_cost}, so cycle counts match the legacy path too. *)

type t

val create : Vm.Program.t -> t
(** Resolve every instrument op of the linked program.  Deterministic
    and idempotent: resolving the same program again assigns identical
    slots. *)

val recorder : t -> Vm.Machine.flat_recorder
(** Pass to {!Vm.Interp.run}'s [?recorder] to activate flat recording. *)

val n_events : t -> int
(** Number of instrument ops resolved (one event id each). *)

val live_edge_counts : t -> (int * int * int * int) list
(** Mid-run read of the statically-keyed edge counters, in first-touch
    order: [(method id, src label, dst label, count)] per edge observed
    so far.  Pure read — does not disturb {!decode}. *)

val live_call_edges : t -> (int * int * int * int) list
(** Mid-run read of the sampled call-edge table, in first-event order:
    [(caller method id, call site, callee method id, count)]; the caller
    id is negative for thread entries.  Pure read. *)

val mint_call_edge :
  t -> caller:int -> site:int -> callee:int -> Ir.Lir.instrument_op -> unit
(** Assign a fresh event id to a cloned [call_edge] op whose key is
    known statically (adaptive inlining splices callee bodies into the
    caller, where the frame no longer names the edge).  The minted event
    records into the same table under the same key the original dynamic
    event would have used, so profiles are indistinguishable from the
    uninlined run.  Raises [Invalid_argument] for any other op. *)

val decode : t -> Collector.t
(** Rebuild the legacy collector structures from the flat buffers.
    Raises [Failure] if method-ref interning failed to preserve the
    number of distinct call edges. *)

val hooks : t -> Core.Sampler.t -> Vm.Interp.hooks
(** Checks fire through the sampler; any op that escaped slot
    resolution raises rather than being silently dropped. *)

val null_sampler_hooks : t -> Vm.Interp.hooks
(** Exhaustive instrumentation: no sampler involved. *)
