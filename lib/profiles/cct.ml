type node = {
  mutable count : int; (* walks terminating at this node *)
  children : (string * int, node) Hashtbl.t;
}

type t = { root : node; mutable walks : int }

let mk_node () = { count = 0; children = Hashtbl.create 4 }

let create () = { root = mk_node (); walks = 0 }

let record t stack =
  t.walks <- t.walks + 1;
  let node =
    List.fold_left
      (fun node key ->
        match Hashtbl.find_opt node.children key with
        | Some child -> child
        | None ->
            let child = mk_node () in
            Hashtbl.add node.children key child;
            child)
      t.root stack
  in
  node.count <- node.count + 1

(* Decode path (Profiles.Slots): rebuild the tree from an abstract node
   representation.  Children are added in list order, which must be the
   first-walk order so the per-node hashtables end up with the same
   layout the event-by-event [record] sequence would have produced. *)
let import t ~walks ~root ~children ~count =
  t.walks <- walks;
  let rec graft node n =
    node.count <- count n;
    List.iter
      (fun (key, cn) ->
        let child = mk_node () in
        Hashtbl.add node.children key child;
        graft child cn)
      (children n)
  in
  graft t.root root

(* Aggregation path (Profiles.Merge): a concrete copy of the tree with
   full (method, site) child keys.  Child order is each hashtable's fold
   order — callers canonicalize. *)
type view = { vcount : int; vchildren : ((string * int) * view) list }

let export t =
  let rec copy node =
    {
      vcount = node.count;
      vchildren =
        Hashtbl.fold (fun key c acc -> (key, copy c) :: acc) node.children [];
    }
  in
  (t.walks, copy t.root)

let total_walks t = t.walks

let rec fold_nodes f acc path node =
  let acc = f acc path node in
  Hashtbl.fold
    (fun (m, _site) child acc -> fold_nodes f acc (path @ [ m ]) child)
    node.children acc

let n_nodes t =
  fold_nodes (fun acc _ _ -> acc + 1) (-1) [] t.root (* root not counted *)

(* Depth of the deepest node that is either counted (some walk ended
   there) or a leaf.  Interior nodes exist only as prefixes of such nodes,
   so they never determine the depth; skipping them keeps the metric
   "deepest sampled context" rather than "deepest tree spine". *)
let max_depth t =
  fold_nodes
    (fun acc path node ->
      if node.count > 0 || Hashtbl.length node.children = 0 then
        max acc (List.length path)
      else acc)
    0 [] t.root

let hot_contexts ?(n = 10) t =
  fold_nodes
    (fun acc path node -> if node.count > 0 then (path, node.count) :: acc else acc)
    [] [] t.root
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)

let to_keyed t =
  fold_nodes
    (fun acc path node ->
      if node.count > 0 then (String.concat ">" path, node.count) :: acc
      else acc)
    [] [] t.root
