module Lir = Ir.Lir

let path_profile =
  {
    Core.Spec.spec_name = "path-profile";
    plan =
      (fun f ->
        let bl = Ball_larus.number f in
        let resets =
          List.map
            (fun start ->
              {
                Core.Spec.site =
                  (if start = f.Lir.entry then Core.Spec.At_entry
                   else Core.Spec.Before_instr (start, 0));
                op = Lir.mk_op "path_reset" (Lir.P_site start);
              })
            (Ball_larus.start_points bl)
        in
        let adds =
          List.map
            (fun ((u, v), inc) ->
              {
                Core.Spec.site = Core.Spec.On_edge (u, v);
                op = Lir.mk_op "path_add" (Lir.P_site inc);
              })
            (Ball_larus.nonzero_increments bl)
        in
        let flushes =
          let acc = ref [] in
          (* before every return *)
          for l = 0 to Lir.num_blocks f - 1 do
            let b = Lir.block f l in
            if b.Lir.role <> Lir.Dead then
              match b.Lir.term with
              | Lir.Return _ ->
                  acc :=
                    {
                      Core.Spec.site =
                        Core.Spec.Before_instr (l, Array.length b.Lir.instrs);
                      op = Lir.mk_op "path_flush" Lir.P_unit;
                    }
                    :: !acc
              | _ -> ()
          done;
          (* on every backedge (under Full-Duplication these attach to the
             transfer edge out of the duplicated code) *)
          List.iter
            (fun (u, v) ->
              acc :=
                {
                  Core.Spec.site = Core.Spec.On_edge (u, v);
                  op = Lir.mk_op "path_flush" Lir.P_unit;
                }
                :: !acc)
            (Ir.Loops.retreating_edges f);
          List.rev !acc
        in
        resets @ adds @ flushes);
  }

let cct_profile =
  {
    Core.Spec.spec_name = "cct";
    plan =
      (fun _f ->
        [
          {
            Core.Spec.site = Core.Spec.At_entry;
            op = Lir.mk_op "cct" Lir.P_unit;
          };
        ]);
  }

let receiver_profile =
  {
    Core.Spec.spec_name = "receiver-profile";
    plan =
      (fun f ->
        let acc = ref [] in
        for l = 0 to Lir.num_blocks f - 1 do
          let b = Lir.block f l in
          if b.Lir.role <> Lir.Dead then
            Array.iteri
              (fun i instr ->
                match instr with
                | Lir.Call { kind = Lir.Virtual; args = recv :: _; site; _ } ->
                    acc :=
                      {
                        Core.Spec.site = Core.Spec.Before_instr (l, i);
                        op = Lir.mk_op "receiver" (Lir.P_value (recv, site));
                      }
                      :: !acc
                | _ -> ())
              b.Lir.instrs
        done;
        List.rev !acc);
  }
