(** Runtime half of Ball–Larus path profiling (see {!Ball_larus} for the
    numbering).  Keeps one running path sum per activation; under
    Full-Duplication sampling each sample records exactly one acyclic
    path.  Adds/flushes without an open region (e.g. under
    No-Duplication, which cannot observe consecutive events) are
    ignored. *)

type t

val create : unit -> t
val reset : t -> frame:int -> meth:string -> start:int -> unit
val add : t -> frame:int -> inc:int -> unit
val flush : t -> frame:int -> unit

val bump : t -> meth:string -> start:int -> path:int -> n:int -> unit
(** Decode path: add [n] completions at once, inserting if absent
    (first-event order). *)

val restore_active : t -> frame:int -> meth:string -> start:int -> sum:int -> unit
(** Decode path: re-open a region that was still active at end of run. *)

val count : t -> meth:string -> start:int -> path:int -> int
val total : t -> int

val to_alist : t -> ((string * int * int) * int) list
(** ((method, start label, path id), count), hottest first. *)

val to_keyed : t -> (string * int) list
val distinct_paths : t -> int
