(** Wires a {!Core.Sampler.t} and a set of profile tables into the VM's
    instrumentation hooks.

    The cycle costs per instrumentation operation live here (DESIGN.md
    section 5): call-edge ops walk the stack and update a hash table
    (expensive, 55); field-access ops are two loads, an increment and a
    store (6 — about the cost of a check, which is exactly why
    No-Duplication buys nothing for them, Table 3). *)

type t = {
  call_edges : Call_edge.t;
  fields : Field_access.t;
  edges : Edge_profile.t;
  values : Value_profile.t;
  paths : Path_profile.t;
  receivers : Receiver_profile.t;
  cct : Cct.t;
}

val create : unit -> t

val op_cost : Ir.Lir.instrument_op -> int
(** Cycle charge for one op, a string match on the hook name.  Only the
    legacy event-by-event path pays this per event: flat-slot recording
    ({!Slots}) resolves it once per op at slot-resolution time and
    charges the preresolved value, which must match this function
    exactly (asserted differentially in test/test_slots.ml). *)

val hooks : t -> Core.Sampler.t -> Vm.Interp.hooks
(** Checks fire through the sampler; ops dispatch on their hook name. *)

val null_sampler_hooks : t -> Vm.Interp.hooks
(** Exhaustive instrumentation: no sampler involved (ops are unguarded). *)
