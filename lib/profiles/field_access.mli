(** Field-access profile — the paper's second example instrumentation:
    one counter per field of every class, bumped on every get/put; the
    input to data-layout optimizations. *)

type t

val create : unit -> t
val record : t -> field:string -> is_write:bool -> unit

val bump : t -> field:string -> is_write:bool -> n:int -> unit
(** Decode path: [n] same-direction accesses at once, inserting if
    absent (first-event order). *)

val set_totals : t -> reads:int -> writes:int -> unit
(** Aggregation path: overwrite the global read/write split after the
    per-field table was rebuilt via {!bump}. *)

val count : t -> string -> int
val total : t -> int
val reads : t -> int
val writes : t -> int

val to_alist : t -> (string * int) list
(** Hottest first; keys are ["Class.field"]. *)

val to_keyed : t -> (string * int) list
val distinct_fields : t -> int
