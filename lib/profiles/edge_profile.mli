(** Intraprocedural CFG-edge profile, keyed by the original
    (pre-duplication) labels — one of the profile kinds the paper lists
    as usable unmodified inside the framework. *)

type t

val create : unit -> t
val record : t -> meth:string -> src:int -> dst:int -> unit

val bump : t -> meth:string -> src:int -> dst:int -> n:int -> unit
(** Decode path: add [n] at once, inserting if absent (first-event
    order). *)

val count : t -> meth:string -> src:int -> dst:int -> int
val total : t -> int
val to_alist : t -> ((string * int * int) * int) list
val to_keyed : t -> (string * int) list
