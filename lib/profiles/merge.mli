(** Cross-shard profile aggregation (ROADMAP item 3): folds the decoded
    profiles of many runs — all seven kinds — into one canonical
    aggregate with deterministic output.

    The aggregate is a pure-data canonical form: key-sorted tables,
    totally-ordered histograms (count desc, key asc), key-sorted CCT
    children.  {!merge} is exact summation everywhere — associative and
    commutative — so the result is byte-identical regardless of shard
    count and merge order.  Value-profile (TNV) summaries merge by
    union-sum {e without} re-truncation: a truncating merge would be
    order-dependent, while the union-sum keeps the Misra–Gries
    undercount bound additively across shards.

    Regions still open in a path profile (activations that never
    flushed) are per-run transients and are dropped at the aggregation
    boundary.

    {!render}/{!parse} are exact inverses; the rendering is the on-disk
    format of [isf merge] inputs and the payload of the daemon's
    [PROFILE] frames. *)

type cct_node = { count : int; children : ((string * int) * cct_node) list }

type t = {
  call_edges : ((string * int * string) * int) list;
  fields : (string * int) list;
  reads : int;
  writes : int;
  edges : ((string * int * int) * int) list;
  values : ((string * int) * ((int * int) list * int)) list;
  paths : ((string * int * int) * int) list;
  receivers : ((string * int) * ((string * int) list * int)) list;
  walks : int;
  cct : cct_node;
}

val empty : t
val is_empty : t -> bool

val of_collector : Collector.t -> t
(** Snapshot a collector into canonical form. *)

val to_collector : t -> Collector.t
(** Rebuild a collector through the order-preserving decode entry
    points, inserting in canonical order — reports rendered from the
    result are deterministic. *)

val merge : t -> t -> t
(** Exact, associative, commutative. *)

val merge_list : t list -> t
(** Left fold of {!merge}; {!empty} for [[]]. *)

val format_magic : string

val render : t -> string
(** Canonical text serialization: equal aggregates render to equal
    bytes. *)

exception Parse_error of string

val parse : string -> t
(** Exact inverse of {!render}; raises {!Parse_error} on malformed
    input. *)

val digest : t -> string
(** MD5 hex of {!render} — the content address of an aggregate. *)
