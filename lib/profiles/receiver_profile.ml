(* Receiver-class distribution per virtual call site — the profile behind
   profile-guided receiver-class prediction (Grove et al., OOPSLA '95,
   cited by the paper as a feedback-directed optimization this kind of
   framework enables). *)

type site_stats = {
  mutable classes : (string * int) list; (* class name -> count, small *)
  mutable site_total : int;
}

type t = { sites : (string * int, site_stats) Hashtbl.t }

let create () = { sites = Hashtbl.create 32 }

let record t ~meth ~site ~cls =
  let st =
    match Hashtbl.find_opt t.sites (meth, site) with
    | Some st -> st
    | None ->
        let st = { classes = []; site_total = 0 } in
        Hashtbl.add t.sites (meth, site) st;
        st
  in
  st.site_total <- st.site_total + 1;
  st.classes <-
    (match List.assoc_opt cls st.classes with
    | Some c -> (cls, c + 1) :: List.remove_assoc cls st.classes
    | None -> (cls, 1) :: st.classes)

(* Decode path: install a site's final class histogram wholesale, in the
   order [record] would have left it (most recently bumped first). *)
let set_site t ~meth ~site ~classes ~total =
  Hashtbl.add t.sites (meth, site) { classes; site_total = total }

let dominant t ~meth ~site =
  match Hashtbl.find_opt t.sites (meth, site) with
  | None -> None
  | Some st ->
      let best =
        List.fold_left
          (fun acc (c, n) ->
            match acc with Some (_, bn) when bn >= n -> acc | _ -> Some (c, n))
          None st.classes
      in
      Option.map
        (fun (c, n) ->
          (c, float_of_int n /. float_of_int (max st.site_total 1)))
        best

let monomorphic_sites ?(threshold = 0.999) t =
  Hashtbl.fold
    (fun (meth, site) _ acc ->
      match dominant t ~meth ~site with
      | Some (cls, frac) when frac >= threshold -> (meth, site, cls) :: acc
      | _ -> acc)
    t.sites []
  |> List.sort compare

(* Aggregation path (Profiles.Merge): full per-site histograms, classes
   in table order; site order is the fold order — callers canonicalize. *)
let export_sites t =
  Hashtbl.fold
    (fun key st acc -> (key, (st.classes, st.site_total)) :: acc)
    t.sites []

let sites t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.sites [] |> List.sort compare

let n_sites t = Hashtbl.length t.sites

let to_keyed t =
  Hashtbl.fold
    (fun (m, s) st acc ->
      List.fold_left
        (fun acc (cls, c) -> ((Printf.sprintf "%s@%d:%s" m s cls), c) :: acc)
        acc st.classes)
    t.sites []
