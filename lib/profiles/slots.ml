(* Slot-resolution layer: compile-time event resolution for the
   instrumentation recording path.

   The legacy recording path (Collector.on_instrument) pays, per event, a
   ctx allocation, a hook-name string dispatch, method-ref string
   building, tuple-key boxing and a polymorphic hashtable probe.  This
   module removes all of that from the hot path: a pre-pass over the
   *linked* program interns method refs, field refs and per-site keys
   into dense integer ids and resolves every instrument op to a slot
   (stored in [op.Lir.slot]):

   - statically-keyed events (edge, field_access) become an index into a
     preallocated counter array — recording is one array increment;
   - dynamically-keyed events (call_edge caller x site, value TNV, path
     sums, receiver class, CCT) get closures over int-keyed
     open-addressing tables and move-to-front arrays.

   An end-of-run [decode] rebuilds the exact [Collector.t] the legacy
   event-by-event path would have produced — bit-identical, including
   hashtable iteration order, which is observable through report
   tie-breaking.  The key trick is first-touch logging: counter slots,
   dynamic-table entries, TNV/receiver sites and CCT children all record
   the order in which keys first appeared, and decode re-inserts keys in
   exactly that order, so the rebuilt hashtables get the same insertion
   sequence (and therefore the same layout and fold order) as the legacy
   tables.

   Per-event cycle charges are resolved here once ([Collector.op_cost]
   hoisted out of the hot path); both engines charge from the resolved
   value, so cycle counts are identical to the legacy path as well. *)

module Lir = Ir.Lir
module Machine = Vm.Machine
module Program = Vm.Program

let thread_start = "<thread-start>"

(* ------------------------------------------------------------------ *)
(* Open-addressing counting table over int triples                     *)
(* ------------------------------------------------------------------ *)

(* Buckets index a dense entry pool, so entries live in insertion
   (first-event) order — the decode order — and rehashing never disturbs
   it.  Pair-keyed uses pass 0 for the third component. *)
type itab = {
  mutable buckets : int array; (* 0 = empty, else entry index + 1 *)
  mutable mask : int;
  mutable k1 : int array;
  mutable k2 : int array;
  mutable k3 : int array;
  mutable cnt : int array;
  mutable n : int;
}

let itab_create () =
  {
    buckets = Array.make 32 0;
    mask = 31;
    k1 = Array.make 16 0;
    k2 = Array.make 16 0;
    k3 = Array.make 16 0;
    cnt = Array.make 16 0;
    n = 0;
  }

let[@inline] mix3 a b c =
  let h = (a * 0x2545F491) lxor (b * 0x9E3779B1) lxor (c * 0x85EBCA77) in
  (h lxor (h lsr 17)) land max_int

let itab_rehash t =
  let nb = (t.mask + 1) * 2 in
  let buckets = Array.make nb 0 in
  let mask = nb - 1 in
  for j = 0 to t.n - 1 do
    let h = ref (mix3 t.k1.(j) t.k2.(j) t.k3.(j) land mask) in
    while buckets.(!h) <> 0 do
      h := (!h + 1) land mask
    done;
    buckets.(!h) <- j + 1
  done;
  t.buckets <- buckets;
  t.mask <- mask;
  let grow a =
    let b = Array.make (nb / 2) 0 in
    Array.blit a 0 b 0 t.n;
    b
  in
  t.k1 <- grow t.k1;
  t.k2 <- grow t.k2;
  t.k3 <- grow t.k3;
  t.cnt <- grow t.cnt

let itab_bump t a b c =
  if 2 * (t.n + 1) > t.mask + 1 then itab_rehash t;
  let mask = t.mask in
  let h = ref (mix3 a b c land mask) in
  let found = ref (-1) in
  let probing = ref true in
  while !probing do
    let e = Array.unsafe_get t.buckets !h in
    if e = 0 then probing := false
    else
      let j = e - 1 in
      if
        Array.unsafe_get t.k1 j = a
        && Array.unsafe_get t.k2 j = b
        && Array.unsafe_get t.k3 j = c
      then begin
        found := j;
        probing := false
      end
      else h := (!h + 1) land mask
  done;
  let j = !found in
  if j >= 0 then t.cnt.(j) <- t.cnt.(j) + 1
  else begin
    let j = t.n in
    t.n <- j + 1;
    t.k1.(j) <- a;
    t.k2.(j) <- b;
    t.k3.(j) <- c;
    t.cnt.(j) <- 1;
    t.buckets.(!h) <- j + 1
  end

(* ------------------------------------------------------------------ *)
(* Open-addressing map: frame id -> open path region (site, sum)       *)
(* ------------------------------------------------------------------ *)

(* Supports delete (path_flush closes a region), so probe chains use
   tombstones; a same-size rehash clears them when load gets high.
   Never iterated on the hot path, and its layout is unobservable (the
   legacy [active] table is never folded), so only contents matter. *)
type atab = {
  mutable ak : int array; (* -1 = empty, -2 = tombstone, else frame id *)
  mutable asite : int array;
  mutable asum : int array;
  mutable amask : int;
  mutable alive : int;
  mutable aused : int; (* live + tombstones *)
}

let atab_create () =
  {
    ak = Array.make 32 (-1);
    asite = Array.make 32 0;
    asum = Array.make 32 0;
    amask = 31;
    alive = 0;
    aused = 0;
  }

let[@inline] amix k =
  let h = k * 0x9E3779B1 in
  (h lxor (h lsr 16)) land max_int

let atab_rehash t =
  let nb =
    if 2 * (t.alive + 1) > t.amask + 1 then (t.amask + 1) * 2 else t.amask + 1
  in
  let ak = Array.make nb (-1) in
  let asite = Array.make nb 0 in
  let asum = Array.make nb 0 in
  let mask = nb - 1 in
  for i = 0 to t.amask do
    let k = t.ak.(i) in
    if k >= 0 then begin
      let h = ref (amix k land mask) in
      while ak.(!h) >= 0 do
        h := (!h + 1) land mask
      done;
      ak.(!h) <- k;
      asite.(!h) <- t.asite.(i);
      asum.(!h) <- t.asum.(i)
    end
  done;
  t.ak <- ak;
  t.asite <- asite;
  t.asum <- asum;
  t.amask <- mask;
  t.aused <- t.alive

let atab_find t k =
  let mask = t.amask in
  let h = ref (amix k land mask) in
  let res = ref (-1) in
  let probing = ref true in
  while !probing do
    let x = Array.unsafe_get t.ak !h in
    if x = k then begin
      res := !h;
      probing := false
    end
    else if x = -1 then probing := false
    else h := (!h + 1) land mask
  done;
  !res

(* path_reset: open (or re-open) the frame's region with sum 0 *)
let atab_set t k site =
  let i = atab_find t k in
  if i >= 0 then begin
    t.asite.(i) <- site;
    t.asum.(i) <- 0
  end
  else begin
    if 2 * (t.aused + 1) > t.amask + 1 then atab_rehash t;
    let mask = t.amask in
    let h = ref (amix k land mask) in
    while t.ak.(!h) >= 0 do
      h := (!h + 1) land mask
    done;
    if t.ak.(!h) = -1 then t.aused <- t.aused + 1;
    t.ak.(!h) <- k;
    t.asite.(!h) <- site;
    t.asum.(!h) <- 0;
    t.alive <- t.alive + 1
  end

(* ------------------------------------------------------------------ *)
(* Per-site TNV table (value profile): Misra-Gries over fixed arrays    *)
(* ------------------------------------------------------------------ *)

(* Front (index 0) is the most recently bumped entry, replicating the
   legacy move-to-front assoc list exactly — entry order is observable
   through [Value_profile.to_keyed]. *)
type vsite = {
  v_mid : int;
  v_site : int;
  v_vals : int array;
  v_cnts : int array;
  mutable v_n : int;
  mutable v_total : int;
}

let vsite_record vlog vs value =
  if vs.v_total = 0 then ignore (Ir.Vec.push vlog vs : int);
  vs.v_total <- vs.v_total + 1;
  let n = vs.v_n in
  let rec find i =
    if i = n then -1 else if vs.v_vals.(i) = value then i else find (i + 1)
  in
  let j = find 0 in
  if j >= 0 then begin
    let c = vs.v_cnts.(j) in
    Array.blit vs.v_vals 0 vs.v_vals 1 j;
    Array.blit vs.v_cnts 0 vs.v_cnts 1 j;
    vs.v_vals.(0) <- value;
    vs.v_cnts.(0) <- c + 1
  end
  else if n < Array.length vs.v_vals then begin
    Array.blit vs.v_vals 0 vs.v_vals 1 n;
    Array.blit vs.v_cnts 0 vs.v_cnts 1 n;
    vs.v_vals.(0) <- value;
    vs.v_cnts.(0) <- 1;
    vs.v_n <- n + 1
  end
  else begin
    (* Misra-Gries: decrement every counter, drop the zeros, keep order *)
    let w = ref 0 in
    for i = 0 to n - 1 do
      if vs.v_cnts.(i) > 1 then begin
        vs.v_vals.(!w) <- vs.v_vals.(i);
        vs.v_cnts.(!w) <- vs.v_cnts.(i) - 1;
        incr w
      end
    done;
    vs.v_n <- !w
  end

(* ------------------------------------------------------------------ *)
(* Per-site receiver-class histogram: move-to-front, unbounded          *)
(* ------------------------------------------------------------------ *)

type rsite = {
  r_mid : int;
  r_site : int;
  mutable r_cls : int array; (* class ids *)
  mutable r_cnts : int array;
  mutable r_n : int;
  mutable r_total : int;
}

let rsite_record rlog rs cls =
  if rs.r_total = 0 then ignore (Ir.Vec.push rlog rs : int);
  rs.r_total <- rs.r_total + 1;
  let n = rs.r_n in
  let rec find i =
    if i = n then -1 else if rs.r_cls.(i) = cls then i else find (i + 1)
  in
  let j = find 0 in
  if j >= 0 then begin
    let c = rs.r_cnts.(j) in
    Array.blit rs.r_cls 0 rs.r_cls 1 j;
    Array.blit rs.r_cnts 0 rs.r_cnts 1 j;
    rs.r_cls.(0) <- cls;
    rs.r_cnts.(0) <- c + 1
  end
  else begin
    if n = Array.length rs.r_cls then begin
      let cap = max 4 (2 * n) in
      let cls' = Array.make cap 0 in
      let cnts' = Array.make cap 0 in
      Array.blit rs.r_cls 0 cls' 0 n;
      Array.blit rs.r_cnts 0 cnts' 0 n;
      rs.r_cls <- cls';
      rs.r_cnts <- cnts'
    end;
    Array.blit rs.r_cls 0 rs.r_cls 1 n;
    Array.blit rs.r_cnts 0 rs.r_cnts 1 n;
    rs.r_cls.(0) <- cls;
    rs.r_cnts.(0) <- 1;
    rs.r_n <- n + 1
  end

(* ------------------------------------------------------------------ *)
(* Calling-context tree over interned method ids                        *)
(* ------------------------------------------------------------------ *)

(* Children are kept in insertion (first-walk) order in parallel arrays;
   fanout is small, so a linear scan beats hashing here and the order is
   exactly what decode must replay into the legacy per-node hashtables. *)
type cnode = {
  mutable c_count : int;
  mutable ckm : int array; (* child method id *)
  mutable cks : int array; (* child call site *)
  mutable cch : cnode array;
  mutable c_n : int;
}

let cnode_create () =
  { c_count = 0; ckm = [||]; cks = [||]; cch = [||]; c_n = 0 }

let cnode_child node mid site =
  let n = node.c_n in
  let rec find i =
    if i = n then -1
    else if node.ckm.(i) = mid && node.cks.(i) = site then i
    else find (i + 1)
  in
  let j = find 0 in
  if j >= 0 then node.cch.(j)
  else begin
    if n = Array.length node.ckm then begin
      let cap = max 4 (2 * n) in
      let ckm = Array.make cap 0 in
      let cks = Array.make cap 0 in
      let cch = Array.make cap node in
      Array.blit node.ckm 0 ckm 0 n;
      Array.blit node.cks 0 cks 0 n;
      Array.blit node.cch 0 cch 0 n;
      node.ckm <- ckm;
      node.cks <- cks;
      node.cch <- cch
    end;
    let child = cnode_create () in
    node.ckm.(n) <- mid;
    node.cks.(n) <- site;
    node.cch.(n) <- child;
    node.c_n <- n + 1;
    child
  end

(* ------------------------------------------------------------------ *)
(* The slot-resolution pre-pass                                         *)
(* ------------------------------------------------------------------ *)

(* Decode metadata for statically-keyed counter slots. *)
type cinfo =
  | C_edge of int * int * int (* method id, src label, dst label *)
  | C_field of string * bool (* interned "C.f", is_write *)

type t = {
  prog : Program.t;
  names : string array; (* interned method-ref string per method id *)
  rc : Machine.flat_recorder;
  cinfo : cinfo array; (* per counter slot *)
  calls : itab; (* caller mid x site x callee mid *)
  sums : itab; (* path site id x path sum *)
  active : atab; (* frame id -> open region *)
  psite_mid : int array; (* per path site id: method id *)
  psite_start : int array; (* per path site id: start label *)
  vlog : vsite Ir.Vec.t; (* value sites in first-event order *)
  rlog : rsite Ir.Vec.t; (* receiver sites in first-event order *)
  croot : cnode;
  cwalks : int ref;
  mutable n_events : int;
      (* grows when the adaptive tier mints events for inlined sites *)
}

let nop (_ : Machine.state) (_ : Machine.thread) (_ : Machine.frame) = ()

let table_capacity = 8 (* = Value_profile's TNV capacity *)

let iter_ops (prog : Program.t) f =
  Array.iter
    (fun (m : Program.meth) ->
      let func = m.Program.func in
      for l = 0 to Lir.num_blocks func - 1 do
        let b = Lir.block func l in
        Array.iteri
          (fun i instr ->
            match instr with
            | Lir.Instrument op -> f m.Program.id b i false op
            | Lir.Guarded_instrument op -> f m.Program.id b i true op
            | _ -> ())
          b.Lir.instrs
      done)
    prog.Program.methods

let create (prog : Program.t) : t =
  (* Pass 1: reset every slot (assignment must be deterministic and
     idempotent — the engine's compiled-method cache reads [op.slot] at
     run time, so a program resolved twice must get identical ids) and
     size the event space. *)
  let n_events = ref 0 in
  let n_counters = ref 0 in
  iter_ops prog (fun _ _ _ _ op ->
      op.Lir.slot <- -1;
      incr n_events;
      match (op.Lir.hook, op.Lir.payload) with
      | "edge", Lir.P_edge _ | "field_access", Lir.P_field _ -> incr n_counters
      | _ -> ());
  let n_events = !n_events in
  let n_counters = !n_counters in
  let names =
    Array.map
      (fun (m : Program.meth) -> Lir.string_of_method_ref m.Program.mref)
      prog.Program.methods
  in
  let rc =
    {
      Machine.ev_cost = Array.make (max n_events 1) 0;
      ev_counter = Array.make (max n_events 1) (-1);
      counts = Array.make (max n_counters 1) 0;
      touch = Array.make (max n_counters 1) 0;
      n_touch = 0;
      dyn = Array.make (max n_events 1) nop;
    }
  in
  let cinfo = Array.make (max n_counters 1) (C_field ("", false)) in
  let calls = itab_create () in
  let sums = itab_create () in
  let active = atab_create () in
  let psites : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let psite_mid = Ir.Vec.create () in
  let psite_start = Ir.Vec.create () in
  let vsites : (int * int, vsite) Hashtbl.t = Hashtbl.create 32 in
  let vlog = Ir.Vec.create () in
  let rsites : (int * int, rsite) Hashtbl.t = Hashtbl.create 32 in
  let rlog = Ir.Vec.create () in
  let croot = cnode_create () in
  let cwalks = ref 0 in
  let fields : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let intern_field fld =
    let s = Lir.string_of_field_ref fld in
    match Hashtbl.find_opt fields s with
    | Some s -> s
    | None ->
        Hashtbl.add fields s s;
        s
  in
  let psite mid start =
    match Hashtbl.find_opt psites (mid, start) with
    | Some id -> id
    | None ->
        let id = Ir.Vec.push psite_mid mid in
        ignore (Ir.Vec.push psite_start start : int);
        Hashtbl.add psites (mid, start) id;
        id
  in
  (* Pass 2: assign dense event ids in program order and resolve each op
     to its cost plus either a counter slot or a dynamic-key closure. *)
  let next_ev = ref 0 in
  let next_counter = ref 0 in
  iter_ops prog (fun mid b i guarded op ->
      (* A shared op record (two sites aliasing one record) would get two
         clashing ids; give the later site a fresh copy.  Transforms never
         share op records today, so this is a determinism guard. *)
      let op =
        if op.Lir.slot >= 0 then begin
          let fresh = { op with Lir.slot = -1 } in
          b.Lir.instrs.(i) <-
            (if guarded then Lir.Guarded_instrument fresh
             else Lir.Instrument fresh);
          fresh
        end
        else op
      in
      let ev = !next_ev in
      incr next_ev;
      op.Lir.slot <- ev;
      rc.Machine.ev_cost.(ev) <- Collector.op_cost op;
      let counter ci =
        let c = !next_counter in
        incr next_counter;
        cinfo.(c) <- ci;
        rc.Machine.ev_counter.(ev) <- c
      in
      let dyn f = rc.Machine.dyn.(ev) <- f in
      match (op.Lir.hook, op.Lir.payload) with
      | "edge", Lir.P_edge (u, v) -> counter (C_edge (mid, u, v))
      | "field_access", Lir.P_field (fld, is_write) ->
          counter (C_field (intern_field fld, is_write))
      | "call_edge", Lir.P_unit ->
          dyn (fun _st _th fr ->
              itab_bump calls fr.Machine.from_meth fr.Machine.from_site mid)
      | "value", Lir.P_value (operand, site) -> (
          let vs =
            match Hashtbl.find_opt vsites (mid, site) with
            | Some vs -> vs
            | None ->
                let vs =
                  {
                    v_mid = mid;
                    v_site = site;
                    v_vals = Array.make table_capacity 0;
                    v_cnts = Array.make table_capacity 0;
                    v_n = 0;
                    v_total = 0;
                  }
                in
                Hashtbl.add vsites (mid, site) vs;
                vs
          in
          match operand with
          | Lir.Reg r ->
              dyn (fun _st _th fr ->
                  vsite_record vlog vs (Array.unsafe_get fr.Machine.regs r))
          | Lir.Imm n -> dyn (fun _st _th _fr -> vsite_record vlog vs n))
      | "path_reset", Lir.P_site start ->
          let id = psite mid start in
          dyn (fun _st _th fr -> atab_set active fr.Machine.fid id)
      | "path_add", Lir.P_site inc ->
          dyn (fun _st _th fr ->
              let i = atab_find active fr.Machine.fid in
              if i >= 0 then active.asum.(i) <- active.asum.(i) + inc)
      | "path_flush", Lir.P_unit ->
          dyn (fun _st _th fr ->
              let i = atab_find active fr.Machine.fid in
              if i >= 0 then begin
                itab_bump sums active.asite.(i) active.asum.(i) 0;
                active.ak.(i) <- -2;
                active.alive <- active.alive - 1
              end)
      | "cct", Lir.P_unit ->
          dyn (fun _st th fr ->
              incr cwalks;
              (* walk outermost-first: parents are innermost-first *)
              let rec descend = function
                | [] -> croot
                | (g : Machine.frame) :: rest ->
                    cnode_child (descend rest) g.Machine.m.Program.id
                      g.Machine.from_site
              in
              let node =
                cnode_child
                  (descend th.Machine.parents)
                  fr.Machine.m.Program.id fr.Machine.from_site
              in
              node.c_count <- node.c_count + 1)
      | "receiver", Lir.P_value (operand, site) ->
          let rs =
            match Hashtbl.find_opt rsites (mid, site) with
            | Some rs -> rs
            | None ->
                let rs =
                  {
                    r_mid = mid;
                    r_site = site;
                    r_cls = [||];
                    r_cnts = [||];
                    r_n = 0;
                    r_total = 0;
                  }
                in
                Hashtbl.add rsites (mid, site) rs;
                rs
          in
          let record st v =
            (* legacy class_of: None for null, dangling refs and arrays *)
            if v > 0 && v <= Ir.Vec.length st.Machine.heap then
              match Ir.Vec.get st.Machine.heap (v - 1) with
              | Machine.Obj o -> rsite_record rlog rs o.cls
              | Machine.Arr _ -> ()
          in
          (match operand with
          | Lir.Reg r ->
              dyn (fun st _th fr ->
                  record st (Array.unsafe_get fr.Machine.regs r))
          | Lir.Imm n -> dyn (fun st _th _fr -> record st n))
      | hook, _ ->
          (* same run-time failure (message and timing) as the legacy
             dispatch: the charge lands, then the hook is rejected *)
          dyn (fun _st _th _fr ->
              raise
                (Machine.Runtime_error
                   (Printf.sprintf
                      "unknown instrumentation hook %s (or bad payload)" hook))));
  {
    prog;
    names;
    rc;
    cinfo;
    calls;
    sums;
    active;
    psite_mid = Array.init (Ir.Vec.length psite_mid) (Ir.Vec.get psite_mid);
    psite_start =
      Array.init (Ir.Vec.length psite_start) (Ir.Vec.get psite_start);
    vlog;
    rlog;
    croot;
    cwalks;
    n_events;
  }

let recorder t = t.rc
let n_events t = t.n_events

(* ------------------------------------------------------------------ *)
(* Live read API + event minting (adaptive tier)                        *)
(* ------------------------------------------------------------------ *)

(* Pure reads over the flat buffers: the adaptive controller consults
   them mid-run without touching any state [decode] depends on. *)

let live_edge_counts t =
  let r = t.rc in
  let out = ref [] in
  for i = r.Machine.n_touch - 1 downto 0 do
    let c = r.Machine.touch.(i) in
    match t.cinfo.(c) with
    | C_edge (mid, src, dst) ->
        out := (mid, src, dst, r.Machine.counts.(c)) :: !out
    | C_field _ -> ()
  done;
  !out

let live_call_edges t =
  List.init t.calls.n (fun j ->
      (t.calls.k1.(j), t.calls.k2.(j), t.calls.k3.(j), t.calls.cnt.(j)))

(* Mint a fresh event id for a cloned call_edge op whose recording key is
   known statically (the adaptive inliner splices callee bodies into the
   caller, so [fr.from_meth]/[fr.from_site] would name the wrong edge).
   The minted closure bumps the same table with the same key triple the
   original dynamic event would have used, so live reads, decode and the
   first-touch order are indistinguishable from the uninlined run. *)

let ensure_event_capacity (r : Machine.flat_recorder) n =
  let cap = Array.length r.Machine.ev_cost in
  if n >= cap then begin
    let ncap = max (2 * cap) (n + 1) in
    let grow a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    r.Machine.ev_cost <- grow r.Machine.ev_cost 0;
    r.Machine.ev_counter <- grow r.Machine.ev_counter (-1);
    r.Machine.dyn <- grow r.Machine.dyn nop
  end

let mint_call_edge t ~caller ~site ~callee (op : Lir.instrument_op) =
  (match (op.Lir.hook, op.Lir.payload) with
  | "call_edge", Lir.P_unit -> ()
  | _ -> invalid_arg "Slots.mint_call_edge: not a call_edge op");
  let r = t.rc in
  let ev = t.n_events in
  t.n_events <- ev + 1;
  ensure_event_capacity r ev;
  op.Lir.slot <- ev;
  r.Machine.ev_cost.(ev) <- Collector.op_cost op;
  r.Machine.ev_counter.(ev) <- -1;
  let calls = t.calls in
  r.Machine.dyn.(ev) <- (fun _st _th _fr -> itab_bump calls caller site callee)

(* ------------------------------------------------------------------ *)
(* End-of-run decode                                                    *)
(* ------------------------------------------------------------------ *)

let decode t : Collector.t =
  let col = Collector.create () in
  let r = t.rc in
  (* statically-keyed counters, replayed in first-touch order so the
     rebuilt tables get the legacy insertion sequence *)
  for i = 0 to r.Machine.n_touch - 1 do
    let c = r.Machine.touch.(i) in
    let n = r.Machine.counts.(c) in
    match t.cinfo.(c) with
    | C_edge (mid, src, dst) ->
        Edge_profile.bump col.Collector.edges ~meth:t.names.(mid) ~src ~dst ~n
    | C_field (field, is_write) ->
        Field_access.bump col.Collector.fields ~field ~is_write ~n
  done;
  (* call edges: dense entries are already in first-event order *)
  for j = 0 to t.calls.n - 1 do
    let caller_mid = t.calls.k1.(j) in
    let caller =
      if caller_mid < 0 then thread_start else t.names.(caller_mid)
    in
    Call_edge.bump col.Collector.call_edges ~caller ~site:t.calls.k2.(j)
      ~callee:t.names.(t.calls.k3.(j)) ~n:t.calls.cnt.(j)
  done;
  if Call_edge.distinct_edges col.Collector.call_edges <> t.calls.n then
    failwith
      "Slots.decode: method-ref interning changed the number of distinct \
       call edges";
  (* Ball-Larus path sums *)
  for j = 0 to t.sums.n - 1 do
    let site = t.sums.k1.(j) in
    Path_profile.bump col.Collector.paths
      ~meth:t.names.(t.psite_mid.(site))
      ~start:t.psite_start.(site) ~path:t.sums.k2.(j) ~n:t.sums.cnt.(j)
  done;
  (* regions still open at end of run (their frame never flushed) *)
  for i = 0 to t.active.amask do
    if t.active.ak.(i) >= 0 then begin
      let site = t.active.asite.(i) in
      Path_profile.restore_active col.Collector.paths ~frame:t.active.ak.(i)
        ~meth:t.names.(t.psite_mid.(site))
        ~start:t.psite_start.(site) ~sum:t.active.asum.(i)
    end
  done;
  (* value TNV sites, in first-event order; entries front-first *)
  Ir.Vec.iter
    (fun vs ->
      Value_profile.set_site col.Collector.values ~meth:t.names.(vs.v_mid)
        ~site:vs.v_site
        ~entries:(List.init vs.v_n (fun i -> (vs.v_vals.(i), vs.v_cnts.(i))))
        ~total:vs.v_total)
    t.vlog;
  (* receiver-class sites, in first-event order *)
  Ir.Vec.iter
    (fun rs ->
      Receiver_profile.set_site col.Collector.receivers
        ~meth:t.names.(rs.r_mid) ~site:rs.r_site
        ~classes:
          (List.init rs.r_n (fun i ->
               ( t.prog.Program.classes.(rs.r_cls.(i)).Program.cls_name,
                 rs.r_cnts.(i) )))
        ~total:rs.r_total)
    t.rlog;
  (* calling-context tree: children replayed in first-walk order *)
  Cct.import col.Collector.cct ~walks:!(t.cwalks) ~root:t.croot
    ~children:(fun n ->
      List.init n.c_n (fun i -> ((t.names.(n.ckm.(i)), n.cks.(i)), n.cch.(i))))
    ~count:(fun n -> n.c_count);
  col

(* ------------------------------------------------------------------ *)
(* Hook constructors                                                    *)
(* ------------------------------------------------------------------ *)

(* Every op of the program got a slot in [create], so [on_instrument]
   should be unreachable; failing loudly (rather than silently dropping
   the event) turns a pre-pass bug into a test failure.  [instr_cost]
   still answers for unresolved ops. *)
let escaped _ctx (op : Lir.instrument_op) =
  raise
    (Machine.Runtime_error
       ("instrument op escaped slot resolution: " ^ op.Lir.hook))

let hooks _t sampler =
  {
    Vm.Interp.fire = (fun tid -> Core.Sampler.fire sampler tid);
    on_timer_tick = (fun () -> Core.Sampler.on_timer_tick sampler);
    on_instrument = escaped;
    instr_cost = Collector.op_cost;
  }

let null_sampler_hooks _t =
  {
    Vm.Interp.fire = (fun _ -> false);
    on_timer_tick = ignore;
    on_instrument = escaped;
    instr_cost = Collector.op_cost;
  }
