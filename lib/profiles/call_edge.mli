(** Call-edge profile — the paper's first example instrumentation.

    "The caller method, the callee method, and the call-site within the
    caller method (specified by a bytecode offset) are recorded as a call
    edge.  A counter is maintained for each call edge." *)

type edge = { caller : string; site : int; callee : string }

type t

val create : unit -> t
val record : t -> caller:string -> site:int -> callee:string -> unit

val bump : t -> caller:string -> site:int -> callee:string -> n:int -> unit
(** Decode path: add [n] at once, inserting the edge if absent.  Must be
    called in first-event order per distinct edge so the table layout
    matches what [record] would have built. *)

val count : t -> edge -> int
val total : t -> int

val to_alist : t -> (edge * int) list
(** Hottest first. *)

val edge_name : edge -> string
(** ["Caller.m@site->Callee.n"]. *)

val to_keyed : t -> (string * int) list
(** Keyed by {!edge_name}, for the overlap metric. *)

val distinct_edges : t -> int
