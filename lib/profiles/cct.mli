(** Calling-context-tree profile built from sampled stack walks — the
    Arnold–Sweeney technique ("Approximating the calling context tree via
    sampling", cited by the paper as an example of instrumentation that
    needs adaptation to work under sampling: instead of observing every
    entry/exit, each sampled method entry contributes one complete stack
    walk, splicing a path into the tree). *)

type t

val create : unit -> t

val record : t -> (string * int) list -> unit
(** One stack walk, outermost first: (method, call site in its caller). *)

val import :
  t ->
  walks:int ->
  root:'n ->
  children:('n -> ((string * int) * 'n) list) ->
  count:('n -> int) ->
  unit
(** Decode path: rebuild the tree from an abstract node representation
    (children in first-walk order, so the layout matches what [record]
    would have built). *)

type view = { vcount : int; vchildren : ((string * int) * view) list }
(** A concrete tree copy with full (method, call-site) child keys, for
    aggregation ({!Merge}).  Child order is unspecified. *)

val export : t -> int * view
(** (total walks, root view). *)

val total_walks : t -> int
val n_nodes : t -> int

val max_depth : t -> int
(** Depth of the deepest counted-or-leaf node (interior nodes are only
    prefixes of such nodes and never determine the depth). *)

val hot_contexts : ?n:int -> t -> (string list * int) list
(** The [n] most frequently sampled full contexts (outermost first) with
    their sample counts. *)

val to_keyed : t -> (string * int) list
(** One entry per tree node, keyed by its full path, counted by samples
    that ended at that node (for the overlap metric). *)
