(* Intraprocedural edge profile: execution counts of CFG edges, keyed by
   the original (pre-duplication) labels.  One of the profile kinds the
   paper lists as usable unmodified inside the framework. *)

type t = { table : (string * int * int, int ref) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let record t ~meth ~src ~dst =
  let key = (meth, src, dst) in
  match Hashtbl.find_opt t.table key with
  | Some c -> incr c
  | None -> Hashtbl.add t.table key (ref 1)

(* Decode path: see Call_edge.bump. *)
let bump t ~meth ~src ~dst ~n =
  let key = (meth, src, dst) in
  match Hashtbl.find_opt t.table key with
  | Some c -> c := !c + n
  | None -> Hashtbl.add t.table key (ref n)

let count t ~meth ~src ~dst =
  match Hashtbl.find_opt t.table (meth, src, dst) with
  | Some c -> !c
  | None -> 0

let total t = Hashtbl.fold (fun _ c acc -> acc + !c) t.table 0

let to_alist t =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let to_keyed t =
  List.map
    (fun ((m, s, d), c) -> (Printf.sprintf "%s:L%d->L%d" m s d, c))
    (to_alist t)
