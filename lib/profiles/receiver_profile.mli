(** Receiver-class distribution per virtual call site — the profile
    behind receiver-class prediction (Grove et al., OOPSLA '95, one of
    the feedback-directed optimizations the paper's framework enables
    online). *)

type t

val create : unit -> t
val record : t -> meth:string -> site:int -> cls:string -> unit

val set_site :
  t ->
  meth:string ->
  site:int ->
  classes:(string * int) list ->
  total:int ->
  unit
(** Decode path: install a site's final class histogram wholesale,
    [classes] in the order [record] would have left them (most recently
    bumped first).  Sites must be installed in first-event order. *)

val dominant : t -> meth:string -> site:int -> (string * float) option
(** Most frequent receiver class and its fraction of the site's calls. *)

val monomorphic_sites : ?threshold:float -> t -> (string * int * string) list
(** Sites whose dominant class reaches [threshold] (default 0.999):
    (method, site, class). *)

val export_sites : t -> ((string * int) * ((string * int) list * int)) list
(** Aggregation path: every site's (class histogram, total), classes in
    table order, sites in unspecified order — {!Merge} canonicalizes. *)

val sites : t -> (string * int) list
val n_sites : t -> int
val to_keyed : t -> (string * int) list
