(* Call-edge profile (the paper's first example instrumentation).

   "The caller method, the callee method, and the call-site within the
   caller method (specified by a bytecode offset) are recorded as a call
   edge.  A counter is maintained for each call edge." *)

type edge = { caller : string; site : int; callee : string }

type t = { table : (edge, int ref) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let record t ~caller ~site ~callee =
  let e = { caller; site; callee } in
  match Hashtbl.find_opt t.table e with
  | Some c -> incr c
  | None -> Hashtbl.add t.table e (ref 1)

(* Decode path (Profiles.Slots): add [n] at once, inserting if absent.
   Called once per distinct edge in first-event order, which reproduces
   the exact hashtable layout the event-by-event [record] sequence would
   have built (insertion order is observable through fold order and the
   stable sort's tie-breaking in [to_alist]). *)
let bump t ~caller ~site ~callee ~n =
  let e = { caller; site; callee } in
  match Hashtbl.find_opt t.table e with
  | Some c -> c := !c + n
  | None -> Hashtbl.add t.table e (ref n)

let count t e = match Hashtbl.find_opt t.table e with Some c -> !c | None -> 0

let total t = Hashtbl.fold (fun _ c acc -> acc + !c) t.table 0

let to_alist t =
  Hashtbl.fold (fun e c acc -> (e, !c) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let edge_name e = Printf.sprintf "%s@%d->%s" e.caller e.site e.callee

(* As keyed percentages, for the overlap metric. *)
let to_keyed t = List.map (fun (e, c) -> (edge_name e, c)) (to_alist t)

let distinct_edges t = Hashtbl.length t.table
