(* Runtime half of Ball-Larus path profiling.

   Per activation (frame) the collector keeps the running path sum; the
   three instrumentation hooks are:

     path_reset  (at the method entry and at every loop header)
     path_add    (on DAG edges with a non-zero increment)
     path_flush  (before returns; attached to backedges, which under
                  Full-Duplication become the duplicated code's transfer
                  edges back to the checking code)

   Under sampling with Full-Duplication each sample captures exactly one
   acyclic path: execution enters the duplicated code at a start point
   and leaves it at a finish point.  (No-Duplication cannot produce
   meaningful path profiles — paths need consecutive events, the paper's
   section 2 discussion — so adds/flushes without an active region are
   ignored.) *)

type region = { meth : string; start : int; mutable sum : int }

type t = {
  table : (string * int * int, int ref) Hashtbl.t; (* meth, start, path id *)
  active : (int, region) Hashtbl.t; (* frame id -> open region *)
}

let create () = { table = Hashtbl.create 64; active = Hashtbl.create 16 }

let reset t ~frame ~meth ~start =
  Hashtbl.replace t.active frame { meth; start; sum = 0 }

let add t ~frame ~inc =
  match Hashtbl.find_opt t.active frame with
  | Some r -> r.sum <- r.sum + inc
  | None -> ()

let flush t ~frame =
  match Hashtbl.find_opt t.active frame with
  | Some r ->
      let key = (r.meth, r.start, r.sum) in
      (match Hashtbl.find_opt t.table key with
      | Some c -> incr c
      | None -> Hashtbl.add t.table key (ref 1));
      Hashtbl.remove t.active frame
  | None -> ()

(* Decode path: add [n] completions of one path at once. *)
let bump t ~meth ~start ~path ~n =
  let key = (meth, start, path) in
  match Hashtbl.find_opt t.table key with
  | Some c -> c := !c + n
  | None -> Hashtbl.add t.table key (ref n)

(* Decode path: re-open a region left active at end of run (its frame
   never flushed), so post-decode state matches the legacy collector. *)
let restore_active t ~frame ~meth ~start ~sum =
  Hashtbl.replace t.active frame { meth; start; sum }

let count t ~meth ~start ~path =
  match Hashtbl.find_opt t.table (meth, start, path) with
  | Some c -> !c
  | None -> 0

let total t = Hashtbl.fold (fun _ c acc -> acc + !c) t.table 0

let to_alist t =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let to_keyed t =
  List.map
    (fun ((m, s, p), c) -> (Printf.sprintf "%s:L%d#%d" m s p, c))
    (to_alist t)

let distinct_paths t = Hashtbl.length t.table
