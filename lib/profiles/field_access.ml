(* Field-access profile (the paper's second example instrumentation):
   one counter per field of every class, bumped on every get/put; useful
   for data-layout optimizations. *)

type t = {
  table : (string, int ref) Hashtbl.t; (* "C.f" -> accesses *)
  mutable reads : int;
  mutable writes : int;
}

let create () = { table = Hashtbl.create 64; reads = 0; writes = 0 }

let record t ~field ~is_write =
  if is_write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
  match Hashtbl.find_opt t.table field with
  | Some c -> incr c
  | None -> Hashtbl.add t.table field (ref 1)

(* Decode path: [n] same-direction accesses at once. *)
let bump t ~field ~is_write ~n =
  if is_write then t.writes <- t.writes + n else t.reads <- t.reads + n;
  match Hashtbl.find_opt t.table field with
  | Some c -> c := !c + n
  | None -> Hashtbl.add t.table field (ref n)

(* Aggregation path (Profiles.Merge): [bump ~is_write:false] rebuilds
   the per-field table but books everything as reads; this installs the
   true global read/write split afterwards. *)
let set_totals t ~reads ~writes =
  t.reads <- reads;
  t.writes <- writes

let count t field =
  match Hashtbl.find_opt t.table field with Some c -> !c | None -> 0

let total t = t.reads + t.writes
let reads t = t.reads
let writes t = t.writes

let to_alist t =
  Hashtbl.fold (fun f c acc -> (f, !c) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let to_keyed = to_alist
let distinct_fields t = Hashtbl.length t.table
