(* Deterministic fault plans.

   A plan is pure data: a seed, a sorted schedule of cycle-triggered
   events, and a description of which methods the fast engine must
   pretend it cannot compile.  The VM threads a plan through execution
   (Machine.fuel_check applies due events), so the same plan produces
   the same faults at the same cycle counts on every run and on both
   execution engines — fault injection is as reproducible as the
   simulator itself.  Nothing here touches the VM: this library is
   leaf-level data so the VM, the harness and the tests can all speak
   the same plan type. *)

type action =
  | Trap  (** abort the run with a Runtime_error *)
  | Spurious_timer  (** a timer interrupt the timer device never scheduled *)
  | Corrupt_sample_counter of int  (** skew the sample counter by a delta *)
  | Flush_icache  (** invalidate every i-cache line (tags only) *)
  | Flush_dcache  (** invalidate every d-cache line (tags only) *)

type event = { at_cycle : int; action : action }

type plan = {
  seed : int;
  events : event array; (* sorted by at_cycle, applied in order *)
  compile_failures : string list; (* exact method names that must not compile *)
  compile_fail_pct : int; (* plus this percentage of all methods, by hash *)
}

let none = { seed = 0; events = [||]; compile_failures = []; compile_fail_pct = 0 }

let is_none p =
  Array.length p.events = 0 && p.compile_failures = [] && p.compile_fail_pct = 0

let sort_events evs =
  Array.sort (fun a b -> compare (a.at_cycle, a.action) (b.at_cycle, b.action)) evs

let make ?(seed = 0) ?(compile_failures = []) ?(compile_fail_pct = 0) events =
  let events = Array.of_list events in
  sort_events events;
  { seed; events; compile_failures; compile_fail_pct }

(* SplitMix-style mixer on OCaml's 63-bit ints (same construction as the
   VM's [rand] intrinsic): full avalanche, so nearby seeds produce
   unrelated plans. *)
let mix z =
  let z = (z + 0x1E3779B97F4A7C15) land max_int in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let of_seed ?(budget = 10_000_000) ?(n_events = 6) ?(trap_pct = 15)
    ?(compile_fail_pct = 0) seed =
  let state = ref (mix (seed lxor 0x5EEDFA11)) in
  let next bound =
    state := mix !state;
    if bound <= 0 then 0 else !state mod bound
  in
  let events =
    Array.init n_events (fun _ ->
        let at_cycle = 1 + next budget in
        let r = next 100 in
        let action =
          if r < trap_pct then Trap
          else if r < trap_pct + 25 then Spurious_timer
          else if r < trap_pct + 45 then Corrupt_sample_counter (1 + next 5)
          else if r < trap_pct + 75 then Flush_icache
          else Flush_dcache
        in
        { at_cycle; action })
  in
  sort_events events;
  { seed; events; compile_failures = []; compile_fail_pct }

(* [Hashtbl.hash] on strings is deterministic (fixed seed), so the set of
   failing methods depends only on (plan seed, method name). *)
let fail_compile p name =
  List.mem name p.compile_failures
  || (p.compile_fail_pct > 0
     && mix (p.seed lxor Hashtbl.hash name) mod 100 < p.compile_fail_pct)

let string_of_action = function
  | Trap -> "trap"
  | Spurious_timer -> "spurious-timer"
  | Corrupt_sample_counter d -> Printf.sprintf "corrupt-samples%+d" d
  | Flush_icache -> "flush-icache"
  | Flush_dcache -> "flush-dcache"

let to_string p =
  if is_none p then "no faults"
  else
    Printf.sprintf "seed %d: [%s]%s" p.seed
      (String.concat "; "
         (Array.to_list
            (Array.map
               (fun e -> Printf.sprintf "%s@%d" (string_of_action e.action) e.at_cycle)
               p.events)))
      (match (p.compile_failures, p.compile_fail_pct) with
      | [], 0 -> ""
      | fs, pct ->
          Printf.sprintf " compile-failures=%s+%d%%" (String.concat "," fs) pct)
