(** Deterministic fault plans for robustness testing.

    A plan is pure data — a seed, a schedule of cycle-triggered events,
    and a set of methods the fast engine must pretend it cannot compile.
    The VM applies due events at its fuel-check points, which both
    execution engines reach at identical cycle counts, so a plan
    produces the same faults at the same places on [`Ref] and [`Fast]
    (test/test_fault.ml enforces this differentially). *)

type action =
  | Trap  (** abort the run with a [Machine.Runtime_error] *)
  | Spurious_timer  (** a timer interrupt the timer device never scheduled *)
  | Corrupt_sample_counter of int  (** skew the sample counter by a delta *)
  | Flush_icache  (** invalidate every i-cache line (tags only) *)
  | Flush_dcache  (** invalidate every d-cache line (tags only) *)

type event = { at_cycle : int; action : action }

type plan = {
  seed : int;
  events : event array;  (** sorted by [at_cycle], applied in order *)
  compile_failures : string list;
      (** exact method names (["Cls.meth"]) that must fail engine compilation *)
  compile_fail_pct : int;
      (** additionally fail this percentage of all methods, chosen by a
          deterministic hash of (seed, method name) *)
}

val none : plan
(** The empty plan: running under it is indistinguishable from not
    injecting faults at all. *)

val is_none : plan -> bool

val make :
  ?seed:int -> ?compile_failures:string list -> ?compile_fail_pct:int ->
  event list -> plan
(** Explicit plan for tests; events are sorted by cycle. *)

val of_seed :
  ?budget:int -> ?n_events:int -> ?trap_pct:int -> ?compile_fail_pct:int ->
  int -> plan
(** Derive a pseudo-random plan from a seed: [n_events] (default 6)
    events uniformly over [1, budget] (default 1e7) cycles, [trap_pct]%
    (default 15) of them traps and the rest split over the non-fatal
    actions.  Same seed, same plan — byte for byte. *)

val fail_compile : plan -> string -> bool
(** Must the fast engine simulate a compile failure for this method? *)

val to_string : plan -> string
