# Convenience targets; `make ci` is what the (containerized) CI runs.

DUNE ?= dune

.PHONY: all build test test-all fmt bench-smoke bench-interp bench-profiles bench-harness bench-adaptive bench-serve cache-smoke crash-smoke adaptive-smoke serve-smoke trace-smoke merge-smoke ci clean

all: build

build:
	$(DUNE) build @all

# quick pass only: alcotest -q skips the `Slow full-scale cases
test:
	$(DUNE) runtest

# the whole suite, including full-scale and parallel-grid cases
test-all:
	$(DUNE) exec test/main.exe

# engine-vs-engine wall-clock benchmark at the smallest scale (three
# configurations: reference, compiled engine, trace tier; median-of-5
# interleaved timing), plus validation that BENCH_interp.smoke.json
# parses and covers all three for all ten workloads; warns (does not
# fail) on a >10% geomean regression against the committed
# BENCH_interp.json and on a traced median >5% behind plain Fast
bench-smoke:
	$(DUNE) exec bench/main.exe -- smoke

# alias: the interp smoke is also the trace-tier regression gate
bench-interp: bench-smoke

# recording-path benchmark (legacy collector vs flat slots) at the
# smallest scale, written to BENCH_profiles.smoke.json and validated;
# warns (does not fail) on a >10% geomean regression against the
# committed BENCH_profiles.json
bench-profiles:
	$(DUNE) exec bench/main.exe -- profiles-smoke

# scheduler/run-cache benchmark at the smallest scale, written to
# BENCH_harness.smoke.json and validated (dedup ratio > 1, cache output
# byte-identical cold vs warm); warns (does not fail) on a >10% geomean
# regression against the committed BENCH_harness.json
bench-harness:
	$(DUNE) exec bench/main.exe -- harness-smoke

# adaptive-loop benchmark (FDO loop vs exhaustive instrumentation) on a
# three-workload subset, written to BENCH_adaptive.smoke.json and
# validated (loop still wins: geomean >= 1); warns (does not fail) on a
# >10% geomean regression against the committed BENCH_adaptive.json
bench-adaptive:
	$(DUNE) exec bench/main.exe -- adaptive-smoke

# serve-mode daemon benchmark (jobs/sec, latency percentiles, shed
# rate, journal recovery time) on a small fleet, written to
# BENCH_serve.smoke.json and validated; warns (does not fail) on a
# >10% throughput regression against the committed BENCH_serve.json
bench-serve:
	$(DUNE) exec bench/main.exe -- serve-smoke

# SIGKILL `isf serve` mid-fleet, restart on the same journal, require
# zero lost jobs and byte-identity with a sequential run — for both
# engines and both recording paths; plus socket mode, graceful SIGTERM,
# a shared cache directory, and a chaos fleet with poison jobs
serve-smoke: build
	sh scripts/serve_smoke.sh

# cross-shard merge invariance: a sharded fleet merged with `isf merge`
# must be byte-identical to the sequential fleet's aggregate, for any
# shard count, merge order or worker count; the merged-aggregate cache
# cold vs warm must agree; SIGKILL mid-fleet + resume merges losslessly
merge-smoke: build
	sh scripts/merge_smoke.sh

# run `isf table 1` uncached, cold-cached and warm-cached; diff the
# outputs and require the warm run to hit the cache for every cell
cache-smoke: build
	sh scripts/cache_smoke.sh

# `isf table all` with the adaptive loop off must stay byte-identical
# across engines, recording paths and cache cold/warm; the loop on must
# be engine-invariant
adaptive-smoke: build
	sh scripts/adaptive_smoke.sh

# `isf table all --traces on|8` must stay byte-identical to traces off
# across engines, recording paths, --chaos and cache cold/warm, and
# the --stats event taxonomy must be non-zero (the identity is not
# vacuous)
trace-smoke: build
	sh scripts/trace_smoke.sh

# gated: the container does not ship ocamlformat
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# kill `isf table --checkpoint` mid-run, resume, diff against an
# uninterrupted run
crash-smoke: build
	sh scripts/crash_recovery.sh

ci: build fmt
	$(DUNE) exec test/main.exe
	$(DUNE) exec bin/isf.exe -- table 1 -j 2 > /dev/null
	$(MAKE) crash-smoke
	$(MAKE) cache-smoke
	$(MAKE) adaptive-smoke
	$(MAKE) trace-smoke
	$(MAKE) serve-smoke
	$(MAKE) merge-smoke
	$(MAKE) bench-smoke
	$(MAKE) bench-profiles
	$(MAKE) bench-harness
	$(MAKE) bench-adaptive
	$(MAKE) bench-serve
	@echo "ci OK"

clean:
	$(DUNE) clean
