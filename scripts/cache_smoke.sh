#!/bin/sh
# Run-cache smoke test: reproduce table 1 three times — plain, cold
# against a fresh --cache directory, and warm against the same
# directory — and require all three outputs byte-identical (the cache
# must never change what an experiment prints).  The warm run's
# [runcache] stats line (printed at exit under --trace) must show zero
# misses: every cell was served from the persistent store.
#
# Usage: scripts/cache_smoke.sh [path-to-isf]
set -eu

ISF=${1:-_build/default/bin/isf.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

CACHE=$DIR/cache

"$ISF" table 1 -j 2 > "$DIR/plain.txt"
"$ISF" table 1 -j 2 --trace --cache "$CACHE" > "$DIR/cold.txt" 2> "$DIR/cold.err"
"$ISF" table 1 -j 2 --trace --cache "$CACHE" > "$DIR/warm.txt" 2> "$DIR/warm.err"

for run in cold warm; do
    if ! cmp -s "$DIR/plain.txt" "$DIR/$run.txt"; then
        echo "FAIL: $run-cache output differs from the uncached run" >&2
        diff "$DIR/plain.txt" "$DIR/$run.txt" >&2 || true
        exit 1
    fi
done

grep '^\[runcache\]' "$DIR/cold.err" "$DIR/warm.err" || true

if ! grep -q '^\[runcache\].* misses=0 ' "$DIR/warm.err"; then
    echo "FAIL: warm run recomputed cells instead of hitting the cache" >&2
    cat "$DIR/warm.err" >&2
    exit 1
fi
if ! grep -q '^\[runcache\].* stores=[1-9]' "$DIR/cold.err"; then
    echo "FAIL: cold run stored nothing in the cache" >&2
    cat "$DIR/cold.err" >&2
    exit 1
fi

# a cache directory written by an incompatible version must refuse
echo "isf-runcache 0 ocaml-0.0.0" > "$CACHE/CACHE_VERSION"
if "$ISF" table 1 -j 2 --cache "$CACHE" > /dev/null 2>&1; then
    echo "FAIL: incompatible cache version was accepted" >&2
    exit 1
fi

echo "run cache OK"
