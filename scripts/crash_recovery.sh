#!/bin/sh
# Crash-recovery smoke test: start `isf table 1 --checkpoint`, kill it
# mid-run, resume from the checkpoint, and require the recovered output
# to be byte-identical to an uninterrupted run.
#
# Usage: scripts/crash_recovery.sh [path-to-isf]
set -eu

ISF=${1:-_build/default/bin/isf.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

CKPT=$DIR/table1.ckpt

# the uninterrupted reference run (2 domains, same config as below)
"$ISF" table 1 -j 2 > "$DIR/expected.txt"

# start the same run with a checkpoint, kill it mid-flight
"$ISF" table 1 -j 2 --checkpoint "$CKPT" > "$DIR/killed.txt" 2>/dev/null &
PID=$!
sleep 1
if kill -KILL "$PID" 2>/dev/null; then
    echo "killed run $PID after 1s"
else
    # the run may legitimately finish in under a second on a fast
    # machine; the resume below then just replays the full checkpoint
    echo "run $PID finished before the kill"
fi
wait "$PID" 2>/dev/null || true

# resume: completed cells come from the checkpoint, the rest recompute
"$ISF" table 1 -j 2 --checkpoint "$CKPT" > "$DIR/resumed.txt"

if ! cmp -s "$DIR/expected.txt" "$DIR/resumed.txt"; then
    echo "FAIL: resumed output differs from the uninterrupted run" >&2
    diff "$DIR/expected.txt" "$DIR/resumed.txt" >&2 || true
    exit 1
fi

# a second resume must be pure checkpoint replay, still byte-identical
"$ISF" table 1 -j 2 --checkpoint "$CKPT" > "$DIR/replayed.txt"
cmp -s "$DIR/expected.txt" "$DIR/replayed.txt" || {
    echo "FAIL: checkpoint replay differs from the uninterrupted run" >&2
    exit 1
}

# resuming under a different configuration must refuse, not mis-resume
if "$ISF" table 1 -j 2 --engine ref --checkpoint "$CKPT" > /dev/null 2>&1; then
    echo "FAIL: mismatched configuration resumed from the checkpoint" >&2
    exit 1
fi

echo "crash recovery OK"
