#!/bin/sh
# Adaptive-invariance smoke test: with the adaptive loop OFF (the
# default), `isf table all` must be byte-identical across every
# configuration the loop could conceivably perturb — both engines, both
# recording paths, and cold/warm against a persistent run cache.  The
# adaptive tier (lib/adaptive) hooks into the VM through fields that are
# inert unless --adaptive arms them; this script is the end-to-end check
# that merely linking the tier costs zero bytes of output.
#
# A final sanity leg runs the adaptive experiment (the loop ON, with
# its governor) on both engines and requires their outputs identical to
# each other: the loop itself must stay deterministic and
# engine-independent.
#
# Usage: scripts/adaptive_smoke.sh [path-to-isf]
set -eu

ISF=${1:-_build/default/bin/isf.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$ISF" table all -j 2 --engine fast > "$DIR/ref.txt"

run() {
    name=$1; shift
    "$ISF" table all -j 2 "$@" > "$DIR/$name.txt"
    if ! cmp -s "$DIR/ref.txt" "$DIR/$name.txt"; then
        echo "FAIL: adaptive-off output differs for: $name" >&2
        diff "$DIR/ref.txt" "$DIR/$name.txt" >&2 || true
        exit 1
    fi
}

run ref-engine        --engine ref
run fast-legacy       --engine fast --recording legacy
run ref-legacy        --engine ref  --recording legacy
run cache-cold        --engine fast --cache "$DIR/cache"
run cache-warm        --engine fast --cache "$DIR/cache"

# the loop ON: deterministic, and identical across engines
"$ISF" table adaptive -j 2 --engine fast --overhead-budget 10 \
    > "$DIR/on-fast.txt"
"$ISF" table adaptive -j 2 --engine ref --overhead-budget 10 \
    > "$DIR/on-ref.txt"
if ! cmp -s "$DIR/on-fast.txt" "$DIR/on-ref.txt"; then
    echo "FAIL: adaptive-on output differs between engines" >&2
    diff "$DIR/on-fast.txt" "$DIR/on-ref.txt" >&2 || true
    exit 1
fi

echo "adaptive invariance OK"
