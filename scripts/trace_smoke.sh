#!/bin/sh
# Trace-invariance smoke test: the trace tier must change wall-clock
# only, never a byte of output.  `isf table all` with traces armed must
# be byte-identical to traces-off — on both engines (the reference
# ignores the flag), under both recording paths, with deterministic
# chaos, and through a cold and a warm run cache (the trace setting is
# part of the run key, so trace-on and trace-off cells never alias).
#
# A low threshold (8) is used for most legs so the small table-cell
# scales actually record and run traces; one leg uses the CLI default
# (`--traces on`, threshold 256).  A final leg asserts via --stats that
# the tier genuinely engaged — recording, compiling, entering and
# side-exiting traces — so the byte-identity above is not vacuous.
#
# Usage: scripts/trace_smoke.sh [path-to-isf]
set -eu

ISF=${1:-_build/default/bin/isf.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$ISF" table all -j 2 --engine fast > "$DIR/off.txt"

run() {
    name=$1; base=$2; shift 2
    "$ISF" table all -j 2 "$@" > "$DIR/$name.txt"
    if ! cmp -s "$DIR/$base.txt" "$DIR/$name.txt"; then
        echo "FAIL: trace-tier output differs for: $name" >&2
        diff "$DIR/$base.txt" "$DIR/$name.txt" >&2 || true
        exit 1
    fi
}

run on             off --engine fast --traces 8
run on-default     off --engine fast --traces on
run on-ref         off --engine ref  --traces 8
run on-legacy      off --engine fast --traces 8 --recording legacy
run on-cache-cold  off --engine fast --traces 8 --cache "$DIR/cache"
run on-cache-warm  off --engine fast --traces 8 --cache "$DIR/cache"

# chaos: fault plans perturb the cells deterministically — some cells
# fail by design, so isf exits non-zero (shape gate / cell failures);
# traced and untraced runs must observe every fault at the same cycle:
# identical stdout bytes AND identical exit code
rc_off=0
"$ISF" table all -j 2 --engine fast --chaos 7 \
    > "$DIR/chaos-off.txt" 2> /dev/null || rc_off=$?
rc_on=0
"$ISF" table all -j 2 --engine fast --traces 8 --chaos 7 \
    > "$DIR/chaos-on.txt" 2> /dev/null || rc_on=$?
if [ "$rc_off" -ne "$rc_on" ]; then
    echo "FAIL: chaos exit codes differ traces off ($rc_off) vs on ($rc_on)" >&2
    exit 1
fi
if ! cmp -s "$DIR/chaos-off.txt" "$DIR/chaos-on.txt"; then
    echo "FAIL: trace-tier output differs under --chaos" >&2
    diff "$DIR/chaos-off.txt" "$DIR/chaos-on.txt" >&2 || true
    exit 1
fi

# the tier must actually have engaged: every event class non-zero
"$ISF" run compress --traces 8 --stats > /dev/null 2> "$DIR/stats.txt"
for ev in EV_RECORD EV_COMPILE EV_TRACE EV_EXIT; do
    count=$(awk -v ev="$ev" '$1 == ev { print $2 }' "$DIR/stats.txt")
    if [ -z "$count" ] || [ "$count" -le 0 ]; then
        echo "FAIL: --stats reports no $ev events (got '${count:-missing}')" >&2
        cat "$DIR/stats.txt" >&2
        exit 1
    fi
done

echo "trace invariance OK"
