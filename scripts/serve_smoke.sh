#!/bin/sh
# Serve-mode smoke test (ISSUE 8): for every engine x recording
# combination, emit a deterministic fleet, run it sequentially as the
# byte-identity reference, then drain it through a multi-worker daemon
# with a journal and a shared cache — SIGKILL the daemon mid-fleet,
# restart it on the same journal, and require zero lost jobs and
# results byte-identical to the reference.  Also exercises the socket
# front-end, graceful SIGTERM shutdown, and two daemons sharing one
# --cache directory.
#
# Usage: scripts/serve_smoke.sh [path-to-isf]
set -eu

ISF=${1:-_build/default/bin/isf.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

N=16
CACHE=$DIR/cache

for engine in fast ref; do
  for recording in slots legacy; do
    tag="$engine-$recording"
    JOBS=$DIR/jobs.$tag
    JOURNAL=$DIR/journal.$tag

    "$ISF" fleet -n $N --seed 11 --engine "$engine" --recording "$recording" \
        --emit "$JOBS" > /dev/null

    # the uninterrupted sequential reference
    "$ISF" fleet --file "$JOBS" --sequential --out "$DIR/expected.$tag" \
        > /dev/null

    # daemon drain with journal + cache, killed mid-fleet
    "$ISF" serve --job-file "$JOBS" --journal "$JOURNAL" --cache "$CACHE" \
        -j 3 --results "$DIR/killed.$tag" > /dev/null 2>&1 &
    PID=$!
    sleep 1
    if kill -KILL "$PID" 2>/dev/null; then
        echo "[$tag] killed daemon $PID after 1s"
    else
        echo "[$tag] daemon finished before the kill"
    fi
    wait "$PID" 2>/dev/null || true

    # restart on the same journal: completed jobs replay, in-flight jobs
    # re-run, nothing is lost
    "$ISF" serve --job-file "$JOBS" --journal "$JOURNAL" --cache "$CACHE" \
        -j 3 --results "$DIR/resumed.$tag" > "$DIR/resume_log.$tag"

    if [ "$(wc -l < "$DIR/resumed.$tag")" -ne $N ]; then
        echo "FAIL[$tag]: expected $N results, got $(wc -l < "$DIR/resumed.$tag")" >&2
        exit 1
    fi
    if ! cmp -s "$DIR/expected.$tag" "$DIR/resumed.$tag"; then
        echo "FAIL[$tag]: resumed results differ from the sequential reference" >&2
        diff "$DIR/expected.$tag" "$DIR/resumed.$tag" >&2 || true
        exit 1
    fi
    echo "[$tag] resume byte-identical ($(grep -o '[0-9]* replayed' "$DIR/resume_log.$tag" | head -1 || echo '? replayed') from journal)"
  done
done

# a journal written under one configuration refuses a different one
if "$ISF" serve --job-file "$DIR/jobs.fast-slots" \
    --journal "$DIR/journal.fast-ref-mismatch" --chaos 7 \
    --results /dev/null > /dev/null 2>&1 && \
   "$ISF" serve --job-file "$DIR/jobs.fast-slots" \
    --journal "$DIR/journal.fast-ref-mismatch" --chaos 8 \
    --results /dev/null > /dev/null 2>&1; then
    echo "FAIL: journal accepted a mismatched daemon configuration" >&2
    exit 1
fi
echo "journal refuses a mismatched configuration"

# socket front-end: daemon up, fleet over the socket, graceful SIGTERM
SOCK=$DIR/serve.sock
"$ISF" serve --socket "$SOCK" -j 2 --cache "$CACHE" > /dev/null 2>&1 &
SPID=$!
for i in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK" >&2; exit 1; }

"$ISF" fleet --file "$DIR/jobs.fast-slots" --socket "$SOCK" \
    --out "$DIR/socket.txt" > /dev/null
cmp -s "$DIR/expected.fast-slots" "$DIR/socket.txt" || {
    echo "FAIL: socket results differ from the sequential reference" >&2
    exit 1
}
kill -TERM "$SPID"
wait "$SPID" && : || CODE=$?
if [ "${CODE:-0}" -ne 143 ]; then
    echo "FAIL: SIGTERM shutdown exited ${CODE:-0}, expected 143" >&2
    exit 1
fi
[ -S "$SOCK" ] && { echo "FAIL: socket file left behind" >&2; exit 1; }
echo "socket mode OK, SIGTERM exits 143 and unlinks the socket"

# two daemons sharing one --cache directory at once: both complete,
# both byte-identical (temp+rename keeps racing writers safe)
"$ISF" fleet -n $N --seed 23 --emit "$DIR/jobs.share2" > /dev/null
"$ISF" fleet --file "$DIR/jobs.share2" --sequential --out "$DIR/expected.share2" \
    > /dev/null
"$ISF" serve --job-file "$DIR/jobs.fast-slots" --cache "$CACHE" -j 2 \
    --results "$DIR/share1.txt" > /dev/null &
P1=$!
"$ISF" serve --job-file "$DIR/jobs.share2" --cache "$CACHE" -j 2 \
    --results "$DIR/share2.txt" > /dev/null &
P2=$!
wait "$P1" || { echo "FAIL: shared-cache daemon 1 failed" >&2; exit 1; }
wait "$P2" || { echo "FAIL: shared-cache daemon 2 failed" >&2; exit 1; }
cmp -s "$DIR/expected.fast-slots" "$DIR/share1.txt" || {
    echo "FAIL: shared-cache daemon 1 results differ" >&2; exit 1; }
cmp -s "$DIR/expected.share2" "$DIR/share2.txt" || {
    echo "FAIL: shared-cache daemon 2 results differ" >&2; exit 1; }
echo "two daemons shared one cache directory safely"

# chaos fleet with poison jobs: every failure classified, poisons
# quarantined, exit 0 (the gates are enforced by `isf fleet` itself)
"$ISF" fleet -n $N --seed 5 --poison 2 --chaos 42 -j 2 \
    --out "$DIR/chaos.txt" > "$DIR/chaos_log.txt"
grep -q "2 quarantined" "$DIR/chaos_log.txt" || {
    echo "FAIL: poison jobs were not quarantined" >&2
    cat "$DIR/chaos_log.txt" >&2
    exit 1
}
echo "chaos fleet: all failures classified, poison jobs quarantined"

echo "serve smoke OK"
