#!/bin/sh
# Cross-shard merge smoke test (ISSUE 10): the merged aggregate must be
# byte-identical however the fleet was sharded, parallelised, cached,
# or killed and resumed.
#
#   1. sequential fleet --merge-out is the reference aggregate;
#   2. the same fleet split into 3 shards, each run separately, the
#      shard aggregates combined with `isf merge` — byte-identical;
#   3. a 2-way split and a reversed merge order — byte-identical
#      (shard-count and merge-order invariance);
#   4. a multi-worker daemon run of the full fleet — byte-identical;
#   5. cold vs warm merged-aggregate cache — byte-identical, so the
#      content-addressed cache never changes the answer;
#   6. SIGKILL the fleet mid-run, resume on the journal — results AND
#      merged aggregate byte-identical to the uninterrupted reference.
#
# Usage: scripts/merge_smoke.sh [path-to-isf]
set -eu

ISF=${1:-_build/default/bin/isf.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

N=24
JOBS=$DIR/jobs

"$ISF" fleet -n $N --seed 17 --emit "$JOBS" > /dev/null

# 1. sequential reference: results + merged aggregate
"$ISF" fleet --file "$JOBS" --sequential --out "$DIR/results.seq" \
    --merge-out "$DIR/merged.seq" > /dev/null

# 2. three shards, run separately, merged with `isf merge`
awk -v dir="$DIR" '{ print > (dir "/shard3." (NR % 3)) }' "$JOBS"
for i in 0 1 2; do
  "$ISF" fleet --file "$DIR/shard3.$i" --sequential \
      --out "$DIR/shard3.$i.res" --merge-out "$DIR/shard3.$i.prof" > /dev/null
done
"$ISF" merge "$DIR"/shard3.0.prof "$DIR"/shard3.1.prof "$DIR"/shard3.2.prof \
    --out "$DIR/merged.shard3" > /dev/null
cmp -s "$DIR/merged.seq" "$DIR/merged.shard3" || {
    echo "FAIL: 3-shard merge differs from the sequential aggregate" >&2
    exit 1
}
echo "3-shard merge byte-identical to the sequential aggregate"

# 3. different shard count AND reversed merge order
awk -v dir="$DIR" '{ print > (dir "/shard2." (NR % 2)) }' "$JOBS"
for i in 0 1; do
  "$ISF" fleet --file "$DIR/shard2.$i" --sequential \
      --out "$DIR/shard2.$i.res" --merge-out "$DIR/shard2.$i.prof" > /dev/null
done
"$ISF" merge "$DIR"/shard2.1.prof "$DIR"/shard2.0.prof \
    --out "$DIR/merged.shard2rev" > /dev/null
cmp -s "$DIR/merged.seq" "$DIR/merged.shard2rev" || {
    echo "FAIL: 2-shard reversed-order merge differs" >&2
    exit 1
}
echo "shard count and merge order do not change the aggregate"

# 4. multi-worker daemon run of the full fleet
"$ISF" fleet --file "$JOBS" -j 3 --out "$DIR/results.par" \
    --merge-out "$DIR/merged.par" > /dev/null
cmp -s "$DIR/results.seq" "$DIR/results.par" || {
    echo "FAIL: multi-worker results differ from sequential" >&2
    exit 1
}
cmp -s "$DIR/merged.seq" "$DIR/merged.par" || {
    echo "FAIL: multi-worker merge differs from the sequential aggregate" >&2
    exit 1
}
echo "multi-worker merge byte-identical"

# 5. cold vs warm merged-aggregate cache
CACHE=$DIR/cache
"$ISF" merge "$DIR"/shard3.*.prof --cache "$CACHE" \
    --out "$DIR/merged.cold" > /dev/null
"$ISF" merge "$DIR"/shard3.*.prof --cache "$CACHE" \
    --out "$DIR/merged.warm" > /dev/null
cmp -s "$DIR/merged.cold" "$DIR/merged.warm" || {
    echo "FAIL: warm merged-cache output differs from cold" >&2
    exit 1
}
cmp -s "$DIR/merged.seq" "$DIR/merged.cold" || {
    echo "FAIL: cached merge differs from the sequential aggregate" >&2
    exit 1
}
echo "merged-aggregate cache: cold and warm byte-identical"

# 6. SIGKILL mid-fleet, resume on the journal, merge losslessly
JOURNAL=$DIR/journal
"$ISF" fleet --file "$JOBS" --journal "$JOURNAL" \
    --out "$DIR/results.killed" --merge-out "$DIR/merged.killed" \
    > /dev/null 2>&1 &
PID=$!
sleep 1
if kill -KILL "$PID" 2>/dev/null; then
    echo "killed fleet $PID after 1s"
else
    echo "fleet finished before the kill"
fi
wait "$PID" 2>/dev/null || true
"$ISF" fleet --file "$JOBS" --journal "$JOURNAL" \
    --out "$DIR/results.resumed" --merge-out "$DIR/merged.resumed" > /dev/null
cmp -s "$DIR/results.seq" "$DIR/results.resumed" || {
    echo "FAIL: resumed results differ from the sequential reference" >&2
    exit 1
}
cmp -s "$DIR/merged.seq" "$DIR/merged.resumed" || {
    echo "FAIL: resumed merge differs from the sequential aggregate" >&2
    exit 1
}
echo "kill + resume merges losslessly"

echo "merge smoke OK"
